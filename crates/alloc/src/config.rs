//! Process-wide allocator configuration and the worker-thread registry.
//!
//! ## Segment geometry
//!
//! Every memory block is divided into N-page-aligned segments whose first
//! bytes store a back-pointer to the owning [`crate::NumaPoolAllocator`]
//! (paper Figure 4A). Deallocation recovers that pointer by masking the
//! element address with the segment size (Figure 4B), so the segment size
//! must be a *process-wide* constant: it is fixed the first time it is read,
//! from `BDM_MEM_ALIGNED_PAGES_SHIFT` (the paper's
//! `mem_mgr_aligned_pages_shift` parameter) or the default.
//!
//! ## Thread registry
//!
//! The engine registers each worker thread with its `(slot, numa domain)` so
//! the allocator can use the matching thread-private free list. Unregistered
//! threads (e.g. the main thread during model initialization) fall back to
//! the central free list, which is exactly the paper's deallocation rule for
//! threads of a foreign NUMA domain.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Base page size assumed for segment geometry.
pub const PAGE_SIZE: usize = 4096;

/// Default for `mem_mgr_aligned_pages_shift`: segments of 2^5 = 32 pages
/// (128 KiB).
pub const DEFAULT_ALIGNED_PAGES_SHIFT: u32 = 5;

/// Bytes reserved at the start of each aligned segment for the back-pointer.
/// The pointer itself needs 8 bytes; we reserve 16 so that elements after the
/// metadata keep 16-byte alignment (see DESIGN.md §3 for this deviation from
/// the paper's 8-byte metadata).
pub const SEGMENT_METADATA_SIZE: usize = 16;

/// Maximum alignment the pool can serve. Larger alignments fall back to the
/// system allocator.
pub const MAX_POOL_ALIGN: usize = 16;

static SEGMENT_SHIFT: AtomicUsize = AtomicUsize::new(0); // 0 = not yet fixed

fn init_segment_shift() -> usize {
    let shift = std::env::var("BDM_MEM_ALIGNED_PAGES_SHIFT")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&s| (1..=12).contains(&s))
        .unwrap_or(DEFAULT_ALIGNED_PAGES_SHIFT);
    // Fix it exactly once; racing initializers agree because the env var is
    // stable for the process lifetime.
    let bytes_shift = (PAGE_SIZE.trailing_zeros() + shift) as usize;
    match SEGMENT_SHIFT.compare_exchange(0, bytes_shift, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => bytes_shift,
        Err(prev) => prev,
    }
}

/// Segment size in bytes (`2^shift * PAGE_SIZE`); constant per process.
#[inline]
pub fn segment_size() -> usize {
    let s = SEGMENT_SHIFT.load(Ordering::Relaxed);
    let s = if s == 0 { init_segment_shift() } else { s };
    1usize << s
}

/// Mask that maps an element address to its segment base address.
#[inline]
pub fn segment_mask() -> usize {
    !(segment_size() - 1)
}

/// Largest element size the pool serves; larger allocations use the system
/// allocator (the paper: "the allocation size is limited by
/// N*page_size − metadata_size" — we cap earlier so each segment holds many
/// elements).
#[inline]
pub fn max_pool_element_size() -> usize {
    (segment_size() - SEGMENT_METADATA_SIZE) / 8
}

thread_local! {
    static THREAD_SLOT: Cell<Option<(u32, u32)>> = const { Cell::new(None) };
}

/// Registers the current thread as worker `slot` of NUMA `domain`.
/// Typically invoked once per pool worker via `NumaThreadPool::broadcast`.
pub fn register_thread(slot: usize, domain: usize) {
    THREAD_SLOT.with(|t| t.set(Some((slot as u32, domain as u32))));
}

/// Clears the current thread's registration.
pub fn unregister_thread() {
    THREAD_SLOT.with(|t| t.set(None));
}

/// `(slot, domain)` of the current thread, if registered.
#[inline]
pub fn current_thread_slot() -> Option<(usize, usize)> {
    THREAD_SLOT.with(|t| t.get().map(|(s, d)| (s as usize, d as usize)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_size_is_power_of_two_and_stable() {
        let s = segment_size();
        assert!(s.is_power_of_two());
        assert!(s >= PAGE_SIZE);
        assert_eq!(segment_size(), s, "second read must agree");
        assert_eq!(segment_mask(), !(s - 1));
    }

    #[test]
    fn max_pool_size_fits_many_elements_per_segment() {
        assert!(max_pool_element_size() * 4 < segment_size());
        assert!(max_pool_element_size() >= 256);
    }

    #[test]
    fn thread_registry_roundtrip() {
        assert_eq!(current_thread_slot(), None);
        register_thread(3, 1);
        assert_eq!(current_thread_slot(), Some((3, 1)));
        unregister_thread();
        assert_eq!(current_thread_slot(), None);
    }

    #[test]
    fn registry_is_thread_local() {
        register_thread(1, 0);
        std::thread::spawn(|| {
            assert_eq!(current_thread_slot(), None);
            register_thread(2, 1);
            assert_eq!(current_thread_slot(), Some((2, 1)));
        })
        .join()
        .unwrap();
        assert_eq!(current_thread_slot(), Some((1, 0)));
        unregister_thread();
    }
}
