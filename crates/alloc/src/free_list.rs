//! Free lists with constant-time bulk transfer.
//!
//! The paper's allocator minimizes thread synchronization by keeping
//! thread-private free lists and migrating large batches of nodes to/from a
//! central list in constant time, using auxiliary "skip lists" that remember
//! every k-th node (Section 4.3). We realize the same asymptotics with an
//! equivalent structure: nodes are grouped into **chunks** — singly-linked
//! lists of at most `CHUNK_SIZE` nodes with a known head and count. Moving a
//! chunk between a thread-private list and the central list moves one
//! pointer, never traversing nodes, which is precisely the constant-time bulk
//! addition/removal the skip lists provide.

/// Number of free elements grouped into one transferable chunk
/// (the "k" of the paper's skip list).
pub const CHUNK_SIZE: usize = 64;

/// A node written into the first bytes of a free memory element. Free-list
/// nodes live inside free elements and "do not require extra space" (paper).
#[repr(C)]
pub struct FreeNode {
    pub next: *mut FreeNode,
}

/// A singly-linked list of free nodes with known length.
pub struct Chunk {
    head: *mut FreeNode,
    count: usize,
}

// SAFETY: a Chunk owns its nodes exclusively; the raw pointers are only
// dereferenced by the list holding the chunk, behind a lock.
unsafe impl Send for Chunk {}

impl Chunk {
    /// Creates an empty chunk.
    pub const fn new() -> Chunk {
        Chunk {
            head: std::ptr::null_mut(),
            count: 0,
        }
    }

    /// Number of nodes in the chunk.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if the chunk holds no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Pushes the element at `ptr` onto the chunk.
    ///
    /// # Safety
    /// `ptr` must point to a free memory element of at least
    /// `size_of::<FreeNode>()` bytes, exclusively owned by the caller.
    #[inline]
    pub unsafe fn push(&mut self, ptr: *mut u8) {
        let node = ptr as *mut FreeNode;
        (*node).next = self.head;
        self.head = node;
        self.count += 1;
    }

    /// Pops one element, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<*mut u8> {
        if self.head.is_null() {
            return None;
        }
        // SAFETY: non-null head was pushed by `push` and is exclusively ours.
        unsafe {
            let node = self.head;
            self.head = (*node).next;
            self.count -= 1;
            Some(node as *mut u8)
        }
    }
}

impl Default for Chunk {
    fn default() -> Self {
        Chunk::new()
    }
}

/// A thread-private free list: one open (partially filled) chunk plus a stack
/// of full chunks. All bulk operations move whole chunks.
pub struct LocalFreeList {
    open: Chunk,
    full: Vec<Chunk>,
}

impl LocalFreeList {
    /// Creates an empty list.
    pub const fn new() -> LocalFreeList {
        LocalFreeList {
            open: Chunk::new(),
            full: Vec::new(),
        }
    }

    /// Total number of free nodes held.
    pub fn len(&self) -> usize {
        self.open.len() + self.full.len() * CHUNK_SIZE
    }

    /// True if no free nodes are held.
    pub fn is_empty(&self) -> bool {
        self.open.is_empty() && self.full.is_empty()
    }

    /// Pushes one free element; see [`Chunk::push`] for the safety contract.
    ///
    /// # Safety
    /// Same as [`Chunk::push`].
    #[inline]
    pub unsafe fn push(&mut self, ptr: *mut u8) {
        self.open.push(ptr);
        if self.open.len() == CHUNK_SIZE {
            self.full.push(std::mem::take(&mut self.open));
        }
    }

    /// Pops one free element, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<*mut u8> {
        if let Some(p) = self.open.pop() {
            return Some(p);
        }
        if let Some(chunk) = self.full.pop() {
            self.open = chunk;
            return self.open.pop();
        }
        None
    }

    /// Accepts a whole chunk in O(1).
    pub fn push_chunk(&mut self, chunk: Chunk) {
        if chunk.is_empty() {
            return;
        }
        if chunk.len() == CHUNK_SIZE {
            self.full.push(chunk);
        } else if self.open.is_empty() {
            self.open = chunk;
        } else {
            // Rare path: splice a partial chunk node by node.
            let mut c = chunk;
            while let Some(p) = c.pop() {
                // SAFETY: the node came from a valid chunk we now own.
                unsafe { self.push(p) };
            }
        }
    }

    /// Detaches up to `max_chunks` full chunks (for migration to the central
    /// list). O(number of chunks moved).
    pub fn take_full_chunks(&mut self, max_chunks: usize) -> Vec<Chunk> {
        let keep = self.full.len().saturating_sub(max_chunks);
        self.full.split_off(keep)
    }

    /// Number of full chunks currently held.
    pub fn full_chunks(&self) -> usize {
        self.full.len()
    }
}

impl Default for LocalFreeList {
    fn default() -> Self {
        LocalFreeList::new()
    }
}

/// The central free list shared by all threads of one `NumaPoolAllocator`
/// (always accessed under the allocator's lock).
pub struct CentralFreeList {
    open: Chunk,
    full: Vec<Chunk>,
}

impl CentralFreeList {
    /// Creates an empty central list.
    pub const fn new() -> CentralFreeList {
        CentralFreeList {
            open: Chunk::new(),
            full: Vec::new(),
        }
    }

    /// Total number of free nodes held.
    pub fn len(&self) -> usize {
        self.open.len() + self.full.len() * CHUNK_SIZE
    }

    /// Whether the list holds no free nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes one free element (deallocation from a foreign thread).
    ///
    /// # Safety
    /// Same as [`Chunk::push`].
    #[inline]
    pub unsafe fn push(&mut self, ptr: *mut u8) {
        self.open.push(ptr);
        if self.open.len() == CHUNK_SIZE {
            self.full.push(std::mem::take(&mut self.open));
        }
    }

    /// Accepts whole chunks in O(chunks).
    pub fn push_chunks(&mut self, chunks: Vec<Chunk>) {
        self.full
            .extend(chunks.into_iter().filter(|c| !c.is_empty()));
    }

    /// Pops a whole chunk if available, else whatever partial content exists.
    pub fn pop_chunk(&mut self) -> Option<Chunk> {
        if let Some(c) = self.full.pop() {
            return Some(c);
        }
        if !self.open.is_empty() {
            return Some(std::mem::take(&mut self.open));
        }
        None
    }
}

impl Default for CentralFreeList {
    fn default() -> Self {
        CentralFreeList::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Backing store for list nodes in tests. `Box` keeps node addresses
    /// stable while the outer vec moves.
    #[allow(clippy::vec_box)]
    fn arena(n: usize) -> Vec<Box<[u8; 16]>> {
        (0..n).map(|_| Box::new([0u8; 16])).collect()
    }

    #[test]
    fn chunk_push_pop_lifo() {
        let mut store = arena(3);
        let mut c = Chunk::new();
        let ptrs: Vec<*mut u8> = store.iter_mut().map(|b| b.as_mut_ptr()).collect();
        unsafe {
            c.push(ptrs[0]);
            c.push(ptrs[1]);
            c.push(ptrs[2]);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.pop(), Some(ptrs[2]));
        assert_eq!(c.pop(), Some(ptrs[1]));
        assert_eq!(c.pop(), Some(ptrs[0]));
        assert_eq!(c.pop(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn local_list_chunks_fill_and_drain() {
        let n = CHUNK_SIZE * 2 + 10;
        let mut store = arena(n);
        let mut l = LocalFreeList::new();
        for b in store.iter_mut() {
            unsafe { l.push(b.as_mut_ptr()) };
        }
        assert_eq!(l.len(), n);
        assert_eq!(l.full_chunks(), 2);
        let mut popped = 0;
        while l.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, n);
        assert!(l.is_empty());
    }

    #[test]
    fn migration_moves_full_chunks_only() {
        let n = CHUNK_SIZE * 3 + 5;
        let mut store = arena(n);
        let mut l = LocalFreeList::new();
        for b in store.iter_mut() {
            unsafe { l.push(b.as_mut_ptr()) };
        }
        let moved = l.take_full_chunks(2);
        assert_eq!(moved.len(), 2);
        assert!(moved.iter().all(|c| c.len() == CHUNK_SIZE));
        assert_eq!(l.len(), CHUNK_SIZE + 5);

        let mut central = CentralFreeList::new();
        central.push_chunks(moved);
        assert_eq!(central.len(), 2 * CHUNK_SIZE);
        let back = central.pop_chunk().unwrap();
        assert_eq!(back.len(), CHUNK_SIZE);
        l.push_chunk(back);
        assert_eq!(l.len(), 2 * CHUNK_SIZE + 5);
    }

    #[test]
    fn central_partial_pop() {
        let mut store = arena(3);
        let mut central = CentralFreeList::new();
        for b in store.iter_mut() {
            unsafe { central.push(b.as_mut_ptr()) };
        }
        let c = central.pop_chunk().unwrap();
        assert_eq!(c.len(), 3);
        assert!(central.pop_chunk().is_none());
    }

    #[test]
    fn push_partial_chunk_into_nonempty_local() {
        let mut store = arena(10);
        let ptrs: Vec<*mut u8> = store.iter_mut().map(|b| b.as_mut_ptr()).collect();
        let mut l = LocalFreeList::new();
        unsafe { l.push(ptrs[0]) };
        let mut partial = Chunk::new();
        for p in &ptrs[1..5] {
            unsafe { partial.push(*p) };
        }
        l.push_chunk(partial);
        assert_eq!(l.len(), 5);
        let mut seen = std::collections::HashSet::new();
        while let Some(p) = l.pop() {
            assert!(seen.insert(p), "no duplicates");
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn empty_chunk_pushes_are_noops() {
        let mut l = LocalFreeList::new();
        l.push_chunk(Chunk::new());
        assert!(l.is_empty());
        let mut central = CentralFreeList::new();
        central.push_chunks(vec![Chunk::new(), Chunk::new()]);
        assert_eq!(central.len(), 0);
    }
}
