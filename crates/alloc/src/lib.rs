//! # bdm-alloc
//!
//! The BioDynaMo pool memory allocator (paper Section 4.3, Figure 4), built
//! from scratch in Rust:
//!
//! * [`NumaPoolAllocator`] — constant-time pool allocation for one element
//!   size on one (virtual) NUMA domain, with thread-private free lists, a
//!   central free list, and constant-time bulk migration between them.
//! * [`MemoryManager`] — one allocator per (16-byte size class, domain);
//!   agents and behaviors of distinct sizes end up "columnar" in memory.
//! * [`PoolBox`] — the owning smart pointer the engine stores agents and
//!   behaviors in; deallocation finds its allocator through the back-pointer
//!   written at the start of every N-page-aligned segment.
//!
//! See DESIGN.md §3 for the deviations from the C++ original (segment-aligned
//! block allocation instead of `numa_alloc_onnode`, 16-byte segment headers).

pub mod config;
pub mod free_list;
pub mod manager;
pub mod pool_allocator;
pub mod pool_box;

pub use config::{register_thread, segment_size, unregister_thread, PAGE_SIZE};
pub use manager::{MemoryManager, MemoryStats};
pub use pool_allocator::{NumaPoolAllocator, PoolConfig};
pub use pool_box::PoolBox;
