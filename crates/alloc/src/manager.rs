//! The memory manager: one [`NumaPoolAllocator`] per (size class, NUMA
//! domain), plus a system-allocator fallback.
//!
//! Agents and behaviors of distinct sizes are served by distinct allocators,
//! "separated and stored in a columnar way" (paper Section 4.3). Sizes are
//! rounded up to 16-byte classes; allocations that are too large or
//! over-aligned for the pool transparently fall back to the system allocator.
//!
//! The benchmark harness also constructs managers with the pool disabled
//! (`MemoryManager::system_only`) to reproduce the allocator comparison of
//! Figure 13.

use std::alloc::Layout;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::config::{current_thread_slot, max_pool_element_size, MAX_POOL_ALIGN};
use crate::pool_allocator::{NumaPoolAllocator, PoolConfig};

/// Aggregate allocator statistics (used by the Figure 13 harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Allocations served by pool allocators.
    pub pool_allocations: u64,
    /// Deallocations returned to pool allocators.
    pub pool_deallocations: u64,
    /// Allocations that fell back to the system allocator.
    pub system_allocations: u64,
    /// Bytes reserved from the OS by all pool allocators.
    pub reserved_bytes: u64,
    /// Number of distinct (size class, domain) pool allocators.
    pub allocator_instances: u64,
}

/// Owner of all pool allocators of one simulation.
pub struct MemoryManager {
    config: PoolConfig,
    num_domains: usize,
    thread_slots: usize,
    use_pool: bool,
    /// size class -> one allocator per NUMA domain. `Box` keeps allocator
    /// addresses stable; segment back-pointers refer to them.
    #[allow(clippy::vec_box)]
    classes: RwLock<HashMap<usize, Vec<Box<NumaPoolAllocator>>>>,
    system_allocations: AtomicU64,
}

impl MemoryManager {
    /// Creates a manager with pooling enabled.
    pub fn new(num_domains: usize, thread_slots: usize, config: PoolConfig) -> MemoryManager {
        assert!(num_domains > 0 && thread_slots > 0);
        MemoryManager {
            config,
            num_domains,
            thread_slots,
            use_pool: true,
            classes: RwLock::new(HashMap::new()),
            system_allocations: AtomicU64::new(0),
        }
    }

    /// Creates a manager that routes everything to the system allocator
    /// (the paper's "ptmalloc2/jemalloc" comparison configurations).
    pub fn system_only(num_domains: usize, thread_slots: usize) -> MemoryManager {
        MemoryManager {
            use_pool: false,
            ..MemoryManager::new(num_domains, thread_slots, PoolConfig::default())
        }
    }

    /// Whether the pool is in use (false for `system_only`).
    pub fn uses_pool(&self) -> bool {
        self.use_pool
    }

    /// Number of NUMA domains served.
    pub fn num_domains(&self) -> usize {
        self.num_domains
    }

    /// Rounds a size up to its pool size class.
    #[inline]
    fn size_class(size: usize) -> usize {
        size.max(16).div_ceil(16) * 16
    }

    /// Whether the pool serves this layout (pure function of the layout, so
    /// the allocation and deallocation paths always agree).
    #[inline]
    pub fn pool_eligible(layout: Layout) -> bool {
        layout.size() > 0
            && layout.align() <= MAX_POOL_ALIGN
            && Self::size_class(layout.size()) <= max_pool_element_size()
    }

    /// Allocates memory for `layout` on `domain`.
    ///
    /// Returns a pointer and a flag saying whether it came from the pool;
    /// the flag must be passed back to [`MemoryManager::dealloc`].
    pub fn alloc(&self, layout: Layout, domain: usize) -> (*mut u8, bool) {
        debug_assert!(domain < self.num_domains);
        if self.use_pool && Self::pool_eligible(layout) {
            let class = Self::size_class(layout.size());
            // Fast path: the class already exists.
            {
                let classes = self.classes.read();
                if let Some(allocators) = classes.get(&class) {
                    return (self.alloc_from(&allocators[domain], domain), true);
                }
            }
            // Slow path: create allocators for this class.
            {
                let mut classes = self.classes.write();
                classes.entry(class).or_insert_with(|| {
                    (0..self.num_domains)
                        .map(|d| {
                            Box::new(NumaPoolAllocator::new(
                                class,
                                d,
                                self.thread_slots,
                                self.config,
                            ))
                        })
                        .collect()
                });
            }
            let classes = self.classes.read();
            let allocators = classes.get(&class).expect("class just inserted");
            (self.alloc_from(&allocators[domain], domain), true)
        } else {
            self.system_allocations.fetch_add(1, Ordering::Relaxed);
            if layout.size() == 0 {
                return (std::ptr::NonNull::<u8>::dangling().as_ptr(), false);
            }
            // SAFETY: non-zero size checked above.
            let p = unsafe { std::alloc::alloc(layout) };
            assert!(!p.is_null(), "system allocation failed");
            (p, false)
        }
    }

    fn alloc_from(&self, allocator: &NumaPoolAllocator, domain: usize) -> *mut u8 {
        // Use the thread-private list only when the current thread belongs to
        // the allocator's domain.
        let slot = current_thread_slot()
            .filter(|&(s, d)| d == domain && s < self.thread_slots)
            .map(|(s, _)| s);
        allocator.alloc(slot)
    }

    /// Frees memory previously obtained from [`MemoryManager::alloc`].
    ///
    /// Pool memory finds its allocator through the segment back-pointer, so
    /// this is an associated function: no manager reference is needed at
    /// drop time (paper Figure 4B).
    ///
    /// # Safety
    /// `ptr` must come from an `alloc` call with the same `layout` and
    /// `from_pool` flag, the corresponding `MemoryManager` must still be
    /// alive if `from_pool` is true, and `ptr` must not be freed twice.
    pub unsafe fn dealloc(ptr: *mut u8, layout: Layout, from_pool: bool) {
        if from_pool {
            debug_assert!(Self::pool_eligible(layout));
            let allocator = NumaPoolAllocator::allocator_of(ptr);
            (*allocator).dealloc(ptr);
        } else if layout.size() > 0 {
            std::alloc::dealloc(ptr, layout);
        }
    }

    /// Aggregate statistics over all pool allocators.
    pub fn stats(&self) -> MemoryStats {
        let classes = self.classes.read();
        let mut s = MemoryStats {
            system_allocations: self.system_allocations.load(Ordering::Relaxed),
            ..MemoryStats::default()
        };
        for allocators in classes.values() {
            for a in allocators {
                let (alloc, dealloc, _, _) = a.counters();
                s.pool_allocations += alloc;
                s.pool_deallocations += dealloc;
                s.reserved_bytes += a.reserved_bytes();
                s.allocator_instances += 1;
            }
        }
        s
    }

    /// Allocations minus deallocations across all pools (should be zero when
    /// the simulation has been torn down).
    pub fn outstanding(&self) -> i64 {
        let classes = self.classes.read();
        classes
            .values()
            .flat_map(|v| v.iter())
            .map(|a| a.outstanding())
            .sum()
    }
}

impl std::fmt::Debug for MemoryManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryManager")
            .field("num_domains", &self.num_domains)
            .field("thread_slots", &self.thread_slots)
            .field("use_pool", &self.use_pool)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_rounding() {
        assert_eq!(MemoryManager::size_class(1), 16);
        assert_eq!(MemoryManager::size_class(16), 16);
        assert_eq!(MemoryManager::size_class(17), 32);
        assert_eq!(MemoryManager::size_class(100), 112);
    }

    #[test]
    fn eligibility() {
        assert!(MemoryManager::pool_eligible(Layout::new::<[u8; 64]>()));
        assert!(!MemoryManager::pool_eligible(Layout::new::<()>()));
        let over_aligned = Layout::from_size_align(64, 64).unwrap();
        assert!(!MemoryManager::pool_eligible(over_aligned));
        let huge = Layout::from_size_align(max_pool_element_size() + 16, 8).unwrap();
        assert!(!MemoryManager::pool_eligible(huge));
    }

    #[test]
    fn pool_roundtrip() {
        let mm = MemoryManager::new(2, 2, PoolConfig::default());
        let layout = Layout::from_size_align(40, 8).unwrap();
        let (p, from_pool) = mm.alloc(layout, 1);
        assert!(from_pool);
        unsafe {
            std::ptr::write_bytes(p, 0xAB, 40);
            MemoryManager::dealloc(p, layout, true);
        }
        assert_eq!(mm.outstanding(), 0);
        let s = mm.stats();
        assert_eq!(s.pool_allocations, 1);
        assert_eq!(s.pool_deallocations, 1);
        assert_eq!(s.allocator_instances, 2); // one per domain for this class
    }

    #[test]
    fn system_only_never_pools() {
        let mm = MemoryManager::system_only(1, 1);
        let layout = Layout::from_size_align(40, 8).unwrap();
        let (p, from_pool) = mm.alloc(layout, 0);
        assert!(!from_pool);
        unsafe { MemoryManager::dealloc(p, layout, false) };
        assert_eq!(mm.stats().system_allocations, 1);
        assert_eq!(mm.stats().pool_allocations, 0);
    }

    #[test]
    fn distinct_sizes_get_distinct_allocators() {
        let mm = MemoryManager::new(1, 1, PoolConfig::default());
        let l1 = Layout::from_size_align(32, 8).unwrap();
        let l2 = Layout::from_size_align(64, 8).unwrap();
        let (p1, _) = mm.alloc(l1, 0);
        let (p2, _) = mm.alloc(l2, 0);
        unsafe {
            let a1 = NumaPoolAllocator::allocator_of(p1);
            let a2 = NumaPoolAllocator::allocator_of(p2);
            assert_ne!(a1, a2, "columnar separation of size classes");
            assert_eq!((*a1).element_size(), 32);
            assert_eq!((*a2).element_size(), 64);
            MemoryManager::dealloc(p1, l1, true);
            MemoryManager::dealloc(p2, l2, true);
        }
    }

    #[test]
    fn zero_sized_layout() {
        let mm = MemoryManager::new(1, 1, PoolConfig::default());
        let layout = Layout::new::<()>();
        let (p, from_pool) = mm.alloc(layout, 0);
        assert!(!from_pool);
        assert!(!p.is_null());
        unsafe { MemoryManager::dealloc(p, layout, false) };
    }

    #[test]
    fn oversized_falls_back_to_system() {
        let mm = MemoryManager::new(1, 1, PoolConfig::default());
        let size = max_pool_element_size() + 64;
        let layout = Layout::from_size_align(size, 16).unwrap();
        let (p, from_pool) = mm.alloc(layout, 0);
        assert!(!from_pool);
        unsafe {
            std::ptr::write_bytes(p, 1, size);
            MemoryManager::dealloc(p, layout, false);
        }
    }

    #[test]
    fn concurrent_class_creation() {
        let mm = std::sync::Arc::new(MemoryManager::new(1, 4, PoolConfig::default()));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let mm = std::sync::Arc::clone(&mm);
                std::thread::spawn(move || {
                    crate::config::register_thread(t, 0);
                    let mut ptrs = Vec::new();
                    for i in 0..1000 {
                        let size = 16 * (1 + (i + t) % 8);
                        let layout = Layout::from_size_align(size, 8).unwrap();
                        let (p, pool) = mm.alloc(layout, 0);
                        ptrs.push((p, layout, pool));
                    }
                    for (p, layout, pool) in ptrs {
                        unsafe { MemoryManager::dealloc(p, layout, pool) };
                    }
                    crate::config::unregister_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mm.outstanding(), 0);
        assert_eq!(mm.stats().allocator_instances, 8);
    }
}
