//! The per-(size-class, NUMA-domain) pool allocator (paper Section 4.3).
//!
//! A `NumaPoolAllocator` hands out equal-sized elements from large memory
//! blocks. Blocks are allocated with exponentially increasing sizes
//! (`mem_mgr_growth_rate`) and divided into N-page-aligned **segments**; the
//! first bytes of each segment store a back-pointer to the owning allocator,
//! so deallocation recovers the allocator from the element address in
//! constant time (Figure 4B) without any per-element metadata.
//!
//! Unlike `numa_alloc_onnode`, Rust's allocator API lets us request
//! segment-aligned blocks directly, so the paper's wasted regions at the
//! block boundaries disappear (documented deviation, DESIGN.md §3); the waste
//! from elements that do not fit at the end of a segment and from the
//! metadata itself remains and is reported by [`NumaPoolAllocator::reserved_bytes`].
//!
//! Block *initialization* (free-node generation) is on-demand in small steps:
//! a refill carves at most one chunk's worth of elements from the current
//! block, bounding the worst-case allocation latency (paper: "performed
//! on-demand in smaller segments").

use std::alloc::Layout;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::config::{current_thread_slot, segment_mask, segment_size, SEGMENT_METADATA_SIZE};
use crate::free_list::{CentralFreeList, Chunk, LocalFreeList, CHUNK_SIZE};

/// Tuning knobs of the pool allocator (paper parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Factor by which consecutive memory blocks grow
    /// (`mem_mgr_growth_rate`). Must be > 1.
    pub growth_rate: f64,
    /// Migrate full chunks to the central list once a thread-private list
    /// holds more than this many full chunks ("specific memory threshold").
    pub migration_threshold: usize,
    /// Upper bound for a single memory block, in bytes.
    pub max_block_bytes: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        // Tuned under `benches/removal.rs` + `fig13_allocator --quick`:
        // migration_threshold 8 beats 4 by ~5-7% on removal-heavy commits
        // (full chunks stay thread-private longer → fewer central-list
        // lock round-trips), while growth_rate 4.0 showed no win over 2.0
        // and doubles worst-case over-reservation, so 2.0 stays.
        PoolConfig {
            growth_rate: 2.0,
            migration_threshold: 8,
            max_block_bytes: 64 << 20,
        }
    }
}

/// One owned memory block.
struct Block {
    ptr: *mut u8,
    layout: Layout,
}

// SAFETY: blocks are raw memory owned exclusively by the allocator.
unsafe impl Send for Block {}

/// Bump state over the current block, carved segment by segment.
struct BumpState {
    /// Next free byte inside the current segment.
    cursor: *mut u8,
    /// End of the current segment.
    segment_end: *mut u8,
    /// Next segment base inside the current block.
    next_segment: *mut u8,
    /// End of the current block.
    block_end: *mut u8,
    /// Size of the next block to allocate.
    next_block_bytes: usize,
    /// All blocks ever allocated (freed on drop).
    blocks: Vec<Block>,
}

// SAFETY: BumpState is only accessed under the allocator's mutex.
unsafe impl Send for BumpState {}

/// Central, lock-protected part of the allocator.
struct Central {
    free: CentralFreeList,
    bump: BumpState,
}

/// Pool allocator for a single element size on a single (virtual) NUMA
/// domain.
pub struct NumaPoolAllocator {
    element_size: usize,
    numa_id: usize,
    config: PoolConfig,
    central: Mutex<Central>,
    locals: Box<[Mutex<LocalFreeList>]>,
    // Statistics (relaxed counters; exactness across threads not required).
    allocations: AtomicU64,
    deallocations: AtomicU64,
    central_deallocs: AtomicU64,
    migrations: AtomicU64,
    reserved: AtomicU64,
}

// SAFETY: all interior mutability is behind mutexes/atomics; raw pointers are
// managed memory owned by this allocator.
unsafe impl Send for NumaPoolAllocator {}
unsafe impl Sync for NumaPoolAllocator {}

impl NumaPoolAllocator {
    /// Creates an allocator for elements of exactly `element_size` bytes
    /// (must be a multiple of 16 and at least 16 — the size-class rounding is
    /// done by the `MemoryManager`).
    pub fn new(
        element_size: usize,
        numa_id: usize,
        thread_slots: usize,
        config: PoolConfig,
    ) -> NumaPoolAllocator {
        assert!(element_size >= 16 && element_size.is_multiple_of(16));
        assert!(
            element_size <= crate::config::max_pool_element_size(),
            "element size {element_size} exceeds pool maximum"
        );
        assert!(config.growth_rate > 1.0, "growth rate must exceed 1");
        let locals = (0..thread_slots.max(1))
            .map(|_| Mutex::new(LocalFreeList::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        NumaPoolAllocator {
            element_size,
            numa_id,
            config,
            central: Mutex::new(Central {
                free: CentralFreeList::new(),
                bump: BumpState {
                    cursor: std::ptr::null_mut(),
                    segment_end: std::ptr::null_mut(),
                    next_segment: std::ptr::null_mut(),
                    block_end: std::ptr::null_mut(),
                    next_block_bytes: segment_size(),
                    blocks: Vec::new(),
                },
            }),
            locals,
            allocations: AtomicU64::new(0),
            deallocations: AtomicU64::new(0),
            central_deallocs: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            reserved: AtomicU64::new(0),
        }
    }

    /// Element size served by this allocator.
    pub fn element_size(&self) -> usize {
        self.element_size
    }

    /// NUMA domain this allocator belongs to.
    pub fn numa_id(&self) -> usize {
        self.numa_id
    }

    /// Allocates one element. `thread_slot` selects the thread-private free
    /// list; pass `None` to go through the central list (foreign threads).
    pub fn alloc(&self, thread_slot: Option<usize>) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = thread_slot {
            let mut local = self.locals[slot].lock();
            if let Some(p) = local.pop() {
                return p;
            }
            // Refill from the central list or fresh memory, then retry.
            let chunk = self.acquire_chunk();
            local.push_chunk(chunk);
            return local.pop().expect("refill produced at least one element");
        }
        // Central path for unregistered/foreign threads.
        let mut central = self.central.lock();
        if let Some(mut chunk) = central.free.pop_chunk() {
            let p = chunk.pop().expect("central chunks are non-empty");
            central.free.push_chunks(vec![chunk]);
            return p;
        }
        let mut chunk =
            Self::carve_chunk(&mut central.bump, self.element_size, self, &self.reserved);
        let p = chunk.pop().expect("carve produced at least one element");
        central.free.push_chunks(vec![chunk]);
        p
    }

    /// Returns one element to the allocator (paper Figure 4B): a thread of
    /// the same NUMA domain pushes to its private list; everyone else pushes
    /// to the central list.
    ///
    /// # Safety
    /// `ptr` must have been returned by [`NumaPoolAllocator::alloc`] of this
    /// allocator and not freed since.
    pub unsafe fn dealloc(&self, ptr: *mut u8) {
        self.deallocations.fetch_add(1, Ordering::Relaxed);
        if let Some((slot, domain)) = current_thread_slot() {
            if domain == self.numa_id && slot < self.locals.len() {
                let mut local = self.locals[slot].lock();
                local.push(ptr);
                if local.full_chunks() > self.config.migration_threshold {
                    let moved = local.take_full_chunks(self.config.migration_threshold / 2 + 1);
                    drop(local);
                    self.migrations.fetch_add(1, Ordering::Relaxed);
                    self.central.lock().free.push_chunks(moved);
                }
                return;
            }
        }
        self.central_deallocs.fetch_add(1, Ordering::Relaxed);
        self.central.lock().free.push(ptr);
    }

    /// Obtains a chunk of free elements from the central list or fresh
    /// memory.
    fn acquire_chunk(&self) -> Chunk {
        let mut central = self.central.lock();
        if let Some(chunk) = central.free.pop_chunk() {
            return chunk;
        }
        Self::carve_chunk(&mut central.bump, self.element_size, self, &self.reserved)
    }

    /// Carves up to [`CHUNK_SIZE`] elements from the bump region, allocating
    /// a new segment/block when needed.
    fn carve_chunk(
        bump: &mut BumpState,
        element_size: usize,
        owner: &NumaPoolAllocator,
        reserved: &AtomicU64,
    ) -> Chunk {
        let mut chunk = Chunk::new();
        for _ in 0..CHUNK_SIZE {
            // Advance to a segment with room for one element.
            // SAFETY: cursor/segment_end delimit initialized raw memory we own.
            unsafe {
                if bump.cursor.add(element_size) > bump.segment_end {
                    if !Self::next_segment(bump, owner, reserved) {
                        break;
                    }
                    if bump.cursor.add(element_size) > bump.segment_end {
                        break; // element does not fit in a fresh segment
                    }
                }
                chunk.push(bump.cursor);
                bump.cursor = bump.cursor.add(element_size);
            }
        }
        assert!(
            !chunk.is_empty(),
            "pool allocator out of memory (element_size={element_size})"
        );
        chunk
    }

    /// Moves the bump region to the next segment, allocating a new block if
    /// the current one is exhausted. Writes the allocator back-pointer into
    /// the segment header. Returns false only on block allocation failure.
    fn next_segment(bump: &mut BumpState, owner: &NumaPoolAllocator, reserved: &AtomicU64) -> bool {
        let seg_size = segment_size();
        if bump.next_segment.is_null() || bump.next_segment == bump.block_end {
            // Allocate a new block, segment-aligned, sized in whole segments.
            let bytes = bump.next_block_bytes.max(seg_size);
            let bytes = bytes.div_ceil(seg_size) * seg_size;
            let layout = Layout::from_size_align(bytes, seg_size).expect("valid block layout");
            // SAFETY: non-zero, power-of-two-aligned layout.
            let ptr = unsafe { std::alloc::alloc(layout) };
            if ptr.is_null() {
                return false;
            }
            reserved.fetch_add(bytes as u64, Ordering::Relaxed);
            bump.blocks.push(Block { ptr, layout });
            bump.next_segment = ptr;
            // SAFETY: bytes is a multiple of seg_size.
            bump.block_end = unsafe { ptr.add(bytes) };
            let grown = (bytes as f64 * owner.config.growth_rate) as usize;
            bump.next_block_bytes = grown.min(owner.config.max_block_bytes);
        }
        let seg = bump.next_segment;
        // SAFETY: seg is a segment-aligned address inside an owned block with
        // at least seg_size bytes available.
        unsafe {
            // Paper Figure 4A: segment header stores the allocator pointer.
            (seg as *mut *const NumaPoolAllocator).write(owner as *const NumaPoolAllocator);
            bump.cursor = seg.add(SEGMENT_METADATA_SIZE);
            bump.segment_end = seg.add(seg_size);
            bump.next_segment = seg.add(seg_size);
        }
        true
    }

    /// Recovers the owning allocator from an element address by masking with
    /// the segment size and reading the header (paper Figure 4B).
    ///
    /// # Safety
    /// `ptr` must have been returned by some `NumaPoolAllocator::alloc` whose
    /// allocator is still alive.
    #[inline]
    pub unsafe fn allocator_of(ptr: *mut u8) -> *const NumaPoolAllocator {
        let base = (ptr as usize) & segment_mask();
        *(base as *const *const NumaPoolAllocator)
    }

    /// Number of allocations minus deallocations.
    pub fn outstanding(&self) -> i64 {
        self.allocations.load(Ordering::Relaxed) as i64
            - self.deallocations.load(Ordering::Relaxed) as i64
    }

    /// Total bytes reserved from the system allocator.
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }

    /// (allocations, deallocations, central deallocations, migrations).
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.allocations.load(Ordering::Relaxed),
            self.deallocations.load(Ordering::Relaxed),
            self.central_deallocs.load(Ordering::Relaxed),
            self.migrations.load(Ordering::Relaxed),
        )
    }
}

impl Drop for NumaPoolAllocator {
    fn drop(&mut self) {
        let central = self.central.get_mut();
        for block in central.bump.blocks.drain(..) {
            // SAFETY: blocks were allocated with exactly this layout and are
            // not referenced anymore (caller guarantees no outstanding
            // elements).
            unsafe { std::alloc::dealloc(block.ptr, block.layout) };
        }
    }
}

impl std::fmt::Debug for NumaPoolAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NumaPoolAllocator")
            .field("element_size", &self.element_size)
            .field("numa_id", &self.numa_id)
            .field("outstanding", &self.outstanding())
            .field("reserved_bytes", &self.reserved_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn alloc(slots: usize) -> NumaPoolAllocator {
        NumaPoolAllocator::new(64, 0, slots, PoolConfig::default())
    }

    #[test]
    fn alloc_returns_distinct_aligned_pointers() {
        let a = alloc(1);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let p = a.alloc(Some(0));
            assert_eq!(p as usize % 16, 0, "16-byte alignment");
            assert!(seen.insert(p as usize), "pointer handed out twice");
        }
        assert_eq!(a.outstanding(), 10_000);
        for p in seen {
            unsafe { a.dealloc(p as *mut u8) };
        }
        assert_eq!(a.outstanding(), 0);
    }

    #[test]
    fn elements_never_cross_segment_metadata() {
        let a = alloc(1);
        let seg = segment_size();
        for _ in 0..50_000 {
            let p = a.alloc(Some(0)) as usize;
            let offset = p & (seg - 1);
            assert!(
                offset >= SEGMENT_METADATA_SIZE,
                "element at offset {offset} overlaps segment header"
            );
            assert!(offset + 64 <= seg, "element crosses segment boundary");
        }
    }

    #[test]
    fn backpointer_recovers_allocator() {
        let a = alloc(1);
        let b = NumaPoolAllocator::new(128, 1, 1, PoolConfig::default());
        let pa = a.alloc(Some(0));
        let pb = b.alloc(Some(0));
        unsafe {
            assert_eq!(NumaPoolAllocator::allocator_of(pa), &a as *const _);
            assert_eq!(NumaPoolAllocator::allocator_of(pb), &b as *const _);
            a.dealloc(pa);
            b.dealloc(pb);
        }
    }

    #[test]
    fn memory_is_recycled() {
        let a = alloc(1);
        crate::config::register_thread(0, 0);
        let p1 = a.alloc(Some(0));
        unsafe { a.dealloc(p1) };
        let p2 = a.alloc(Some(0));
        assert_eq!(p1, p2, "LIFO recycling of the thread-private list");
        unsafe { a.dealloc(p2) };
        crate::config::unregister_thread();
    }

    #[test]
    fn foreign_thread_dealloc_goes_central() {
        let a = alloc(2);
        crate::config::register_thread(0, 5); // wrong domain on purpose
        let p = a.alloc(Some(0));
        unsafe { a.dealloc(p) };
        let (_, _, central, _) = a.counters();
        assert_eq!(central, 1);
        crate::config::unregister_thread();
    }

    #[test]
    fn migration_threshold_triggers() {
        let cfg = PoolConfig {
            migration_threshold: 1,
            ..PoolConfig::default()
        };
        let a = NumaPoolAllocator::new(32, 0, 1, cfg);
        crate::config::register_thread(0, 0);
        let ptrs: Vec<*mut u8> = (0..CHUNK_SIZE * 4).map(|_| a.alloc(Some(0))).collect();
        for p in ptrs {
            unsafe { a.dealloc(p) };
        }
        let (_, _, _, migrations) = a.counters();
        assert!(
            migrations > 0,
            "bulk migration to the central list happened"
        );
        crate::config::unregister_thread();
    }

    #[test]
    fn blocks_grow_geometrically() {
        let a = alloc(1);
        let n = 100_000; // 64 B * 100k = 6.4 MB >> first block
        let ptrs: Vec<*mut u8> = (0..n).map(|_| a.alloc(Some(0))).collect();
        assert!(a.reserved_bytes() >= (n as u64) * 64);
        // Growth rate 2.0 => the reserve is within a small factor of demand.
        assert!(a.reserved_bytes() < (n as u64) * 64 * 4);
        for p in ptrs {
            unsafe { a.dealloc(p) };
        }
    }

    #[test]
    fn central_path_without_thread_slot() {
        let a = alloc(1);
        let p = a.alloc(None);
        assert!(!p.is_null());
        unsafe { a.dealloc(p) };
        assert_eq!(a.outstanding(), 0);
    }

    #[test]
    fn concurrent_alloc_dealloc_stress() {
        let a = std::sync::Arc::new(NumaPoolAllocator::new(48, 0, 4, PoolConfig::default()));
        let mut handles = Vec::new();
        for slot in 0..4 {
            let a = std::sync::Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                crate::config::register_thread(slot, 0);
                let mut live: Vec<*mut u8> = Vec::new();
                let mut state = (slot as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for i in 0..20_000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if live.is_empty() || !state.is_multiple_of(3) {
                        let p = a.alloc(Some(slot));
                        // Write a pattern to catch overlapping elements.
                        unsafe { (p as *mut u64).write(i as u64) };
                        live.push(p);
                    } else {
                        let idx = (state as usize / 4) % live.len();
                        let p = live.swap_remove(idx);
                        unsafe { a.dealloc(p) };
                    }
                }
                for p in live {
                    unsafe { a.dealloc(p) };
                }
                crate::config::unregister_thread();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.outstanding(), 0);
    }

    #[test]
    fn writes_to_distinct_elements_do_not_interfere() {
        let a = alloc(1);
        let ptrs: Vec<*mut u8> = (0..1000).map(|_| a.alloc(Some(0))).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            unsafe {
                std::ptr::write_bytes(p, (i % 251) as u8, 64);
            }
        }
        for (i, &p) in ptrs.iter().enumerate() {
            let expect = (i % 251) as u8;
            for off in 0..64 {
                assert_eq!(unsafe { *p.add(off) }, expect, "element {i} byte {off}");
            }
        }
        for p in ptrs {
            unsafe { a.dealloc(p) };
        }
    }
}
