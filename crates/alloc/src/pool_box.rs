//! [`PoolBox`] — an owning smart pointer whose memory comes from the
//! [`MemoryManager`].
//!
//! This is the Rust analogue of BioDynaMo overriding `operator new/delete`
//! for agents and behaviors: values are placed in pool memory of a chosen
//! NUMA domain, and dropping the box returns the memory through the segment
//! back-pointer without needing a reference to the manager.
//!
//! `PoolBox` supports unsizing to trait objects via [`PoolBox::unsize`], so
//! the engine stores agents as `PoolBox<dyn Agent>`.

use std::alloc::Layout;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

use crate::manager::MemoryManager;

/// Owning pointer to a pool-allocated value.
pub struct PoolBox<T: ?Sized> {
    ptr: NonNull<T>,
    /// True if the memory came from a pool allocator (vs. the system
    /// allocator fallback). Needed so the drop path mirrors the allocation
    /// path even for `MemoryManager::system_only` managers.
    from_pool: bool,
}

impl<T> PoolBox<T> {
    /// Moves `value` into pool memory of `domain`.
    ///
    /// The `MemoryManager` must outlive every `PoolBox` allocated from it;
    /// the engine guarantees this by dropping the resource manager (and all
    /// agents) before the memory manager.
    pub fn new_in(value: T, mm: &MemoryManager, domain: usize) -> PoolBox<T> {
        let layout = Layout::new::<T>();
        if layout.size() == 0 {
            // ZSTs need no memory; keep the value's semantics by forgetting it
            // after a logical move (no destructor state is lost for ZSTs with
            // Drop, which we run via drop_in_place on a dangling-but-valid
            // pointer at drop time).
            let ptr = NonNull::<T>::dangling();
            std::mem::forget(value);
            return PoolBox {
                ptr,
                from_pool: false,
            };
        }
        let (raw, from_pool) = mm.alloc(layout, domain);
        let raw = raw as *mut T;
        // SAFETY: `raw` is valid for writes of `layout` and properly aligned.
        unsafe { raw.write(value) };
        PoolBox {
            ptr: NonNull::new(raw).expect("allocation returned null"),
            from_pool,
        }
    }

    /// Unsizes the box, e.g. `PoolBox<Cell>` → `PoolBox<dyn Agent>`.
    ///
    /// `cast` must be a plain unsizing cast like `|p| p as *mut dyn Agent`.
    /// The address is checked at runtime, so a closure returning a different
    /// pointer panics instead of corrupting the allocator.
    pub fn unsize<U: ?Sized>(self, cast: impl FnOnce(*mut T) -> *mut U) -> PoolBox<U> {
        let from_pool = self.from_pool;
        let raw = self.into_raw();
        let fat = cast(raw);
        assert_eq!(
            fat as *mut u8 as usize, raw as usize,
            "unsize cast must preserve the address"
        );
        PoolBox {
            // SAFETY: same allocation, same address, added metadata only.
            ptr: unsafe { NonNull::new_unchecked(fat) },
            from_pool,
        }
    }
}

impl<T: ?Sized> PoolBox<T> {
    /// Consumes the box, returning the raw pointer. The caller becomes
    /// responsible for the value and its memory (pair with
    /// [`PoolBox::from_raw_parts`]).
    pub fn into_raw(self) -> *mut T {
        let p = self.ptr.as_ptr();
        std::mem::forget(self);
        p
    }

    /// Whether the memory came from the pool (vs. the system allocator).
    pub fn is_pool_backed(&self) -> bool {
        self.from_pool
    }

    /// Rebuilds a box from [`PoolBox::into_raw`] output.
    ///
    /// # Safety
    /// `ptr` must come from `into_raw` of a `PoolBox` with the same
    /// `from_pool` flag, and must not be rebuilt twice.
    pub unsafe fn from_raw_parts(ptr: *mut T, from_pool: bool) -> PoolBox<T> {
        PoolBox {
            ptr: NonNull::new_unchecked(ptr),
            from_pool,
        }
    }

    /// Borrows the raw pointer without transferring ownership.
    pub fn as_ptr(&self) -> *mut T {
        self.ptr.as_ptr()
    }
}

impl<T: ?Sized> Deref for PoolBox<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the box owns a valid, initialized value.
        unsafe { self.ptr.as_ref() }
    }
}

impl<T: ?Sized> DerefMut for PoolBox<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive access through &mut self.
        unsafe { self.ptr.as_mut() }
    }
}

impl<T: ?Sized> Drop for PoolBox<T> {
    fn drop(&mut self) {
        // SAFETY: we own the value; compute the concrete layout before
        // destroying it, then release the memory the same way it was
        // obtained.
        unsafe {
            let layout = Layout::for_value(self.ptr.as_ref());
            std::ptr::drop_in_place(self.ptr.as_ptr());
            if layout.size() > 0 {
                MemoryManager::dealloc(self.ptr.as_ptr() as *mut u8, layout, self.from_pool);
            }
        }
    }
}

// SAFETY: PoolBox owns its value exclusively, like Box.
unsafe impl<T: ?Sized + Send> Send for PoolBox<T> {}
unsafe impl<T: ?Sized + Sync> Sync for PoolBox<T> {}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for PoolBox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool_allocator::PoolConfig;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn mm() -> MemoryManager {
        MemoryManager::new(2, 2, PoolConfig::default())
    }

    #[test]
    fn stores_and_reads_value() {
        let mm = mm();
        let mut b = PoolBox::new_in([1.0f64, 2.0, 3.0], &mm, 0);
        assert_eq!(b[1], 2.0);
        b[2] = 9.0;
        assert_eq!(*b, [1.0, 2.0, 9.0]);
        drop(b);
        assert_eq!(mm.outstanding(), 0);
    }

    #[test]
    fn runs_destructor_exactly_once() {
        static DROPS: AtomicU32 = AtomicU32::new(0);
        struct D(#[allow(dead_code)] u64);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mm = mm();
        DROPS.store(0, Ordering::Relaxed);
        let b = PoolBox::new_in(D(7), &mm, 1);
        drop(b);
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unsize_to_trait_object() {
        trait Speak {
            fn speak(&self) -> u32;
        }
        struct A(u32);
        impl Speak for A {
            fn speak(&self) -> u32 {
                self.0 * 2
            }
        }
        let mm = mm();
        let concrete = PoolBox::new_in(A(21), &mm, 0);
        let dynamic: PoolBox<dyn Speak> = concrete.unsize(|p| p as *mut dyn Speak);
        assert_eq!(dynamic.speak(), 42);
        assert!(dynamic.is_pool_backed());
        drop(dynamic);
        assert_eq!(mm.outstanding(), 0);
    }

    #[test]
    fn dyn_drop_uses_concrete_layout() {
        trait T0 {}
        struct Big(#[allow(dead_code)] [u64; 32]);
        impl T0 for Big {}
        let mm = mm();
        let b: PoolBox<dyn T0> = PoolBox::new_in(Big([7; 32]), &mm, 0).unsize(|p| p as *mut dyn T0);
        let stats_before = mm.stats();
        assert_eq!(stats_before.pool_allocations, 1);
        drop(b);
        assert_eq!(mm.outstanding(), 0);
    }

    #[test]
    fn system_only_manager_roundtrip() {
        let mm = MemoryManager::system_only(1, 1);
        let b = PoolBox::new_in(vec![1, 2, 3], &mm, 0);
        assert!(!b.is_pool_backed());
        assert_eq!(b.len(), 3);
        drop(b);
        assert_eq!(mm.stats().pool_allocations, 0);
    }

    #[test]
    fn into_raw_from_raw_roundtrip() {
        let mm = mm();
        let b = PoolBox::new_in(5u64, &mm, 0);
        let pool = b.is_pool_backed();
        let raw = b.into_raw();
        // SAFETY: raw/pool come from into_raw of a live box.
        let b2 = unsafe { PoolBox::from_raw_parts(raw, pool) };
        assert_eq!(*b2, 5);
        drop(b2);
        assert_eq!(mm.outstanding(), 0);
    }

    #[test]
    fn zst_box() {
        let mm = mm();
        let b = PoolBox::new_in((), &mm, 0);
        assert_eq!(*b, ());
        drop(b);
        assert_eq!(mm.outstanding(), 0);
        assert_eq!(mm.stats().pool_allocations, 0);
    }

    #[test]
    fn send_across_threads() {
        let mm = std::sync::Arc::new(mm());
        let b = PoolBox::new_in(123u64, &mm, 0);
        let h = std::thread::spawn(move || {
            assert_eq!(*b, 123);
            drop(b);
        });
        h.join().unwrap();
        assert_eq!(mm.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "preserve the address")]
    fn bogus_unsize_cast_panics() {
        let mm = mm();
        let b = PoolBox::new_in(1u64, &mm, 0);
        static OTHER: u64 = 0;
        let _ = b.unsize(|_p| &OTHER as *const u64 as *mut u64 as *mut dyn std::fmt::Debug);
    }
}
