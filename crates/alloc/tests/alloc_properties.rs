//! Property-based tests of the pool allocator (paper Section 4.3):
//! no double hand-outs, correct alignment, segment metadata integrity, and
//! balanced accounting under arbitrary alloc/free interleavings.

use std::alloc::Layout;
use std::collections::HashSet;

use proptest::prelude::*;

use bdm_alloc::{MemoryManager, PoolConfig};

/// A randomized allocator workload: sizes index a fixed set of layouts, and
/// `free_order[i]` decides which live allocation the i-th free releases.
#[derive(Debug, Clone)]
struct Workload {
    ops: Vec<Op>,
}

#[derive(Debug, Clone)]
enum Op {
    Alloc { size_class: usize, domain: usize },
    Free { victim: usize },
}

const LAYOUTS: [(usize, usize); 5] = [(16, 8), (40, 8), (64, 16), (120, 8), (256, 16)];
const DOMAINS: usize = 2;

fn workload_strategy(max_ops: usize) -> impl Strategy<Value = Workload> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..LAYOUTS.len(), 0..DOMAINS)
                .prop_map(|(size_class, domain)| Op::Alloc { size_class, domain }),
            2 => (0usize..usize::MAX).prop_map(|victim| Op::Free { victim }),
        ],
        1..max_ops,
    )
    .prop_map(|ops| Workload { ops })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every live allocation occupies a disjoint, correctly aligned memory
    /// range, regardless of the alloc/free interleaving.
    #[test]
    fn prop_no_overlap_and_aligned(workload in workload_strategy(300)) {
        let mm = MemoryManager::new(DOMAINS, 1, PoolConfig::default());
        bdm_alloc::register_thread(0, 0);
        // (ptr, layout, pooled) of live allocations, in allocation order.
        let mut live: Vec<(*mut u8, Layout, bool)> = Vec::new();
        for op in &workload.ops {
            match *op {
                Op::Alloc { size_class, domain } => {
                    let (size, align) = LAYOUTS[size_class];
                    let layout = Layout::from_size_align(size, align).unwrap();
                    let (ptr, pooled) = mm.alloc(layout, domain);
                    prop_assert!(!ptr.is_null());
                    prop_assert_eq!(ptr as usize % align, 0, "misaligned");
                    prop_assert!(pooled, "these layouts are all pool-eligible");
                    // Fill the element; overlap with another live element
                    // would corrupt its fill pattern.
                    unsafe { ptr.write_bytes(0xAB, size) };
                    live.push((ptr, layout, pooled));
                }
                Op::Free { victim } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (ptr, layout, pooled) = live.swap_remove(victim % live.len());
                    unsafe { MemoryManager::dealloc(ptr, layout, pooled) };
                }
            }
        }
        // Overlap check over all live ranges.
        let mut ranges: Vec<(usize, usize)> = live
            .iter()
            .map(|&(p, l, _)| (p as usize, p as usize + l.size()))
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping allocations: {w:?}");
        }
        // Fill patterns intact (no aliasing through the free list).
        for &(ptr, layout, _) in &live {
            for off in 0..layout.size() {
                prop_assert_eq!(unsafe { ptr.add(off).read() }, 0xAB);
            }
        }
        for (ptr, layout, pooled) in live {
            unsafe { MemoryManager::dealloc(ptr, layout, pooled) };
        }
        prop_assert_eq!(mm.outstanding(), 0, "leaked allocations");
        bdm_alloc::unregister_thread();
    }

    /// Freed elements are recycled: allocating after freeing reuses pool
    /// memory instead of growing the reservation without bound.
    #[test]
    fn prop_freed_memory_is_reused(rounds in 2usize..6, per_round in 10usize..200) {
        let mm = MemoryManager::new(1, 1, PoolConfig::default());
        bdm_alloc::register_thread(0, 0);
        let layout = Layout::from_size_align(64, 8).unwrap();
        let mut seen: HashSet<usize> = HashSet::new();
        let mut reused = false;
        for _ in 0..rounds {
            let ptrs: Vec<*mut u8> = (0..per_round).map(|_| mm.alloc(layout, 0).0).collect();
            for &p in &ptrs {
                if !seen.insert(p as usize) {
                    reused = true;
                }
            }
            for p in ptrs {
                unsafe { MemoryManager::dealloc(p, layout, true) };
            }
        }
        prop_assert!(reused, "no pointer was ever reused across rounds");
        prop_assert_eq!(mm.outstanding(), 0);
        bdm_alloc::unregister_thread();
    }
}

#[test]
fn oversized_allocations_fall_back_to_system() {
    let mm = MemoryManager::new(1, 1, PoolConfig::default());
    let huge = Layout::from_size_align(10 << 20, 16).unwrap();
    let (ptr, pooled) = mm.alloc(huge, 0);
    assert!(!ptr.is_null());
    assert!(!pooled, "10 MiB cannot come from a pool segment");
    unsafe { ptr.write_bytes(1, 1024) };
    unsafe { MemoryManager::dealloc(ptr, huge, pooled) };
}

#[test]
fn cross_domain_allocations_are_isolated() {
    // Elements allocated on different virtual domains come from different
    // allocator instances (distinct segments).
    let mm = MemoryManager::new(2, 2, PoolConfig::default());
    let layout = Layout::from_size_align(64, 8).unwrap();
    let a = mm.alloc(layout, 0).0;
    let b = mm.alloc(layout, 1).0;
    let seg = bdm_alloc::segment_size();
    assert_ne!(
        a as usize / seg,
        b as usize / seg,
        "different domains must not share a segment"
    );
    unsafe {
        MemoryManager::dealloc(a, layout, true);
        MemoryManager::dealloc(b, layout, true);
    }
    assert_eq!(mm.outstanding(), 0);
}

#[test]
fn concurrent_churn_from_foreign_threads() {
    // Threads that were never registered (foreign domain) must still be able
    // to free pool memory — it lands on the central free list (Figure 4B).
    let mm = std::sync::Arc::new(MemoryManager::new(1, 4, PoolConfig::default()));
    let layout = Layout::from_size_align(40, 8).unwrap();
    let ptrs: Vec<usize> = (0..1000).map(|_| mm.alloc(layout, 0).0 as usize).collect();
    let chunks: Vec<Vec<usize>> = ptrs.chunks(250).map(<[usize]>::to_vec).collect();
    let handles: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            // The clone is load-bearing: the manager must outlive every
            // thread that frees pool memory (dealloc follows the segment
            // back-pointer into the allocator).
            let _mm = std::sync::Arc::clone(&mm);
            std::thread::spawn(move || {
                let _keep_alive = &_mm;
                for p in chunk {
                    unsafe { MemoryManager::dealloc(p as *mut u8, layout, true) };
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(mm.outstanding(), 0);
    // And the recycled memory is allocatable again.
    let again = mm.alloc(layout, 0).0;
    assert!(!again.is_null());
    unsafe { MemoryManager::dealloc(again, layout, true) };
}
