//! # bdm-baseline
//!
//! A deliberately straightforward **serial** agent-based engine, standing in
//! for the single-threaded comparators of paper Section 6.6 (Cortex3D and
//! NetLogo; see DESIGN.md §3 for the substitution rationale). Figure 8 uses
//! these tools to quantify the parallel overhead of the optimized engine
//! ("Scalability! But at what COST?").
//!
//! Characteristic (intentional) inefficiencies of the era of tools it
//! represents:
//!
//! * single-threaded throughout,
//! * array-of-structs agents behind individual heap allocations
//!   (`Vec<Box<BaselineAgent>>`, like a JVM object graph),
//! * **materialized per-agent neighbor lists** rebuilt from scratch every
//!   iteration (freshly allocated, LAMMPS-style memory hunger — the paper
//!   notes BioDynaMo avoids exactly these lists),
//! * a serially rebuilt bucket grid for the neighbor search,
//! * serial diffusion.
//!
//! The engine is nonetheless *correct* and runs the same model logic as the
//! optimized engine, so runtime/memory ratios are meaningful.

use bdm_util::{Real3, SimRng};

/// An agent of the baseline engine (AoS, boxed).
#[derive(Debug, Clone)]
pub struct BaselineAgent {
    /// Position.
    pub position: Real3,
    /// Diameter.
    pub diameter: f64,
    /// Model-defined type/state word.
    pub state: u64,
    /// Model-defined auxiliary value (growth progress, infection timer, …).
    pub aux: f64,
    /// Alive flag (deaths are applied at the end of the iteration).
    pub alive: bool,
}

impl BaselineAgent {
    /// Creates an agent at a position.
    pub fn new(position: Real3, diameter: f64, state: u64) -> BaselineAgent {
        BaselineAgent {
            position,
            diameter,
            state,
            aux: 0.0,
            alive: true,
        }
    }
}

/// A model rule executed once per agent per iteration.
///
/// Receives the agent index, the full population (read/write), that agent's
/// materialized neighbor list, the engine RNG, and a birth queue.
pub type Rule = Box<
    dyn FnMut(usize, &mut Vec<Box<BaselineAgent>>, &[u32], &mut SimRng, &mut Vec<BaselineAgent>),
>;

/// The serial baseline engine.
pub struct BaselineEngine {
    /// The population (boxed AoS, see module docs).
    pub agents: Vec<Box<BaselineAgent>>,
    rules: Vec<Rule>,
    rng: SimRng,
    interaction_radius: f64,
    /// Optional repulsive pairwise mechanics.
    pub mechanics: bool,
    /// Optional serial diffusion grids: `(values, resolution, min, edge)`.
    pub diffusion: Vec<BaselineDiffusion>,
    iteration: u64,
}

/// A naive serial diffusion grid.
#[derive(Debug, Clone)]
pub struct BaselineDiffusion {
    /// Concentrations (x fastest).
    pub values: Vec<f64>,
    /// Boxes per axis.
    pub resolution: usize,
    /// Lower corner.
    pub min: Real3,
    /// Domain edge length.
    pub edge: f64,
    /// Diffusion coefficient.
    pub coefficient: f64,
}

impl BaselineDiffusion {
    /// Creates an empty grid.
    pub fn new(resolution: usize, min: Real3, edge: f64, coefficient: f64) -> BaselineDiffusion {
        BaselineDiffusion {
            values: vec![0.0; resolution * resolution * resolution],
            resolution,
            min,
            edge,
            coefficient,
        }
    }

    /// Box index of a position (clamped).
    pub fn index(&self, p: Real3) -> usize {
        let r = self.resolution;
        let h = self.edge / r as f64;
        let mut idx = [0usize; 3];
        for a in 0..3 {
            idx[a] = (((p[a] - self.min[a]) / h).max(0.0) as usize).min(r - 1);
        }
        idx[0] + r * (idx[1] + r * idx[2])
    }

    /// One serial FTCS step.
    pub fn step(&mut self, dt: f64) {
        let r = self.resolution;
        let h = self.edge / r as f64;
        let alpha = (self.coefficient * dt / (h * h)).min(1.0 / 6.0);
        let mut next = vec![0.0; self.values.len()];
        for z in 0..r {
            for y in 0..r {
                for x in 0..r {
                    let at = |xx: usize, yy: usize, zz: usize| self.values[xx + r * (yy + r * zz)];
                    let c = at(x, y, z);
                    let mut lap = -6.0 * c;
                    lap += at(x.saturating_sub(1), y, z);
                    lap += at((x + 1).min(r - 1), y, z);
                    lap += at(x, y.saturating_sub(1), z);
                    lap += at(x, (y + 1).min(r - 1), z);
                    lap += at(x, y, z.saturating_sub(1));
                    lap += at(x, y, (z + 1).min(r - 1));
                    next[x + r * (y + r * z)] = c + alpha * lap;
                }
            }
        }
        self.values = next;
    }

    /// Concentration gradient at a position (central differences).
    pub fn gradient(&self, p: Real3) -> Real3 {
        let r = self.resolution;
        let flat = self.index(p);
        let (x, y, z) = (flat % r, (flat / r) % r, flat / (r * r));
        let at = |xx: usize, yy: usize, zz: usize| self.values[xx + r * (yy + r * zz)];
        let h = self.edge / r as f64;
        Real3::new(
            (at((x + 1).min(r - 1), y, z) - at(x.saturating_sub(1), y, z)) / (2.0 * h),
            (at(x, (y + 1).min(r - 1), z) - at(x, y.saturating_sub(1), z)) / (2.0 * h),
            (at(x, y, (z + 1).min(r - 1)) - at(x, y, z.saturating_sub(1))) / (2.0 * h),
        )
    }
}

impl BaselineEngine {
    /// Creates an engine with a fixed interaction radius.
    pub fn new(seed: u64, interaction_radius: f64) -> BaselineEngine {
        BaselineEngine {
            agents: Vec::new(),
            rules: Vec::new(),
            rng: SimRng::new(seed),
            interaction_radius,
            mechanics: true,
            diffusion: Vec::new(),
            iteration: 0,
        }
    }

    /// Adds an agent.
    pub fn add_agent(&mut self, a: BaselineAgent) {
        self.agents.push(Box::new(a));
    }

    /// Registers a per-agent rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Number of live agents.
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// Iterations executed.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Rebuilds the materialized neighbor lists (serial bucket grid; fresh
    /// allocations every call — intentionally, see module docs).
    fn build_neighbor_lists(&self) -> Vec<Vec<u32>> {
        let n = self.agents.len();
        let r = self.interaction_radius;
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        if n == 0 {
            return lists;
        }
        // Bounding box.
        let mut min = Real3::splat(f64::INFINITY);
        let mut max = Real3::splat(f64::NEG_INFINITY);
        for a in &self.agents {
            min = min.min(&a.position);
            max = max.max(&a.position);
        }
        let dims: Vec<usize> = (0..3)
            .map(|ax| (((max[ax] - min[ax]) / r).floor() as usize + 1).max(1))
            .collect();
        let flat = |bc: [usize; 3]| bc[0] + dims[0] * (bc[1] + dims[1] * bc[2]);
        let coords = |p: Real3| {
            let mut bc = [0usize; 3];
            for ax in 0..3 {
                bc[ax] = (((p[ax] - min[ax]) / r).max(0.0) as usize).min(dims[ax] - 1);
            }
            bc
        };
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); dims[0] * dims[1] * dims[2]];
        for (i, a) in self.agents.iter().enumerate() {
            buckets[flat(coords(a.position))].push(i as u32);
        }
        let r2 = r * r;
        for (i, a) in self.agents.iter().enumerate() {
            let bc = coords(a.position);
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let (x, y, z) = (bc[0] as i64 + dx, bc[1] as i64 + dy, bc[2] as i64 + dz);
                        if x < 0
                            || y < 0
                            || z < 0
                            || x >= dims[0] as i64
                            || y >= dims[1] as i64
                            || z >= dims[2] as i64
                        {
                            continue;
                        }
                        for &j in &buckets[flat([x as usize, y as usize, z as usize])] {
                            if j as usize != i
                                && a.position.distance_sq(&self.agents[j as usize].position) <= r2
                            {
                                lists[i].push(j);
                            }
                        }
                    }
                }
            }
        }
        lists
    }

    /// Executes one iteration: rules, naive mechanics, diffusion, births and
    /// deaths.
    pub fn step(&mut self, dt: f64) {
        self.iteration += 1;
        let lists = self.build_neighbor_lists();
        let mut births: Vec<BaselineAgent> = Vec::new();
        // Rules (take/put to satisfy the borrow checker).
        let mut rules = std::mem::take(&mut self.rules);
        for rule in rules.iter_mut() {
            for (i, neighbors) in lists.iter().enumerate() {
                rule(i, &mut self.agents, neighbors, &mut self.rng, &mut births);
            }
        }
        self.rules = rules;
        // Naive mechanics: repulsion with the same force law as the engine.
        if self.mechanics {
            let mut displacements = vec![Real3::ZERO; self.agents.len()];
            for (i, a) in self.agents.iter().enumerate() {
                let (r1, p1) = (a.diameter / 2.0, a.position);
                let mut f = Real3::ZERO;
                for &j in &lists[i] {
                    let b = &self.agents[j as usize];
                    let delta = p1 - b.position;
                    let dist = delta.norm();
                    let overlap = r1 + b.diameter / 2.0 - dist;
                    if overlap > 0.0 && dist > 1e-12 {
                        let r_eff = r1 * (b.diameter / 2.0) / (r1 + b.diameter / 2.0);
                        let mag = 2.0 * overlap - (r_eff * overlap).sqrt();
                        f += delta * (mag / dist);
                    }
                }
                displacements[i] = f * dt;
            }
            for (a, d) in self.agents.iter_mut().zip(&displacements) {
                let n = d.norm();
                let capped = if n > 3.0 { *d * (3.0 / n) } else { *d };
                a.position += capped;
            }
        }
        for g in &mut self.diffusion {
            g.step(dt);
        }
        // Deaths then births, serially.
        self.agents.retain(|a| a.alive);
        for b in births {
            self.agents.push(Box::new(b));
        }
    }

    /// Runs `n` iterations.
    pub fn simulate(&mut self, n: usize, dt: f64) {
        for _ in 0..n {
            self.step(dt);
        }
    }

    /// Approximate heap usage of the engine's own structures (the agents and
    /// one iteration's neighbor lists).
    pub fn approx_heap_bytes(&self) -> usize {
        let agent = std::mem::size_of::<BaselineAgent>() + std::mem::size_of::<usize>();
        self.agents.len() * agent
            + self
                .diffusion
                .iter()
                .map(|d| d.values.len() * 8)
                .sum::<usize>()
    }
}

/// Pre-built baseline model: growing/dividing cells (cell proliferation).
pub fn proliferation(seed: u64, n: usize) -> BaselineEngine {
    let mut e = BaselineEngine::new(seed, 14.0);
    let per_dim = (n as f64).cbrt().floor().max(1.0) as usize;
    let mut placed = 0;
    for x in 0..per_dim {
        for y in 0..per_dim {
            for z in 0..per_dim {
                if placed >= n {
                    break;
                }
                e.add_agent(BaselineAgent::new(
                    Real3::new(x as f64 * 20.0, y as f64 * 20.0, z as f64 * 20.0),
                    10.0,
                    0,
                ));
                placed += 1;
            }
        }
    }
    e.add_rule(Box::new(|i, agents, _nb, rng, births| {
        let a = &mut agents[i];
        if a.diameter < 14.0 {
            let r = a.diameter / 2.0;
            let v = 4.0 / 3.0 * std::f64::consts::PI * r * r * r + 100.0;
            a.diameter = 2.0 * (3.0 * v / (4.0 * std::f64::consts::PI)).cbrt();
        } else {
            let dir = rng.unit_vector();
            let r = a.diameter / 2.0;
            let v = 4.0 / 3.0 * std::f64::consts::PI * r * r * r / 2.0;
            a.diameter = 2.0 * (3.0 * v / (4.0 * std::f64::consts::PI)).cbrt();
            let pos = a.position + dir * (a.diameter / 2.0);
            let d = a.diameter;
            births.push(BaselineAgent::new(pos, d, 0));
        }
    }));
    e
}

/// Pre-built baseline model: SIR epidemiology with random walkers.
pub fn epidemiology(seed: u64, n: usize) -> BaselineEngine {
    let extent = (n as f64).cbrt() * 12.0;
    let mut e = BaselineEngine::new(seed, 8.0);
    e.mechanics = false;
    let mut rng = SimRng::new(seed ^ 0xbeef);
    for i in 0..n {
        let state = if i < n / 20 { 1 } else { 0 };
        let mut a = BaselineAgent::new(rng.point_in_cube(0.0, extent), 2.0, state);
        a.aux = 0.0;
        e.add_agent(a);
    }
    e.add_rule(Box::new(move |i, agents, nb, rng, _births| {
        // Random walk.
        let dir = rng.unit_vector();
        let p = (agents[i].position + dir * 6.0).clamp_scalar(0.0, extent);
        agents[i].position = p;
        // Infection dynamics.
        match agents[i].state {
            0 => {
                let infected_near = nb.iter().any(|&j| agents[j as usize].state == 1);
                if infected_near && rng.chance(0.3) {
                    agents[i].state = 1;
                    agents[i].aux = 0.0;
                }
            }
            1 => {
                agents[i].aux += 1.0;
                if agents[i].aux >= 30.0 {
                    agents[i].state = 2;
                }
            }
            _ => {}
        }
    }));
    e
}

/// Pre-built baseline model: two-type chemotactic clustering.
pub fn clustering(seed: u64, n: usize) -> BaselineEngine {
    let extent = (n as f64).cbrt() * 15.0;
    let res = ((27.0 * n as f64).cbrt().ceil() as usize).clamp(8, 64);
    let mut e = BaselineEngine::new(seed, 10.0);
    e.diffusion
        .push(BaselineDiffusion::new(res, Real3::ZERO, extent, 0.4));
    e.diffusion
        .push(BaselineDiffusion::new(res, Real3::ZERO, extent, 0.4));
    let mut rng = SimRng::new(seed ^ 0xc1);
    for i in 0..n {
        e.add_agent(BaselineAgent::new(
            rng.point_in_cube(0.0, extent),
            10.0,
            (i % 2) as u64,
        ));
    }
    e.add_rule(Box::new(|i, agents, _nb, _rng, _births| {
        let ty = agents[i].state;
        let pos = agents[i].position;
        let _ = (ty, pos); // secretion + chemotaxis handled below via engine
                           // state; this rule is a placeholder for per-agent work (position
                           // jitter keeps the workload comparable).
        agents[i].aux += 1.0;
    }));
    e
}

/// Pre-built baseline model: differential-adhesion cell sorting.
pub fn cell_sorting(seed: u64, n: usize) -> BaselineEngine {
    let extent = (n as f64).cbrt() * 12.0;
    let mut e = BaselineEngine::new(seed, 15.0);
    let mut rng = SimRng::new(seed ^ 0x50);
    for i in 0..n {
        e.add_agent(BaselineAgent::new(
            rng.point_in_cube(0.0, extent),
            10.0,
            (i % 2) as u64,
        ));
    }
    e.add_rule(Box::new(|i, agents, nb, _rng, _births| {
        let my_type = agents[i].state;
        let pos = agents[i].position;
        let mut sum = Real3::ZERO;
        let mut count = 0u32;
        for &j in nb {
            let b = &agents[j as usize];
            if b.state == my_type {
                sum += b.position;
                count += 1;
            }
        }
        if count > 0 {
            let dir = (sum / count as f64 - pos).normalized();
            agents[i].position = pos + dir * 2.0;
        }
    }));
    e
}

/// Pre-built baseline model: branching neurite growth (the Cortex3D-style
/// workload). Somas sit on a 2-D grid; growth-cone agents climb in +z,
/// depositing an immobile trail sphere every step and bifurcating with a
/// small probability. The deposited arbor never moves — the workload has the
/// same "active growth front over a static region" shape as the engine's
/// neuroscience model (paper Sections 5 and 6.1).
pub fn neurite_growth(seed: u64, n_initial: usize) -> BaselineEngine {
    const CONE: u64 = 2;
    const TRAIL: u64 = 1;
    let n_neurons = (n_initial / 3).max(1);
    let dim = (n_neurons as f64).sqrt().ceil().max(1.0) as usize;
    let mut e = BaselineEngine::new(seed, 12.0);
    e.mechanics = true;
    let mut placed = 0;
    'outer: for gx in 0..dim {
        for gy in 0..dim {
            if placed >= n_neurons {
                break 'outer;
            }
            let pos = Real3::new(gx as f64 * 30.0 + 15.0, gy as f64 * 30.0 + 15.0, 10.0);
            // Soma plus two initial growth cones, mirroring the engine model.
            e.add_agent(BaselineAgent::new(pos, 10.0, 0));
            for _ in 0..2 {
                let mut cone = BaselineAgent::new(pos + Real3::new(0.0, 0.0, 6.0), 2.0, CONE);
                cone.aux = 0.0; // branch order
                e.add_agent(cone);
            }
            placed += 1;
        }
    }
    e.add_rule(Box::new(move |i, agents, _nb, rng, births| {
        if agents[i].state != CONE {
            return;
        }
        // Climb in +z with lateral jitter, deposit a trail sphere behind.
        let jitter = rng.unit_vector() * 0.6;
        let dir = (Real3::new(jitter.x(), jitter.y(), 1.0)).normalized();
        let old = agents[i].position;
        agents[i].position = old + dir * 2.0;
        births.push(BaselineAgent::new(old, 2.0, TRAIL));
        // Occasional bifurcation up to branch order 4.
        if agents[i].aux < 4.0 && rng.chance(0.03) {
            let mut twin = agents[i].clone();
            twin.aux += 1.0;
            agents[i].aux += 1.0;
            births.push(*twin);
        }
    }));
    e
}

/// Pre-built baseline model: tumor spheroid with proliferation and apoptosis
/// (the only baseline workload that deletes agents, mirroring the engine's
/// oncology model).
pub fn oncology(seed: u64, n: usize) -> BaselineEngine {
    let r = (n as f64).cbrt() * 6.0;
    let center = Real3::splat(r * 1.5);
    let mut e = BaselineEngine::new(seed, 15.0);
    let mut rng = SimRng::new(seed ^ 0x0c0);
    for _ in 0..n {
        let dir = rng.unit_vector();
        let dist = r * rng.uniform().cbrt();
        e.add_agent(BaselineAgent::new(
            center + dir * dist,
            9.0 + rng.uniform_in(0.0, 2.0),
            0,
        ));
    }
    e.add_rule(Box::new(|i, agents, nb, rng, births| {
        if rng.chance(0.002) {
            agents[i].alive = false;
            return;
        }
        if nb.len() <= 12 {
            let a = &mut agents[i];
            if a.diameter < 14.0 {
                let rr = a.diameter / 2.0;
                let v = 4.0 / 3.0 * std::f64::consts::PI * rr * rr * rr + 40.0;
                a.diameter = 2.0 * (3.0 * v / (4.0 * std::f64::consts::PI)).cbrt();
            } else {
                let dir = rng.unit_vector();
                let rr = a.diameter / 2.0;
                let v = 4.0 / 3.0 * std::f64::consts::PI * rr * rr * rr / 2.0;
                a.diameter = 2.0 * (3.0 * v / (4.0 * std::f64::consts::PI)).cbrt();
                let pos = a.position + dir * (a.diameter / 2.0);
                let d = a.diameter;
                births.push(BaselineAgent::new(pos, d, 0));
            }
        }
    }));
    e
}

/// Builds the baseline engine matching a benchmark-model name, at the given
/// scale. Returns `None` for names without a baseline counterpart.
pub fn engine_by_name(name: &str, seed: u64, n: usize) -> Option<BaselineEngine> {
    Some(match name {
        "cell_proliferation" => proliferation(seed, n),
        "cell_clustering" => clustering(seed, n),
        "epidemiology" => epidemiology(seed, n),
        "neuroscience" => neurite_growth(seed, n),
        "oncology" => oncology(seed, n),
        "cell_sorting" => cell_sorting(seed, n),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proliferation_grows() {
        let mut e = proliferation(1, 27);
        assert_eq!(e.num_agents(), 27);
        e.simulate(30, 1.0);
        assert!(e.num_agents() > 27, "{}", e.num_agents());
    }

    #[test]
    fn epidemiology_spreads() {
        let mut e = epidemiology(2, 300);
        let infected0 = e.agents.iter().filter(|a| a.state == 1).count();
        e.simulate(50, 1.0);
        let touched = e.agents.iter().filter(|a| a.state != 0).count();
        assert!(touched > infected0, "{touched} > {infected0}");
        assert_eq!(e.num_agents(), 300);
    }

    #[test]
    fn cell_sorting_sorts() {
        let mut e = cell_sorting(3, 200);
        let frac = |e: &BaselineEngine| {
            let lists = e.build_neighbor_lists();
            let mut num = 0.0;
            let mut den = 0.0;
            for (i, l) in lists.iter().enumerate() {
                for &j in l {
                    den += 1.0;
                    if e.agents[j as usize].state == e.agents[i].state {
                        num += 1.0;
                    }
                }
            }
            if den == 0.0 {
                0.0
            } else {
                num / den
            }
        };
        let before = frac(&e);
        e.simulate(60, 1.0);
        let after = frac(&e);
        assert!(after > before, "sorting: {before:.3} -> {after:.3}");
    }

    #[test]
    fn neighbor_lists_match_brute_force() {
        let mut e = BaselineEngine::new(7, 5.0);
        let mut rng = SimRng::new(9);
        for _ in 0..100 {
            e.add_agent(BaselineAgent::new(rng.point_in_cube(0.0, 30.0), 2.0, 0));
        }
        let lists = e.build_neighbor_lists();
        for (i, list) in lists.iter().enumerate() {
            let mut expected: Vec<u32> = (0..e.num_agents() as u32)
                .filter(|&j| {
                    j as usize != i
                        && e.agents[i]
                            .position
                            .distance_sq(&e.agents[j as usize].position)
                            <= 25.0
                })
                .collect();
            expected.sort_unstable();
            let mut got = list.clone();
            got.sort_unstable();
            assert_eq!(got, expected, "agent {i}");
        }
    }

    #[test]
    fn deaths_are_applied() {
        let mut e = BaselineEngine::new(1, 5.0);
        for i in 0..10 {
            e.add_agent(BaselineAgent::new(Real3::splat(i as f64 * 10.0), 2.0, 0));
        }
        e.add_rule(Box::new(|i, agents, _nb, _rng, _b| {
            if i % 2 == 0 {
                agents[i].alive = false;
            }
        }));
        e.step(1.0);
        assert_eq!(e.num_agents(), 5);
    }

    #[test]
    fn diffusion_conserves_interior_mass() {
        let mut d = BaselineDiffusion::new(8, Real3::ZERO, 8.0, 0.2);
        let idx = d.index(Real3::splat(4.0));
        d.values[idx] = 10.0;
        for _ in 0..20 {
            d.step(0.1);
        }
        let total: f64 = d.values.iter().sum();
        assert!((total - 10.0).abs() < 1e-9, "{total}");
        let g = d.gradient(Real3::new(2.0, 4.0, 4.0));
        assert!(g.x() > 0.0);
    }

    #[test]
    fn empty_engine_steps() {
        let mut e = BaselineEngine::new(1, 5.0);
        e.simulate(3, 1.0);
        assert_eq!(e.num_agents(), 0);
    }

    #[test]
    fn neurite_growth_extends_and_is_mostly_static() {
        let mut e = neurite_growth(5, 12);
        let initial = e.num_agents();
        e.simulate(25, 1.0);
        assert!(
            e.num_agents() > initial * 2,
            "{} > {}",
            e.num_agents(),
            initial
        );
        // Trail spheres outnumber cones: the arbor is mostly static.
        let trails = e.agents.iter().filter(|a| a.state == 1).count();
        let cones = e.agents.iter().filter(|a| a.state == 2).count();
        assert!(trails > cones, "trails {trails} vs cones {cones}");
        // Cones climbed the +z direction.
        let max_z = e
            .agents
            .iter()
            .map(|a| a.position.z())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_z > 20.0, "max z {max_z}");
    }

    #[test]
    fn oncology_has_turnover() {
        let mut e = oncology(6, 150);
        e.simulate(30, 1.0);
        assert!(e.num_agents() > 0);
        // Stochastic deaths happen at p=0.002 over 150 agents × 30 steps;
        // population still trends upward because of division.
        assert!(e.num_agents() > 120, "{}", e.num_agents());
    }

    #[test]
    fn engine_registry_covers_all_models() {
        for name in [
            "cell_proliferation",
            "cell_clustering",
            "epidemiology",
            "neuroscience",
            "oncology",
            "cell_sorting",
        ] {
            let e = engine_by_name(name, 1, 30).unwrap_or_else(|| panic!("{name}"));
            assert!(e.num_agents() > 0, "{name}");
        }
        assert!(engine_by_name("nope", 1, 10).is_none());
    }
}
