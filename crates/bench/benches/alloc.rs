//! Criterion microbench: the pool memory allocator (paper Section 4.3,
//! Figure 13's microscopic counterpart) against the system allocator, plus
//! the `mem_mgr_growth_rate` ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bdm_alloc::{MemoryManager, PoolBox, PoolConfig};

/// Agent-sized payload (a `Cell` is ~120 bytes).
struct Payload {
    _data: [u64; 16],
}

impl Payload {
    fn new(v: u64) -> Payload {
        Payload { _data: [v; 16] }
    }
}

fn bench_alloc_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_free_cycle");
    let n = 4_096;
    let pool_mm = MemoryManager::new(1, 1, PoolConfig::default());
    bdm_alloc::register_thread(0, 0);
    group.bench_function("pool", |b| {
        b.iter(|| {
            let boxes: Vec<PoolBox<Payload>> = (0..n)
                .map(|i| PoolBox::new_in(Payload::new(i), &pool_mm, 0))
                .collect();
            black_box(&boxes);
        })
    });
    group.bench_function("system", |b| {
        b.iter(|| {
            let boxes: Vec<Box<Payload>> = (0..n).map(|i| Box::new(Payload::new(i))).collect();
            black_box(&boxes);
        })
    });
    // LIFO reuse: the pool's thread-private free list should make
    // free-then-alloc cycles cheap (constant-time, cache-warm).
    group.bench_function("pool_churn", |b| {
        b.iter(|| {
            for i in 0..n {
                let p = PoolBox::new_in(Payload::new(i), &pool_mm, 0);
                black_box(&p);
            }
        })
    });
    group.bench_function("system_churn", |b| {
        b.iter(|| {
            for i in 0..n {
                let p = Box::new(Payload::new(i));
                black_box(&p);
            }
        })
    });
    group.finish();
    bdm_alloc::unregister_thread();
}

fn bench_growth_rate(c: &mut Criterion) {
    // Ablation of `mem_mgr_growth_rate`: slower growth means more block
    // allocations while the population ramps up; faster growth reserves
    // more memory up front.
    let mut group = c.benchmark_group("growth_rate_ramp");
    group.sample_size(10);
    let n = 50_000;
    for &rate in &[1.25f64, 2.0, 4.0] {
        group.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, &rate| {
            b.iter(|| {
                let mm = MemoryManager::new(
                    1,
                    1,
                    PoolConfig {
                        growth_rate: rate,
                        ..PoolConfig::default()
                    },
                );
                let boxes: Vec<PoolBox<Payload>> = (0..n)
                    .map(|i| PoolBox::new_in(Payload::new(i), &mm, 0))
                    .collect();
                black_box(&boxes);
                drop(boxes);
                black_box(mm.stats().reserved_bytes)
            })
        });
    }
    group.finish();
}

fn bench_size_classes(c: &mut Criterion) {
    // Mixed-size allocation exercises the per-size-class allocator lookup
    // (agents and behaviors have distinct sizes and live in distinct pools).
    let mm = MemoryManager::new(1, 1, PoolConfig::default());
    bdm_alloc::register_thread(0, 0);
    c.bench_function("alloc_mixed_size_classes", |b| {
        b.iter(|| {
            let small: Vec<PoolBox<[u64; 4]>> =
                (0..512).map(|i| PoolBox::new_in([i; 4], &mm, 0)).collect();
            let medium: Vec<PoolBox<[u64; 16]>> =
                (0..512).map(|i| PoolBox::new_in([i; 16], &mm, 0)).collect();
            let large: Vec<PoolBox<[u64; 64]>> =
                (0..512).map(|i| PoolBox::new_in([i; 64], &mm, 0)).collect();
            black_box((&small, &medium, &large));
        })
    });
    bdm_alloc::unregister_thread();
}

criterion_group!(
    benches,
    bench_alloc_free,
    bench_growth_rate,
    bench_size_classes
);
criterion_main!(benches);
