//! Criterion microbench: end-to-end engine iterations — diffusion solver
//! steps and single-iteration cost per benchmark model (the microscopic
//! counterpart of Figure 5's breakdown and Figure 6's flat region).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use bdm_core::{OptLevel, Param, Real3};
use bdm_diffusion::DiffusionGrid;
use bdm_models::{all_models, model_by_name};

fn bench_diffusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("diffusion_step");
    group.sample_size(20);
    for &res in &[16usize, 32, 64] {
        let mut grid = DiffusionGrid::new("s", 0.4, 0.01, res, Real3::ZERO, 100.0);
        grid.increase_concentration(Real3::splat(50.0), 1000.0);
        let dt = grid.max_stable_dt() * 0.5;
        group.bench_with_input(BenchmarkId::from_parameter(res), &res, |b, _| {
            b.iter(|| {
                grid.step(black_box(dt));
            })
        });
    }
    group.finish();
}

fn bench_model_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_iteration_2k");
    group.sample_size(10);
    for model in all_models(2_000) {
        let param = Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        }
        .apply_opt_level(OptLevel::StaticDetection);
        group.bench_function(model.name(), |b| {
            b.iter_batched(
                || {
                    let mut sim = model.build(param.clone());
                    sim.simulate(2); // warm up indexes and pools
                    sim
                },
                |mut sim| {
                    sim.simulate(1);
                    black_box(sim.num_agents())
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_standard_vs_optimized(c: &mut Criterion) {
    // The headline contrast at microbench scale: one oncology iteration
    // under the standard vs the fully optimized configuration.
    let mut group = c.benchmark_group("oncology_iteration_by_preset");
    group.sample_size(10);
    let model = model_by_name("oncology", 2_000).expect("model");
    for (label, level) in [
        ("standard", OptLevel::Standard),
        ("optimized", OptLevel::StaticDetection),
    ] {
        let param = Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        }
        .apply_opt_level(level);
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut sim = model.build(param.clone());
                    sim.simulate(2);
                    sim
                },
                |mut sim| {
                    sim.simulate(1);
                    black_box(sim.num_agents())
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_diffusion,
    bench_model_iteration,
    bench_standard_vs_optimized
);
criterion_main!(benches);
