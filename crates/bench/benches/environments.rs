//! Criterion microbench: neighbor-search environment build and search
//! stages in isolation (the microscopic view of Figure 11b/11c).
//!
//! The paper's claim: the uniform grid's timestamped O(#agents) build beats
//! the serial kd-tree/octree builds by orders of magnitude, and its 3×3×3
//! box walk also wins the search stage for agent-sized radii.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bdm_env::{
    Environment, KdTreeEnvironment, NeighborQueryScratch, OctreeEnvironment, SliceCloud,
    UniformGridEnvironment,
};
use bdm_util::{Real3, SimRng};

fn cloud(n: usize, seed: u64) -> Vec<Real3> {
    let mut rng = SimRng::new(seed);
    let extent = (n as f64).cbrt() * 15.0; // density comparable to the models
    (0..n).map(|_| rng.point_in_cube(0.0, extent)).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("env_build");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        let points = cloud(n, 7);
        let slice = SliceCloud(&points);
        let radius = 12.0;
        let mut grid = UniformGridEnvironment::new();
        group.bench_with_input(BenchmarkId::new("uniform_grid", n), &n, |b, _| {
            b.iter(|| grid.update(black_box(&slice), radius))
        });
        let mut kd = KdTreeEnvironment::new();
        group.bench_with_input(BenchmarkId::new("kd_tree", n), &n, |b, _| {
            b.iter(|| kd.update(black_box(&slice), radius))
        });
        let mut oct = OctreeEnvironment::new();
        group.bench_with_input(BenchmarkId::new("octree", n), &n, |b, _| {
            b.iter(|| oct.update(black_box(&slice), radius))
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("env_search");
    group.sample_size(20);
    let n = 10_000;
    let points = cloud(n, 11);
    let slice = SliceCloud(&points);
    let radius = 12.0;
    let envs: Vec<(&str, Box<dyn Environment>)> = vec![
        ("uniform_grid", Box::new(UniformGridEnvironment::new())),
        ("kd_tree", Box::new(KdTreeEnvironment::new())),
        ("octree", Box::new(OctreeEnvironment::new())),
    ];
    let mut scratch = NeighborQueryScratch::new();
    for (name, mut env) in envs {
        env.update(&slice, radius);
        group.bench_function(BenchmarkId::new(name, n), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for (i, &p) in points.iter().enumerate().step_by(17) {
                    env.for_each_neighbor(
                        &slice,
                        p,
                        Some(i),
                        radius,
                        &mut scratch,
                        &mut |j, _p, _d2| acc = acc.wrapping_add(j),
                    );
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_sparse_rebuild(c: &mut Criterion) {
    // The timestamped boxes (Section 3.1) make build time independent of the
    // number of *boxes*: a sparse population in a huge space must rebuild as
    // fast as a dense one (O(#agents), not O(#agents + #boxes)).
    let mut group = c.benchmark_group("grid_sparse_rebuild");
    group.sample_size(20);
    let n = 2_000;
    for &spread in &[15.0f64, 500.0] {
        let mut rng = SimRng::new(3);
        let extent = (n as f64).cbrt() * spread;
        let points: Vec<Real3> = (0..n).map(|_| rng.point_in_cube(0.0, extent)).collect();
        let slice = SliceCloud(&points);
        let mut grid = UniformGridEnvironment::new();
        group.bench_with_input(
            BenchmarkId::new("spread", format!("{spread}")),
            &spread,
            |b, _| b.iter(|| grid.update(black_box(&slice), 12.0)),
        );
    }
    group.finish();
}

fn bench_tree_parameters(c: &mut Criterion) {
    // Section 6.9's parameter validation: the paper checked that its octree
    // bucket size and kd-tree depth/leaf parameter sit within 4.20% of the
    // optimum. Sweep both and report build+search per configuration.
    let n = 10_000;
    let points = cloud(n, 13);
    let slice = SliceCloud(&points);
    let radius = 12.0;
    let mut group = c.benchmark_group("tree_parameters");
    group.sample_size(10);
    for &bucket in &[8usize, 16, 32, 64, 128] {
        group.bench_with_input(
            BenchmarkId::new("octree_bucket", bucket),
            &bucket,
            |b, &bucket| {
                let mut env = OctreeEnvironment::with_bucket_size(bucket);
                let mut scratch = NeighborQueryScratch::new();
                b.iter(|| {
                    env.update(black_box(&slice), radius);
                    let mut acc = 0usize;
                    for (i, &p) in points.iter().enumerate().step_by(29) {
                        env.for_each_neighbor(
                            &slice,
                            p,
                            Some(i),
                            radius,
                            &mut scratch,
                            &mut |j, _, _| acc = acc.wrapping_add(j),
                        );
                    }
                    black_box(acc)
                })
            },
        );
    }
    for &leaf in &[8usize, 16, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::new("kd_leaf", leaf), &leaf, |b, &leaf| {
            let mut env = KdTreeEnvironment::with_leaf_size(leaf);
            let mut scratch = NeighborQueryScratch::new();
            b.iter(|| {
                env.update(black_box(&slice), radius);
                let mut acc = 0usize;
                for (i, &p) in points.iter().enumerate().step_by(29) {
                    env.for_each_neighbor(
                        &slice,
                        p,
                        Some(i),
                        radius,
                        &mut scratch,
                        &mut |j, _, _| acc = acc.wrapping_add(j),
                    );
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_search,
    bench_sparse_rebuild,
    bench_tree_parameters
);
criterion_main!(benches);
