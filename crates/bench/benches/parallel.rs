//! Criterion microbench: the NUMA-aware thread pool (paper Section 4.1) —
//! domain-matched scheduling vs a flat parallel loop, work-stealing under
//! imbalance, and the parallel prefix sum used by agent sorting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use bdm_numa::{NumaThreadPool, NumaTopology};
use bdm_util::{inclusive_prefix_sum_parallel, prefix_sum_inclusive};

fn busy_work(iters: u64) -> u64 {
    let mut x = iters.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for _ in 0..iters {
        x ^= x >> 12;
        x = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
    }
    x
}

fn bench_scheduling(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let domains = 2.min(threads);
    let pool = NumaThreadPool::new(NumaTopology::new(domains, threads));
    let sizes = vec![40_000usize / domains; domains];
    let total: usize = sizes.iter().sum();
    let mut group = c.benchmark_group("pool_scheduling");
    group.sample_size(20);
    group.bench_function("numa_for_balanced", |b| {
        b.iter(|| {
            let acc = AtomicU64::new(0);
            pool.numa_for(&sizes, 1_000, &|_w, _domain, range| {
                let mut local = 0u64;
                for i in range {
                    local = local.wrapping_add(busy_work(i as u64 % 32));
                }
                acc.fetch_add(local, Ordering::Relaxed);
            });
            black_box(acc.into_inner())
        })
    });
    group.bench_function("parallel_for_flat", |b| {
        b.iter(|| {
            let acc = AtomicU64::new(0);
            pool.parallel_for(total, 1_000, &|_w, range| {
                let mut local = 0u64;
                for i in range {
                    local = local.wrapping_add(busy_work(i as u64 % 32));
                }
                acc.fetch_add(local, Ordering::Relaxed);
            });
            black_box(acc.into_inner())
        })
    });
    // Pathological imbalance: all agents in one domain. The two-level
    // work-stealing (Figure 2, arrows 4/5) keeps the other domain's threads
    // busy instead of idle.
    let skewed = {
        let mut s = vec![0usize; domains];
        s[0] = total;
        s
    };
    group.bench_function("numa_for_skewed_steal", |b| {
        b.iter(|| {
            let acc = AtomicU64::new(0);
            pool.numa_for(&skewed, 1_000, &|_w, _domain, range| {
                let mut local = 0u64;
                for i in range {
                    local = local.wrapping_add(busy_work(i as u64 % 32));
                }
                acc.fetch_add(local, Ordering::Relaxed);
            });
            black_box(acc.into_inner())
        })
    });
    group.finish();
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    // Fixed engine overhead per iteration at tiny populations — the flat
    // region of Figure 6 (1.21 ms at 10³ agents in the paper).
    let pool = NumaThreadPool::new(NumaTopology::new(1, 2));
    c.bench_function("pool_dispatch_empty", |b| {
        b.iter(|| {
            pool.parallel_for(0, 1_000, &|_w, _range| {});
        })
    });
    c.bench_function("pool_dispatch_1k_noop", |b| {
        b.iter(|| {
            pool.parallel_for(1_000, 100, &|_w, range| {
                black_box(range.len());
            });
        })
    });
}

fn bench_prefix_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_sum");
    for &n in &[10_000usize, 1_000_000] {
        let base: Vec<usize> = (0..n).map(|i| i % 7).collect();
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| {
                let mut v = base.clone();
                black_box(prefix_sum_inclusive(&mut v))
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| {
                let mut v = base.clone();
                black_box(inclusive_prefix_sum_parallel(&mut v))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scheduling,
    bench_dispatch_overhead,
    bench_prefix_sum
);
criterion_main!(benches);
