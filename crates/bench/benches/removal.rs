//! Criterion microbench: the parallel agent-removal algorithm of paper
//! Section 3.2 (Figure 1) against the serial swap-and-shrink commit, plus
//! the parallel-addition path.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use bdm_core::{new_agent_box, AgentHandle, Cell, ExecutionContext, ResourceManager};
use bdm_core::{MemoryManager, NumaThreadPool, NumaTopology, PoolConfig, Real3};

const THREADS: usize = 2;
const DOMAINS: usize = 2;

struct Fixture {
    mm: MemoryManager,
    pool: NumaThreadPool,
}

impl Fixture {
    fn new() -> Fixture {
        Fixture {
            mm: MemoryManager::new(DOMAINS, THREADS, PoolConfig::default()),
            pool: NumaThreadPool::new(NumaTopology::new(DOMAINS, THREADS)),
        }
    }

    fn filled(&self, n: usize) -> (ResourceManager, Vec<AgentHandle>) {
        let mut rm = ResourceManager::new(DOMAINS);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let cell =
                Cell::new(bdm_core::AgentUid(i as u64 + 1)).with_position(Real3::splat(i as f64));
            let handle = rm.push(i % DOMAINS, new_agent_box(cell, &self.mm, i % DOMAINS), 0);
            handles.push(handle);
        }
        (rm, handles)
    }
}

fn bench_removal(c: &mut Criterion) {
    let fixture = Fixture::new();
    let n = 20_000;
    let mut group = c.benchmark_group("agent_removal");
    group.sample_size(10);
    for &(label, parallel) in &[("serial", false), ("parallel", true)] {
        for &fraction in &[0.1f64, 0.5] {
            let remove = (n as f64 * fraction) as usize;
            group.bench_with_input(
                BenchmarkId::new(label, format!("{:.0}%", fraction * 100.0)),
                &parallel,
                |b, &parallel| {
                    b.iter_batched(
                        || {
                            let (rm, handles) = fixture.filled(n);
                            let mut ctxs: Vec<ExecutionContext> = (0..THREADS)
                                .map(|_| ExecutionContext::new(DOMAINS))
                                .collect();
                            // Spread removals across the thread contexts the
                            // way the agent-op phase would.
                            for (k, handle) in handles.iter().step_by(n / remove).enumerate() {
                                ctxs[k % THREADS].queue_removal(*handle);
                            }
                            (rm, ctxs)
                        },
                        |(mut rm, mut ctxs)| {
                            let stats = rm.commit(&mut ctxs, &fixture.pool, parallel, 1);
                            black_box((rm, stats))
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_addition(c: &mut Criterion) {
    let fixture = Fixture::new();
    let n = 10_000;
    let added = 5_000;
    let mut group = c.benchmark_group("agent_addition");
    group.sample_size(10);
    for &(label, parallel) in &[("serial", false), ("parallel", true)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let (rm, _) = fixture.filled(n);
                    let mut ctxs: Vec<ExecutionContext> = (0..THREADS)
                        .map(|_| ExecutionContext::new(DOMAINS))
                        .collect();
                    for i in 0..added {
                        let cell = Cell::new(bdm_core::AgentUid(1_000_000 + i as u64));
                        ctxs[i % THREADS].queue_new_agent(
                            i % DOMAINS,
                            new_agent_box(cell, &fixture.mm, i % DOMAINS),
                        );
                    }
                    (rm, ctxs)
                },
                |(mut rm, mut ctxs)| {
                    let stats = rm.commit(&mut ctxs, &fixture.pool, parallel, 1);
                    black_box((rm, stats))
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_removal, bench_addition);
criterion_main!(benches);
