//! Criterion microbench: space-filling-curve codecs and the gap-offset
//! enumeration (paper Section 4.2, Figure 3 D/E).
//!
//! Includes the **Morton-vs-Hilbert ablation** behind the paper's design
//! decision: "higher costs to decode the Hilbert curve offset small gains
//! … we use the Morton order because it results in simpler code."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bdm_sfc::{hilbert3_decode, hilbert3_encode, morton3_decode, morton3_encode, GapOffsets};

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfc_codec");
    let coords: Vec<(u32, u32, u32)> = (0..1024u32)
        .map(|i| {
            (
                i.wrapping_mul(7) % 1024,
                i.wrapping_mul(13) % 1024,
                i.wrapping_mul(29) % 1024,
            )
        })
        .collect();
    group.bench_function("morton3_encode_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y, z) in &coords {
                acc = acc.wrapping_add(morton3_encode(black_box(x), y, z));
            }
            black_box(acc)
        })
    });
    group.bench_function("hilbert3_encode_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y, z) in &coords {
                acc = acc.wrapping_add(hilbert3_encode(black_box(x), y, z, 10));
            }
            black_box(acc)
        })
    });
    let codes: Vec<u64> = coords
        .iter()
        .map(|&(x, y, z)| morton3_encode(x, y, z))
        .collect();
    group.bench_function("morton3_decode_1024", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &code in &codes {
                let (x, y, z) = morton3_decode(black_box(code));
                acc = acc.wrapping_add(x ^ y ^ z);
            }
            black_box(acc)
        })
    });
    let hcodes: Vec<u64> = coords
        .iter()
        .map(|&(x, y, z)| hilbert3_encode(x, y, z, 10))
        .collect();
    group.bench_function("hilbert3_decode_1024", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &code in &hcodes {
                let (x, y, z) = hilbert3_decode(black_box(code), 10);
                acc = acc.wrapping_add(x ^ y ^ z);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_gap_offsets(c: &mut Criterion) {
    // The linear-time gap enumeration vs. the naive "scan every code of the
    // padded power-of-two cube and reject out-of-domain ones" approach it
    // replaces (the paper's motivation for the quadtree DFS).
    let mut group = c.benchmark_group("gap_offsets");
    group.sample_size(20);
    for &(nx, ny, nz) in &[(48u32, 48u32, 48u32), (100, 60, 30), (127, 127, 127)] {
        let label = format!("{nx}x{ny}x{nz}");
        group.bench_with_input(BenchmarkId::new("dfs", &label), &(nx, ny, nz), |b, _| {
            b.iter(|| black_box(GapOffsets::compute_3d(nx, ny, nz)))
        });
        group.bench_with_input(
            BenchmarkId::new("naive_scan", &label),
            &(nx, ny, nz),
            |b, _| {
                let side = nx.max(ny).max(nz).next_power_of_two() as u64;
                b.iter(|| {
                    // Enumerate in-domain boxes by scanning all side³ codes.
                    let mut in_domain = 0u64;
                    for code in 0..side * side * side {
                        let (x, y, z) = morton3_decode(code);
                        if x < nx && y < ny && z < nz {
                            in_domain += 1;
                        }
                    }
                    black_box(in_domain)
                })
            },
        );
    }
    group.finish();
}

fn bench_rank_lookup(c: &mut Criterion) {
    let offsets = GapOffsets::compute_3d(100, 60, 30);
    let n = offsets.num_boxes();
    c.bench_function("gap_rank_to_code_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for rank in (0..n).step_by(97) {
                acc = acc.wrapping_add(offsets.rank_to_code(black_box(rank)));
            }
            black_box(acc)
        })
    });
}

fn bench_curve_enumeration(c: &mut Criterion) {
    // The box-enumeration cost behind the engine's Morton-vs-Hilbert design
    // decision (Section 4.2): Morton enumerates a non-pow2 grid in linear
    // time via the gap-offset DFS; Hilbert needs an explicit O(B log B)
    // sort of all box codes.
    let mut group = c.benchmark_group("curve_enumeration");
    group.sample_size(20);
    for &(nx, ny, nz) in &[(32u32, 32u32, 32u32), (48, 48, 48)] {
        let label = format!("{nx}x{ny}x{nz}");
        group.bench_with_input(BenchmarkId::new("morton_gap_dfs", &label), &(), |b, _| {
            b.iter(|| {
                let gap = GapOffsets::compute_3d(nx, ny, nz);
                let flats: Vec<u64> = gap.iter_codes().collect();
                black_box(flats)
            })
        });
        group.bench_with_input(BenchmarkId::new("hilbert_sort", &label), &(), |b, _| {
            let bits = nx
                .max(ny)
                .max(nz)
                .next_power_of_two()
                .trailing_zeros()
                .max(1);
            b.iter(|| {
                let mut keyed: Vec<(u64, u64)> = Vec::with_capacity((nx * ny * nz) as usize);
                for z in 0..nz {
                    for y in 0..ny {
                        for x in 0..nx {
                            keyed.push((
                                hilbert3_encode(x, y, z, bits),
                                (x + nx * (y + ny * z)) as u64,
                            ));
                        }
                    }
                }
                keyed.sort_unstable_by_key(|&(code, _)| code);
                black_box(keyed)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_codecs,
    bench_gap_offsets,
    bench_rank_lookup,
    bench_curve_enumeration
);
criterion_main!(benches);
