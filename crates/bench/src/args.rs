//! Minimal command-line argument parsing for the benchmark binaries.
//!
//! Every `table*`/`fig*` binary accepts the same core flags; binaries ignore
//! flags that do not apply to them. No external CLI crate is used (the
//! workspace's dependency budget is spent on the engine, not the harness).

use std::collections::BTreeMap;
use std::path::PathBuf;

/// Parsed command-line flags shared by all benchmark binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// `--agents N` — agents per simulation (binary-specific default).
    pub agents: Option<usize>,
    /// `--iterations N` — iterations per measurement.
    pub iterations: Option<usize>,
    /// `--threads N` — worker threads (default: all available).
    pub threads: Option<usize>,
    /// `--domains N` — virtual NUMA domains (default: detect).
    pub domains: Option<usize>,
    /// `--shards K` — in-process shard count (sharded execution with halo
    /// exchange; default 1 = classic single-engine path).
    pub shards: Option<usize>,
    /// `--models a,b,c` — restrict to a subset of the five models.
    pub models: Option<Vec<String>>,
    /// `--csv` — additionally write `results/<binary>.csv`.
    pub csv: bool,
    /// `--out DIR` — output directory for CSV files (default `results`).
    pub out_dir: PathBuf,
    /// `--quick` — smallest sensible scales (used by `run_all` and CI).
    pub quick: bool,
    /// `--max-exp E` — largest power of ten in the Figure 6 sweep.
    pub max_exp: Option<u32>,
    /// `--max-agents N` — largest scale point of the Figure 6 sweep
    /// (overrides `--max-exp`; the sweep runs 10³, 10⁴, … and finishes at
    /// exactly `N`).
    pub max_agents: Option<usize>,
    /// `--phase-csv` — additionally write `<out>/fig06_phases.csv` with the
    /// scheduler's per-operation timings per scale point.
    pub phase_csv: bool,
    /// `--visualize` — dump a point cloud CSV (Figure 7a).
    pub visualize: bool,
    /// `--proxy` — include the micro-architecture proxy (Figure 5 right).
    pub proxy: bool,
    /// `--whole` — whole-simulation scalability only (Figure 10a).
    pub whole: bool,
    /// `--repeats N` — measurement repetitions (median is reported).
    pub repeats: usize,
    /// `--seed S` — base RNG seed.
    pub seed: u64,
    /// `--no-subprocess` — measure in-process (less isolation, easier
    /// debugging; memory numbers become cumulative).
    pub no_subprocess: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            agents: None,
            iterations: None,
            threads: None,
            domains: None,
            shards: None,
            models: None,
            csv: false,
            out_dir: PathBuf::from("results"),
            quick: false,
            max_exp: None,
            max_agents: None,
            phase_csv: false,
            visualize: false,
            proxy: false,
            whole: false,
            repeats: 1,
            seed: 4357,
            no_subprocess: false,
        }
    }
}

/// Usage text shared by all binaries.
pub const USAGE: &str = "\
Common flags:
  --agents N        agents per simulation (binary-specific default)
  --iterations N    iterations per measurement
  --threads N       worker threads (default: all available)
  --domains N       virtual NUMA domains (default: detect; see DESIGN.md)
  --shards K        in-process shard count (SFC partitioning + halo
                    exchange; default 1 = single engine)
  --models a,b,c    subset of: cell_proliferation, cell_clustering,
                    epidemiology, neuroscience, oncology, cell_sorting
  --repeats N       measurement repetitions, median reported (default 1)
  --seed S          base RNG seed (default 4357)
  --csv             also write results/<binary>.csv
  --out DIR         output directory for CSV files (default: results)
  --quick           smallest sensible scales (for run_all / CI)
  --max-exp E       largest 10^E of the Figure 6 sweep (default 5)
  --max-agents N    largest Figure 6 scale point (overrides --max-exp; the
                    sweep runs 10^3, 10^4, ... and finishes at exactly N)
  --phase-csv       also write fig06_phases.csv (per-operation timings per
                    scale point, from the scheduler)
  --visualize       dump the Figure 7a point cloud CSV
  --proxy           include the microarchitecture proxy (Figure 5 right)
  --whole           whole-simulation scalability only (Figure 10a)
  --no-subprocess   measure in-process instead of in a child process
  -h, --help        this message";

impl Args {
    /// Parses `std::env::args`, exiting with usage on `-h`/`--help` or on an
    /// unknown flag.
    pub fn parse() -> Args {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                if msg.is_empty() {
                    eprintln!("{USAGE}");
                    std::process::exit(0);
                }
                eprintln!("error: {msg}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list. `Err("")` signals a help request.
    pub fn try_parse(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = argv.into_iter().peekable();
        let mut values: BTreeMap<String, String> = BTreeMap::new();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "-h" | "--help" => return Err(String::new()),
                "--csv" => args.csv = true,
                "--quick" => args.quick = true,
                "--phase-csv" => args.phase_csv = true,
                "--visualize" => args.visualize = true,
                "--proxy" => args.proxy = true,
                "--whole" => args.whole = true,
                "--no-subprocess" => args.no_subprocess = true,
                flag if flag.starts_with("--") => {
                    let key = flag.trim_start_matches("--").to_string();
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("flag {flag} expects a value"))?;
                    values.insert(key, value);
                }
                other => return Err(format!("unexpected argument: {other}")),
            }
        }
        let parse_usize =
            |values: &BTreeMap<String, String>, key: &str| -> Result<Option<usize>, String> {
                values
                    .get(key)
                    .map(|v| {
                        v.parse::<usize>()
                            .map_err(|_| format!("--{key}: not a number: {v}"))
                    })
                    .transpose()
            };
        args.agents = parse_usize(&values, "agents")?;
        args.iterations = parse_usize(&values, "iterations")?;
        args.threads = parse_usize(&values, "threads")?;
        args.domains = parse_usize(&values, "domains")?;
        args.shards = parse_usize(&values, "shards")?;
        if let Some(r) = parse_usize(&values, "repeats")? {
            args.repeats = r.max(1);
        }
        if let Some(v) = values.get("seed") {
            args.seed = v
                .parse()
                .map_err(|_| format!("--seed: not a number: {v}"))?;
        }
        if let Some(v) = values.get("max-exp") {
            args.max_exp = Some(
                v.parse()
                    .map_err(|_| format!("--max-exp: not a number: {v}"))?,
            );
        }
        args.max_agents = parse_usize(&values, "max-agents")?;
        if let Some(v) = values.get("out") {
            args.out_dir = PathBuf::from(v);
        }
        if let Some(v) = values.get("models") {
            args.models = Some(v.split(',').map(|s| s.trim().to_string()).collect());
        }
        let known = [
            "agents",
            "iterations",
            "threads",
            "domains",
            "shards",
            "repeats",
            "seed",
            "max-exp",
            "max-agents",
            "out",
            "models",
        ];
        for key in values.keys() {
            if !known.contains(&key.as_str()) {
                return Err(format!("unknown flag: --{key}"));
            }
        }
        Ok(args)
    }

    /// The model names selected by `--models`, or all six benchmark models
    /// (the five Table 1 models plus the Biocellion cell-sorting model).
    pub fn selected_models(&self) -> Vec<String> {
        self.models.clone().unwrap_or_else(|| {
            [
                "cell_proliferation",
                "cell_clustering",
                "epidemiology",
                "neuroscience",
                "oncology",
                "cell_sorting",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect()
        })
    }

    /// Default agent count for the five-model comparisons, honoring
    /// `--agents` and `--quick`.
    pub fn scale(&self, default: usize) -> usize {
        self.agents
            .unwrap_or(if self.quick { default / 4 } else { default })
    }

    /// Default iteration count, honoring `--iterations` and `--quick`.
    pub fn iters(&self, default: usize) -> usize {
        self.iterations.unwrap_or(if self.quick {
            (default / 2).max(2)
        } else {
            default
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::try_parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let a = parse("").unwrap();
        assert_eq!(a.agents, None);
        assert!(!a.csv);
        assert_eq!(a.repeats, 1);
        assert_eq!(a.out_dir, PathBuf::from("results"));
        assert_eq!(a.selected_models().len(), 6);
    }

    #[test]
    fn flags_and_values() {
        let a = parse(
            "--agents 5000 --iterations 20 --csv --threads 2 --domains 4 --shards 4 --seed 7",
        )
        .unwrap();
        assert_eq!(a.agents, Some(5000));
        assert_eq!(a.iterations, Some(20));
        assert!(a.csv);
        assert_eq!(a.threads, Some(2));
        assert_eq!(a.domains, Some(4));
        assert_eq!(a.shards, Some(4));
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn model_subset() {
        let a = parse("--models oncology,epidemiology").unwrap();
        assert_eq!(a.selected_models(), vec!["oncology", "epidemiology"]);
    }

    #[test]
    fn help_is_empty_error() {
        assert_eq!(parse("--help").unwrap_err(), "");
        assert_eq!(parse("-h").unwrap_err(), "");
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse("--bogus 3").unwrap_err().contains("unknown flag"));
        assert!(parse("positional").unwrap_err().contains("unexpected"));
    }

    #[test]
    fn bad_number_rejected() {
        assert!(parse("--agents abc").unwrap_err().contains("not a number"));
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse("--agents").unwrap_err().contains("expects a value"));
    }

    #[test]
    fn sweep_flags() {
        let a = parse("--max-agents 1000000 --phase-csv").unwrap();
        assert_eq!(a.max_agents, Some(1_000_000));
        assert!(a.phase_csv);
        let b = parse("").unwrap();
        assert_eq!(b.max_agents, None);
        assert!(!b.phase_csv);
        assert!(parse("--max-agents x")
            .unwrap_err()
            .contains("not a number"));
    }

    #[test]
    fn scaling_helpers() {
        let a = parse("--quick").unwrap();
        assert_eq!(a.scale(8000), 2000);
        assert_eq!(a.iters(10), 5);
        let b = parse("--agents 123 --iterations 7").unwrap();
        assert_eq!(b.scale(8000), 123);
        assert_eq!(b.iters(10), 7);
    }
}
