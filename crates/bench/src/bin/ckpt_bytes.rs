//! Checkpoint size and throughput measurement.
//!
//! For every selected model: the full-checkpoint size, the delta size after
//! further iterations (agents changed), the delta size at rest (nothing
//! changed — counters only), the serialize/restore wall time with the
//! derived throughput, and the steady-state bytes resident in a supervision
//! [`CheckpointRing`] (depth 2 × 4 deltas per chain — the memory a
//! [`SupervisedRunner`](bdm_checkpoint::SupervisedRunner) pins for its
//! restore points). The committed baseline capture
//! (`bench/baselines/ckpt_bytes.csv`) uses the `run_all` protocol scale;
//! docs/PERFORMANCE.md records a 10⁶-agent throughput run of this binary.

use std::time::Instant;

use bdm_bench::{emit, fmt_bytes, header, Args};
use bdm_checkpoint::{
    baseline, checkpoint, checkpoint_delta, restore, CheckpointRing, Registry, RingPolicy,
};
use bdm_core::Param;
use bdm_util::Table;

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header("Checkpoint size and throughput", &args);

    let agents = args.scale(10_000);
    let iterations = args.iters(5);
    println!("agents={agents} iterations={iterations}; delta base taken mid-run\n");

    let reg = Registry::with_builtin_types();
    let mut table = Table::new([
        "model",
        "full bytes",
        "delta bytes (changed)",
        "delta bytes (at rest)",
        "bytes/agent",
        "write",
        "restore",
        "ring bytes (steady)",
    ]);
    for name in args.selected_models() {
        let model = bdm_models::model_by_name(&name, agents).expect("known model");
        let param = Param {
            seed: args.seed,
            threads: args.threads,
            numa_domains: args.domains,
            ..Param::default()
        };
        let mut sim = model.build(param);
        sim.simulate(iterations);

        let t0 = Instant::now();
        let full = checkpoint(&sim).expect("checkpoint");
        let write_secs = t0.elapsed().as_secs_f64();
        let base = baseline(&full).expect("baseline");

        // Nothing changed since the full checkpoint: counters only.
        let delta_rest = checkpoint_delta(&sim, &base).expect("delta at rest");

        // Step on: the agent arrays (and any grids) change.
        sim.simulate(2);
        let delta_changed = checkpoint_delta(&sim, &base).expect("delta");

        let t1 = Instant::now();
        let restored = restore(&full, &reg).expect("restore");
        let restore_secs = t1.elapsed().as_secs_f64();
        assert_eq!(restored.iteration(), iterations as u64, "{name}");

        // Supervision-ring residency once retention has saturated: with
        // depth 2 and 4 deltas/chain, 10 captures fill the ring and the
        // next ones just rotate chains.
        let ring_policy = RingPolicy {
            interval: 1,
            depth: 2,
            full_every: 4,
        };
        let mut ring = CheckpointRing::new(ring_policy);
        for _ in 0..12 {
            sim.step();
            ring.capture(&sim).expect("ring capture");
        }
        let ring_bytes = ring.resident_bytes();

        let n = restored.num_agents() as u64;
        table.row([
            name.clone(),
            full.len().to_string(),
            delta_changed.len().to_string(),
            delta_rest.len().to_string(),
            format!("{:.1}", full.len() as f64 / n.max(1) as f64),
            format!(
                "{:.1} ms ({}/s)",
                write_secs * 1e3,
                fmt_bytes((full.len() as f64 / write_secs) as u64)
            ),
            format!(
                "{:.1} ms ({}/s)",
                restore_secs * 1e3,
                fmt_bytes((full.len() as f64 / restore_secs) as u64)
            ),
            ring_bytes.to_string(),
        ]);
    }
    emit(&table, "ckpt_bytes", &args);
}
