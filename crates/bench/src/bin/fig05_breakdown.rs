//! **Figure 5** — operation runtime breakdown (left) and microarchitecture
//! analysis (right, `--proxy`).
//!
//! Left panel: per-operation share of the total runtime with all
//! optimizations enabled. The shares come from the engine scheduler's
//! per-operation wall-clock timings (`Simulation::time_buckets` is derived
//! from the `Scheduler`'s op list, so each phase name below is the name of
//! a built-in `Operation`). The paper reports agent operations dominating
//! (median 76.3%), environment rebuild second (median 18.0%, up to 36.5% for
//! epidemiology's wider environment), sorting 0.18–6.33%, setup/teardown
//! ≤ 2.66%.
//!
//! Right panel substitution (DESIGN.md §3): VTune's "memory bound" pipeline
//! slots are proprietary-hardware telemetry; `--proxy` instead reports a
//! software memory-traffic estimate per iteration, the effective bandwidth
//! through the agent-op phase, and ns per agent operation. The paper's claim
//! that the workload is memory-bound shows up as high effective traffic and
//! low arithmetic per byte across all five models.

use bdm_bench::{emit, fmt_pct, fmt_secs, header, Args, RunSpec};
use bdm_core::OptLevel;
use bdm_util::{median, Table};

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header("Figure 5: operation runtime breakdown", &args);

    let agents = args.scale(8_000);
    let iterations = args.iters(30);
    println!(
        "agents={agents} iterations={iterations} (paper: 2M-12.6M agents, 288-1000 iterations)\n"
    );

    let mut table = Table::new([
        "model",
        "agent_ops",
        "environment",
        "snapshot",
        "sorting",
        "teardown",
        "standalone",
        "total",
    ]);
    let mut agent_op_shares = Vec::new();
    let mut env_shares = Vec::new();
    let mut proxy_rows = Vec::new();
    for name in args.selected_models() {
        let spec = RunSpec::new(&name, agents, iterations)
            .with_opt(OptLevel::StaticDetection)
            .with_topology(args.threads, args.domains);
        let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
        let total: f64 = report.buckets.values().sum();
        let share = |bucket: &str| {
            if total > 0.0 {
                report.bucket(bucket) / total
            } else {
                0.0
            }
        };
        agent_op_shares.push(share("agent_ops"));
        env_shares.push(share("environment_update"));
        table.row([
            name.clone(),
            fmt_pct(share("agent_ops")),
            fmt_pct(share("environment_update")),
            fmt_pct(share("snapshot")),
            fmt_pct(share("agent_sorting")),
            fmt_pct(share("teardown")),
            fmt_pct(share("standalone_ops")),
            fmt_secs(total),
        ]);

        if args.proxy {
            // Memory-traffic estimate per iteration, per the SoA snapshot
            // layout: the gather streams exactly `snapshot_bytes` (the
            // per-array sum the engine reports — payloads drop out when the
            // model's NeighborAccess skips them), a force calculation reads
            // the streamed 24 B position run plus one lazy 8 B diameter per
            // partner, and the agent object itself is touched (~128 B of
            // hot state).
            let per_iter_forces = report.force_calculations as f64 / iterations as f64;
            let bytes_per_iter = report.snapshot_bytes as f64
                + report.final_agents as f64 * 128.0
                + per_iter_forces * 2.0 * (24.0 + 8.0);
            let agent_op_secs = report.bucket("agent_ops") / iterations as f64;
            let gbps = if agent_op_secs > 0.0 {
                bytes_per_iter / agent_op_secs / 1e9
            } else {
                0.0
            };
            let ns_per_op = if report.final_agents > 0 {
                report.bucket("agent_ops") * 1e9 / (report.final_agents as f64 * iterations as f64)
            } else {
                0.0
            };
            proxy_rows.push((name, bytes_per_iter, gbps, ns_per_op));
        }
    }
    emit(&table, "fig05_breakdown", &args);
    println!(
        "median agent-op share: {} (paper: 76.3%)   median environment share: {} (paper: 18.0%)",
        fmt_pct(median(&agent_op_shares).unwrap_or(0.0)),
        fmt_pct(median(&env_shares).unwrap_or(0.0)),
    );

    if args.proxy {
        println!("\nmicroarchitecture proxy (substitution for VTune, DESIGN.md §3):");
        let mut proxy = Table::new([
            "model",
            "est. bytes/iteration",
            "effective GB/s (agent ops)",
            "ns per agent-op",
        ]);
        for (name, bytes, gbps, ns) in proxy_rows {
            proxy.row([
                name,
                bdm_util::format_bytes(bytes as u64),
                format!("{gbps:.2}"),
                format!("{ns:.0}"),
            ]);
        }
        emit(&proxy, "fig05_proxy", &args);
        println!(
            "paper (VTune): 31.8-47.2% of pipeline slots stalled on memory across the five models;\n\
             the proxy's uniformly high traffic per arithmetic-light agent-op mirrors that diagnosis."
        );
    }
}
