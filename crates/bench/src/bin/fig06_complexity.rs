//! **Figure 6** — average runtime per iteration and memory consumption as
//! the number of agents varies from 10³ to 10⁹.
//!
//! The paper observes: runtime is nearly flat until ~10⁵ agents (1.21 ms →
//! 2.80 ms — fixed engine overheads dominate), then grows linearly up to 10⁹
//! agents (6.41–38.1 s/iteration); memory stays below 1.6 GB until 10⁶ and
//! then also grows linearly (245–564 GB at 10⁹).
//!
//! On this host the sweep defaults to 10³…10⁵ (`--max-exp` raises it as far
//! as RAM allows — the code path is identical, only the exponent changes).
//! The harness fits the log-log slope of the tail; "reproduced" means a
//! slope ≈ 1 (linear) after the flat region.

use bdm_bench::{emit, fmt_bytes, fmt_secs, header, Args, RunSpec};
use bdm_core::OptLevel;
use bdm_util::Table;

/// Least-squares slope of `ln(y)` against `ln(x)`.
fn loglog_slope(points: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    (denom.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denom)
}

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header("Figure 6: runtime and space complexity", &args);

    let max_exp = args.max_exp.unwrap_or(if args.quick { 4 } else { 5 });
    let iterations = args.iters(10);
    println!(
        "sweep: 10^3 .. 10^{max_exp} agents, {iterations} iterations each (paper: 10^3 .. 10^9)\n"
    );

    let mut table = Table::new(["model", "agents", "s/iteration", "peak memory"]);
    let mut slope_rows = Vec::new();
    for name in args.selected_models() {
        let mut runtime_points = Vec::new();
        let mut memory_points = Vec::new();
        for exp in 3..=max_exp {
            let agents = 10usize.pow(exp);
            let spec = RunSpec::new(&name, agents, iterations)
                .with_opt(OptLevel::SortExtraMemory)
                .with_topology(args.threads, args.domains);
            let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
            table.row([
                name.clone(),
                format!("1e{exp}"),
                fmt_secs(report.per_iter_secs()),
                fmt_bytes(report.peak_rss_bytes),
            ]);
            runtime_points.push((agents as f64, report.per_iter_secs()));
            if report.peak_rss_bytes > 0 {
                memory_points.push((agents as f64, report.peak_rss_bytes as f64));
            }
        }
        // The paper's flat region ends around 10^5; fit the tail only (the
        // last three points, or all if the sweep is short).
        let tail_start = runtime_points.len().saturating_sub(3);
        let runtime_slope = loglog_slope(&runtime_points[tail_start..]);
        let memory_slope = loglog_slope(&memory_points[memory_points.len().saturating_sub(3)..]);
        slope_rows.push((name, runtime_slope, memory_slope));
    }
    emit(&table, "fig06_complexity", &args);

    let mut slopes = Table::new(["model", "runtime slope (tail)", "memory slope (tail)"]);
    for (name, rt, mem) in slope_rows {
        let fmt = |s: Option<f64>| s.map_or("n/a".to_string(), |v| format!("{v:.2}"));
        slopes.row([name, fmt(rt), fmt(mem)]);
    }
    emit(&slopes, "fig06_slopes", &args);
    println!(
        "expected shape (paper): flat runtime until ~1e5 agents, then slope ≈ 1 (linear);\n\
         memory slope ≈ 1 once agents dominate the fixed footprint."
    );
}
