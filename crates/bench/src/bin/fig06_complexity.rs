//! **Figure 6** — average runtime per iteration and memory consumption as
//! the number of agents varies from 10³ to 10⁹.
//!
//! The paper observes: runtime is nearly flat until ~10⁵ agents (1.21 ms →
//! 2.80 ms — fixed engine overheads dominate), then grows linearly up to 10⁹
//! agents (6.41–38.1 s/iteration); memory stays below 1.6 GB until 10⁶ and
//! then also grows linearly (245–564 GB at 10⁹).
//!
//! On this host the sweep defaults to 10³…10⁵ (`--max-exp` raises it as far
//! as RAM allows, and `--max-agents N` pins the largest scale point to
//! exactly `N`, e.g. `--max-agents 1000000` for the 10⁶ hot-path protocol —
//! the code path is identical, only the scale changes). The harness fits
//! the log-log slope of the tail; "reproduced" means a slope ≈ 1 (linear)
//! after the flat region.
//!
//! `--phase-csv` additionally writes `fig06_phases.csv`: the scheduler's
//! per-operation wall-clock buckets for every `(model, scale)` point, so a
//! hot-path PR can show *which* phase (`environment_update`, `agent_ops`,
//! …) moved rather than just the total.

use bdm_bench::{emit, fmt_bytes, fmt_secs, header, Args, RunSpec};
use bdm_core::OptLevel;
use bdm_util::Table;

/// Least-squares slope of `ln(y)` against `ln(x)`.
fn loglog_slope(points: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    (denom.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denom)
}

/// The sweep's scale points: powers of ten from 10³, capped by `--max-exp`
/// or finished at exactly `--max-agents` when given.
fn scale_points(args: &Args) -> Vec<usize> {
    if let Some(max) = args.max_agents {
        let mut points = Vec::new();
        let mut p = 1_000usize;
        while p < max {
            points.push(p);
            p = p.saturating_mul(10);
        }
        points.push(max);
        return points;
    }
    let max_exp = args.max_exp.unwrap_or(if args.quick { 4 } else { 5 });
    (3..=max_exp).map(|e| 10usize.pow(e)).collect()
}

/// `1e6`-style label for exact powers of ten, plain number otherwise.
fn scale_label(agents: usize) -> String {
    let log = (agents as f64).log10();
    if (log - log.round()).abs() < 1e-9 {
        format!("1e{}", log.round() as u32)
    } else {
        agents.to_string()
    }
}

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header("Figure 6: runtime and space complexity", &args);

    let points = scale_points(&args);
    let iterations = args.iters(10);
    println!(
        "sweep: {} agents, {iterations} iterations each (paper: 10^3 .. 10^9)\n",
        points
            .iter()
            .map(|&p| scale_label(p))
            .collect::<Vec<_>>()
            .join(" "),
    );

    let mut table = Table::new(["model", "agents", "s/iteration", "peak memory"]);
    let mut phases = Table::new([
        "model",
        "agents",
        "phase",
        "total_s",
        "s/iteration",
        "share",
    ]);
    let mut slope_rows = Vec::new();
    for name in args.selected_models() {
        let mut runtime_points = Vec::new();
        let mut memory_points = Vec::new();
        for &agents in &points {
            let spec = RunSpec::new(&name, agents, iterations)
                .with_opt(OptLevel::SortExtraMemory)
                .with_topology(args.threads, args.domains);
            let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
            table.row([
                name.clone(),
                scale_label(agents),
                fmt_secs(report.per_iter_secs()),
                fmt_bytes(report.peak_rss_bytes),
            ]);
            if args.phase_csv {
                let total: f64 = report.buckets.values().sum();
                for (phase, secs) in &report.buckets {
                    phases.row([
                        name.clone(),
                        scale_label(agents),
                        phase.clone(),
                        format!("{secs:.6}"),
                        format!("{:.6}", secs / iterations as f64),
                        format!("{:.3}", if total > 0.0 { secs / total } else { 0.0 }),
                    ]);
                }
                // A synthetic `total` row (sum of all buckets) so the CI
                // guard can trip on whole-iteration regressions that hide
                // below every per-phase threshold.
                phases.row([
                    name.clone(),
                    scale_label(agents),
                    "total".to_string(),
                    format!("{total:.6}"),
                    format!("{:.6}", total / iterations as f64),
                    "1.000".to_string(),
                ]);
            }
            runtime_points.push((agents as f64, report.per_iter_secs()));
            if report.peak_rss_bytes > 0 {
                memory_points.push((agents as f64, report.peak_rss_bytes as f64));
            }
        }
        // The paper's flat region ends around 10^5; fit the tail only (the
        // last three points, or all if the sweep is short).
        let tail_start = runtime_points.len().saturating_sub(3);
        let runtime_slope = loglog_slope(&runtime_points[tail_start..]);
        let memory_slope = loglog_slope(&memory_points[memory_points.len().saturating_sub(3)..]);
        slope_rows.push((name, runtime_slope, memory_slope));
    }
    emit(&table, "fig06_complexity", &args);
    if args.phase_csv {
        // --phase-csv implies CSV output for the phase table regardless of
        // --csv (that is its whole purpose).
        let phase_args = Args {
            csv: true,
            ..args.clone()
        };
        emit(&phases, "fig06_phases", &phase_args);
    }

    let mut slopes = Table::new(["model", "runtime slope (tail)", "memory slope (tail)"]);
    for (name, rt, mem) in slope_rows {
        let fmt = |s: Option<f64>| s.map_or("n/a".to_string(), |v| format!("{v:.2}"));
        slopes.row([name, fmt(rt), fmt(mem)]);
    }
    emit(&slopes, "fig06_slopes", &args);
    println!(
        "expected shape (paper): flat runtime until ~1e5 agents, then slope ≈ 1 (linear);\n\
         memory slope ≈ 1 once agents dominate the fixed footprint."
    );
}
