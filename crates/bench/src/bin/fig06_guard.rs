//! CI regression guard over `fig06_phases.csv`: compares a freshly captured
//! per-operation phase table against the committed baseline and fails (exit
//! code 1) when a guarded phase regressed.
//!
//! ```sh
//! cargo run --release -p bdm_bench --bin fig06_complexity -- \
//!     --quick --csv --phase-csv --threads 2 --domains 2 --max-exp 3 \
//!     --no-subprocess --out target/fig06-ci
//! cargo run --release -p bdm_bench --bin fig06_guard -- \
//!     --baseline bench/baselines/fig06_phases.csv \
//!     --candidate target/fig06-ci/fig06_phases.csv
//! ```
//!
//! Defaults guard `environment_update` at the 1e3 scale point with a 25%
//! relative threshold. CI machines differ from the machine that captured
//! the committed baseline and 1e3-scale phases run in the tens of
//! microseconds, so an absolute floor (`--min-seconds`, default 50µs per
//! iteration) suppresses pure-noise failures: a row only fails when it is
//! over the relative threshold *and* slower by more than the floor. With
//! a ~25-40µs baseline that means the guard effectively trips at a ≥2-3×
//! regression — a smoke alarm for algorithmic blowups (e.g. accidental
//! O(#boxes) work), not a micro-benchmark.

use std::collections::HashMap;
use std::process::ExitCode;

/// `(model, agents, phase) → s/iteration` from a fig06_phases.csv.
fn load_phases(path: &str) -> HashMap<(String, String, String), f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read phase CSV {path}: {e}"));
    let mut rows = HashMap::new();
    for line in text.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() < 5 {
            continue;
        }
        let per_iter: f64 = match cols[4].parse() {
            Ok(v) => v,
            Err(_) => continue,
        };
        rows.insert(
            (
                cols[0].to_string(),
                cols[1].to_string(),
                cols[2].to_string(),
            ),
            per_iter,
        );
    }
    assert!(!rows.is_empty(), "no phase rows parsed from {path}");
    rows
}

fn main() -> ExitCode {
    let mut baseline_path = String::new();
    let mut candidate_path = String::new();
    let mut phase = "environment_update".to_string();
    let mut agents = "1e3".to_string();
    let mut threshold = 0.25f64;
    let mut min_seconds = 50e-6f64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("missing value for {}", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--baseline" => baseline_path = value(i),
            "--candidate" => candidate_path = value(i),
            "--phase" => phase = value(i),
            "--agents" => agents = value(i),
            "--threshold" => threshold = value(i).parse().expect("--threshold"),
            "--min-seconds" => min_seconds = value(i).parse().expect("--min-seconds"),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    assert!(
        !baseline_path.is_empty() && !candidate_path.is_empty(),
        "usage: fig06_guard --baseline <csv> --candidate <csv> \
         [--phase environment_update] [--agents 1e3] [--threshold 0.25] \
         [--min-seconds 0.00005]"
    );

    let baseline = load_phases(&baseline_path);
    let candidate = load_phases(&candidate_path);

    let mut checked = 0;
    let mut failed = false;
    for ((model, scale, ph), &base) in &baseline {
        if *ph != phase || *scale != agents {
            continue;
        }
        let Some(&cand) = candidate.get(&(model.clone(), scale.clone(), ph.clone())) else {
            println!("SKIP  {model}/{scale}/{ph}: not in candidate capture");
            continue;
        };
        checked += 1;
        let limit = base * (1.0 + threshold);
        let over_ratio = cand > limit;
        let over_floor = cand - base > min_seconds;
        if over_ratio && over_floor {
            println!(
                "FAIL  {model}/{scale}/{ph}: {cand:.6} s/iter vs baseline {base:.6} \
                 (+{:.0}%, limit +{:.0}%)",
                (cand / base - 1.0) * 100.0,
                threshold * 100.0
            );
            failed = true;
        } else {
            println!(
                "OK    {model}/{scale}/{ph}: {cand:.6} s/iter vs baseline {base:.6} ({}{:.0}%)",
                if cand >= base { "+" } else { "" },
                (cand / base - 1.0) * 100.0
            );
        }
    }
    assert!(
        checked > 0,
        "baseline {baseline_path} has no rows for phase {phase} at {agents} agents"
    );
    if failed {
        println!(
            "phase regression guard FAILED (threshold {:.0}%)",
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("phase regression guard passed ({checked} rows checked)");
        ExitCode::SUCCESS
    }
}
