//! CI regression guard over `fig06_phases.csv`: compares a freshly captured
//! per-operation phase table against the committed baseline and fails (exit
//! code 1) when a guarded phase regressed.
//!
//! ```sh
//! cargo run --release -p bdm_bench --bin fig06_complexity -- \
//!     --quick --csv --phase-csv --threads 2 --domains 2 --max-exp 3 \
//!     --no-subprocess --out target/fig06-ci
//! cargo run --release -p bdm_bench --bin fig06_guard -- \
//!     --baseline bench/baselines/fig06_phases.csv \
//!     --candidate target/fig06-ci/fig06_phases.csv
//! ```
//!
//! Defaults guard `environment_update` at the 1e3 scale point with a 25%
//! relative threshold. CI machines differ from the machine that captured
//! the committed baseline and 1e3-scale phases run in the tens of
//! microseconds, so an absolute floor (`--min-seconds`, default 50µs per
//! iteration) suppresses pure-noise failures: a row only fails when it is
//! over the relative threshold *and* slower by more than the floor. With
//! a ~25-40µs baseline that means the guard effectively trips at a ≥2-3×
//! regression — a smoke alarm for algorithmic blowups (e.g. accidental
//! O(#boxes) work), not a micro-benchmark.
//!
//! `--models a,b,c` makes the guard *fail-closed* over that list: each
//! named model must have a guarded row in both files, so a capture that
//! silently drops a model (new name, harness bug) trips CI instead of
//! SKIP-ping. On any failure the guard prints the full baseline-vs-
//! candidate table at the guarded scale, so the log alone shows which
//! phases moved — no local repro needed to start diagnosing.
//!
//! `--candidate` may be repeated (or given a comma-separated list): the
//! guard then compares the per-row **minimum** across the captures.
//! Background load on a shared runner only ever *adds* time — while
//! calibrating, identical code produced +40% single-model outliers in
//! two of five back-to-back captures — so the min across N captures is
//! the honest estimate of the code's speed, and a regression has to
//! show up in every capture to mean anything. Fail-closed `--models`
//! rows must be present in **each** candidate file.

use std::collections::HashMap;
use std::process::ExitCode;

/// `(model, agents, phase) → s/iteration` from a fig06_phases.csv.
fn load_phases(path: &str) -> HashMap<(String, String, String), f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read phase CSV {path}: {e}"));
    let mut rows = HashMap::new();
    for line in text.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() < 5 {
            continue;
        }
        let per_iter: f64 = match cols[4].parse() {
            Ok(v) => v,
            Err(_) => continue,
        };
        rows.insert(
            (
                cols[0].to_string(),
                cols[1].to_string(),
                cols[2].to_string(),
            ),
            per_iter,
        );
    }
    assert!(!rows.is_empty(), "no phase rows parsed from {path}");
    rows
}

/// Every phase of both tables at `agents` scale, side by side — printed on
/// failure so the regression is diagnosable from the CI log.
fn print_diff_table(
    baseline: &HashMap<(String, String, String), f64>,
    candidate: &HashMap<(String, String, String), f64>,
    agents: &str,
) {
    let mut keys: Vec<&(String, String, String)> =
        baseline.keys().chain(candidate.keys()).collect();
    keys.sort();
    keys.dedup();
    println!("\nbaseline vs candidate at {agents} agents (s/iteration):");
    println!(
        "{:<22} {:<20} {:>12} {:>12} {:>8}",
        "model", "phase", "baseline", "candidate", "delta"
    );
    for key in keys {
        if key.1 != agents {
            continue;
        }
        let base = baseline.get(key);
        let cand = candidate.get(key);
        let fmt = |v: Option<&f64>| v.map_or("-".to_string(), |v| format!("{v:.6}"));
        let delta = match (base, cand) {
            (Some(&b), Some(&c)) if b > 0.0 => {
                format!(
                    "{}{:.0}%",
                    if c >= b { "+" } else { "" },
                    (c / b - 1.0) * 100.0
                )
            }
            _ => "-".to_string(),
        };
        println!(
            "{:<22} {:<20} {:>12} {:>12} {:>8}",
            key.0,
            key.2,
            fmt(base),
            fmt(cand),
            delta
        );
    }
}

/// Per-row minimum across captures: the best observed run is the closest
/// measurement to the code's true speed on a machine with background load.
fn min_merge(
    into: &mut HashMap<(String, String, String), f64>,
    from: HashMap<(String, String, String), f64>,
) {
    for (key, v) in from {
        into.entry(key).and_modify(|m| *m = m.min(v)).or_insert(v);
    }
}

fn main() -> ExitCode {
    let mut baseline_path = String::new();
    let mut candidate_paths: Vec<String> = Vec::new();
    let mut phase = "environment_update".to_string();
    let mut agents = "1e3".to_string();
    let mut threshold = 0.25f64;
    let mut min_seconds = 50e-6f64;
    let mut required_models: Vec<String> = Vec::new();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("missing value for {}", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--baseline" => baseline_path = value(i),
            "--candidate" => {
                candidate_paths.extend(value(i).split(',').map(|p| p.trim().to_string()))
            }
            "--phase" => phase = value(i),
            "--agents" => agents = value(i),
            "--threshold" => threshold = value(i).parse().expect("--threshold"),
            "--min-seconds" => min_seconds = value(i).parse().expect("--min-seconds"),
            "--models" => {
                required_models = value(i).split(',').map(|m| m.trim().to_string()).collect()
            }
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    assert!(
        !baseline_path.is_empty() && !candidate_paths.is_empty(),
        "usage: fig06_guard --baseline <csv> --candidate <csv>[,<csv>...] \
         [--phase environment_update] [--agents 1e3] [--threshold 0.25] \
         [--min-seconds 0.00005] [--models a,b,c]"
    );

    let baseline = load_phases(&baseline_path);
    let captures: Vec<HashMap<(String, String, String), f64>> =
        candidate_paths.iter().map(|p| load_phases(p)).collect();
    let mut candidate = HashMap::new();
    for capture in &captures {
        min_merge(&mut candidate, capture.clone());
    }

    let mut checked = 0;
    let mut failed = false;
    // Fail-closed coverage check: every required model must have the
    // guarded row in the baseline AND in EACH candidate capture (a
    // missing row would otherwise SKIP — and with min-merged captures a
    // row missing from one file must not silently defer to the others).
    for model in &required_models {
        let key = (model.clone(), agents.clone(), phase.clone());
        if !baseline.contains_key(&key) {
            println!("FAIL  {model}/{agents}/{phase}: required model missing from baseline");
            failed = true;
        }
        for (capture, path) in captures.iter().zip(&candidate_paths) {
            if !capture.contains_key(&key) {
                println!("FAIL  {model}/{agents}/{phase}: required model missing from {path}");
                failed = true;
            }
        }
    }
    for ((model, scale, ph), &base) in &baseline {
        if *ph != phase || *scale != agents {
            continue;
        }
        if !required_models.is_empty() && !required_models.contains(model) {
            continue;
        }
        let Some(&cand) = candidate.get(&(model.clone(), scale.clone(), ph.clone())) else {
            println!("SKIP  {model}/{scale}/{ph}: not in candidate capture");
            continue;
        };
        checked += 1;
        let limit = base * (1.0 + threshold);
        let over_ratio = cand > limit;
        let over_floor = cand - base > min_seconds;
        if over_ratio && over_floor {
            println!(
                "FAIL  {model}/{scale}/{ph}: {cand:.6} s/iter vs baseline {base:.6} \
                 (+{:.0}%, limit +{:.0}%)",
                (cand / base - 1.0) * 100.0,
                threshold * 100.0
            );
            failed = true;
        } else {
            println!(
                "OK    {model}/{scale}/{ph}: {cand:.6} s/iter vs baseline {base:.6} ({}{:.0}%)",
                if cand >= base { "+" } else { "" },
                (cand / base - 1.0) * 100.0
            );
        }
    }
    assert!(
        checked > 0 || failed,
        "baseline {baseline_path} has no rows for phase {phase} at {agents} agents"
    );
    if failed {
        println!(
            "phase regression guard FAILED (threshold {:.0}%)",
            threshold * 100.0
        );
        if captures.len() > 1 {
            println!(
                "(candidate columns are the per-row minimum of {} captures)",
                captures.len()
            );
        }
        print_diff_table(&baseline, &candidate, &agents);
        ExitCode::FAILURE
    } else {
        println!("phase regression guard passed ({checked} rows checked)");
        ExitCode::SUCCESS
    }
}
