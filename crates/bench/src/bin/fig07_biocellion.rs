//! **Figure 7** — comparison with Biocellion (Kang et al. 2014).
//!
//! Biocellion is proprietary; like the paper, we compare against its
//! **published** numbers (DESIGN.md §3). Three published benchmarks anchor
//! the comparison (all cell-sorting iterations):
//!
//! | benchmark | agents | cores | s/iter | agents/s/core |
//! |---|---|---|---|---|
//! | small  | 26.8 M  | 16   | 7.48 | 224 k |
//! | medium | 281.4 M | 672  | 4.37 | 95.8 k |
//! | large  | 1.72 B  | 4096 | 4.45 | 94.4 k |
//!
//! The paper's BioDynaMo results: 1.80 s/iter on 16 comparable cores
//! (4.14× faster), 26.3 s/iter for 1.72 B cells on 72 cores (9.64× more
//! efficient per core), and 4.24 s/iter for 281.4 M cells on 72 cores.
//! We run the same model at a host-appropriate scale and compare
//! **agents/second/core**, the unit in which the paper states its claim.
//!
//! `--visualize` additionally dumps the Figure 7a point cloud and reports
//! the same-type-neighbor sorting metric (random mix = 0.5 → sorted ≈ 1).
//! The second panel reproduces Figure 7b: the optimization ladder on the
//! cell-sorting model.

use bdm_bench::{emit, emit_raw, fmt_secs, fmt_speedup, header, Args, RunSpec};
use bdm_core::{OptLevel, Param};
use bdm_models::{cell_sorting::dump_positions_csv, BenchmarkModel, CellSorting};
use bdm_util::Table;

/// Published Biocellion results (Kang et al. \[33\], as cited in the paper).
const BIOCELLION: [(&str, f64, f64, f64); 3] = [
    ("small (26.8M, 16 cores)", 26.8e6, 16.0, 7.48),
    ("medium (281.4M, 672 cores)", 281.4e6, 672.0, 4.37),
    ("large (1.72B, 4096 cores)", 1.72e9, 4096.0, 4.45),
];

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header("Figure 7: comparison with Biocellion", &args);

    let agents = args.scale(20_000);
    let iterations = args.iters(30);
    let threads = args.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });

    // ---- Figure 7a: visual agreement check. ----
    if args.visualize {
        let model = CellSorting::new(agents.min(50_000));
        let mut sim = model.build(Param {
            threads: Some(threads),
            numa_domains: args.domains,
            seed: args.seed,
            ..Param::default()
        });
        let before = bdm_models::same_type_neighbor_fraction(&sim, 15.0, 400);
        sim.simulate(iterations.max(30));
        let after = bdm_models::same_type_neighbor_fraction(&sim, 15.0, 400);
        let path = emit_raw(
            &dump_positions_csv(&sim),
            "fig07a_cell_sorting_points.csv",
            &args,
        )
        .expect("write point cloud");
        println!(
            "Figure 7a: {} cells, same-type neighbor fraction {:.3} -> {:.3} \
             (random mix = 0.5, sorted -> 1.0)\n           point cloud: {}\n",
            sim.num_agents(),
            before,
            after,
            path.display()
        );
    }

    // ---- Our measurement at host scale. ----
    let spec = RunSpec::new("cell_sorting", agents, iterations)
        .with_opt(OptLevel::SortExtraMemory)
        .with_topology(Some(threads), args.domains);
    let ours = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
    let our_rate = ours.final_agents as f64 / ours.per_iter_secs() / threads as f64;
    println!(
        "this host: {} agents, {} threads, {}/iteration -> {:.0} agents/s/core\n",
        ours.final_agents,
        threads,
        fmt_secs(ours.per_iter_secs()),
        our_rate
    );

    let mut table = Table::new([
        "benchmark",
        "biocellion agents/s/core",
        "biodynamo-rs agents/s/core",
        "per-core efficiency",
        "paper reports",
    ]);
    for (label, b_agents, b_cores, b_secs) in BIOCELLION {
        let b_rate = b_agents / b_secs / b_cores;
        let ratio = our_rate / b_rate;
        let paper = match label.chars().next() {
            Some('s') => "4.14x faster (16 cores)",
            Some('m') => "9.3x per core (4.24 vs 4.37 s/iter)",
            _ => "9.64x per core",
        };
        table.row([
            label.to_string(),
            format!("{b_rate:.0}"),
            format!("{our_rate:.0}"),
            fmt_speedup(ratio),
            paper.to_string(),
        ]);
    }
    emit(&table, "fig07_biocellion", &args);
    println!(
        "shape check: the paper claims roughly 4x (few-core) to 10x (per-core at cluster scale)\n\
         efficiency over Biocellion; any per-core efficiency > 1x on commodity hardware against\n\
         Biocellion's published HPC numbers preserves the `who wins` direction.\n"
    );

    // ---- Figure 7b: optimization impact on the cell-sorting model. ----
    println!("Figure 7b: optimization ladder on the cell-sorting model");
    let mut ladder = Table::new(["optimization level", "s/iteration", "speedup vs standard"]);
    let mut standard_secs = None;
    for opt in OptLevel::ALL {
        let spec = RunSpec::new("cell_sorting", agents, iterations)
            .with_opt(opt)
            .with_topology(Some(threads), args.domains);
        let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
        let per_iter = report.per_iter_secs();
        let base = *standard_secs.get_or_insert(per_iter);
        ladder.row([
            opt.label().to_string(),
            fmt_secs(per_iter),
            fmt_speedup(base / per_iter),
        ]);
    }
    emit(&ladder, "fig07b_optimizations", &args);
    println!(
        "paper (Figure 7b): memory-layout optimizations dominate on high-core-count systems;\n\
         the uniform grid dominates at low core counts."
    );
}
