//! **Figure 8** — comparison with Cortex3D and NetLogo, with the
//! optimizations progressively switched on.
//!
//! Cortex3D and NetLogo are serial Java tools; `bdm-baseline` is their
//! stand-in (DESIGN.md §3): a correct but deliberately straightforward
//! serial engine with boxed AoS agents and materialized per-agent neighbor
//! lists. Four small-scale benchmarks run **single-threaded** (the
//! comparators are not parallelized, exactly as in the paper), and the
//! medium-scale epidemiology benchmark uses all threads.
//!
//! Paper observations to reproduce in shape: single-thread speedup up to
//! 78.8× with 2.49× less memory; three orders of magnitude at medium scale
//! with all threads; the standard implementation achieves a median 15.5×;
//! the uniform grid is the largest single step (median 2.18×, 45.5× when
//! parallelism is active).

use bdm_bench::{emit, fmt_bytes, fmt_secs, fmt_speedup, header, Args, RunSpec};
use bdm_core::OptLevel;
use bdm_util::{median, Table};

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header(
        "Figure 8: comparison with Cortex3D and NetLogo (serial baseline)",
        &args,
    );

    // (figure label, model, agents, iterations, single-thread?)
    let scale = |n: usize| if args.quick { n / 4 } else { n };
    let benchmarks: Vec<(&str, &str, usize, usize, bool)> = vec![
        (
            "cell growth (small)",
            "cell_proliferation",
            scale(2_000),
            args.iters(10),
            true,
        ),
        (
            "neurite growth (small)",
            "neuroscience",
            scale(3_000),
            args.iters(10),
            true,
        ),
        (
            "soma clustering (small)",
            "cell_clustering",
            scale(4_000),
            args.iters(10),
            true,
        ),
        (
            "cell sorting (small)",
            "cell_sorting",
            scale(4_000),
            args.iters(10),
            true,
        ),
        (
            "epidemiology (medium)",
            "epidemiology",
            scale(30_000),
            args.iters(10),
            false,
        ),
    ];
    let all_threads = args.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });

    let mut table = Table::new([
        "benchmark",
        "configuration",
        "s/iteration",
        "speedup vs baseline",
        "peak memory",
    ]);
    let mut standard_speedups = Vec::new();
    let mut grid_step_speedups = Vec::new();
    let mut full_speedups = Vec::new();
    for (label, model, agents, iterations, single_thread) in benchmarks {
        let (threads, domains) = if single_thread {
            (Some(1), Some(1))
        } else {
            (Some(all_threads), args.domains)
        };
        // The serial comparator.
        let base_spec = RunSpec::new(model, agents, iterations)
            .with_baseline()
            .with_topology(Some(1), Some(1));
        let base = bdm_bench::measure_median(&base_spec, args.repeats, args.no_subprocess);
        table.row([
            label.to_string(),
            "serial baseline (Cortex3D/NetLogo stand-in)".to_string(),
            fmt_secs(base.per_iter_secs()),
            "1.00x".to_string(),
            fmt_bytes(base.peak_rss_bytes),
        ]);
        // The engine ladder.
        let mut prev = base.per_iter_secs();
        for opt in OptLevel::ALL {
            let spec = RunSpec::new(model, agents, iterations)
                .with_opt(opt)
                .with_topology(threads, domains);
            let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
            let per_iter = report.per_iter_secs();
            let speedup = base.per_iter_secs() / per_iter;
            table.row([
                label.to_string(),
                format!("biodynamo {}", opt.label()),
                fmt_secs(per_iter),
                fmt_speedup(speedup),
                fmt_bytes(report.peak_rss_bytes),
            ]);
            match opt {
                OptLevel::Standard => standard_speedups.push(speedup),
                OptLevel::UniformGrid => grid_step_speedups.push(prev / per_iter),
                OptLevel::StaticDetection => full_speedups.push(speedup),
                _ => {}
            }
            prev = per_iter;
        }
    }
    emit(&table, "fig08_comparison", &args);

    let fmt_med = |v: &[f64]| median(v).map_or("n/a".into(), fmt_speedup);
    println!(
        "median standard-implementation speedup: {} (paper: 15.5x)\n\
         median uniform-grid step speedup:       {} (paper: 2.18x, 45.5x with parallelism)\n\
         median fully-optimized speedup:         {} (paper: up to 78.8x serial, ~1000x medium-scale)",
        fmt_med(&standard_speedups),
        fmt_med(&grid_step_speedups),
        fmt_med(&full_speedups),
    );
}
