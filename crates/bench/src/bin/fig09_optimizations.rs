//! **Figure 9** — speedup (top) and memory consumption (bottom) versus the
//! BioDynaMo standard implementation, with the optimizations progressively
//! switched on, for all five Table 1 models.
//!
//! Paper observations to reproduce in shape: total improvement 33.1–524×
//! (median 159×); the uniform grid is the largest step (up to 184×, median
//! 27.4×); memory-layout optimizations add up to 5.30× (median 2.96×);
//! extra sorting memory up to 2.07× (median 1.09×); static detection 3.22×
//! for neuroscience; parallel removal cuts oncology time by 31.7%; the
//! optimizations cost a median 1.77% extra memory (55.6% with extra sorting
//! memory).

use bdm_bench::{emit, fmt_secs, fmt_speedup, header, Args, RunSpec};
use bdm_core::OptLevel;
use bdm_util::{median, Table};

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header(
        "Figure 9: optimization ladder (speedup and memory vs standard)",
        &args,
    );

    let agents = args.scale(8_000);
    // Long enough for the sorting frequency (10) of the memory-layout
    // preset to fire several times.
    let iterations = args.iters(40);
    println!("agents={agents} iterations={iterations} (paper: 2M-12.6M agents)\n");

    let mut table = Table::new([
        "model",
        "configuration",
        "s/iteration",
        "speedup vs standard",
        "memory vs standard",
        "snapshot memory",
    ]);
    let mut full_speedups = Vec::new();
    let mut grid_step = Vec::new();
    let mut memlayout_step = Vec::new();
    let mut extra_mem_step = Vec::new();
    let mut removal_note = None;
    let mut static_note = None;
    for name in args.selected_models() {
        let mut standard: Option<(f64, u64)> = None;
        let mut prev_secs = f64::NAN;
        for opt in OptLevel::ALL {
            let spec = RunSpec::new(&name, agents, iterations)
                .with_opt(opt)
                .with_topology(args.threads, args.domains);
            let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
            let per_iter = report.per_iter_secs();
            let (base_secs, base_mem) = *standard.get_or_insert((per_iter, report.peak_rss_bytes));
            let speedup = base_secs / per_iter;
            let mem_ratio = if base_mem > 0 && report.peak_rss_bytes > 0 {
                format!("{:.2}x", report.peak_rss_bytes as f64 / base_mem as f64)
            } else {
                "n/a".into()
            };
            table.row([
                name.clone(),
                opt.label().to_string(),
                fmt_secs(per_iter),
                fmt_speedup(speedup),
                mem_ratio,
                // Per-array SoA accounting from the engine (payloads only
                // when the model's kernels declared them).
                bdm_util::format_bytes(report.snapshot_bytes),
            ]);
            match opt {
                OptLevel::UniformGrid => grid_step.push(base_secs / per_iter),
                OptLevel::ParallelAddRemove if name == "oncology" => {
                    removal_note = Some(1.0 - per_iter / prev_secs);
                }
                OptLevel::MemoryLayout => memlayout_step.push(prev_secs / per_iter),
                OptLevel::SortExtraMemory => extra_mem_step.push(prev_secs / per_iter),
                OptLevel::StaticDetection => {
                    full_speedups.push(speedup);
                    if name == "neuroscience" {
                        static_note = Some(prev_secs / per_iter);
                    }
                }
                _ => {}
            }
            prev_secs = per_iter;
        }
    }
    emit(&table, "fig09_optimizations", &args);

    let fmt_med = |v: &[f64]| median(v).map_or("n/a".into(), fmt_speedup);
    println!(
        "median full-ladder speedup:        {} (paper: 159x, range 33.1-524x)\n\
         median uniform-grid step:          {} (paper: 27.4x, up to 184x)\n\
         median memory-layout step:         {} (paper: 2.96x, up to 5.30x)\n\
         median extra-sort-memory step:     {} (paper: 1.09x, up to 2.07x)",
        fmt_med(&full_speedups),
        fmt_med(&grid_step),
        fmt_med(&memlayout_step),
        fmt_med(&extra_mem_step),
    );
    if let Some(cut) = removal_note {
        println!(
            "oncology parallel-removal step:    {:.1}% runtime reduction (paper: 31.7%)",
            cut * 100.0
        );
    }
    if let Some(s) = static_note {
        println!(
            "neuroscience static-detection step: {} (paper: 3.22x)",
            fmt_speedup(s)
        );
    }
}
