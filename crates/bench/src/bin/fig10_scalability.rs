//! **Figure 10** — scalability.
//!
//! `--whole` reproduces Figure 10a: strong scaling of the *complete*
//! simulations (all iterations, full optimizations), speedup vs one thread.
//! The paper reports 60.7–74.0× (median 64.7×) on 72 physical cores — a
//! parallel efficiency of 91.7%.
//!
//! The default mode reproduces Figures 10c–g: per-model strong scaling with
//! ten iterations after progressively switching on the optimizations; the
//! paper's observation is that the standard implementation scales poorly
//! (serial kd-tree build) while the uniform grid and the memory
//! optimizations unlock scaling across NUMA domains and high core counts.
//! On this host the thread axis is short, but the *ordering* of the presets
//! must hold.

use bdm_bench::{emit, fmt_secs, fmt_speedup, header, Args, RunSpec};
use bdm_core::OptLevel;
use bdm_util::Table;

/// Thread counts to sweep: powers of two up to the available parallelism,
/// always including the maximum itself.
fn thread_sweep(args: &Args) -> Vec<usize> {
    let max = args.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let mut sweep = Vec::new();
    let mut t = 1;
    while t < max {
        sweep.push(t);
        t *= 2;
    }
    sweep.push(max);
    sweep.dedup();
    sweep
}

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    let sweep = thread_sweep(&args);

    if args.whole {
        header(
            "Figure 10a: whole-simulation strong scaling (full optimizations)",
            &args,
        );
        let agents = args.scale(6_000);
        let mut table = Table::new(["model", "threads", "s/iteration", "speedup", "efficiency"]);
        let mut last_effs = Vec::new();
        for name in args.selected_models() {
            let model = bdm_bench::model_or_die(&name, agents);
            let iterations = args.iterations.unwrap_or_else(|| {
                model
                    .default_iterations()
                    .min(if args.quick { 10 } else { 40 })
            });
            let mut serial = None;
            for &threads in &sweep {
                let spec = RunSpec::new(&name, agents, iterations)
                    .with_opt(OptLevel::StaticDetection)
                    .with_topology(Some(threads), args.domains.map(|d| d.min(threads)));
                let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
                let per_iter = report.per_iter_secs();
                let base = *serial.get_or_insert(per_iter);
                let speedup = base / per_iter;
                let efficiency = speedup / threads as f64;
                table.row([
                    name.clone(),
                    threads.to_string(),
                    fmt_secs(per_iter),
                    fmt_speedup(speedup),
                    format!("{:.1}%", efficiency * 100.0),
                ]);
                if threads == *sweep.last().unwrap() {
                    last_effs.push(efficiency);
                }
            }
        }
        emit(&table, "fig10a_whole_scalability", &args);
        if let Some(med) = bdm_util::median(&last_effs) {
            println!(
                "median parallel efficiency at {} threads: {:.1}% (paper: 91.7% at 72 cores)",
                sweep.last().unwrap(),
                med * 100.0
            );
        }
        return;
    }

    header(
        "Figures 10c-g: strong scaling x optimization ladder (10 iterations)",
        &args,
    );
    let agents = args.scale(8_000);
    let iterations = args.iters(10);
    // The ladder subset plotted in the paper's per-model panels.
    let presets = [
        OptLevel::Standard,
        OptLevel::UniformGrid,
        OptLevel::MemoryLayout,
        OptLevel::StaticDetection,
    ];
    let mut table = Table::new([
        "model",
        "configuration",
        "threads",
        "avg runtime (ms/iter)",
        "speedup vs 1 thread",
    ]);
    for name in args.selected_models() {
        for preset in presets {
            let mut serial = None;
            for &threads in &sweep {
                let spec = RunSpec::new(&name, agents, iterations)
                    .with_opt(preset)
                    .with_topology(Some(threads), args.domains.map(|d| d.min(threads)));
                let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
                let per_iter = report.per_iter_secs();
                let base = *serial.get_or_insert(per_iter);
                table.row([
                    name.clone(),
                    preset.label().to_string(),
                    threads.to_string(),
                    format!("{:.2}", per_iter * 1e3),
                    fmt_speedup(base / per_iter),
                ]);
            }
        }
    }
    emit(&table, "fig10_scalability", &args);
    println!(
        "expected shape (paper): the standard implementation plateaus (serial kd-tree build);\n\
         +uniform_grid restores scaling; +memory_layout keeps efficiency high across domains."
    );
}
