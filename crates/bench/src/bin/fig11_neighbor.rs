//! **Figure 11** — neighbor-search algorithm comparison: BioDynaMo's
//! uniform grid vs octree (Behley et al. stand-in) vs kd-tree (nanoflann
//! stand-in), across all five models and two NUMA configurations.
//!
//! Agent sorting is off for all algorithms ("because it is currently only
//! implemented for the uniform grid", Section 6.9). Four properties are
//! measured per the paper: (a) whole-simulation runtime, (b) index build
//! time (the `environment_update` bucket), (c) search time, measured
//! indirectly through the agent-operation runtime, and (d) index memory.
//!
//! Paper observations to reproduce in shape: the grid's build is faster by
//! orders of magnitude (255–983× on four NUMA domains — the tree builds are
//! serial), the grid also wins the search stage throughout, whole
//! simulations are up to 191× faster than the kd-tree, and the grid costs
//! at most 11% more memory.

use bdm_bench::{emit, fmt_bytes, fmt_secs, fmt_speedup, header, Args, RunSpec, ENVIRONMENTS};
use bdm_util::Table;

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header("Figure 11: neighbor-search algorithm comparison", &args);

    let agents = args.scale(20_000);
    let iterations = args.iters(10);
    let max_threads = args.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    // Left column of the figure: many domains; right column: one domain.
    let domain_configs: Vec<(usize, usize)> = if max_threads >= 4 {
        vec![(4.min(max_threads), max_threads), (1, max_threads)]
    } else {
        vec![(max_threads.min(2), max_threads), (1, max_threads)]
    };
    println!("agents={agents} iterations={iterations}; sorting disabled for all algorithms\n");

    let mut table = Table::new([
        "domains",
        "model",
        "environment",
        "whole (s/iter)",
        "build (s/iter)",
        "search proxy (s/iter)",
        "index memory",
        "snapshot memory",
    ]);
    let mut grid_vs_kdtree_whole = Vec::new();
    let mut grid_vs_kdtree_build = Vec::new();
    for &(domains, threads) in &domain_configs {
        for name in args.selected_models() {
            let mut grid_report = None;
            for (env, env_label) in ENVIRONMENTS {
                let mut spec = RunSpec::new(&name, agents, iterations)
                    .with_topology(Some(threads), Some(domains));
                spec.env = Some(env);
                spec.sort_freq = Some(None); // sorting off for a fair comparison
                let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
                table.row([
                    domains.to_string(),
                    name.clone(),
                    env_label.to_string(),
                    fmt_secs(report.per_iter_secs()),
                    fmt_secs(report.bucket("environment_update") / iterations as f64),
                    fmt_secs(report.bucket("agent_ops") / iterations as f64),
                    fmt_bytes(report.env_bytes),
                    // Per-array SoA accounting from the engine: payload
                    // bytes appear only for models whose kernels declared
                    // NeighborAccess::PAYLOADS.
                    fmt_bytes(report.snapshot_bytes),
                ]);
                match env_label {
                    "uniform_grid" => grid_report = Some(report),
                    "kd_tree" => {
                        if let Some(grid) = &grid_report {
                            if grid.per_iter_secs() > 0.0 {
                                grid_vs_kdtree_whole
                                    .push(report.per_iter_secs() / grid.per_iter_secs());
                            }
                            let grid_build = grid.bucket("environment_update");
                            if grid_build > 0.0 {
                                grid_vs_kdtree_build
                                    .push(report.bucket("environment_update") / grid_build);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    emit(&table, "fig11_neighbor", &args);

    let fmt_range = |v: &[f64]| {
        if v.is_empty() {
            "n/a".to_string()
        } else {
            let min = v.iter().copied().fold(f64::INFINITY, f64::min);
            let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            format!("{}-{}", fmt_speedup(min), fmt_speedup(max))
        }
    };
    println!(
        "uniform grid vs kd-tree, whole simulation: {} (paper: up to 191x)\n\
         uniform grid vs kd-tree, build time:       {} (paper: 255-983x on 4 domains)",
        fmt_range(&grid_vs_kdtree_whole),
        fmt_range(&grid_vs_kdtree_build),
    );
}
