//! **Figure 12** — agent sorting and balancing speedup for different
//! execution frequencies, on four NUMA domains (left) and one (right).
//!
//! The baseline is the same configuration *without* agent sorting. Paper
//! observations to reproduce in shape: randomly-initialized models benefit
//! most (oncology 5.77×, clustering 4.56× peak on four domains); random
//! *movement* destroys the benefit (epidemiology peak 1.14×); grid
//! initialization reduces it (proliferation 1.82×); for neuroscience the
//! static-detection mechanism hides most of the benefit (below-average
//! speedup with detection on; 3.80× at frequency 20 with detection off).
//! Sorting helps even on one domain, because it also aligns memory with
//! space.

use bdm_bench::{emit, fmt_secs, fmt_speedup, header, Args, RunSpec};
use bdm_core::OptLevel;
use bdm_util::Table;

const FREQUENCIES: [Option<usize>; 6] = [None, Some(1), Some(5), Some(10), Some(20), Some(50)];

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header(
        "Figure 12: agent sorting and balancing frequency study",
        &args,
    );

    let agents = args.scale(8_000);
    // Must cover several periods of the largest frequency (50).
    let iterations = args.iters(120);
    let threads = args.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let domain_configs: Vec<usize> = if threads >= 4 {
        vec![4, 1]
    } else {
        vec![threads.min(2), 1]
    };
    println!("agents={agents} iterations={iterations} (baseline per row-group: sorting off)\n");

    // `sort frequency` configures the scheduler's built-in `agent_sorting`
    // operation; the "sorting time" column reads that op's accumulated
    // wall-clock time back from the scheduler's per-op timings.
    let mut table = Table::new([
        "domains",
        "model",
        "sort frequency",
        "speedup vs no sorting",
        "sorting time (total)",
    ]);
    for &domains in &domain_configs {
        for name in args.selected_models() {
            let mut baseline = None;
            for freq in FREQUENCIES {
                let mut spec = RunSpec::new(&name, agents, iterations)
                    .with_opt(OptLevel::StaticDetection)
                    .with_topology(Some(threads), Some(domains.min(threads)));
                spec.sort_freq = Some(freq);
                let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
                let per_iter = report.per_iter_secs();
                let base = *baseline.get_or_insert(per_iter);
                table.row([
                    domains.to_string(),
                    name.clone(),
                    freq.map_or("off".to_string(), |f| f.to_string()),
                    fmt_speedup(base / per_iter),
                    fmt_secs(report.bucket("agent_sorting")),
                ]);
            }
        }
    }
    emit(&table, "fig12_sorting_freq", &args);

    // The paper's neuroscience aside: with static detection disabled, the
    // sorting benefit reappears (3.80x at frequency 20).
    if args.selected_models().iter().any(|m| m == "neuroscience") {
        println!(
            "neuroscience with static detection OFF (paper: sorting regains 3.80x at freq 20):"
        );
        let mut aside = Table::new(["sort frequency", "speedup vs no sorting"]);
        let mut baseline = None;
        for freq in [None, Some(20)] {
            let mut spec = RunSpec::new("neuroscience", agents, iterations)
                .with_opt(OptLevel::SortExtraMemory) // ladder stops before static detection
                .with_topology(Some(threads), args.domains);
            spec.sort_freq = Some(freq);
            let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
            let per_iter = report.per_iter_secs();
            let base = *baseline.get_or_insert(per_iter);
            aside.row([
                freq.map_or("off".to_string(), |f| f.to_string()),
                fmt_speedup(base / per_iter),
            ]);
        }
        emit(&aside, "fig12_neuroscience_aside", &args);
    }
}
