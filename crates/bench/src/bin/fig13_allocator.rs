//! **Figure 13** — memory allocator comparison (runtime speedup and memory
//! consumption).
//!
//! The paper compares the BioDynaMo pool allocator against ptmalloc2 and
//! jemalloc (tcmalloc deadlocked) in four configurations per simulation.
//! Substitution (DESIGN.md §3): glibc's allocator *is* ptmalloc2, so the
//! system-allocator configuration is exact; jemalloc/tcmalloc are not
//! redistributable here. We measure the same contrast the figure exists to
//! show — pool allocator on/off for agents and behaviors — plus the
//! epidemiology-only extra-sorting-memory interaction the paper calls out.
//!
//! Paper observations to reproduce in shape: the pool allocator is up to
//! 1.52× faster than ptmalloc2 (median 1.19×) while consuming slightly
//! *less* memory on average (−1.41%).

use bdm_bench::{emit, fmt_bytes, fmt_secs, fmt_speedup, header, Args, RunSpec};
use bdm_core::OptLevel;
use bdm_util::{median, Table};

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header("Figure 13: memory allocator comparison", &args);

    let agents = args.scale(8_000);
    let iterations = args.iters(15);
    println!(
        "agents={agents} iterations={iterations}; allocation-heavy models (oncology,\n\
         cell_proliferation, neuroscience) stress the allocator most\n"
    );

    // The four configurations per simulation (pool on/off × extra sorting
    // memory on/off; the latter only matters for models that sort with the
    // copy-keeping strategy, mirroring the paper's epidemiology remark).
    let configs: [(&str, bool, bool); 4] = [
        ("system allocator", false, false),
        ("system + extra sort memory", false, true),
        ("pool allocator", true, false),
        ("pool + extra sort memory", true, true),
    ];

    let mut table = Table::new([
        "model",
        "configuration",
        "s/iteration",
        "speedup vs system",
        "peak memory",
        "pool allocations",
    ]);
    let mut speedups = Vec::new();
    let mut memory_ratios = Vec::new();
    for name in args.selected_models() {
        let mut base: Option<(f64, u64)> = None;
        for (label, use_pool, extra_mem) in configs {
            let mut spec = RunSpec::new(&name, agents, iterations)
                .with_opt(OptLevel::StaticDetection)
                .with_topology(args.threads, args.domains);
            spec.use_pool = Some(use_pool);
            spec.extra_mem = Some(extra_mem);
            let report = bdm_bench::measure_median(&spec, args.repeats, args.no_subprocess);
            let per_iter = report.per_iter_secs();
            let (base_secs, base_mem) = *base.get_or_insert((per_iter, report.peak_rss_bytes));
            let speedup = base_secs / per_iter;
            table.row([
                name.clone(),
                label.to_string(),
                fmt_secs(per_iter),
                fmt_speedup(speedup),
                fmt_bytes(report.peak_rss_bytes),
                report.pool_allocations.to_string(),
            ]);
            if label == "pool allocator" {
                speedups.push(speedup);
                if base_mem > 0 && report.peak_rss_bytes > 0 {
                    memory_ratios.push(report.peak_rss_bytes as f64 / base_mem as f64);
                }
            }
        }
    }
    emit(&table, "fig13_allocator", &args);

    println!(
        "median pool-allocator speedup: {} (paper: 1.19x over ptmalloc2, up to 1.52x)",
        median(&speedups).map_or("n/a".into(), fmt_speedup)
    );
    if let Some(m) = median(&memory_ratios) {
        println!(
            "median pool-allocator memory ratio: {:.3} (paper: 0.986, i.e. 1.41% below ptmalloc2)",
            m
        );
    }
}
