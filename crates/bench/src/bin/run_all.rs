//! **run_all** — executes every table/figure binary with quick settings and
//! collects their CSV output under `results/` (the equivalent of the
//! paper artifact's `run-main.sh`, Appendix A.2).
//!
//! Each experiment runs as a sibling binary from the same build directory;
//! flags given to `run_all` (e.g. `--agents`, `--threads`, `--out`) are
//! forwarded. Exit status is non-zero if any experiment fails.

use std::process::Command;

use bdm_util::Timer;

const EXPERIMENTS: [(&str, &[&str]); 13] = [
    ("table1_characteristics", &[]),
    ("table2_hardware", &[]),
    ("fig05_breakdown", &["--proxy"]),
    ("fig06_complexity", &[]),
    ("fig07_biocellion", &["--visualize"]),
    ("fig08_comparison", &[]),
    ("fig09_optimizations", &[]),
    ("fig10_scalability", &["--whole"]),
    ("fig10_scalability", &[]),
    ("fig11_neighbor", &[]),
    ("fig12_sorting_freq", &[]),
    ("fig13_allocator", &[]),
    ("sharded_scale", &[]),
];

fn main() {
    bdm_bench::child_guard();
    // Forward all our flags; add --quick/--csv unless the caller overrode.
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("binary directory")
        .to_path_buf();

    let mut failures = Vec::new();
    let total = Timer::start();
    for (binary, extra) in EXPERIMENTS {
        let mut cmd = Command::new(exe_dir.join(binary));
        cmd.args(extra);
        if !forwarded.iter().any(|a| a == "--no-quick") {
            cmd.arg("--quick");
        }
        cmd.arg("--csv");
        cmd.args(forwarded.iter().filter(|a| *a != "--no-quick"));
        println!("\n=================================================================");
        println!("running {binary} {}", extra.join(" "));
        println!("=================================================================");
        let t = Timer::start();
        match cmd.status() {
            Ok(status) if status.success() => {
                println!("[{binary} finished in {:.1}s]", t.elapsed_secs());
            }
            Ok(status) => {
                eprintln!("[{binary} FAILED: {status}]");
                failures.push(binary);
            }
            Err(err) => {
                eprintln!("[{binary} could not start: {err}]");
                failures.push(binary);
            }
        }
    }
    println!("\n=================================================================");
    println!(
        "run_all finished in {:.1}s; {} experiment(s) failed{}",
        total.elapsed_secs(),
        failures.len(),
        if failures.is_empty() {
            String::new()
        } else {
            format!(": {}", failures.join(", "))
        }
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
