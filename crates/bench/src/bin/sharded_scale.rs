//! Sharded-execution scaling: `cell_clustering` across in-process shard
//! counts (PR 10 tentpole demonstration).
//!
//! The paper's engine iterates one global uniform grid; the sharded engine
//! partitions the population into K Morton-range shards, each with its own
//! windowed grid, and runs an explicit halo exchange between iterations
//! (docs/ARCHITECTURE.md — "Sharded execution"). Results are bitwise
//! shard-count-invariant (`tests/sharded_conformance.rs`); this binary
//! measures what the exchange costs and how balanced the partition is.
//!
//! Default protocol is the ISSUE acceptance run: 10⁷ agents, 10 iterations,
//! K ∈ {1, 2, 4, 8}. `--shards K` pins a single shard count; `--quick`
//! drops to a CI-friendly 50k agents.
//!
//! Columns: wall-clock per iteration, the `halo_exchange` and
//! `environment_update` scheduler buckets per iteration, exchanges executed
//! vs skipped (generation-keyed skip-if-unchanged), and the owned/halo
//! population spread across shards. A second table details the per-shard
//! owned/halo counts and grid-build times of the largest K.

use bdm_bench::{emit, fmt_secs, header, Args};
use bdm_core::Param;
use bdm_util::{Table, Timer};

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header("Sharded execution scaling (cell_clustering)", &args);

    let agents = args
        .agents
        .unwrap_or(if args.quick { 50_000 } else { 10_000_000 });
    let iterations = args.iters(10);
    let sweep: Vec<usize> = match args.shards {
        Some(k) => vec![k],
        None => vec![1, 2, 4, 8],
    };
    println!("agents={agents} iterations={iterations} shards={sweep:?}\n");

    let mut table = Table::new([
        "shards",
        "s/iter",
        "exchange s/iter",
        "env update s/iter",
        "exchanges",
        "skips",
        "owned min..max",
        "halo min..max",
    ]);
    let mut detail: Option<(usize, Table)> = None;
    for &k in &sweep {
        let model = bdm_bench::model_or_die("cell_clustering", agents);
        let mut sim = model.build(Param {
            shards: k,
            seed: args.seed,
            threads: args.threads,
            numa_domains: args.domains,
            ..Param::default()
        });
        let timer = Timer::start();
        sim.simulate(iterations);
        let wall = timer.elapsed_secs();

        let per_iter = wall / iterations as f64;
        let bucket = |name: &str| {
            sim.time_buckets()
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0.0, |(_, d)| d.as_secs_f64())
                / iterations as f64
        };
        let (exchanges, skips, owned, halo) = match sim.shard_report() {
            Some(report) => {
                assert_eq!(report.shards, k, "report covers every shard");
                let owned: Vec<usize> = report.per_shard.iter().map(|s| s.owned).collect();
                let halo: Vec<usize> = report.per_shard.iter().map(|s| s.halo).collect();
                assert_eq!(
                    owned.iter().sum::<usize>(),
                    sim.num_agents(),
                    "ownership partitions the population"
                );
                if detail.as_ref().is_none_or(|(prev, _)| k > *prev) {
                    let mut t = Table::new(["shard", "owned", "halo", "grid build"]);
                    for (idx, s) in report.per_shard.iter().enumerate() {
                        t.row([
                            idx.to_string(),
                            s.owned.to_string(),
                            s.halo.to_string(),
                            fmt_secs(s.grid_build.as_secs_f64()),
                        ]);
                    }
                    detail = Some((k, t));
                }
                (report.exchanges, report.exchange_skips, owned, halo)
            }
            // K == 1 runs on the classic single-engine path: no partition,
            // no halo, the whole population "owned" by the one engine.
            None => (0, 0, vec![sim.num_agents()], vec![0]),
        };
        let span = |v: &[usize]| {
            let (min, max) = (v.iter().min().unwrap(), v.iter().max().unwrap());
            format!("{min}..{max}")
        };
        table.row([
            k.to_string(),
            format!("{per_iter:.4}"),
            fmt_secs(bucket("halo_exchange")),
            fmt_secs(bucket("environment_update")),
            exchanges.to_string(),
            skips.to_string(),
            span(&owned),
            span(&halo),
        ]);
    }
    emit(&table, "sharded_scale", &args);
    if let Some((k, t)) = detail {
        println!("per-shard detail at K={k}:");
        emit(&t, "sharded_scale_shards", &args);
    }
}
