//! Supervision overhead: what the sentinel and the restore-point ring cost
//! when nothing goes wrong.
//!
//! For every selected model, three runs with identical parameters:
//!
//! 1. **plain** — `Simulation::simulate`, no health policy, no ring;
//! 2. **sentinel** — health policy scanning every iteration, still plain
//!    `simulate` (isolates the scan cost);
//! 3. **supervised** — the full [`SupervisedRunner`] loop: sentinel, panic
//!    boundary, and periodic ring captures (interval = half the run, so two
//!    captures land inside the timed window). The runner's one-time initial
//!    capture is taken *before* the timer starts — it amortizes to zero in
//!    a long run and would otherwise dominate a short measurement.
//!
//! The committed acceptance number (docs/PERFORMANCE.md — supervision
//! overhead) is this binary at the 10⁶-agent `cell_clustering` 2-thread
//! protocol; the budget is **< 5%** end-to-end.
//!
//! [`SupervisedRunner`]: bdm_checkpoint::SupervisedRunner

use std::time::Instant;

use bdm_bench::{emit, header, Args};
use bdm_checkpoint::{RecoveryPolicy, RingPolicy, SupervisedRunner};
use bdm_core::{HealthPolicy, Param};
use bdm_util::Table;

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header("Supervision overhead (no faults)", &args);

    let agents = args.scale(50_000);
    let iterations = args.iters(60);
    let ring_interval = (iterations as u64 / 2).max(1);
    println!(
        "agents={agents} iterations={iterations} sentinel=every iteration \
         ring: interval={ring_interval} depth=2 full_every=4\n"
    );

    let mut table = Table::new([
        "model",
        "plain s/iter",
        "sentinel s/iter",
        "sentinel ovh",
        "supervised s/iter",
        "total ovh",
        "captures",
        "ring bytes",
    ]);
    for name in args.selected_models() {
        let model = bdm_models::model_by_name(&name, agents).expect("known model");
        let base_param = || Param {
            seed: args.seed,
            threads: args.threads,
            numa_domains: args.domains,
            ..Param::default()
        };

        let mut plain_sim = model.build(base_param());
        let t0 = Instant::now();
        plain_sim.simulate(iterations);
        let plain = t0.elapsed().as_secs_f64() / iterations as f64;

        let mut sentinel_sim = model.build(Param {
            health: Some(HealthPolicy::every(1)),
            ..base_param()
        });
        let t1 = Instant::now();
        sentinel_sim.simulate(iterations);
        let sentinel = t1.elapsed().as_secs_f64() / iterations as f64;
        assert_eq!(
            sentinel_sim.stats().violations_detected,
            0,
            "{name}: clean run must not report violations"
        );

        let supervised_sim = model.build(Param {
            health: Some(HealthPolicy::every(1)),
            ..base_param()
        });
        let mut runner = SupervisedRunner::new(
            supervised_sim,
            RecoveryPolicy {
                ring: RingPolicy {
                    interval: ring_interval,
                    depth: 2,
                    full_every: 4,
                },
                max_attempts: 1,
                degradations: Vec::new(),
            },
        );
        // Take the one-time initial capture outside the timed window.
        runner.run(0).expect("initial capture");
        let t2 = Instant::now();
        let report = runner.run(iterations as u64).expect("clean run");
        let supervised = t2.elapsed().as_secs_f64() / iterations as f64;
        assert_eq!(report.attempts, 0, "{name}: clean run must not recover");

        let pct = |a: f64| format!("{:+.1}%", (a / plain - 1.0) * 100.0);
        table.row([
            name.clone(),
            format!("{plain:.4}"),
            format!("{sentinel:.4}"),
            pct(sentinel),
            format!("{supervised:.4}"),
            pct(supervised),
            report.captures.to_string(),
            report.ring_bytes.to_string(),
        ]);
    }
    emit(&table, "supervised_overhead", &args);
}
