//! Supervised soak: fault-injected execution with recovery conformance.
//!
//! For every selected model: build a seeded [`FaultPlan`] of panics and NaN
//! position writes, run the model under the [`SupervisedRunner`], and
//! require (i) zero process aborts — every fault is caught and rolled back,
//! (ii) a clean [`RecoveryReport`] (every recovery confirmed by replay), and
//! (iii) a final state **bitwise identical** to an undisturbed reference
//! run with the same parameters. Exits non-zero on any divergence, so CI
//! can gate on it (the `supervised_soak` job).
//!
//! [`FaultPlan`]: bdm_core::FaultPlan
//! [`RecoveryReport`]: bdm_checkpoint::RecoveryReport
//! [`SupervisedRunner`]: bdm_checkpoint::SupervisedRunner

use bdm_bench::{emit, header, Args};
use bdm_checkpoint::{RecoveryPolicy, RingPolicy, SupervisedRunner};
use bdm_core::testing::{fingerprint, first_divergence};
use bdm_core::{FaultPlan, FaultSite, HealthPolicy, Param};
use bdm_util::Table;

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header("Supervised soak (fault-injected recovery)", &args);

    let agents = args.scale(5_000);
    let iterations = args.iters(120).max(10) as u64;
    let faults = 6usize;
    println!("agents={agents} iterations={iterations} injected_faults={faults}\n");

    // Keep injected-panic chatter out of the soak log; the supervisor
    // catches and reports every unwind itself.
    std::panic::set_hook(Box::new(|_| {}));

    let mut table = Table::new([
        "model",
        "panics",
        "violations",
        "attempts",
        "succeeded",
        "captures",
        "ring bytes",
        "conformance",
    ]);
    let mut failures = 0;
    for name in args.selected_models() {
        let model = bdm_models::model_by_name(&name, agents).expect("known model");
        let mk_param = || Param {
            seed: args.seed,
            threads: args.threads,
            numa_domains: args.domains,
            health: Some(HealthPolicy::every(4)),
            ..Param::default()
        };

        // Undisturbed reference with identical parameters — run twice:
        // bitwise conformance is only a meaningful gate where the
        // unsupervised engine is itself run-to-run reproducible at this
        // configuration (oncology at >1 thread, for example, is not).
        let mut reference = model.build(mk_param());
        reference.simulate(iterations as usize);
        let mut reference2 = model.build(mk_param());
        reference2.simulate(iterations as usize);
        let engine_reproducible =
            first_divergence(&fingerprint(&reference), &fingerprint(&reference2)).is_none();

        let sites = [
            FaultSite::BeforeOp("agent_ops".into()),
            FaultSite::BeforeOp("environment_update".into()),
            FaultSite::BeforeOp("teardown".into()),
            FaultSite::GridRebuild,
        ];
        let plan = FaultPlan::seeded(args.seed, &sites, 2, iterations - 1, faults);
        let mut sim = model.build(mk_param());
        sim.set_fault_plan(plan);

        let mut runner = SupervisedRunner::new(
            sim,
            RecoveryPolicy {
                ring: RingPolicy {
                    interval: (iterations / 10).max(2),
                    depth: 2,
                    full_every: 4,
                },
                max_attempts: 4 * faults as u64,
                degradations: Vec::new(),
            },
        );
        let report = match runner.run(iterations) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("{name}: supervision failed: {err}");
                failures += 1;
                continue;
            }
        };

        let verdict = if !engine_reproducible {
            "n/a (engine not run-to-run reproducible here)".to_string()
        } else {
            match first_divergence(&fingerprint(&reference), &fingerprint(runner.sim())) {
                None => "bitwise identical".to_string(),
                Some(d) => {
                    failures += 1;
                    format!("DIVERGED: {d}")
                }
            }
        };
        if report.attempts != report.succeeded {
            eprintln!(
                "{name}: {} of {} recoveries unconfirmed",
                report.attempts - report.succeeded,
                report.attempts
            );
            failures += 1;
        }
        table.row([
            name.clone(),
            report.panics_caught.to_string(),
            report.violations_handled.to_string(),
            report.attempts.to_string(),
            report.succeeded.to_string(),
            report.captures.to_string(),
            report.ring_bytes.to_string(),
            verdict,
        ]);
    }
    emit(&table, "supervised_soak", &args);
    if failures > 0 {
        eprintln!("\nsupervised_soak: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("\nsupervised_soak: all models recovered bitwise-identically");
}
