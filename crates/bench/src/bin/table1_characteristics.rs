//! **Table 1** — performance-relevant simulation characteristics.
//!
//! Prints the paper's Table 1 from the models' self-descriptions, then
//! verifies each claimed characteristic against a short actual run (e.g.,
//! "deletes agents" must show `agents_removed > 0`). The verification column
//! makes the table a living artifact instead of a transcription.

use bdm_bench::{emit, header, Args, RunSpec};
use bdm_core::OptLevel;
use bdm_models::{all_models, Characteristics};
use bdm_util::Table;

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header(
        "Table 1: performance-relevant simulation characteristics",
        &args,
    );

    // One column per registered model, so new scenarios (e.g. cell_sorting,
    // Section 6.5) automatically show up alongside the Table 1 five.
    let models = all_models(100);
    let mut columns = vec!["characteristic".to_string()];
    columns.extend(models.iter().map(|m| m.name().to_string()));
    let mut table = Table::new(columns);
    let chars: Vec<Characteristics> = models.iter().map(|m| m.characteristics()).collect();
    let mut push = |label: &str, f: &dyn Fn(&Characteristics) -> String| {
        let mut row = vec![label.to_string()];
        row.extend(chars.iter().map(f));
        table.row(row);
    };
    push("create new agents during simulation", &|c| {
        Characteristics::mark(c.creates_agents).into()
    });
    push("delete agents during simulation", &|c| {
        Characteristics::mark(c.deletes_agents).into()
    });
    push("agents modify neighbors", &|c| {
        Characteristics::mark(c.modifies_neighbors).into()
    });
    push("load imbalance", &|c| {
        Characteristics::mark(c.load_imbalance).into()
    });
    push("agents move randomly", &|c| {
        Characteristics::mark(c.random_movement).into()
    });
    push("simulation uses diffusion", &|c| {
        Characteristics::mark(c.uses_diffusion).into()
    });
    push("simulation has static regions", &|c| {
        Characteristics::mark(c.has_static_regions).into()
    });
    push("number of iterations (paper)", &|c| {
        c.paper_iterations.to_string()
    });
    push("number of agents (paper, millions)", &|c| {
        format!("{:.1}", c.paper_agents as f64 / 1e6)
    });
    push("number of diffusion volumes (paper)", &|c| {
        if c.paper_diffusion_volumes == 0 {
            "0".into()
        } else {
            format!("{:.2e}", c.paper_diffusion_volumes as f64)
        }
    });
    emit(&table, "table1_characteristics", &args);

    // Verify the dynamic characteristics against an actual scaled-down run.
    println!("verifying characteristics against actual runs…");
    let agents = args.scale(800);
    let mut verify = Table::new(["model", "claims", "observed", "status"]);
    let mut failures = 0;
    for model in &models {
        let c = model.characteristics();
        // Each model's default horizon is long enough for its claimed
        // behaviors to appear (e.g. proliferation's first division).
        let iterations = args
            .iterations
            .unwrap_or_else(|| model.default_iterations());
        let spec = RunSpec::new(model.name(), agents, iterations)
            .with_opt(OptLevel::StaticDetection)
            .with_topology(args.threads, args.domains);
        let report = bdm_bench::measure(&spec, args.no_subprocess);
        let mut claims = Vec::new();
        let mut observed = Vec::new();
        let mut ok = true;
        let mut check = |label: &str, claim: bool, actual: bool| {
            claims.push(format!("{label}={}", Characteristics::mark(claim)));
            observed.push(format!("{label}={}", Characteristics::mark(actual)));
            // A claimed behavior must be observed; unclaimed behaviors must
            // stay absent (except static regions: detection is best-effort
            // on tiny scales).
            if claim != actual {
                ok = false;
            }
        };
        check("creates", c.creates_agents, report.agents_added > 0);
        check("deletes", c.deletes_agents, report.agents_removed > 0);
        if c.has_static_regions {
            check("static", true, report.static_skipped > 0);
        }
        verify.row([
            model.name().to_string(),
            claims.join(" "),
            observed.join(" "),
            if ok {
                "ok".into()
            } else {
                "MISMATCH".to_string()
            },
        ]);
        if !ok {
            failures += 1;
        }
    }
    emit(&verify, "table1_verification", &args);
    if failures > 0 {
        eprintln!("{failures} characteristic mismatch(es) — see table above");
        std::process::exit(1);
    }
}
