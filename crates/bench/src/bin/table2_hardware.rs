//! **Table 2** — benchmark hardware.
//!
//! The paper tabulates its three Xeon servers (System A/B/C). This binary
//! introspects the *actual* host (CPU model, cores, memory, NUMA nodes, OS)
//! and prints it alongside the paper's systems, plus the **virtual NUMA
//! topology** the engine will use (the substitution documented in
//! DESIGN.md §3).

use bdm_bench::{emit, header, Args};
use bdm_numa::NumaTopology;
use bdm_util::Table;

fn read_first_match(path: &str, prefix: &str) -> Option<String> {
    let content = std::fs::read_to_string(path).ok()?;
    content.lines().find_map(|line| {
        line.strip_prefix(prefix)
            .map(|rest| rest.trim_start_matches([':', ' ', '\t']).trim().to_string())
    })
}

fn cpu_model() -> String {
    read_first_match("/proc/cpuinfo", "model name").unwrap_or_else(|| "unknown CPU".into())
}

fn total_memory_gb() -> String {
    read_first_match("/proc/meminfo", "MemTotal")
        .and_then(|v| v.split_whitespace().next().map(str::to_string))
        .and_then(|kb| kb.parse::<f64>().ok())
        .map(|kb| format!("{:.0} GB", kb / 1024.0 / 1024.0))
        .unwrap_or_else(|| "unknown".into())
}

fn os_version() -> String {
    read_first_match("/etc/os-release", "PRETTY_NAME")
        .map(|s| s.trim_matches('"').to_string())
        .or_else(|| {
            std::fs::read_to_string("/proc/version")
                .ok()
                .map(|v| v.split_whitespace().take(3).collect::<Vec<_>>().join(" "))
        })
        .unwrap_or_else(|| "unknown OS".into())
}

fn main() {
    bdm_bench::child_guard();
    let args = Args::parse();
    header("Table 2: benchmark hardware", &args);

    let mut table = Table::new(["system", "memory", "cpu", "os"]);
    table.row([
        "A (paper)".to_string(),
        "504 GB".into(),
        "4x Intel Xeon E7-8890 v3 @ 2.50GHz, 72 cores, 2 threads/core, 4 NUMA domains".into(),
        "CentOS 7.9.2009".into(),
    ]);
    table.row([
        "B (paper)".to_string(),
        "1008 GB".into(),
        "4x Intel Xeon E7-8890 v3 @ 2.50GHz, 72 cores, 2 threads/core, 4 NUMA domains".into(),
        "CentOS 7.9.2009".into(),
    ]);
    table.row([
        "C (paper)".to_string(),
        "62 GB".into(),
        "2x Intel Xeon E5-2683 v3 @ 2.00GHz, 28 cores, 2 threads/core, 2 NUMA domains".into(),
        "CentOS Stream 8".into(),
    ]);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    table.row([
        "this host".to_string(),
        total_memory_gb(),
        format!("{} ({cpus} hardware threads)", cpu_model()),
        os_version(),
    ]);
    emit(&table, "table2_hardware", &args);

    let topo = if args.threads.is_some() || args.domains.is_some() {
        let threads = args.threads.unwrap_or(cpus);
        NumaTopology::new(args.domains.unwrap_or(1).min(threads), threads)
    } else {
        NumaTopology::detect()
    };
    let mut vtable = Table::new(["virtual NUMA domain", "threads", "thread ids"]);
    for d in 0..topo.num_domains() {
        let range = topo.threads_of_domain(d);
        vtable.row([
            d.to_string(),
            topo.threads_in_domain(d).to_string(),
            format!("{}..{}", range.start, range.end),
        ]);
    }
    println!(
        "virtual topology in use ({} domains x {} threads; override with \
         BDM_NUMA_DOMAINS/BDM_THREADS or --domains/--threads):",
        topo.num_domains(),
        topo.num_threads()
    );
    emit(&vtable, "table2_virtual_topology", &args);
}
