//! # bdm-bench
//!
//! The benchmark harness: regenerates **every table and figure** of the
//! paper's evaluation (Section 6). One binary per experiment — see
//! DESIGN.md §5 for the full per-experiment index:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_characteristics` | Table 1 |
//! | `table2_hardware` | Table 2 |
//! | `fig05_breakdown` | Figure 5 (runtime breakdown; `--proxy` for the right panel) |
//! | `fig06_complexity` | Figure 6 (runtime/memory vs agent count) |
//! | `fig07_biocellion` | Figure 7 (Biocellion comparison; `--visualize` for 7a) |
//! | `fig08_comparison` | Figure 8 (Cortex3D/NetLogo comparison) |
//! | `fig09_optimizations` | Figure 9 (optimization ladder speedup/memory) |
//! | `fig10_scalability` | Figure 10 (strong scaling; `--whole` for 10a) |
//! | `fig11_neighbor` | Figure 11 (neighbor-search algorithms) |
//! | `fig12_sorting_freq` | Figure 12 (agent-sorting frequency study) |
//! | `fig13_allocator` | Figure 13 (memory allocator comparison) |
//! | `sharded_scale` | sharded execution: exchange cost and partition balance vs K |
//! | `run_all` | everything above with `--quick --csv` |
//!
//! Criterion microbenches for the individual substrates live in `benches/`.
//!
//! Every binary accepts the shared flags of [`Args`] (`--help` prints them)
//! and scales the paper's multi-million-agent workloads down to
//! laptop-friendly defaults; `--agents`/`--iterations`/`--max-exp` restore
//! any scale the host can hold.

pub mod args;
pub mod report;
pub mod runner;
pub mod spec;

pub use args::{Args, USAGE};
pub use report::{emit, emit_raw, fmt_bytes, fmt_pct, fmt_secs, fmt_speedup, header};
pub use runner::{
    child_guard, measure, measure_median, model_or_die, param_for, report_from_sim, run_spec_inproc,
};
pub use spec::{EngineKind, RunReport, RunSpec, ENVIRONMENTS};
