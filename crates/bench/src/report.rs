//! Output helpers shared by the figure binaries: headline printing, CSV
//! emission, and number formatting.

use std::path::Path;

use bdm_util::Table;

use crate::args::Args;

/// Prints the standard header of a figure binary.
pub fn header(title: &str, args: &Args) {
    let threads = args
        .threads
        .map(|t| t.to_string())
        .unwrap_or_else(|| "auto".into());
    let domains = args
        .domains
        .map(|d| d.to_string())
        .unwrap_or_else(|| "auto".into());
    println!("== {title} ==");
    println!(
        "   threads={threads} domains={domains} seed={}{}",
        args.seed,
        if args.quick { " (quick)" } else { "" }
    );
    println!();
}

/// Prints a table and, when `--csv` is set, writes `<out>/<name>.csv`.
pub fn emit(table: &Table, name: &str, args: &Args) {
    print!("{table}");
    println!();
    if args.csv {
        let path = args.out_dir.join(format!("{name}.csv"));
        match bdm_util::write_csv(table, &path) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("error writing {}: {err}", path.display()),
        }
    }
}

/// Writes raw CSV content (visualization dumps) honoring `--out`.
pub fn emit_raw(content: &str, name: &str, args: &Args) -> std::io::Result<std::path::PathBuf> {
    let path = args.out_dir.join(name);
    if let Some(parent) = Path::new(&path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Formats seconds adaptively (`µs`/`ms`/`s`).
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Formats a speedup factor (`12.3x`).
pub fn fmt_speedup(factor: f64) -> String {
    if factor >= 100.0 {
        format!("{factor:.0}x")
    } else {
        format!("{factor:.2}x")
    }
}

/// Formats a byte count (binary units) or `n/a` for zero (platforms without
/// RSS introspection report zero).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes == 0 {
        "n/a".into()
    } else {
        bdm_util::format_bytes(bytes)
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(fmt_secs(0.0000005), "0.5 µs");
        assert_eq!(fmt_secs(0.0123), "12.30 ms");
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_speedup(3.17159), "3.17x");
        assert_eq!(fmt_speedup(159.0), "159x");
        assert_eq!(fmt_bytes(0), "n/a");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_pct(0.763), "76.3%");
    }

    #[test]
    fn emit_raw_writes_under_out_dir() {
        let args = Args {
            out_dir: std::env::temp_dir().join("bdm_bench_report_test"),
            ..Args::default()
        };
        let path = emit_raw("x,y\n1,2\n", "dump.csv", &args).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x,y\n1,2\n");
        let _ = std::fs::remove_dir_all(&args.out_dir);
    }
}
