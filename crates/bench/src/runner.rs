//! Executes [`RunSpec`]s and collects [`RunReport`]s.
//!
//! By default every measurement runs in a **child process** (re-executing the
//! current benchmark binary with the spec in the `BDM_BENCH_CHILD`
//! environment variable) so peak-RSS numbers and allocator state are
//! per-configuration, as in the paper's per-configuration memory reports.
//! `--no-subprocess` (or `BDM_BENCH_INPROC=1`) switches to in-process
//! measurement; the harness also falls back to in-process execution when the
//! sandbox cannot spawn the child.

use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};

use bdm_core::{Param, Simulation};
use bdm_models::{model_by_name, BenchmarkModel};
use bdm_util::Timer;

use crate::spec::{EngineKind, RunReport, RunSpec};

/// Environment variable carrying the child spec.
pub const CHILD_ENV: &str = "BDM_BENCH_CHILD";
/// Environment variable forcing in-process measurement.
pub const INPROC_ENV: &str = "BDM_BENCH_INPROC";
/// Marker prefix of the child's report line on stdout.
pub const REPORT_PREFIX: &str = "BDMREPORT ";

/// Must be the first call in every benchmark binary's `main`. If the process
/// was spawned as a measurement child, runs the spec, prints the report
/// line, and exits.
pub fn child_guard() {
    if let Ok(kv) = std::env::var(CHILD_ENV) {
        let spec = match RunSpec::from_kv(&kv) {
            Ok(spec) => spec,
            Err(err) => {
                eprintln!("bench child: bad spec: {err}");
                std::process::exit(3);
            }
        };
        let report = run_spec_inproc(&spec);
        println!("{REPORT_PREFIX}{}", report.to_kv());
        std::process::exit(0);
    }
}

/// Executes a spec in the current process and returns its report.
pub fn run_spec_inproc(spec: &RunSpec) -> RunReport {
    match spec.engine {
        EngineKind::BioDynaMo => run_engine(spec),
        EngineKind::Baseline => run_baseline(spec),
    }
}

/// Translates a spec into engine parameters: ladder preset first, then the
/// individual overrides.
pub fn param_for(spec: &RunSpec) -> Param {
    let mut param = Param::default();
    if let Some(opt) = spec.opt {
        param = param.apply_opt_level(opt);
    }
    if let Some(env) = spec.env {
        param.environment = env;
    }
    if let Some(freq) = spec.sort_freq {
        param.agent_sort_frequency = freq;
    }
    if let Some(v) = spec.use_pool {
        param.use_pool_allocator = v;
    }
    if let Some(v) = spec.extra_mem {
        param.sort_use_extra_memory = v;
    }
    if let Some(v) = spec.detect_static {
        param.detect_static_agents = v;
    }
    if let Some(v) = spec.numa_aware {
        param.numa_aware_iteration = v;
    }
    if let Some(v) = spec.parallel_add_remove {
        param.parallel_add_remove = v;
    }
    param.threads = spec.threads;
    param.numa_domains = spec.domains;
    if let Some(k) = spec.shards {
        param.shards = k;
    }
    param.seed = spec.seed;
    param
}

fn run_engine(spec: &RunSpec) -> RunReport {
    let model = model_by_name(&spec.model, spec.agents)
        .unwrap_or_else(|| panic!("unknown model: {}", spec.model));
    let mut sim = model.build(param_for(spec));
    let timer = Timer::start();
    sim.simulate(spec.iterations);
    let wall_secs = timer.elapsed_secs();
    report_from_sim(&sim, spec.iterations, wall_secs)
}

/// Builds a report from a finished simulation (shared with the in-process
/// paths of the figure binaries).
pub fn report_from_sim(sim: &Simulation, iterations: usize, wall_secs: f64) -> RunReport {
    let stats = sim.stats();
    let mem = sim.memory_stats();
    RunReport {
        wall_secs,
        iterations,
        final_agents: sim.num_agents(),
        peak_rss_bytes: bdm_util::peak_rss_bytes().unwrap_or(0),
        buckets: sim
            .time_buckets()
            .iter()
            .map(|(name, d)| (name.to_string(), d.as_secs_f64()))
            .collect(),
        force_calculations: stats.force_calculations,
        static_skipped: stats.static_skipped,
        agents_added: stats.agents_added,
        agents_removed: stats.agents_removed,
        sorts: stats.sorts,
        env_bytes: sim.environment_memory_bytes() as u64,
        snapshot_bytes: sim.snapshot_memory_bytes() as u64,
        pool_reserved_bytes: mem.reserved_bytes,
        pool_allocations: mem.pool_allocations,
        system_allocations: mem.system_allocations,
        health_checks_run: stats.health_checks_run,
        violations_detected: stats.violations_detected,
        recoveries_attempted: stats.recoveries_attempted,
        recoveries_succeeded: stats.recoveries_succeeded,
        // Ring residency is supervisor-owned; supervised drivers (the soak
        // binary) fill it from their RecoveryReport.
        ckpt_bytes: 0,
    }
}

fn run_baseline(spec: &RunSpec) -> RunReport {
    let mut engine = bdm_baseline::engine_by_name(&spec.model, spec.seed, spec.agents)
        .unwrap_or_else(|| panic!("no baseline for model: {}", spec.model));
    let timer = Timer::start();
    engine.simulate(spec.iterations, 1.0);
    let wall_secs = timer.elapsed_secs();
    RunReport {
        wall_secs,
        iterations: spec.iterations,
        final_agents: engine.num_agents(),
        peak_rss_bytes: bdm_util::peak_rss_bytes().unwrap_or(0),
        env_bytes: engine.approx_heap_bytes() as u64,
        ..RunReport::default()
    }
}

static SUBPROCESS_BROKEN: AtomicBool = AtomicBool::new(false);

/// Runs a spec, in a child process unless disabled, and returns its report.
pub fn measure(spec: &RunSpec, no_subprocess: bool) -> RunReport {
    let inproc = no_subprocess
        || SUBPROCESS_BROKEN.load(Ordering::Relaxed)
        || std::env::var(INPROC_ENV).is_ok_and(|v| v == "1");
    if inproc {
        return run_spec_inproc(spec);
    }
    match measure_subprocess(spec) {
        Ok(report) => report,
        Err(err) => {
            if !SUBPROCESS_BROKEN.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "note: child-process measurement unavailable ({err}); running in-process"
                );
            }
            run_spec_inproc(spec)
        }
    }
}

fn measure_subprocess(spec: &RunSpec) -> Result<RunReport, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let output = Command::new(&exe)
        .env(CHILD_ENV, spec.to_kv())
        .env_remove("BDM_THREADS")
        .env_remove("BDM_NUMA_DOMAINS")
        .output()
        .map_err(|e| e.to_string())?;
    if !output.status.success() {
        return Err(format!(
            "child exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .find_map(|l| l.strip_prefix(REPORT_PREFIX))
        .ok_or_else(|| format!("no report line in child output: {stdout:?}"))?;
    RunReport::from_kv(line)
}

/// Runs `repeats` measurements and returns the one with the median wall
/// time (so bucket breakdowns stay internally consistent).
pub fn measure_median(spec: &RunSpec, repeats: usize, no_subprocess: bool) -> RunReport {
    let repeats = repeats.max(1);
    let mut reports: Vec<RunReport> = (0..repeats)
        .map(|rep| {
            let mut spec = spec.clone();
            spec.seed = spec.seed.wrapping_add(rep as u64);
            measure(&spec, no_subprocess)
        })
        .collect();
    reports.sort_by(|a, b| a.wall_secs.partial_cmp(&b.wall_secs).expect("finite walls"));
    reports.swap_remove(reports.len() / 2)
}

/// Resolves a benchmark model, panicking with the valid names on failure.
pub fn model_or_die(name: &str, agents: usize) -> Box<dyn BenchmarkModel> {
    model_by_name(name, agents).unwrap_or_else(|| {
        panic!(
            "unknown model: {name} (expected cell_proliferation, cell_clustering, \
             epidemiology, neuroscience, oncology, or cell_sorting)"
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_core::{EnvironmentKind, OptLevel};

    fn tiny(model: &str) -> RunSpec {
        RunSpec::new(model, 60, 3).with_topology(Some(2), Some(2))
    }

    #[test]
    fn engine_run_produces_report() {
        let report = run_spec_inproc(&tiny("cell_proliferation"));
        assert_eq!(report.iterations, 3);
        // The proliferation model initializes a cube of floor(cbrt(60))³
        // agents; growth then adds more.
        assert!(report.final_agents >= 27, "{}", report.final_agents);
        assert!(report.wall_secs > 0.0);
        assert!(report.bucket("agent_ops") > 0.0);
        assert!(report.bucket("environment_update") > 0.0);
    }

    #[test]
    fn baseline_run_produces_report() {
        let report = run_spec_inproc(&tiny("cell_sorting").with_baseline());
        assert_eq!(report.final_agents, 60);
        assert!(report.wall_secs > 0.0);
        assert!(report.buckets.is_empty(), "baseline has no buckets");
    }

    #[test]
    fn param_for_applies_ladder_then_overrides() {
        let mut spec = tiny("oncology").with_opt(OptLevel::Standard);
        spec.env = Some(EnvironmentKind::Octree);
        spec.use_pool = Some(true);
        let param = param_for(&spec);
        // The Standard ladder sets kd-tree + everything off; the overrides
        // then force the octree and the pool allocator back on.
        assert_eq!(param.environment, EnvironmentKind::Octree);
        assert!(param.use_pool_allocator);
        assert!(!param.parallel_add_remove);
        assert_eq!(param.threads, Some(2));
        assert_eq!(param.seed, 4357);
    }

    #[test]
    fn measure_median_varies_seed_and_returns_one() {
        let report = measure_median(&tiny("cell_clustering"), 3, true);
        assert_eq!(report.iterations, 3);
        assert!(report.wall_secs > 0.0);
    }

    #[test]
    fn opt_ladder_runs_every_level() {
        for opt in OptLevel::ALL {
            let report = run_spec_inproc(&tiny("oncology").with_opt(opt));
            assert!(report.final_agents > 0, "{opt:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        run_spec_inproc(&tiny("martian_biology"));
    }
}
