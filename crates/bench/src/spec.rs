//! Run specifications and reports exchanged between the harness parent
//! process and its measurement child processes.
//!
//! Each measurement runs in a **fresh child process** by default so that
//! (i) peak-RSS numbers describe exactly one configuration (the paper reports
//! per-configuration memory consumption in Figures 6, 8, 9, 11, 13) and
//! (ii) allocator state cannot leak between configurations. The protocol is a
//! single `key=value …` line per direction — no serialization crate needed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bdm_core::{EnvironmentKind, OptLevel};

/// Which engine executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The optimized BioDynaMo engine (`bdm-core`).
    BioDynaMo,
    /// The serial comparator (`bdm-baseline`, the Cortex3D/NetLogo stand-in).
    Baseline,
}

/// A fully-described measurement: model, scale, engine configuration.
///
/// `opt` applies the cumulative optimization ladder first; the `Option`al
/// overrides then adjust individual switches (used by the parameter-study
/// figures). `None` keeps the ladder/default value.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Model name (`bdm_models::model_by_name`).
    pub model: String,
    /// Initial agent count.
    pub agents: usize,
    /// Iterations to execute.
    pub iterations: usize,
    /// Engine selection.
    pub engine: EngineKind,
    /// Optimization-ladder preset (BioDynaMo engine only).
    pub opt: Option<OptLevel>,
    /// Neighbor-search backend override (Figure 11).
    pub env: Option<EnvironmentKind>,
    /// Agent-sorting frequency override (Figure 12); `Some(None)` disables
    /// sorting, `Some(Some(f))` sorts every `f` iterations.
    pub sort_freq: Option<Option<usize>>,
    /// Pool-allocator override (Figure 13).
    pub use_pool: Option<bool>,
    /// Extra-memory-during-sorting override (Figures 9/13).
    pub extra_mem: Option<bool>,
    /// Static-detection override (Figures 8/9).
    pub detect_static: Option<bool>,
    /// NUMA-aware-iteration override (Section 6.10).
    pub numa_aware: Option<bool>,
    /// Parallel add/remove override (Section 3.2).
    pub parallel_add_remove: Option<bool>,
    /// Worker threads (`None` = detect).
    pub threads: Option<usize>,
    /// Virtual NUMA domains (`None` = detect).
    pub domains: Option<usize>,
    /// In-process shard count (`None` = 1, the classic single-engine path).
    pub shards: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl RunSpec {
    /// A default-engine spec for `model` at the given scale.
    pub fn new(model: &str, agents: usize, iterations: usize) -> RunSpec {
        RunSpec {
            model: model.to_string(),
            agents,
            iterations,
            engine: EngineKind::BioDynaMo,
            opt: None,
            env: None,
            sort_freq: None,
            use_pool: None,
            extra_mem: None,
            detect_static: None,
            numa_aware: None,
            parallel_add_remove: None,
            threads: None,
            domains: None,
            shards: None,
            seed: 4357,
        }
    }

    /// Builder: apply an optimization-ladder preset.
    pub fn with_opt(mut self, opt: OptLevel) -> RunSpec {
        self.opt = Some(opt);
        self
    }

    /// Builder: run on the serial baseline engine.
    pub fn with_baseline(mut self) -> RunSpec {
        self.engine = EngineKind::Baseline;
        self
    }

    /// Builder: thread/domain configuration.
    pub fn with_topology(mut self, threads: Option<usize>, domains: Option<usize>) -> RunSpec {
        self.threads = threads;
        self.domains = domains;
        self
    }

    /// Serializes to the single-line `key=value` wire format.
    pub fn to_kv(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "model={} agents={} iterations={} engine={} seed={}",
            self.model,
            self.agents,
            self.iterations,
            match self.engine {
                EngineKind::BioDynaMo => "bdm",
                EngineKind::Baseline => "baseline",
            },
            self.seed
        );
        if let Some(opt) = self.opt {
            let _ = write!(s, " opt={}", opt_to_index(opt));
        }
        if let Some(env) = self.env {
            let _ = write!(s, " env={}", env_to_str(env));
        }
        if let Some(freq) = self.sort_freq {
            let _ = write!(s, " sort_freq={}", freq.map_or(0, |f| f.max(1)));
        }
        for (key, value) in [
            ("use_pool", self.use_pool),
            ("extra_mem", self.extra_mem),
            ("detect_static", self.detect_static),
            ("numa_aware", self.numa_aware),
            ("par_add_remove", self.parallel_add_remove),
        ] {
            if let Some(v) = value {
                let _ = write!(s, " {key}={}", u8::from(v));
            }
        }
        if let Some(t) = self.threads {
            let _ = write!(s, " threads={t}");
        }
        if let Some(d) = self.domains {
            let _ = write!(s, " domains={d}");
        }
        if let Some(k) = self.shards {
            let _ = write!(s, " shards={k}");
        }
        s
    }

    /// Parses the wire format produced by [`RunSpec::to_kv`].
    pub fn from_kv(line: &str) -> Result<RunSpec, String> {
        let map = parse_kv(line)?;
        let get = |key: &str| -> Result<&str, String> {
            map.get(key)
                .map(String::as_str)
                .ok_or_else(|| format!("missing key: {key}"))
        };
        let parse_num = |key: &str| -> Result<usize, String> {
            get(key)?
                .parse::<usize>()
                .map_err(|_| format!("bad number for {key}"))
        };
        let parse_bool = |key: &str| -> Result<Option<bool>, String> {
            map.get(key)
                .map(|v| match v.as_str() {
                    "0" => Ok(false),
                    "1" => Ok(true),
                    other => Err(format!("bad bool for {key}: {other}")),
                })
                .transpose()
        };
        let engine = match get("engine")? {
            "bdm" => EngineKind::BioDynaMo,
            "baseline" => EngineKind::Baseline,
            other => return Err(format!("bad engine: {other}")),
        };
        Ok(RunSpec {
            model: get("model")?.to_string(),
            agents: parse_num("agents")?,
            iterations: parse_num("iterations")?,
            engine,
            opt: map
                .get("opt")
                .map(|v| {
                    v.parse::<usize>()
                        .ok()
                        .and_then(opt_from_index)
                        .ok_or_else(|| format!("bad opt: {v}"))
                })
                .transpose()?,
            env: map
                .get("env")
                .map(|v| env_from_str(v).ok_or_else(|| format!("bad env: {v}")))
                .transpose()?,
            sort_freq: map
                .get("sort_freq")
                .map(|v| {
                    v.parse::<usize>()
                        .map(|f| if f == 0 { None } else { Some(f) })
                        .map_err(|_| "bad sort_freq".to_string())
                })
                .transpose()?,
            use_pool: parse_bool("use_pool")?,
            extra_mem: parse_bool("extra_mem")?,
            detect_static: parse_bool("detect_static")?,
            numa_aware: parse_bool("numa_aware")?,
            parallel_add_remove: parse_bool("par_add_remove")?,
            threads: map
                .get("threads")
                .map(|v| v.parse().map_err(|_| "bad threads".to_string()))
                .transpose()?,
            domains: map
                .get("domains")
                .map(|v| v.parse().map_err(|_| "bad domains".to_string()))
                .transpose()?,
            shards: map
                .get("shards")
                .map(|v| v.parse().map_err(|_| "bad shards".to_string()))
                .transpose()?,
            seed: get("seed")?.parse().map_err(|_| "bad seed".to_string())?,
        })
    }
}

/// Measurements of one finished run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Wall-clock seconds of the measured iterations (excludes model build).
    pub wall_secs: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Live agents after the run.
    pub final_agents: usize,
    /// Peak resident set size of the (child) process, bytes.
    pub peak_rss_bytes: u64,
    /// Per-operation wall-clock buckets, seconds (Figure 5).
    pub buckets: BTreeMap<String, f64>,
    /// Pairwise force calculations executed.
    pub force_calculations: u64,
    /// Force calculations skipped by static detection.
    pub static_skipped: u64,
    /// Agents added during the run.
    pub agents_added: u64,
    /// Agents removed during the run.
    pub agents_removed: u64,
    /// Agent sorting passes executed.
    pub sorts: u64,
    /// Heap footprint of the neighbor-search index, bytes (Figure 11d).
    pub env_bytes: u64,
    /// Heap bytes of the engine's per-iteration snapshot arrays, per the
    /// SoA layout (positions + diameters + payloads-if-gathered); 0 for the
    /// baseline engine, which has no snapshot.
    pub snapshot_bytes: u64,
    /// Bytes reserved by the pool allocator.
    pub pool_reserved_bytes: u64,
    /// Allocations served by the pool allocator.
    pub pool_allocations: u64,
    /// Allocations that used the system allocator.
    pub system_allocations: u64,
    /// Health sentinel scans executed (0 when the sentinel is off).
    pub health_checks_run: u64,
    /// Health violations detected (sentinel scans + counted sentinel
    /// reroutes of former asserts).
    pub violations_detected: u64,
    /// Supervisor recovery attempts (rollback + replay).
    pub recoveries_attempted: u64,
    /// Recoveries confirmed by a clean replay past the failure point.
    pub recoveries_succeeded: u64,
    /// Bytes resident in the supervisor's checkpoint ring at the end of the
    /// run (0 for unsupervised runs).
    pub ckpt_bytes: u64,
}

impl RunReport {
    /// Average seconds per iteration.
    pub fn per_iter_secs(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.wall_secs / self.iterations as f64
        }
    }

    /// Bucket value in seconds (0 when absent).
    pub fn bucket(&self, name: &str) -> f64 {
        self.buckets.get(name).copied().unwrap_or(0.0)
    }

    /// Serializes to the single-line `key=value` wire format.
    pub fn to_kv(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "wall_secs={} iterations={} final_agents={} peak_rss={} force_calcs={} \
             static_skipped={} added={} removed={} sorts={} env_bytes={} snapshot_bytes={} \
             pool_reserved={} pool_allocs={} sys_allocs={}",
            self.wall_secs,
            self.iterations,
            self.final_agents,
            self.peak_rss_bytes,
            self.force_calculations,
            self.static_skipped,
            self.agents_added,
            self.agents_removed,
            self.sorts,
            self.env_bytes,
            self.snapshot_bytes,
            self.pool_reserved_bytes,
            self.pool_allocations,
            self.system_allocations
        );
        // Supervision counters are only emitted when non-zero so unsupervised
        // report lines stay byte-compatible with committed CSV protocols.
        for (key, value) in [
            ("health_checks", self.health_checks_run),
            ("violations", self.violations_detected),
            ("recoveries_attempted", self.recoveries_attempted),
            ("recoveries_succeeded", self.recoveries_succeeded),
            ("ckpt_bytes", self.ckpt_bytes),
        ] {
            if value != 0 {
                let _ = write!(s, " {key}={value}");
            }
        }
        for (name, secs) in &self.buckets {
            let _ = write!(s, " bucket.{name}={secs}");
        }
        s
    }

    /// Parses the wire format produced by [`RunReport::to_kv`].
    pub fn from_kv(line: &str) -> Result<RunReport, String> {
        let map = parse_kv(line)?;
        let num = |key: &str| -> Result<u64, String> {
            map.get(key)
                .ok_or_else(|| format!("missing key: {key}"))?
                .parse::<u64>()
                .map_err(|_| format!("bad number for {key}"))
        };
        let mut report = RunReport {
            wall_secs: map
                .get("wall_secs")
                .ok_or("missing wall_secs")?
                .parse()
                .map_err(|_| "bad wall_secs")?,
            iterations: num("iterations")? as usize,
            final_agents: num("final_agents")? as usize,
            peak_rss_bytes: num("peak_rss")?,
            force_calculations: num("force_calcs")?,
            static_skipped: num("static_skipped")?,
            agents_added: num("added")?,
            agents_removed: num("removed")?,
            sorts: num("sorts")?,
            env_bytes: num("env_bytes")?,
            // Absent in reports from pre-SoA binaries; tolerate for
            // mixed-version comparisons of committed CSV protocols.
            snapshot_bytes: map
                .get("snapshot_bytes")
                .map(|v| v.parse::<u64>().map_err(|_| "bad snapshot_bytes"))
                .transpose()?
                .unwrap_or(0),
            pool_reserved_bytes: num("pool_reserved")?,
            pool_allocations: num("pool_allocs")?,
            system_allocations: num("sys_allocs")?,
            buckets: BTreeMap::new(),
            health_checks_run: opt_num(&map, "health_checks")?,
            violations_detected: opt_num(&map, "violations")?,
            recoveries_attempted: opt_num(&map, "recoveries_attempted")?,
            recoveries_succeeded: opt_num(&map, "recoveries_succeeded")?,
            ckpt_bytes: opt_num(&map, "ckpt_bytes")?,
        };
        for (key, value) in &map {
            if let Some(name) = key.strip_prefix("bucket.") {
                report.buckets.insert(
                    name.to_string(),
                    value.parse().map_err(|_| format!("bad bucket {name}"))?,
                );
            }
        }
        Ok(report)
    }
}

/// Optional u64 key: absent (older binaries / unsupervised runs) reads 0.
fn opt_num(map: &BTreeMap<String, String>, key: &str) -> Result<u64, String> {
    map.get(key)
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("bad number for {key}"))
        })
        .transpose()
        .map(|v| v.unwrap_or(0))
}

fn parse_kv(line: &str) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    for token in line.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("malformed token: {token}"))?;
        map.insert(key.to_string(), value.to_string());
    }
    Ok(map)
}

fn opt_to_index(opt: OptLevel) -> usize {
    OptLevel::ALL
        .iter()
        .position(|&o| o == opt)
        .expect("opt in ALL")
}

fn opt_from_index(idx: usize) -> Option<OptLevel> {
    OptLevel::ALL.get(idx).copied()
}

fn env_to_str(env: EnvironmentKind) -> &'static str {
    match env {
        EnvironmentKind::UniformGrid => "grid",
        EnvironmentKind::KdTree => "kdtree",
        EnvironmentKind::Octree => "octree",
        EnvironmentKind::Brute => "brute",
    }
}

fn env_from_str(s: &str) -> Option<EnvironmentKind> {
    match s {
        "grid" => Some(EnvironmentKind::UniformGrid),
        "kdtree" => Some(EnvironmentKind::KdTree),
        "octree" => Some(EnvironmentKind::Octree),
        "brute" => Some(EnvironmentKind::Brute),
        _ => None,
    }
}

/// All environments of the Figure 11 comparison with their figure labels.
pub const ENVIRONMENTS: [(EnvironmentKind, &str); 3] = [
    (EnvironmentKind::UniformGrid, "uniform_grid"),
    (EnvironmentKind::KdTree, "kd_tree"),
    (EnvironmentKind::Octree, "octree"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip_minimal() {
        let spec = RunSpec::new("oncology", 5000, 10);
        let parsed = RunSpec::from_kv(&spec.to_kv()).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn spec_roundtrip_full() {
        let mut spec = RunSpec::new("epidemiology", 1234, 7)
            .with_opt(OptLevel::MemoryLayout)
            .with_topology(Some(2), Some(4));
        spec.env = Some(EnvironmentKind::Octree);
        spec.sort_freq = Some(Some(20));
        spec.use_pool = Some(false);
        spec.extra_mem = Some(true);
        spec.detect_static = Some(true);
        spec.numa_aware = Some(false);
        spec.parallel_add_remove = Some(true);
        spec.shards = Some(4);
        spec.seed = 99;
        let parsed = RunSpec::from_kv(&spec.to_kv()).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn spec_sort_freq_disabled_roundtrips() {
        let mut spec = RunSpec::new("oncology", 10, 1);
        spec.sort_freq = Some(None);
        let parsed = RunSpec::from_kv(&spec.to_kv()).unwrap();
        assert_eq!(parsed.sort_freq, Some(None));
    }

    #[test]
    fn baseline_engine_roundtrips() {
        let spec = RunSpec::new("cell_sorting", 100, 5).with_baseline();
        let parsed = RunSpec::from_kv(&spec.to_kv()).unwrap();
        assert_eq!(parsed.engine, EngineKind::Baseline);
    }

    #[test]
    fn report_roundtrip() {
        let mut report = RunReport {
            wall_secs: 1.5,
            iterations: 10,
            final_agents: 4321,
            peak_rss_bytes: 1 << 30,
            force_calculations: 777,
            static_skipped: 88,
            agents_added: 11,
            agents_removed: 3,
            sorts: 2,
            env_bytes: 4096,
            snapshot_bytes: 2048,
            pool_reserved_bytes: 65536,
            pool_allocations: 100,
            system_allocations: 5,
            health_checks_run: 4,
            violations_detected: 2,
            recoveries_attempted: 2,
            recoveries_succeeded: 2,
            ckpt_bytes: 12345,
            buckets: BTreeMap::new(),
        };
        report.buckets.insert("agent_ops".into(), 0.9);
        report.buckets.insert("environment_update".into(), 0.4);
        let parsed = RunReport::from_kv(&report.to_kv()).unwrap();
        assert_eq!(report, parsed);
        assert!((parsed.per_iter_secs() - 0.15).abs() < 1e-12);
        assert_eq!(parsed.bucket("agent_ops"), 0.9);
        assert_eq!(parsed.bucket("missing"), 0.0);
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(RunSpec::from_kv("model=x agents=1").is_err()); // missing keys
        assert!(RunSpec::from_kv("nonsense").is_err());
        assert!(RunReport::from_kv("wall_secs=abc").is_err());
        let mut spec_kv = RunSpec::new("m", 1, 1).to_kv();
        spec_kv.push_str(" engine=martian");
        assert!(RunSpec::from_kv(&spec_kv).is_err());
    }

    #[test]
    fn opt_index_roundtrip() {
        for opt in OptLevel::ALL {
            assert_eq!(opt_from_index(opt_to_index(opt)), Some(opt));
        }
        assert_eq!(opt_from_index(99), None);
    }
}
