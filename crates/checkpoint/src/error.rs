//! Typed checkpoint errors.
//!
//! The failure-injection contract: restoring from a truncated, bit-flipped,
//! or version-mismatched checkpoint must return one of these variants —
//! naming the failing section — and must never panic or leave a
//! half-restored simulation behind (restore builds a fresh simulation and
//! only hands it out on success).

use bdm_util::ReadError;

/// Why a checkpoint could not be written or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the checkpoint magic.
    BadMagic,
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
    },
    /// The buffer ended mid-value.
    Truncated {
        /// Section (or `"header"` / `"trailer"`) being read.
        section: &'static str,
        /// The underlying bounds-checked read failure.
        cause: ReadError,
    },
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch {
        /// Section whose payload is corrupt (`"file"` for the whole-file
        /// trailer checksum).
        section: &'static str,
    },
    /// A full checkpoint is missing a required section.
    MissingSection {
        /// The absent section.
        section: &'static str,
    },
    /// A section decoded structurally but contains an invalid value
    /// (unknown enum code, impossible count, trailing bytes, …).
    Malformed {
        /// Section containing the bad value.
        section: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// An agent or behavior in the live simulation does not implement the
    /// checkpoint hooks (its `checkpoint_tag` is empty) — the simulation
    /// cannot be serialized.
    Unsupported {
        /// `"agent"` or `"behavior"`.
        kind: &'static str,
        /// The type's diagnostic name.
        name: String,
    },
    /// The checkpoint references an agent type tag missing from the
    /// [`Registry`](crate::Registry).
    UnknownAgentTag {
        /// The unresolvable tag.
        tag: String,
    },
    /// The checkpoint references a behavior type tag missing from the
    /// [`Registry`](crate::Registry).
    UnknownBehaviorTag {
        /// The unresolvable tag.
        tag: String,
    },
    /// The scheduler section names an operation the restored simulation's
    /// pipeline does not have (custom operations must be re-registered by
    /// the caller before state is applied — see `restore_with`).
    UnknownOp {
        /// The missing operation name.
        name: String,
    },
    /// A delta checkpoint was applied against the wrong base.
    BaseMismatch {
        /// Base file id the delta was written against.
        expected: u64,
        /// File id of the base actually supplied.
        found: u64,
    },
    /// A delta checkpoint was passed where a full one is required (or vice
    /// versa).
    WrongKind {
        /// What the caller needed.
        expected: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::VersionMismatch { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            CheckpointError::Truncated { section, cause } => {
                write!(f, "checkpoint truncated in section {section}: {cause}")
            }
            CheckpointError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            CheckpointError::MissingSection { section } => {
                write!(f, "full checkpoint is missing section {section}")
            }
            CheckpointError::Malformed { section, detail } => {
                write!(f, "malformed section {section}: {detail}")
            }
            CheckpointError::Unsupported { kind, name } => {
                write!(f, "{kind} type {name:?} does not implement checkpointing")
            }
            CheckpointError::UnknownAgentTag { tag } => {
                write!(f, "agent type tag {tag:?} is not registered")
            }
            CheckpointError::UnknownBehaviorTag { tag } => {
                write!(f, "behavior type tag {tag:?} is not registered")
            }
            CheckpointError::UnknownOp { name } => {
                write!(
                    f,
                    "scheduler operation {name:?} not present in the restored pipeline"
                )
            }
            CheckpointError::BaseMismatch { expected, found } => {
                write!(
                    f,
                    "delta checkpoint written against base {expected:#018x}, got {found:#018x}"
                )
            }
            CheckpointError::WrongKind { expected } => {
                write!(f, "wrong checkpoint kind: expected a {expected} checkpoint")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Maps a raw reader truncation into the section-naming variant.
pub(crate) fn truncated(section: &'static str) -> impl FnOnce(ReadError) -> CheckpointError {
    move |cause| CheckpointError::Truncated { section, cause }
}
