//! # bdm-checkpoint
//!
//! Versioned, self-describing binary checkpoint/restore of a running
//! simulation — everything step-relevant: the agent arrays (positions,
//! diameters, payloads, per-type state, behaviors, static flags), the
//! diffusion grids, the deterministic RNG inputs (seed + uid counter — the
//! engine's per-(agent, iteration) streams are stateless functions of
//! those), the scheduler's op list with frequencies and the iteration
//! counter, and the full [`Param`] set.
//!
//! The correctness contract, enforced by `tests/checkpoint_replay.rs` for
//! all six benchmark models on all four environment backends:
//! **restore(checkpoint(sim)) followed by N steps is bitwise identical to
//! stepping the original N times.** To make that hold the restore pins the
//! captured run's concrete thread/domain topology (recorded in the COUNTERS
//! section) and re-inserts agents into their exact original
//! `(domain, index)` slots.
//!
//! ## Delta checkpoints
//!
//! [`checkpoint_delta`] writes only the sections that changed since a base
//! full checkpoint — the agent section is skipped when the resource
//! manager's structural/mutation generation is unchanged, the diffusion
//! section when every grid's change counter is unchanged, and the
//! param/force/scheduler sections when their serialized bytes hash equal.
//! Deltas name their base by whole-file checksum; [`restore_chain`] verifies
//! the linkage before merging.
//!
//! ## Failure behavior
//!
//! Restore never panics and never half-restores: it builds a fresh
//! [`Simulation`] internally and only returns it on success. Truncated,
//! bit-flipped, or version-mismatched inputs produce a typed
//! [`CheckpointError`] naming the failing section.
//!
//! ## Supervision
//!
//! On top of the wire format sit two runtime-resilience layers: [`ring`]
//! keeps a bounded in-memory ring of restore points (full checkpoints plus
//! delta chains), and [`supervise`] drives a simulation with automatic
//! rollback-and-retry — panics and health-sentinel violations roll back to
//! the newest good restore point and replay bitwise-identically, with a
//! configurable degradation ladder and a bounded attempt budget.

#![warn(missing_docs)]

mod error;
mod registry;
pub mod ring;
mod sections;
pub mod supervise;
mod wire;

pub use error::CheckpointError;
pub use registry::Registry;
pub use ring::{CheckpointRing, RingPolicy};
pub use sections::{Counters, RestoredAgent};
pub use supervise::{
    Degradation, RecoveryEvent, RecoveryPolicy, RecoveryReport, SupervisedRunner, SupervisorError,
};
pub use wire::{FORMAT_VERSION, KIND_DELTA, KIND_FULL, MAGIC};

use bdm_core::{Param, Simulation};
use bdm_util::fnv1a64;

use wire::tag;

/// Serializes everything step-relevant into a full checkpoint.
///
/// Valid both at rest (between steps) and mid-iteration from inside a
/// custom operation (the stored iteration counter then points at the last
/// *completed* iteration, so restore + step replays the interrupted
/// iteration from its start).
///
/// Fails with [`CheckpointError::Unsupported`] if any live agent or
/// behavior has an empty `checkpoint_tag` — nothing is silently dropped.
pub fn checkpoint(sim: &Simulation) -> Result<Vec<u8>, CheckpointError> {
    let sections = encode_sections(sim)?;
    Ok(wire::assemble(wire::KIND_FULL, 0, &sections))
}

/// A parsed summary of a full checkpoint that [`checkpoint_delta`] diffs
/// against: the file id plus the change counters and section checksums
/// recorded inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// fnv1a64 of the full checkpoint's bytes (the id deltas reference).
    pub file_id: u64,
    /// Resource-manager generation recorded in the base.
    pub generation: u64,
    /// Per-grid diffusion change counters recorded in the base.
    pub grid_versions: Vec<u64>,
    param_checksum: u64,
    force_checksum: u64,
    scheduler_checksum: u64,
}

/// Summarizes a full checkpoint for delta production.
pub fn baseline(full: &[u8]) -> Result<Baseline, CheckpointError> {
    let parsed = wire::parse(full)?;
    if parsed.kind != wire::KIND_FULL {
        return Err(CheckpointError::WrongKind { expected: "full" });
    }
    let counters = sections::read_counters(parsed.require(tag::COUNTERS)?)?;
    Ok(Baseline {
        file_id: fnv1a64(full),
        generation: counters.generation,
        grid_versions: counters.grid_versions,
        param_checksum: fnv1a64(parsed.require(tag::PARAM)?),
        force_checksum: fnv1a64(parsed.require(tag::FORCE)?),
        scheduler_checksum: fnv1a64(parsed.require(tag::SCHEDULER)?),
    })
}

/// Serializes only what changed since `base` (see the crate docs). The
/// COUNTERS section is always written; restoring the result requires the
/// base full checkpoint (see [`restore_chain`]).
///
/// `base` must describe a full checkpoint of **this same simulation
/// instance**: change detection compares the resource manager's generation
/// and the grids' change counters against the base's recorded values, and
/// those counters restart in a freshly restored simulation. After a
/// restore, take a new full checkpoint before producing deltas (the
/// [`CheckpointRing`] does this automatically via
/// [`CheckpointRing::break_chain`]).
pub fn checkpoint_delta(sim: &Simulation, base: &Baseline) -> Result<Vec<u8>, CheckpointError> {
    let all = encode_sections(sim)?;
    let mut kept = Vec::new();
    for (t, payload) in all {
        let unchanged = match t {
            tag::PARAM => fnv1a64(&payload) == base.param_checksum,
            tag::FORCE => fnv1a64(&payload) == base.force_checksum,
            tag::SCHEDULER => fnv1a64(&payload) == base.scheduler_checksum,
            tag::AGENTS => sim.resource_manager().generation() == base.generation,
            tag::DIFFUSION => {
                let n = sim.num_diffusion_grids();
                n == base.grid_versions.len()
                    && (0..n).all(|i| sim.diffusion_grid(i).version() == base.grid_versions[i])
            }
            _ => false, // COUNTERS and SHARDS: always written (both tiny)
        };
        if !unchanged {
            kept.push((t, payload));
        }
    }
    Ok(wire::assemble(wire::KIND_DELTA, base.file_id, &kept))
}

/// Restores a full checkpoint using [`Simulation::new`] as the builder.
pub fn restore(full: &[u8], registry: &Registry) -> Result<Simulation, CheckpointError> {
    restore_with(full, registry, Simulation::new)
}

/// Restores a full checkpoint, constructing the simulation shell through
/// `build`. Use this when the captured pipeline contained custom operations:
/// `build` must register operations with the same names before state is
/// applied, otherwise restore fails with [`CheckpointError::UnknownOp`].
pub fn restore_with(
    full: &[u8],
    registry: &Registry,
    build: impl FnOnce(Param) -> Simulation,
) -> Result<Simulation, CheckpointError> {
    let parsed = wire::parse(full)?;
    if parsed.kind != wire::KIND_FULL {
        return Err(CheckpointError::WrongKind { expected: "full" });
    }
    restore_merged(&collect_full(&parsed)?, registry, build)
}

/// Restores a base full checkpoint plus any number of deltas written
/// against it (later deltas override earlier ones section by section). Every
/// delta's recorded base id must match the full checkpoint's actual
/// checksum, otherwise [`CheckpointError::BaseMismatch`].
pub fn restore_chain(
    full: &[u8],
    deltas: &[&[u8]],
    registry: &Registry,
) -> Result<Simulation, CheckpointError> {
    restore_chain_with(full, deltas, registry, Simulation::new)
}

/// [`restore_chain`] with a custom simulation builder (see [`restore_with`]).
pub fn restore_chain_with(
    full: &[u8],
    deltas: &[&[u8]],
    registry: &Registry,
    build: impl FnOnce(Param) -> Simulation,
) -> Result<Simulation, CheckpointError> {
    let parsed = wire::parse(full)?;
    if parsed.kind != wire::KIND_FULL {
        return Err(CheckpointError::WrongKind { expected: "full" });
    }
    let full_id = fnv1a64(full);
    let mut merged = collect_full(&parsed)?;
    let parsed_deltas: Vec<wire::Parsed<'_>> = deltas
        .iter()
        .map(|d| wire::parse(d))
        .collect::<Result<_, _>>()?;
    for delta in &parsed_deltas {
        if delta.kind != wire::KIND_DELTA {
            return Err(CheckpointError::WrongKind { expected: "delta" });
        }
        if delta.base_id != full_id {
            return Err(CheckpointError::BaseMismatch {
                expected: delta.base_id,
                found: full_id,
            });
        }
        for (i, t) in wire::ALL_TAGS.iter().enumerate() {
            if let Some(payload) = delta.section(*t) {
                merged[i] = payload;
            }
        }
    }
    restore_merged(&merged, registry, build)
}

/// Encodes the seven sections in canonical order.
fn encode_sections(sim: &Simulation) -> Result<Vec<([u8; 4], Vec<u8>)>, CheckpointError> {
    let mid = sim.scheduler().mid_iteration();
    Ok(vec![
        (tag::PARAM, sections::write_param(sim.param())),
        (tag::FORCE, sections::write_force(sim.force())),
        (tag::COUNTERS, sections::write_counters(sim, mid)),
        (tag::AGENTS, sections::write_agents(sim)?),
        (tag::DIFFUSION, sections::write_diffusion(sim)),
        (tag::SCHEDULER, sections::write_scheduler(sim)),
        (tag::SHARDS, sections::write_shards(sim)),
    ])
}

/// Extracts all seven sections of a full checkpoint, in [`wire::ALL_TAGS`]
/// order, erroring on any missing one.
fn collect_full<'a>(parsed: &wire::Parsed<'a>) -> Result<[&'a [u8]; 7], CheckpointError> {
    Ok([
        parsed.require(tag::PARAM)?,
        parsed.require(tag::FORCE)?,
        parsed.require(tag::COUNTERS)?,
        parsed.require(tag::AGENTS)?,
        parsed.require(tag::DIFFUSION)?,
        parsed.require(tag::SCHEDULER)?,
        parsed.require(tag::SHARDS)?,
    ])
}

/// The restore recipe, from verified section payloads (indexed in
/// [`wire::ALL_TAGS`] order). Builds a fresh simulation; nothing observable
/// escapes on error.
fn restore_merged(
    merged: &[&[u8]; 7],
    registry: &Registry,
    build: impl FnOnce(Param) -> Simulation,
) -> Result<Simulation, CheckpointError> {
    let mut param = sections::read_param(merged[0])?;
    let force = sections::read_force(merged[1])?;
    let counters = sections::read_counters(merged[2])?;
    // Validation only: the partition manifest is checked for internal
    // consistency but never fed back — the partition is a pure function of
    // agent state and is recomputed at the first halo exchange, so the
    // restored simulation may run with any shard count (the `build` hook
    // can override `param.shards` freely).
    sections::read_shards(merged[6])?;

    // Pin the captured run's concrete topology: partitioning and domain
    // assignment must replay exactly regardless of this machine's defaults
    // or environment overrides.
    param.threads = Some(counters.num_threads as usize);
    param.numa_domains = Some(counters.num_domains as usize);

    let mut sim = build(param);
    sim.set_force(force);
    sections::restore_diffusion(&mut sim, merged[4])?;
    sections::restore_agents(&mut sim, registry, merged[3])?;
    sim.set_iteration(counters.iteration);
    sim.set_uid_counter(counters.uid_counter);
    sim.set_init_cursor(counters.init_cursor as usize);
    sections::restore_scheduler(&mut sim, merged[5])?;
    Ok(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_core::{Cell, Real3};

    fn small_sim() -> Simulation {
        let mut sim = Simulation::new(Param {
            threads: Some(2),
            numa_domains: Some(2),
            interaction_radius: Some(12.0),
            ..Param::default()
        });
        for i in 0..10 {
            let uid = sim.new_uid();
            sim.add_agent(
                Cell::new(uid)
                    .with_position(Real3::splat(10.0 + i as f64 * 5.0))
                    .with_diameter(10.0),
            );
        }
        sim
    }

    #[test]
    fn full_round_trip_preserves_fingerprint() {
        let mut sim = small_sim();
        sim.simulate(3);
        let bytes = checkpoint(&sim).unwrap();
        let restored = restore(&bytes, &Registry::with_builtin_types()).unwrap();
        bdm_core::testing::assert_identical(
            &bdm_core::testing::fingerprint(&sim),
            &bdm_core::testing::fingerprint(&restored),
            "round trip",
        );
        assert_eq!(restored.iteration(), 3);
    }

    #[test]
    fn delta_with_no_changes_skips_bulk_sections() {
        let mut sim = small_sim();
        sim.simulate(2);
        let full = checkpoint(&sim).unwrap();
        let base = baseline(&full).unwrap();
        // No further steps: nothing changed.
        let delta = checkpoint_delta(&sim, &base).unwrap();
        assert!(
            delta.len() < full.len() / 2,
            "delta {} vs full {}",
            delta.len(),
            full.len()
        );
        let restored = restore_chain(&full, &[&delta], &Registry::with_builtin_types()).unwrap();
        bdm_core::testing::assert_identical(
            &bdm_core::testing::fingerprint(&sim),
            &bdm_core::testing::fingerprint(&restored),
            "delta chain",
        );
    }

    #[test]
    fn unknown_agent_tag_is_typed() {
        let mut sim = small_sim();
        sim.simulate(1);
        let bytes = checkpoint(&sim).unwrap();
        let err = restore(&bytes, &Registry::new()).err().unwrap();
        assert!(
            matches!(err, CheckpointError::UnknownAgentTag { .. }),
            "{err}"
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = restore(b"not a checkpoint", &Registry::new())
            .err()
            .unwrap();
        assert_eq!(err, CheckpointError::BadMagic);
    }
}
