//! The type registry: maps wire-format type tags back to constructors.
//!
//! Rust trait objects carry no portable type identity, so the checkpoint
//! format stores each agent's and behavior's
//! [`checkpoint_tag`](bdm_core::Agent::checkpoint_tag) and restore resolves
//! it here. [`Registry::with_builtin_types`] knows every type the six
//! benchmark models use; applications with custom types call
//! [`Registry::register_agent`] / [`Registry::register_behavior`] with a
//! reader that consumes exactly the bytes the type's `checkpoint_write`
//! produced.

use std::collections::HashMap;

use bdm_core::{
    new_behavior_box, Agent, AgentHandle, AgentUid, Behavior, BehaviorBox, Cell, MemoryManager,
    Simulation,
};
use bdm_models::{
    Chemotaxis, GrowthDivision, Infection, Person, RandomWalk, Secretion, SirState, TumorGrowth,
    TypeAdhesion,
};
use bdm_neuro::{GrowthCone, NeuriteElement, NeuronSoma};
use bdm_util::{ByteReader, ReadError};

use crate::error::CheckpointError;
use crate::sections::RestoredAgent;

type AgentCtor = Box<
    dyn Fn(
            &mut Simulation,
            usize,
            RestoredAgent,
            &mut ByteReader<'_>,
        ) -> Result<AgentHandle, CheckpointError>
        + Send
        + Sync,
>;

type BehaviorCtor = Box<
    dyn Fn(&MemoryManager, usize, &mut ByteReader<'_>) -> Result<BehaviorBox, CheckpointError>
        + Send
        + Sync,
>;

fn body_truncated(cause: ReadError) -> CheckpointError {
    CheckpointError::Truncated {
        section: "AGENTS",
        cause,
    }
}

/// Maps checkpoint type tags to constructors.
#[derive(Default)]
pub struct Registry {
    agents: HashMap<String, AgentCtor>,
    behaviors: HashMap<String, BehaviorCtor>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry covering every agent and behavior type of the six
    /// benchmark models (and the engine's built-in [`Cell`]).
    pub fn with_builtin_types() -> Registry {
        let mut reg = Registry::new();

        reg.register_agent("core.Cell", |uid, r| {
            let cell_type = r.take_u64().map_err(body_truncated)?;
            let growth_rate = r.take_f64().map_err(body_truncated)?;
            let division_threshold = r.take_f64().map_err(body_truncated)?;
            Ok(Cell::new(uid)
                .with_cell_type(cell_type)
                .with_growth_rate(growth_rate)
                .with_division_threshold(division_threshold))
        });
        reg.register_agent("models.Person", |uid, r| {
            let state_code = r.take_u8().map_err(body_truncated)?;
            let state = SirState::from_payload(state_code as u64).ok_or_else(|| {
                CheckpointError::Malformed {
                    section: "AGENTS",
                    detail: format!("invalid SIR state code {state_code}"),
                }
            })?;
            let infected_since = r.take_u64().map_err(body_truncated)?;
            let mut p = Person::new(uid).with_state(state);
            p.set_infected_since(infected_since);
            Ok(p)
        });
        reg.register_agent("neuro.NeuronSoma", |uid, _r| Ok(NeuronSoma::new(uid)));
        reg.register_agent("neuro.NeuriteElement", |uid, r| {
            let proximal = r.take_real3().map_err(body_truncated)?;
            let soma = AgentUid(r.take_u64().map_err(body_truncated)?);
            let has_parent = r.take_u8().map_err(body_truncated)? != 0;
            let parent_uid = r.take_u64().map_err(body_truncated)?;
            let terminal = r.take_u8().map_err(body_truncated)? != 0;
            let branch_order = r.take_u32().map_err(body_truncated)?;
            let parent = has_parent.then_some(AgentUid(parent_uid));
            // Distal end and diameter arrive through the common base fields;
            // the framework overwrites both right after construction.
            let mut e = NeuriteElement::new(uid, soma, parent, proximal, proximal, 1.0);
            e.set_terminal(terminal);
            e.set_branch_order(branch_order);
            Ok(e)
        });

        reg.register_behavior("models.GrowthDivision", |_r| Ok(GrowthDivision));
        reg.register_behavior("models.Secretion", |r| {
            Ok(Secretion {
                grid: r.take_u64().map_err(body_truncated)? as usize,
                amount: r.take_f64().map_err(body_truncated)?,
            })
        });
        reg.register_behavior("models.Chemotaxis", |r| {
            Ok(Chemotaxis {
                grid: r.take_u64().map_err(body_truncated)? as usize,
                speed: r.take_f64().map_err(body_truncated)?,
            })
        });
        reg.register_behavior("models.RandomWalk", |r| {
            Ok(RandomWalk {
                step: r.take_f64().map_err(body_truncated)?,
                min: r.take_f64().map_err(body_truncated)?,
                max: r.take_f64().map_err(body_truncated)?,
            })
        });
        reg.register_behavior("models.TypeAdhesion", |r| {
            Ok(TypeAdhesion {
                radius: r.take_f64().map_err(body_truncated)?,
                speed: r.take_f64().map_err(body_truncated)?,
            })
        });
        reg.register_behavior("models.Infection", |r| {
            Ok(Infection {
                radius: r.take_f64().map_err(body_truncated)?,
                transmission_probability: r.take_f64().map_err(body_truncated)?,
                recovery_iterations: r.take_u64().map_err(body_truncated)?,
            })
        });
        reg.register_behavior("models.TumorGrowth", |r| {
            Ok(TumorGrowth {
                crowding_radius: r.take_f64().map_err(body_truncated)?,
                crowding_limit: r.take_u64().map_err(body_truncated)? as usize,
                death_probability: r.take_f64().map_err(body_truncated)?,
            })
        });
        reg.register_behavior("neuro.GrowthCone", |r| {
            let speed = r.take_f64().map_err(body_truncated)?;
            let deviation = r.take_f64().map_err(body_truncated)?;
            let max_segment_length = r.take_f64().map_err(body_truncated)?;
            let branch_probability = r.take_f64().map_err(body_truncated)?;
            let max_branch_order = r.take_u32().map_err(body_truncated)?;
            let has_guidance = r.take_u8().map_err(body_truncated)? != 0;
            let guidance_grid = r.take_u64().map_err(body_truncated)? as usize;
            let guidance_weight = r.take_f64().map_err(body_truncated)?;
            Ok(GrowthCone {
                speed,
                deviation,
                max_segment_length,
                branch_probability,
                max_branch_order,
                guidance_substance: has_guidance.then_some(guidance_grid),
                guidance_weight,
            })
        });

        reg
    }

    /// Registers an agent type. `read` consumes exactly the bytes the type's
    /// [`checkpoint_write`](bdm_core::Agent::checkpoint_write) produced and
    /// returns the agent with its type-specific state applied; the registry
    /// then applies the common base state (position, diameter, behaviors,
    /// flags) and inserts the agent into its original domain.
    pub fn register_agent<A, F>(&mut self, tag: &str, read: F)
    where
        A: Agent + 'static,
        F: Fn(AgentUid, &mut ByteReader<'_>) -> Result<A, CheckpointError> + Send + Sync + 'static,
    {
        self.agents.insert(
            tag.to_string(),
            Box::new(move |sim, domain, restored, body| {
                let mut agent = read(restored.uid, body)?;
                if !body.is_exhausted() {
                    return Err(CheckpointError::Malformed {
                        section: "AGENTS",
                        detail: format!("{} trailing agent-body bytes", body.remaining()),
                    });
                }
                agent.base_mut().set_position(restored.position);
                agent.base_mut().set_diameter(restored.diameter);
                for b in restored.behaviors {
                    agent.base_mut().add_behavior(b);
                }
                Ok(sim.restore_agent(domain, agent, restored.flags, restored.violation))
            }),
        );
    }

    /// Registers a behavior type; `read` mirrors the type's
    /// [`checkpoint_write`](bdm_core::Behavior::checkpoint_write).
    pub fn register_behavior<B, F>(&mut self, tag: &str, read: F)
    where
        B: Behavior + 'static,
        F: Fn(&mut ByteReader<'_>) -> Result<B, CheckpointError> + Send + Sync + 'static,
    {
        self.behaviors.insert(
            tag.to_string(),
            Box::new(move |mm, domain, body| {
                let b = read(body)?;
                if !body.is_exhausted() {
                    return Err(CheckpointError::Malformed {
                        section: "AGENTS",
                        detail: format!("{} trailing behavior-body bytes", body.remaining()),
                    });
                }
                Ok(new_behavior_box(b, mm, domain))
            }),
        );
    }

    /// Resolves `tag` and rebuilds the agent inside `sim`.
    pub(crate) fn build_agent(
        &self,
        tag: &str,
        sim: &mut Simulation,
        domain: usize,
        restored: RestoredAgent,
        body: &[u8],
    ) -> Result<AgentHandle, CheckpointError> {
        let ctor = self
            .agents
            .get(tag)
            .ok_or_else(|| CheckpointError::UnknownAgentTag {
                tag: tag.to_string(),
            })?;
        ctor(sim, domain, restored, &mut ByteReader::new(body))
    }

    /// Resolves `tag` and rebuilds the behavior in pool memory of `domain`.
    pub(crate) fn build_behavior(
        &self,
        tag: &str,
        mm: &MemoryManager,
        domain: usize,
        body: &[u8],
    ) -> Result<BehaviorBox, CheckpointError> {
        let ctor = self
            .behaviors
            .get(tag)
            .ok_or_else(|| CheckpointError::UnknownBehaviorTag {
                tag: tag.to_string(),
            })?;
        ctor(mm, domain, &mut ByteReader::new(body))
    }
}
