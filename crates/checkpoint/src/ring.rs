//! Bounded in-memory ring of restore points.
//!
//! [`CheckpointRing`] keeps the last few checkpoints of a running simulation
//! resident so a supervisor can roll back after a fault without touching the
//! filesystem. Storage is organized as *chains*: each chain starts with a
//! full checkpoint and accumulates delta checkpoints written against it
//! (cheap — deltas skip unchanged sections). [`RingPolicy`] bounds both axes:
//! after `full_every` deltas a new chain is started, and only the newest
//! `depth` chains are retained.
//!
//! The ring is also the supervisor's fallback ladder for *corrupted* restore
//! points: [`CheckpointRing::drop_latest`] discards the newest restore point
//! (one delta, or a whole chain once its deltas are gone) so a failed
//! restore can retry against the next-older state.

use std::collections::VecDeque;

use bdm_core::{Param, Simulation};

use crate::error::CheckpointError;
use crate::registry::Registry;
use crate::{baseline, checkpoint, checkpoint_delta, restore_chain_with, Baseline};

/// Capture cadence and retention bounds for a [`CheckpointRing`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingPolicy {
    /// Capture every `interval` iterations (clamped to ≥ 1).
    pub interval: u64,
    /// Number of full-checkpoint chains retained (clamped to ≥ 1); older
    /// chains are pruned whole.
    pub depth: usize,
    /// Deltas accumulated per chain before the next capture starts a fresh
    /// chain with a new full checkpoint (0 = every capture is a full).
    pub full_every: u64,
}

impl Default for RingPolicy {
    fn default() -> RingPolicy {
        RingPolicy {
            interval: 25,
            depth: 2,
            full_every: 8,
        }
    }
}

impl RingPolicy {
    /// A policy capturing every `interval` iterations with the default
    /// retention bounds.
    pub fn every(interval: u64) -> RingPolicy {
        RingPolicy {
            interval: interval.max(1),
            ..RingPolicy::default()
        }
    }
}

/// One full checkpoint plus the deltas written against it.
#[derive(Debug, Clone)]
struct Chain {
    full: Vec<u8>,
    base: Baseline,
    full_iteration: u64,
    /// `(iteration, bytes)` in capture order; deltas are cumulative against
    /// `full`, so the newest one alone carries the chain's latest state.
    deltas: Vec<(u64, Vec<u8>)>,
}

impl Chain {
    fn resident_bytes(&self) -> usize {
        self.full.len() + self.deltas.iter().map(|(_, d)| d.len()).sum::<usize>()
    }

    fn latest_iteration(&self) -> u64 {
        self.deltas
            .last()
            .map(|(it, _)| *it)
            .unwrap_or(self.full_iteration)
    }
}

/// A bounded ring of in-memory restore points (see the module docs).
#[derive(Debug, Clone)]
pub struct CheckpointRing {
    policy: RingPolicy,
    chains: VecDeque<Chain>,
    captures: u64,
    force_full: bool,
}

impl CheckpointRing {
    /// An empty ring with `policy`.
    pub fn new(policy: RingPolicy) -> CheckpointRing {
        CheckpointRing {
            policy,
            chains: VecDeque::new(),
            captures: 0,
            force_full: false,
        }
    }

    /// Forces the next capture to start a fresh full-checkpoint chain.
    ///
    /// **Must be called after restoring a simulation from this (or any)
    /// ring.** Delta production compares the simulation's resource-manager
    /// generation and grid change counters against the values recorded in
    /// the chain's base — counters that restart in a freshly restored
    /// simulation. Extending an old chain across a restore can therefore
    /// spuriously classify changed sections as unchanged and capture a
    /// restore point whose agents lag its iteration counter.
    pub fn break_chain(&mut self) {
        self.force_full = true;
    }

    /// The ring's capture/retention policy.
    pub fn policy(&self) -> &RingPolicy {
        &self.policy
    }

    /// Whether the ring wants a capture at `iteration` (a multiple of the
    /// policy interval).
    pub fn is_due(&self, iteration: u64) -> bool {
        iteration.is_multiple_of(self.policy.interval.max(1))
    }

    /// Captures `sim` as the ring's newest restore point: a delta against
    /// the current chain's full checkpoint when the chain has room, a fresh
    /// full checkpoint otherwise (pruning chains beyond the policy depth).
    pub fn capture(&mut self, sim: &Simulation) -> Result<(), CheckpointError> {
        let extend = !self.force_full
            && self
                .chains
                .back()
                .is_some_and(|c| (c.deltas.len() as u64) < self.policy.full_every);
        self.force_full = false;
        if extend {
            let chain = self.chains.back_mut().expect("chain exists");
            let delta = checkpoint_delta(sim, &chain.base)?;
            chain.deltas.push((sim.iteration(), delta));
        } else {
            let full = checkpoint(sim)?;
            let base = baseline(&full)?;
            self.chains.push_back(Chain {
                full,
                base,
                full_iteration: sim.iteration(),
                deltas: Vec::new(),
            });
            while self.chains.len() > self.policy.depth.max(1) {
                self.chains.pop_front();
            }
        }
        self.captures += 1;
        Ok(())
    }

    /// Restores the newest restore point, building the simulation shell
    /// through `build` (see [`crate::restore_with`]). Fails with
    /// [`CheckpointError`] if the ring is empty or the bytes are corrupt —
    /// callers typically [`CheckpointRing::drop_latest`] and retry.
    pub fn restore_latest_with(
        &self,
        registry: &Registry,
        build: impl FnOnce(Param) -> Simulation,
    ) -> Result<Simulation, CheckpointError> {
        let chain = self
            .chains
            .back()
            .ok_or(CheckpointError::WrongKind { expected: "full" })?;
        let deltas: Vec<&[u8]> = chain.deltas.iter().map(|(_, d)| d.as_slice()).collect();
        restore_chain_with(&chain.full, &deltas, registry, build)
    }

    /// Restores the newest restore point using [`Simulation::new`].
    pub fn restore_latest(&self, registry: &Registry) -> Result<Simulation, CheckpointError> {
        self.restore_latest_with(registry, Simulation::new)
    }

    /// Discards the newest restore point — the newest delta of the newest
    /// chain, or the whole chain once it has no deltas left. Returns `false`
    /// if the ring was already empty.
    pub fn drop_latest(&mut self) -> bool {
        match self.chains.back_mut() {
            None => false,
            Some(chain) => {
                if chain.deltas.pop().is_none() {
                    self.chains.pop_back();
                }
                true
            }
        }
    }

    /// Flips one bit of the newest restore point's bytes (`byte` is taken
    /// modulo the blob length). Fault-injection hook for exercising the
    /// drop-and-retry restore ladder; no effect on an empty ring.
    pub fn corrupt_latest(&mut self, byte: u64) {
        if let Some(chain) = self.chains.back_mut() {
            let blob = match chain.deltas.last_mut() {
                Some((_, d)) => d,
                None => &mut chain.full,
            };
            if !blob.is_empty() {
                let idx = (byte % blob.len() as u64) as usize;
                blob[idx] ^= 1;
            }
        }
    }

    /// Whether the ring holds no restore points.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Number of restore points currently held (fulls + deltas).
    pub fn len(&self) -> usize {
        self.chains.iter().map(|c| 1 + c.deltas.len()).sum()
    }

    /// Iteration of the newest restore point, if any.
    pub fn latest_iteration(&self) -> Option<u64> {
        self.chains.back().map(|c| c.latest_iteration())
    }

    /// Total captures performed over the ring's lifetime (including ones
    /// since pruned).
    pub fn captures(&self) -> u64 {
        self.captures
    }

    /// Bytes currently resident in the ring (all fulls + all deltas).
    pub fn resident_bytes(&self) -> usize {
        self.chains.iter().map(Chain::resident_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_core::{Cell, Real3};

    fn small_sim() -> Simulation {
        let mut sim = Simulation::new(Param {
            threads: Some(2),
            numa_domains: Some(2),
            interaction_radius: Some(12.0),
            ..Param::default()
        });
        for i in 0..8 {
            let uid = sim.new_uid();
            sim.add_agent(
                Cell::new(uid)
                    .with_position(Real3::splat(10.0 + i as f64 * 5.0))
                    .with_diameter(10.0),
            );
        }
        sim
    }

    #[test]
    fn ring_restores_latest_capture() {
        let mut sim = small_sim();
        let mut ring = CheckpointRing::new(RingPolicy {
            interval: 1,
            depth: 2,
            full_every: 2,
        });
        for _ in 0..5 {
            sim.step();
            ring.capture(&sim).unwrap();
        }
        assert_eq!(ring.latest_iteration(), Some(5));
        let restored = ring
            .restore_latest(&Registry::with_builtin_types())
            .unwrap();
        bdm_core::testing::assert_identical(
            &bdm_core::testing::fingerprint(&sim),
            &bdm_core::testing::fingerprint(&restored),
            "ring restore",
        );
    }

    #[test]
    fn depth_bound_prunes_old_chains() {
        let mut sim = small_sim();
        let mut ring = CheckpointRing::new(RingPolicy {
            interval: 1,
            depth: 2,
            full_every: 0, // every capture is a full chain
        });
        for _ in 0..6 {
            sim.step();
            ring.capture(&sim).unwrap();
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.captures(), 6);
        assert!(ring.resident_bytes() > 0);
    }

    #[test]
    fn drop_latest_walks_back_through_deltas_then_chains() {
        let mut sim = small_sim();
        let mut ring = CheckpointRing::new(RingPolicy {
            interval: 1,
            depth: 2,
            full_every: 1,
        });
        for _ in 0..4 {
            sim.step();
            ring.capture(&sim).unwrap();
        }
        // Layout: chain(full@1, delta@2), chain(full@3, delta@4).
        assert_eq!(ring.latest_iteration(), Some(4));
        assert!(ring.drop_latest());
        assert_eq!(ring.latest_iteration(), Some(3));
        assert!(ring.drop_latest());
        assert_eq!(ring.latest_iteration(), Some(2));
        assert!(ring.drop_latest());
        assert!(ring.drop_latest());
        assert!(!ring.drop_latest());
        assert!(ring.is_empty());
    }

    #[test]
    fn corrupt_latest_fails_restore_until_dropped() {
        let mut sim = small_sim();
        let mut ring = CheckpointRing::new(RingPolicy {
            interval: 1,
            depth: 2,
            full_every: 4,
        });
        sim.step();
        ring.capture(&sim).unwrap();
        sim.step();
        ring.capture(&sim).unwrap();
        ring.corrupt_latest(40);
        let reg = Registry::with_builtin_types();
        assert!(ring.restore_latest(&reg).is_err());
        assert!(ring.drop_latest());
        let restored = ring.restore_latest(&reg).unwrap();
        assert_eq!(restored.iteration(), 1);
    }
}
