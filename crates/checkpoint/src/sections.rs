//! Section payload encodings.
//!
//! Each `write_*` produces one section payload; the matching `read_*` /
//! `restore_*` consumes exactly those bytes and converts every reader
//! truncation or invalid value into a typed, section-naming
//! [`CheckpointError`]. The layouts are documented field-by-field in
//! `docs/ARCHITECTURE.md`.

use bdm_core::{
    CurveKind, EnvironmentKind, HealthPolicy, InteractionForce, NeighborAccess, Param, Simulation,
    StaticFlags,
};
use bdm_util::{ByteReader, ByteWriter, Real3};

use crate::error::{truncated, CheckpointError};
use crate::registry::Registry;

// ---------------------------------------------------------------------------
// PARAM

fn opt_f64(w: &mut ByteWriter, v: Option<f64>) {
    w.put_u8(u8::from(v.is_some()));
    w.put_f64(v.unwrap_or(0.0));
}

fn opt_u64(w: &mut ByteWriter, v: Option<u64>) {
    w.put_u8(u8::from(v.is_some()));
    w.put_u64(v.unwrap_or(0));
}

fn curve_code(c: CurveKind) -> u8 {
    match c {
        CurveKind::Morton => 0,
        CurveKind::Hilbert => 1,
    }
}

/// Encodes every [`Param`] field, in declaration order.
pub fn write_param(p: &Param) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(p.seed);
    w.put_u8(p.environment.code());
    opt_f64(&mut w, p.interaction_radius);
    w.put_f64(p.simulation_time_step);
    w.put_f64(p.simulation_max_displacement);
    w.put_u8(u8::from(p.enable_mechanics));
    w.put_u8(u8::from(p.detect_static_agents));
    w.put_f64(p.static_displacement_threshold);
    opt_u64(&mut w, p.agent_sort_frequency.map(|f| f as u64));
    w.put_u8(curve_code(p.sort_curve));
    w.put_u8(u8::from(p.sort_use_extra_memory));
    w.put_u8(u8::from(p.parallel_add_remove));
    w.put_u8(u8::from(p.numa_aware_iteration));
    w.put_u8(u8::from(p.use_pool_allocator));
    opt_u64(&mut w, p.threads.map(|t| t as u64));
    opt_u64(&mut w, p.numa_domains.map(|d| d as u64));
    w.put_u64(p.iteration_block_size as u64);
    w.put_f64(p.mem_mgr_growth_rate);
    w.put_u8(p.neighbor_access.bits());
    w.put_u8(u8::from(p.box_batched_mechanics));
    // Health policy (format v2): fixed-size like the opt_* fields — absent
    // policies write zeroed placeholders so the payload length is stable.
    w.put_u8(u8::from(p.health.is_some()));
    let h = p.health.clone().unwrap_or_default();
    w.put_u64(h.frequency);
    w.put_u8(u8::from(h.bounds.is_some()));
    let (lo, hi) = h.bounds.unwrap_or((Real3::ZERO, Real3::ZERO));
    for v in [lo, hi] {
        w.put_f64(v.x());
        w.put_f64(v.y());
        w.put_f64(v.z());
    }
    opt_u64(&mut w, h.max_agents);
    w.put_u8(u8::from(h.check_diffusion));
    // Shard count (format v3).
    w.put_u64(p.shards as u64);
    w.into_bytes()
}

const S_PARAM: &str = "PARAM";

fn take_opt_f64(r: &mut ByteReader<'_>, s: &'static str) -> Result<Option<f64>, CheckpointError> {
    let some = r.take_u8().map_err(truncated(s))? != 0;
    let v = r.take_f64().map_err(truncated(s))?;
    Ok(some.then_some(v))
}

fn take_opt_u64(r: &mut ByteReader<'_>, s: &'static str) -> Result<Option<u64>, CheckpointError> {
    let some = r.take_u8().map_err(truncated(s))? != 0;
    let v = r.take_u64().map_err(truncated(s))?;
    Ok(some.then_some(v))
}

fn malformed(section: &'static str, detail: impl Into<String>) -> CheckpointError {
    CheckpointError::Malformed {
        section,
        detail: detail.into(),
    }
}

/// Decodes a [`write_param`] payload.
pub fn read_param(payload: &[u8]) -> Result<Param, CheckpointError> {
    let r = &mut ByteReader::new(payload);
    let t = truncated(S_PARAM);
    let seed = r.take_u64().map_err(t)?;
    let env_code = r.take_u8().map_err(truncated(S_PARAM))?;
    let environment = EnvironmentKind::from_code(env_code)
        .ok_or_else(|| malformed(S_PARAM, format!("unknown environment code {env_code}")))?;
    let interaction_radius = take_opt_f64(r, S_PARAM)?;
    let simulation_time_step = r.take_f64().map_err(truncated(S_PARAM))?;
    let simulation_max_displacement = r.take_f64().map_err(truncated(S_PARAM))?;
    let enable_mechanics = r.take_u8().map_err(truncated(S_PARAM))? != 0;
    let detect_static_agents = r.take_u8().map_err(truncated(S_PARAM))? != 0;
    let static_displacement_threshold = r.take_f64().map_err(truncated(S_PARAM))?;
    let agent_sort_frequency = take_opt_u64(r, S_PARAM)?.map(|f| f as usize);
    let curve_code = r.take_u8().map_err(truncated(S_PARAM))?;
    let sort_curve = match curve_code {
        0 => CurveKind::Morton,
        1 => CurveKind::Hilbert,
        c => return Err(malformed(S_PARAM, format!("unknown curve code {c}"))),
    };
    let sort_use_extra_memory = r.take_u8().map_err(truncated(S_PARAM))? != 0;
    let parallel_add_remove = r.take_u8().map_err(truncated(S_PARAM))? != 0;
    let numa_aware_iteration = r.take_u8().map_err(truncated(S_PARAM))? != 0;
    let use_pool_allocator = r.take_u8().map_err(truncated(S_PARAM))? != 0;
    let threads = take_opt_u64(r, S_PARAM)?.map(|v| v as usize);
    let numa_domains = take_opt_u64(r, S_PARAM)?.map(|v| v as usize);
    let iteration_block_size = r.take_u64().map_err(truncated(S_PARAM))? as usize;
    let mem_mgr_growth_rate = r.take_f64().map_err(truncated(S_PARAM))?;
    let access_bits = r.take_u8().map_err(truncated(S_PARAM))?;
    let neighbor_access = NeighborAccess::from_bits(access_bits).ok_or_else(|| {
        malformed(
            S_PARAM,
            format!("invalid neighbor-access bits {access_bits:#x}"),
        )
    })?;
    let box_batched_mechanics = r.take_u8().map_err(truncated(S_PARAM))? != 0;
    let health_some = r.take_u8().map_err(truncated(S_PARAM))? != 0;
    let health_frequency = r.take_u64().map_err(truncated(S_PARAM))?;
    let bounds_some = r.take_u8().map_err(truncated(S_PARAM))? != 0;
    let mut bounds_vals = [0.0f64; 6];
    for v in &mut bounds_vals {
        *v = r.take_f64().map_err(truncated(S_PARAM))?;
    }
    let health_max_agents = take_opt_u64(r, S_PARAM)?;
    let health_check_diffusion = r.take_u8().map_err(truncated(S_PARAM))? != 0;
    let health = health_some.then(|| HealthPolicy {
        frequency: health_frequency,
        bounds: bounds_some.then(|| {
            (
                Real3::new(bounds_vals[0], bounds_vals[1], bounds_vals[2]),
                Real3::new(bounds_vals[3], bounds_vals[4], bounds_vals[5]),
            )
        }),
        max_agents: health_max_agents,
        check_diffusion: health_check_diffusion,
    });
    let shards = r.take_u64().map_err(truncated(S_PARAM))? as usize;
    if !(1..=bdm_core::MAX_SHARDS).contains(&shards) {
        return Err(malformed(S_PARAM, format!("invalid shard count {shards}")));
    }
    if shards > 1 && environment != EnvironmentKind::UniformGrid {
        return Err(malformed(
            S_PARAM,
            format!("{shards} shards with non-uniform-grid environment"),
        ));
    }
    if !r.is_exhausted() {
        return Err(malformed(
            S_PARAM,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(Param {
        seed,
        environment,
        interaction_radius,
        simulation_time_step,
        simulation_max_displacement,
        enable_mechanics,
        detect_static_agents,
        static_displacement_threshold,
        agent_sort_frequency,
        sort_curve,
        sort_use_extra_memory,
        parallel_add_remove,
        numa_aware_iteration,
        use_pool_allocator,
        threads,
        numa_domains,
        iteration_block_size,
        mem_mgr_growth_rate,
        neighbor_access,
        box_batched_mechanics,
        shards,
        health,
    })
}

// ---------------------------------------------------------------------------
// SHARDS

const S_SHRD: &str = "SHARDS";

/// Encodes the shard-partition manifest of the last halo exchange (see
/// [`bdm_core::ShardManifest`]): shard count, the Morton-code range of each
/// shard, and the per-shard owned-agent counts. Unsharded runs (and sharded
/// runs that have not exchanged yet) write an empty manifest (shard count
/// 0). The manifest is **validation-only** on restore — the partition is a
/// pure function of agent state and is recomputed from scratch, which is
/// what makes restoring into a *different* shard count bitwise-safe.
pub fn write_shards(sim: &Simulation) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match sim.shard_manifest() {
        Some(m) => {
            w.put_u64(m.shards);
            for (begin, end) in &m.ranges {
                w.put_u64(*begin);
                w.put_u64(*end);
            }
            for owned in &m.owned {
                w.put_u64(*owned);
            }
        }
        None => w.put_u64(0),
    }
    w.into_bytes()
}

/// Decodes and validates a [`write_shards`] payload: the ranges must tile
/// the full Morton-code space contiguously and the counts must be
/// per-shard complete. The decoded manifest is returned for inspection but
/// never fed back into the engine.
pub fn read_shards(payload: &[u8]) -> Result<Option<bdm_core::ShardManifest>, CheckpointError> {
    let r = &mut ByteReader::new(payload);
    let shards = r.take_u64().map_err(truncated(S_SHRD))?;
    if shards == 0 {
        if !r.is_exhausted() {
            return Err(malformed(
                S_SHRD,
                format!("{} trailing bytes", r.remaining()),
            ));
        }
        return Ok(None);
    }
    if shards as usize > bdm_core::MAX_SHARDS {
        return Err(malformed(S_SHRD, format!("invalid shard count {shards}")));
    }
    let mut ranges = Vec::with_capacity(shards as usize);
    for _ in 0..shards {
        let begin = r.take_u64().map_err(truncated(S_SHRD))?;
        let end = r.take_u64().map_err(truncated(S_SHRD))?;
        ranges.push((begin, end));
    }
    let mut owned = Vec::with_capacity(shards as usize);
    for _ in 0..shards {
        owned.push(r.take_u64().map_err(truncated(S_SHRD))?);
    }
    if !r.is_exhausted() {
        return Err(malformed(
            S_SHRD,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    if ranges[0].0 != 0 || ranges[shards as usize - 1].1 != u64::MAX {
        return Err(malformed(S_SHRD, "ranges do not cover the code space"));
    }
    for w in ranges.windows(2) {
        if w[0].1 != w[1].0 {
            return Err(malformed(
                S_SHRD,
                format!("ranges not contiguous at {:#018x}/{:#018x}", w[0].1, w[1].0),
            ));
        }
    }
    Ok(Some(bdm_core::ShardManifest {
        shards,
        ranges,
        owned,
    }))
}

// ---------------------------------------------------------------------------
// FORCE

/// Encodes the interaction-force coefficients.
pub fn write_force(f: InteractionForce) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_f64(f.repulsion);
    w.put_f64(f.attraction);
    w.into_bytes()
}

/// Decodes a [`write_force`] payload.
pub fn read_force(payload: &[u8]) -> Result<InteractionForce, CheckpointError> {
    let r = &mut ByteReader::new(payload);
    let repulsion = r.take_f64().map_err(truncated("FORCE"))?;
    let attraction = r.take_f64().map_err(truncated("FORCE"))?;
    if !r.is_exhausted() {
        return Err(malformed(
            "FORCE",
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(InteractionForce {
        repulsion,
        attraction,
    })
}

// ---------------------------------------------------------------------------
// COUNTERS

/// The always-written scalar state: iteration/uid counters, the concrete
/// topology the run executed on (pinned on restore so neighbor partitioning
/// is reproduced exactly), and the change counters delta mode compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Completed iterations at capture (mid-iteration captures store the
    /// last *completed* iteration, so restore + one step replays the
    /// interrupted iteration in full).
    pub iteration: u64,
    /// Next agent uid.
    pub uid_counter: u64,
    /// Round-robin domain cursor of `Simulation::add_agent`.
    pub init_cursor: u64,
    /// Concrete NUMA domain count of the captured run.
    pub num_domains: u64,
    /// Concrete worker-thread count of the captured run.
    pub num_threads: u64,
    /// `ResourceManager` structural generation at capture.
    pub generation: u64,
    /// Per-grid diffusion change counters at capture.
    pub grid_versions: Vec<u64>,
}

const S_CNTR: &str = "COUNTERS";

/// Captures and encodes the counters of `sim`. `mid_iteration` subtracts the
/// in-flight iteration (see [`Counters::iteration`]).
pub fn write_counters(sim: &Simulation, mid_iteration: bool) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(sim.iteration() - u64::from(mid_iteration));
    w.put_u64(sim.uid_counter());
    w.put_u64(sim.init_cursor() as u64);
    w.put_u64(sim.topology().num_domains() as u64);
    w.put_u64(sim.topology().num_threads() as u64);
    w.put_u64(sim.resource_manager().generation());
    let grids = sim.num_diffusion_grids();
    w.put_u32(grids as u32);
    for i in 0..grids {
        w.put_u64(sim.diffusion_grid(i).version());
    }
    w.into_bytes()
}

/// Decodes a [`write_counters`] payload.
pub fn read_counters(payload: &[u8]) -> Result<Counters, CheckpointError> {
    let r = &mut ByteReader::new(payload);
    let iteration = r.take_u64().map_err(truncated(S_CNTR))?;
    let uid_counter = r.take_u64().map_err(truncated(S_CNTR))?;
    let init_cursor = r.take_u64().map_err(truncated(S_CNTR))?;
    let num_domains = r.take_u64().map_err(truncated(S_CNTR))?;
    let num_threads = r.take_u64().map_err(truncated(S_CNTR))?;
    let generation = r.take_u64().map_err(truncated(S_CNTR))?;
    let n = r.take_u32().map_err(truncated(S_CNTR))? as usize;
    let mut grid_versions = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        grid_versions.push(r.take_u64().map_err(truncated(S_CNTR))?);
    }
    if num_domains == 0 || num_threads == 0 {
        return Err(malformed(S_CNTR, "zero domains or threads"));
    }
    if !r.is_exhausted() {
        return Err(malformed(
            S_CNTR,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(Counters {
        iteration,
        uid_counter,
        init_cursor,
        num_domains,
        num_threads,
        generation,
        grid_versions,
    })
}

// ---------------------------------------------------------------------------
// AGENTS

const S_AGNT: &str = "AGENTS";

/// Encodes every agent, domain-major in storage order, so restore re-inserts
/// into identical `(domain, index)` slots — secretion queueing and any other
/// order-sensitive machinery then replays identically.
///
/// Per agent: uid, position, diameter, length-prefixed type body
/// ([`bdm_core::Agent::checkpoint_write`]), behavior list (tag +
/// length-prefixed body each), static flags, pending violation flag.
pub fn write_agents(sim: &Simulation) -> Result<Vec<u8>, CheckpointError> {
    let rm = sim.resource_manager();
    let mut w = ByteWriter::new();
    let domains = rm.num_domains();
    w.put_u32(domains as u32);
    for d in 0..domains {
        w.put_u64(rm.num_in_domain(d) as u64);
    }
    let mut failure: Option<CheckpointError> = None;
    sim.for_each_agent(|h, a| {
        if failure.is_some() {
            return;
        }
        let tag = a.checkpoint_tag();
        if tag.is_empty() {
            failure = Some(CheckpointError::Unsupported {
                kind: "agent",
                name: format!("agent uid {} (payload {})", a.uid().0, a.payload()),
            });
            return;
        }
        w.put_u64(a.uid().0);
        w.put_real3(a.position());
        w.put_f64(a.diameter());
        w.put_str(tag);
        let mut body = ByteWriter::new();
        a.checkpoint_write(&mut body);
        w.put_u32(body.len() as u32);
        w.put_bytes(body.as_slice());
        let behaviors = a.base().behaviors();
        w.put_u32(behaviors.len() as u32);
        for b in behaviors {
            let btag = b.checkpoint_tag();
            if btag.is_empty() {
                failure = Some(CheckpointError::Unsupported {
                    kind: "behavior",
                    name: b.name().to_string(),
                });
                return;
            }
            w.put_str(btag);
            let mut bb = ByteWriter::new();
            b.checkpoint_write(&mut bb);
            w.put_u32(bb.len() as u32);
            w.put_bytes(bb.as_slice());
        }
        let flags = rm.static_flags(h);
        w.put_u8(u8::from(flags.is_static));
        w.put_u64(flags.created_iter);
        w.put_u8(u8::from(rm.violation(h.domain as usize, h.index as usize)));
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(w.into_bytes()),
    }
}

/// Everything the engine stores about an agent outside its concrete type;
/// handed to the registered agent constructor on restore.
pub struct RestoredAgent {
    /// The agent's uid.
    pub uid: bdm_core::AgentUid,
    /// Position at capture.
    pub position: Real3,
    /// Diameter at capture.
    pub diameter: f64,
    /// Reconstructed behaviors, in attachment order.
    pub behaviors: Vec<bdm_core::BehaviorBox>,
    /// Static-detection flags at capture.
    pub flags: StaticFlags,
    /// Pending displacement-violation flag.
    pub violation: bool,
}

/// Decodes a [`write_agents`] payload into `sim`, resolving type tags
/// through `registry`.
pub fn restore_agents(
    sim: &mut Simulation,
    registry: &Registry,
    payload: &[u8],
) -> Result<(), CheckpointError> {
    let r = &mut ByteReader::new(payload);
    let domains = r.take_u32().map_err(truncated(S_AGNT))? as usize;
    if domains != sim.resource_manager().num_domains() {
        return Err(malformed(
            S_AGNT,
            format!(
                "checkpoint has {domains} domains, simulation has {}",
                sim.resource_manager().num_domains()
            ),
        ));
    }
    let mut counts = Vec::with_capacity(domains);
    for _ in 0..domains {
        counts.push(r.take_u64().map_err(truncated(S_AGNT))? as usize);
    }
    for (d, count) in counts.into_iter().enumerate() {
        for _ in 0..count {
            let uid = bdm_core::AgentUid(r.take_u64().map_err(truncated(S_AGNT))?);
            let position = r.take_real3().map_err(truncated(S_AGNT))?;
            let diameter = r.take_f64().map_err(truncated(S_AGNT))?;
            let tag = r.take_str().map_err(truncated(S_AGNT))?;
            let body_len = r.take_u32().map_err(truncated(S_AGNT))? as usize;
            let body = r.take_bytes(body_len).map_err(truncated(S_AGNT))?;
            let num_behaviors = r.take_u32().map_err(truncated(S_AGNT))? as usize;
            let mut behaviors = Vec::with_capacity(num_behaviors.min(64));
            for _ in 0..num_behaviors {
                let btag = r.take_str().map_err(truncated(S_AGNT))?;
                let blen = r.take_u32().map_err(truncated(S_AGNT))? as usize;
                let bbody = r.take_bytes(blen).map_err(truncated(S_AGNT))?;
                behaviors.push(registry.build_behavior(&btag, sim.memory_manager(), d, bbody)?);
            }
            let is_static = r.take_u8().map_err(truncated(S_AGNT))? != 0;
            let created_iter = r.take_u64().map_err(truncated(S_AGNT))?;
            let violation = r.take_u8().map_err(truncated(S_AGNT))? != 0;
            let restored = RestoredAgent {
                uid,
                position,
                diameter,
                behaviors,
                flags: StaticFlags {
                    is_static,
                    created_iter,
                },
                violation,
            };
            registry.build_agent(&tag, sim, d, restored, body)?;
        }
    }
    if !r.is_exhausted() {
        return Err(malformed(
            S_AGNT,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// DIFFUSION

const S_DIFF: &str = "DIFFUSION";

/// Encodes every diffusion grid: construction parameters, change counter,
/// and the concentration array bitwise. (`c_next` is scratch — every solver
/// substep fully overwrites it before the buffer swap, so it is not
/// step-relevant state.)
pub fn write_diffusion(sim: &Simulation) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let n = sim.num_diffusion_grids();
    w.put_u32(n as u32);
    for i in 0..n {
        let g = sim.diffusion_grid(i);
        w.put_str(g.name());
        w.put_f64(g.diffusion_coefficient());
        w.put_f64(g.decay_constant());
        w.put_u64(g.resolution() as u64);
        w.put_u8(match g.boundary() {
            bdm_core::BoundaryCondition::ClosedReflecting => 0,
            bdm_core::BoundaryCondition::OpenAbsorbing => 1,
        });
        w.put_real3(g.domain_min());
        w.put_f64(g.domain_edge());
        w.put_u64(g.version());
        let c = g.concentrations();
        w.put_u64(c.len() as u64);
        for v in c {
            w.put_f64(*v);
        }
    }
    w.into_bytes()
}

/// Decodes a [`write_diffusion`] payload, rebuilding the grids on `sim`
/// (which must have none yet).
pub fn restore_diffusion(sim: &mut Simulation, payload: &[u8]) -> Result<(), CheckpointError> {
    let r = &mut ByteReader::new(payload);
    let n = r.take_u32().map_err(truncated(S_DIFF))? as usize;
    for _ in 0..n {
        let name = r.take_str().map_err(truncated(S_DIFF))?;
        let d = r.take_f64().map_err(truncated(S_DIFF))?;
        let decay = r.take_f64().map_err(truncated(S_DIFF))?;
        let resolution = r.take_u64().map_err(truncated(S_DIFF))? as usize;
        let boundary_code = r.take_u8().map_err(truncated(S_DIFF))?;
        let boundary = match boundary_code {
            0 => bdm_core::BoundaryCondition::ClosedReflecting,
            1 => bdm_core::BoundaryCondition::OpenAbsorbing,
            c => return Err(malformed(S_DIFF, format!("unknown boundary code {c}"))),
        };
        let min = r.take_real3().map_err(truncated(S_DIFF))?;
        let edge = r.take_f64().map_err(truncated(S_DIFF))?;
        let version = r.take_u64().map_err(truncated(S_DIFF))?;
        let len = r.take_u64().map_err(truncated(S_DIFF))? as usize;
        if resolution < 2 || len != resolution * resolution * resolution {
            return Err(malformed(
                S_DIFF,
                format!("grid {name:?}: {len} values for resolution {resolution}"),
            ));
        }
        if !(edge > 0.0 && d >= 0.0 && decay >= 0.0) {
            return Err(malformed(
                S_DIFF,
                format!("grid {name:?}: invalid parameters"),
            ));
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(r.take_f64().map_err(truncated(S_DIFF))?);
        }
        let mut grid = bdm_core::DiffusionGrid::new(&name, d, decay, resolution, min, edge)
            .with_boundary(boundary);
        grid.set_concentrations(&values);
        grid.set_version(version);
        sim.add_diffusion_grid(grid);
    }
    if !r.is_exhausted() {
        return Err(malformed(
            S_DIFF,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// SCHEDULER

const S_SCHD: &str = "SCHEDULER";

/// Encodes the op list: name, frequency, enabled flag per operation, in
/// pipeline order. Mid-iteration captures read the pre-detach snapshot the
/// scheduler keeps for exactly this purpose.
pub fn write_scheduler(sim: &Simulation) -> Vec<u8> {
    let ops = sim.scheduler().pipeline_info();
    let mut w = ByteWriter::new();
    w.put_u32(ops.len() as u32);
    for op in &ops {
        w.put_str(&op.name);
        w.put_u64(op.frequency);
        w.put_u8(u8::from(op.enabled));
    }
    w.into_bytes()
}

/// Applies a [`write_scheduler`] payload to `sim`'s pipeline. Frequencies
/// are applied before enabled flags because `set_frequency` re-enables.
pub fn restore_scheduler(sim: &mut Simulation, payload: &[u8]) -> Result<(), CheckpointError> {
    let r = &mut ByteReader::new(payload);
    let n = r.take_u32().map_err(truncated(S_SCHD))? as usize;
    for _ in 0..n {
        let name = r.take_str().map_err(truncated(S_SCHD))?;
        let frequency = r.take_u64().map_err(truncated(S_SCHD))?;
        let enabled = r.take_u8().map_err(truncated(S_SCHD))? != 0;
        if !sim.scheduler_mut().set_frequency(&name, frequency) {
            return Err(CheckpointError::UnknownOp { name });
        }
        sim.scheduler_mut().set_enabled(&name, enabled);
    }
    if !r.is_exhausted() {
        return Err(malformed(
            S_SCHD,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(())
}
