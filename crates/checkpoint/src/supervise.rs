//! Supervised execution: catch faults, roll back, retry, degrade.
//!
//! [`SupervisedRunner`] owns a [`Simulation`] and drives it like
//! [`Simulation::simulate`], but wraps every step in a panic boundary and
//! the health sentinel's verdict (see `bdm_core::supervisor`). On a failure
//! — a panic out of any operation, or a [`HealthViolation`] recorded by the
//! sentinel — the runner rolls the simulation back to the newest good
//! restore point in its [`CheckpointRing`] and replays. Because the engine
//! is deterministic and injected faults fire exactly once, a plain
//! rollback-and-retry converges to the *bitwise identical* state an
//! uninterrupted run would have reached.
//!
//! ## The recovery ladder
//!
//! 1. **Plain retry** — restore the newest restore point, replay.
//! 2. **Degrade** — on repeated failures of the same window, apply the
//!    configured [`Degradation`]s in order (e.g. fall back to the
//!    brute-force neighbor backend, disable an offending operation), then
//!    retry. Degradations trade fidelity/performance for progress and are
//!    off by default.
//! 3. **Walk back** — if a restore point itself is corrupt (checksum
//!    failure), drop it and retry against the next-older one.
//! 4. **Give up** — after [`RecoveryPolicy::max_attempts`] total recovery
//!    attempts, return [`SupervisorError::BudgetExhausted`]; with no intact
//!    restore point left, [`SupervisorError::NoRestorePoint`]. The runner
//!    never aborts the process.
//!
//! Recovery activity is surfaced twice: live in the simulation's
//! [`SimStats`](bdm_core::SimStats) counters (survives into bench reports)
//! and summarized in the returned [`RecoveryReport`].

use std::panic::{catch_unwind, AssertUnwindSafe};

use bdm_core::supervisor::HealthViolation;
use bdm_core::{EnvironmentKind, FaultKind, FaultSite, Param, Simulation};

use crate::error::CheckpointError;
use crate::registry::Registry;
use crate::ring::{CheckpointRing, RingPolicy};

/// A fidelity/performance trade applied to the restored simulation when
/// plain rollback-and-retry keeps failing (see the module docs). Note that
/// degradations change the execution configuration, so a degraded run is no
/// longer bitwise comparable to the undisturbed one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Degradation {
    /// Swap the neighbor-search backend for the O(n²) brute-force reference
    /// (slow but structurally trivial).
    UseBruteEnvironment,
    /// Turn off box-batched mechanics (per-agent neighbor queries instead).
    DisableBoxBatchedMechanics,
    /// Turn off static-agent detection (every agent recomputed every step).
    DisableStaticDetection,
    /// Disable the named operation in the scheduler.
    DisableOp(String),
}

/// Bounds and knobs for a [`SupervisedRunner`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Capture cadence and retention of the restore-point ring.
    pub ring: RingPolicy,
    /// Total recovery attempts allowed across the run before
    /// [`SupervisorError::BudgetExhausted`].
    pub max_attempts: u64,
    /// Escalation ladder: the `k`-th consecutive failure of the same window
    /// (k ≥ 2) applies `degradations[k - 2]` (clamped to the last entry).
    /// Empty (the default) keeps every retry bitwise-faithful.
    pub degradations: Vec<Degradation>,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            ring: RingPolicy::default(),
            max_attempts: 5,
            degradations: Vec::new(),
        }
    }
}

/// One recovery, as it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Iteration whose step failed (or was found corrupt).
    pub failed_iteration: u64,
    /// Iteration of the restore point the simulation was rolled back to.
    pub restored_from: u64,
    /// Human-readable failure cause (panic message or violation summary).
    pub cause: String,
    /// Degradation applied on this recovery, if the ladder escalated.
    pub degradation: Option<Degradation>,
}

/// Summary of a supervised run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Iterations the caller asked for (sum over `run` calls).
    pub iterations: u64,
    /// Panics caught at the step boundary.
    pub panics_caught: u64,
    /// Health violations that triggered recovery.
    pub violations_handled: u64,
    /// Recovery attempts performed (= rollbacks).
    pub attempts: u64,
    /// Recoveries confirmed by a clean replay past the failure point.
    pub succeeded: u64,
    /// Degradations applied by the escalation ladder.
    pub degradations_applied: u64,
    /// Checkpoint captures performed by the ring.
    pub captures: u64,
    /// Bytes resident in the restore-point ring at the end of the run.
    pub ring_bytes: usize,
    /// Every recovery, in order.
    pub recoveries: Vec<RecoveryEvent>,
}

/// Terminal supervision failure — the run could not be completed within the
/// recovery budget. The process is never aborted; the partially-advanced
/// simulation remains accessible through the runner.
#[derive(Debug, PartialEq, Eq)]
pub enum SupervisorError {
    /// The recovery-attempt budget ran out.
    BudgetExhausted {
        /// Attempts performed before giving up.
        attempts: u64,
        /// Iteration of the final failure.
        iteration: u64,
        /// Cause of the final failure.
        cause: String,
    },
    /// Every restore point in the ring failed to restore.
    NoRestorePoint {
        /// Iteration of the failure that triggered the (failed) recovery.
        iteration: u64,
        /// Cause of that failure.
        cause: String,
    },
    /// A checkpoint capture failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorError::BudgetExhausted {
                attempts,
                iteration,
                cause,
            } => write!(
                f,
                "recovery budget exhausted after {attempts} attempts at iteration {iteration}: {cause}"
            ),
            SupervisorError::NoRestorePoint { iteration, cause } => write!(
                f,
                "no intact restore point for failure at iteration {iteration}: {cause}"
            ),
            SupervisorError::Checkpoint(e) => write!(f, "checkpoint capture failed: {e}"),
        }
    }
}

impl std::error::Error for SupervisorError {}

impl From<CheckpointError> for SupervisorError {
    fn from(e: CheckpointError) -> SupervisorError {
        SupervisorError::Checkpoint(e)
    }
}

/// Drives a [`Simulation`] under the supervision loop described in the
/// module docs.
pub struct SupervisedRunner {
    sim: Simulation,
    ring: CheckpointRing,
    policy: RecoveryPolicy,
    registry: Registry,
    build: Box<dyn Fn(Param) -> Simulation>,
    report: RecoveryReport,
    consecutive_failures: u64,
    pending_verify: Option<u64>,
}

impl SupervisedRunner {
    /// Wraps `sim` with `policy`, using the built-in type
    /// [`Registry`] and [`Simulation::new`] for restores.
    pub fn new(sim: Simulation, policy: RecoveryPolicy) -> SupervisedRunner {
        let ring = CheckpointRing::new(policy.ring.clone());
        SupervisedRunner {
            sim,
            ring,
            policy,
            registry: Registry::with_builtin_types(),
            build: Box::new(Simulation::new),
            report: RecoveryReport::default(),
            consecutive_failures: 0,
            pending_verify: None,
        }
    }

    /// Replaces the restore [`Registry`] (needed when the model uses agent
    /// or behavior types beyond the built-ins).
    pub fn with_registry(mut self, registry: Registry) -> SupervisedRunner {
        self.registry = registry;
        self
    }

    /// Replaces the restore-time simulation builder (needed when the
    /// captured pipeline contains custom operations — see
    /// [`crate::restore_with`]).
    pub fn with_builder(
        mut self,
        build: impl Fn(Param) -> Simulation + 'static,
    ) -> SupervisedRunner {
        self.build = Box::new(build);
        self
    }

    /// The supervised simulation.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Mutable access to the supervised simulation (e.g. for seeding agents
    /// before the first `run`).
    pub fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// Consumes the runner, returning the simulation.
    pub fn into_sim(self) -> Simulation {
        self.sim
    }

    /// The recovery activity so far.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The restore-point ring (for size accounting).
    pub fn ring(&self) -> &CheckpointRing {
        &self.ring
    }

    /// Runs `iterations` supervised steps (recovering as needed), then a
    /// final forced health scan so silent corruption injected after the
    /// last scheduled scan is still caught and rolled back before
    /// returning. On success the simulation state is bitwise what an
    /// undisturbed run would have produced, provided no degradation was
    /// applied.
    pub fn run(&mut self, iterations: u64) -> Result<RecoveryReport, SupervisorError> {
        let target = self.sim.iteration() + iterations;
        self.report.iterations += iterations;
        if self.ring.is_empty() {
            // Guaranteed restore point before the first supervised step.
            self.capture_checked()?;
        }
        loop {
            while self.sim.iteration() < target {
                self.step_supervised()?;
            }
            // Final integrity sweep: recover (and re-run the tail) until
            // the end state scans clean.
            if self.sim.run_health_check() == 0 {
                break;
            }
            let viols = self.sim.take_health_violations();
            self.report.violations_handled += viols.len() as u64;
            self.recover(describe_violations(&viols))?;
        }
        self.report.captures = self.ring.captures();
        self.report.ring_bytes = self.ring.resident_bytes();
        self.sync_counters();
        Ok(self.report.clone())
    }

    fn step_supervised(&mut self) -> Result<(), SupervisorError> {
        let result = catch_unwind(AssertUnwindSafe(|| self.sim.step()));
        match result {
            Err(payload) => {
                self.report.panics_caught += 1;
                let msg = panic_message(payload.as_ref());
                self.recover(format!("panic: {msg}"))
            }
            Ok(()) => {
                let viols = self.sim.take_health_violations();
                if !viols.is_empty() {
                    self.report.violations_handled += viols.len() as u64;
                    return self.recover(describe_violations(&viols));
                }
                if let Some(failed) = self.pending_verify {
                    if self.sim.iteration() >= failed {
                        // A clean step carried us past the failure point:
                        // the recovery held.
                        self.pending_verify = None;
                        self.consecutive_failures = 0;
                        self.report.succeeded += 1;
                        self.sync_counters();
                    }
                }
                if self.ring.is_due(self.sim.iteration()) {
                    self.capture_checked()?;
                }
                Ok(())
            }
        }
    }

    /// Captures a restore point — unless the state fails a forced health
    /// scan (recover instead: never checkpoint corruption), or a fault is
    /// planted at the capture site.
    fn capture_checked(&mut self) -> Result<(), SupervisorError> {
        if self.sim.run_health_check() > 0 {
            let viols = self.sim.take_health_violations();
            self.report.violations_handled += viols.len() as u64;
            return self.recover(describe_violations(&viols));
        }
        match self.sim.take_due_fault(&FaultSite::CheckpointCapture) {
            Some(FaultKind::Panic) => {
                self.report.panics_caught += 1;
                return self.recover(format!(
                    "panic: injected fault: checkpoint capture at iteration {}",
                    self.sim.iteration()
                ));
            }
            // A skipped capture: the ring keeps an older restore point, so
            // a later recovery just replays a longer window.
            Some(FaultKind::DeltaGap) => return Ok(()),
            Some(FaultKind::CheckpointBitFlip { byte }) => {
                self.ring.capture(&self.sim)?;
                self.ring.corrupt_latest(byte);
                return Ok(());
            }
            Some(FaultKind::NanPosition { .. }) | None => {}
        }
        self.ring.capture(&self.sim)?;
        Ok(())
    }

    fn recover(&mut self, cause: String) -> Result<(), SupervisorError> {
        let failed_iteration = self.sim.iteration();
        if self.report.attempts >= self.policy.max_attempts {
            return Err(SupervisorError::BudgetExhausted {
                attempts: self.report.attempts,
                iteration: failed_iteration,
                cause,
            });
        }
        self.report.attempts += 1;
        self.consecutive_failures += 1;
        // The fault plan lives outside checkpoints; carry it (with its
        // fired flags) across the rollback so each fault fires only once.
        let plan = self.sim.take_fault_plan();
        let restored = loop {
            if self.ring.is_empty() {
                return Err(SupervisorError::NoRestorePoint {
                    iteration: failed_iteration,
                    cause,
                });
            }
            match self
                .ring
                .restore_latest_with(&self.registry, |p| (self.build)(p))
            {
                Ok(sim) => break sim,
                // Corrupt restore point: walk back to the next-older one.
                Err(_) => {
                    self.ring.drop_latest();
                }
            }
        };
        let restored_from = restored.iteration();
        self.sim = restored;
        // A restored simulation's change counters restart, so deltas against
        // pre-restore baselines are unsound — start a fresh chain.
        self.ring.break_chain();
        if let Some(p) = plan {
            self.sim.set_fault_plan(p);
        }
        let degradation = if self.consecutive_failures >= 2 && !self.policy.degradations.is_empty()
        {
            let idx =
                ((self.consecutive_failures - 2) as usize).min(self.policy.degradations.len() - 1);
            let d = self.policy.degradations[idx].clone();
            self.apply_degradation(&d);
            self.report.degradations_applied += 1;
            Some(d)
        } else {
            None
        };
        self.pending_verify = Some(failed_iteration);
        self.report.recoveries.push(RecoveryEvent {
            failed_iteration,
            restored_from,
            cause,
            degradation,
        });
        self.sync_counters();
        Ok(())
    }

    fn apply_degradation(&mut self, d: &Degradation) {
        match d {
            Degradation::UseBruteEnvironment => {
                self.sim.set_environment_kind(EnvironmentKind::Brute);
            }
            Degradation::DisableBoxBatchedMechanics => {
                self.sim.set_box_batched_mechanics(false);
            }
            Degradation::DisableStaticDetection => {
                self.sim.set_detect_static_agents(false);
            }
            Degradation::DisableOp(name) => {
                self.sim.scheduler_mut().set_enabled(name, false);
            }
        }
    }

    /// Pushes the running recovery totals into the simulation's stats (a
    /// restore resets them to the captured values, so they are re-applied
    /// after every rollback).
    fn sync_counters(&mut self) {
        self.sim
            .set_recovery_counters(self.report.attempts, self.report.succeeded);
    }
}

impl std::fmt::Debug for SupervisedRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedRunner")
            .field("iteration", &self.sim.iteration())
            .field("policy", &self.policy)
            .field("report", &self.report)
            .finish()
    }
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn describe_violations(viols: &[HealthViolation]) -> String {
    match viols {
        [] => "health violation".to_string(),
        [only] => only.to_string(),
        [first, ..] => format!("{first} (+{} more)", viols.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_core::supervisor::HealthPolicy;
    use bdm_core::{Cell, FaultPlan, Real3};

    fn seeded_sim(faults: Option<FaultPlan>) -> Simulation {
        let mut builder = Simulation::builder()
            .threads(2)
            .numa_domains(2)
            .interaction_radius(12.0)
            .health(HealthPolicy::every(2));
        if let Some(plan) = faults {
            builder = builder.fault_plan(plan);
        }
        let mut sim = builder.build();
        for i in 0..8 {
            let uid = sim.new_uid();
            sim.add_agent(
                Cell::new(uid)
                    .with_position(Real3::splat(10.0 + i as f64 * 5.0))
                    .with_diameter(10.0),
            );
        }
        sim
    }

    fn ring_policy() -> RingPolicy {
        RingPolicy {
            interval: 2,
            depth: 2,
            full_every: 2,
        }
    }

    #[test]
    fn recovers_from_injected_panic_bitwise() {
        let mut reference = seeded_sim(None);
        reference.simulate(10);

        let plan =
            FaultPlan::new().push(FaultSite::BeforeOp("agent_ops".into()), 6, FaultKind::Panic);
        let mut runner = SupervisedRunner::new(
            seeded_sim(Some(plan)),
            RecoveryPolicy {
                ring: ring_policy(),
                ..RecoveryPolicy::default()
            },
        );
        let report = runner.run(10).unwrap();
        assert_eq!(report.panics_caught, 1);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.succeeded, 1);
        bdm_core::testing::assert_identical(
            &bdm_core::testing::fingerprint(&reference),
            &bdm_core::testing::fingerprint(runner.sim()),
            "panic recovery",
        );
        let stats = runner.sim().stats();
        assert_eq!(stats.recoveries_attempted, 1);
        assert_eq!(stats.recoveries_succeeded, 1);
    }

    #[test]
    fn recovers_from_nan_position_write() {
        let mut reference = seeded_sim(None);
        reference.simulate(10);

        let plan = FaultPlan::new().push(
            FaultSite::BeforeOp("diffusion".into()),
            5,
            FaultKind::NanPosition { agent_index: 3 },
        );
        let mut runner = SupervisedRunner::new(
            seeded_sim(Some(plan)),
            RecoveryPolicy {
                ring: ring_policy(),
                ..RecoveryPolicy::default()
            },
        );
        let report = runner.run(10).unwrap();
        assert!(report.violations_handled >= 1, "{report:?}");
        assert_eq!(report.attempts, 1);
        bdm_core::testing::assert_identical(
            &bdm_core::testing::fingerprint(&reference),
            &bdm_core::testing::fingerprint(runner.sim()),
            "nan recovery",
        );
    }

    #[test]
    fn budget_exhaustion_is_typed() {
        // A fresh panic every iteration burns one attempt each; the plan
        // outlives a budget of 2.
        let mut plan = FaultPlan::new();
        for it in 2..10 {
            plan = plan.push(
                FaultSite::BeforeOp("agent_ops".into()),
                it,
                FaultKind::Panic,
            );
        }
        let mut runner = SupervisedRunner::new(
            seeded_sim(Some(plan)),
            RecoveryPolicy {
                ring: ring_policy(),
                max_attempts: 2,
                degradations: Vec::new(),
            },
        );
        let err = runner.run(10).unwrap_err();
        assert!(
            matches!(err, SupervisorError::BudgetExhausted { attempts: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn repeated_failure_escalates_degradation() {
        // Two panics at the same site force a second consecutive recovery,
        // which applies the first ladder entry.
        let plan = FaultPlan::new()
            .push(FaultSite::BeforeOp("agent_ops".into()), 5, FaultKind::Panic)
            .push(FaultSite::BeforeOp("agent_ops".into()), 5, FaultKind::Panic);
        let mut runner = SupervisedRunner::new(
            seeded_sim(Some(plan)),
            RecoveryPolicy {
                ring: ring_policy(),
                max_attempts: 5,
                degradations: vec![Degradation::DisableStaticDetection],
            },
        );
        let report = runner.run(10).unwrap();
        assert_eq!(report.attempts, 2);
        assert_eq!(report.degradations_applied, 1);
        assert_eq!(
            report.recoveries[1].degradation,
            Some(Degradation::DisableStaticDetection)
        );
        assert!(!runner.sim().param().detect_static_agents);
    }

    #[test]
    fn bit_flipped_restore_point_falls_back_to_older_one() {
        let plan = FaultPlan::new()
            .push(
                FaultSite::CheckpointCapture,
                4,
                FaultKind::CheckpointBitFlip { byte: 200 },
            )
            .push(FaultSite::BeforeOp("agent_ops".into()), 5, FaultKind::Panic);
        let mut reference = seeded_sim(None);
        reference.simulate(8);

        let mut runner = SupervisedRunner::new(
            seeded_sim(Some(plan)),
            RecoveryPolicy {
                ring: ring_policy(),
                ..RecoveryPolicy::default()
            },
        );
        let report = runner.run(8).unwrap();
        // Recovery had to skip the corrupt iteration-4 point and restore
        // an older one.
        assert_eq!(report.attempts, 1);
        assert!(report.recoveries[0].restored_from < 4, "{report:?}");
        bdm_core::testing::assert_identical(
            &bdm_core::testing::fingerprint(&reference),
            &bdm_core::testing::fingerprint(runner.sim()),
            "bit-flip fallback",
        );
    }

    #[test]
    fn delta_gap_lengthens_replay_but_stays_conformant() {
        let plan = FaultPlan::new()
            .push(FaultSite::CheckpointCapture, 4, FaultKind::DeltaGap)
            .push(FaultSite::BeforeOp("agent_ops".into()), 5, FaultKind::Panic);
        let mut reference = seeded_sim(None);
        reference.simulate(8);

        let mut runner = SupervisedRunner::new(
            seeded_sim(Some(plan)),
            RecoveryPolicy {
                ring: ring_policy(),
                ..RecoveryPolicy::default()
            },
        );
        let report = runner.run(8).unwrap();
        assert_eq!(report.attempts, 1);
        // The iteration-4 capture was skipped, so the rollback lands on 2.
        assert_eq!(report.recoveries[0].restored_from, 2);
        bdm_core::testing::assert_identical(
            &bdm_core::testing::fingerprint(&reference),
            &bdm_core::testing::fingerprint(runner.sim()),
            "delta gap",
        );
    }
}
