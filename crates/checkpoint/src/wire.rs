//! The container format: header, section table, trailer.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"BDMCKPT\0"
//! 8       4     format version (u32 LE, currently 3)
//! 12      1     kind: 0 = full, 1 = delta
//! 13      8     base file id (u64 LE): fnv1a64 of the base full
//!               checkpoint's bytes for deltas, 0 for full checkpoints
//! 21      4     section count (u32 LE)
//!         ...   sections, each:
//!                 4   tag (ASCII fourcc: PARM FORC CNTR AGNT DIFF SCHD SHRD)
//!                 8   payload length (u64 LE)
//!                 8   payload checksum: fnv1a64(payload)
//!                 n   payload
//! end-8   8     whole-file checksum: fnv1a64 of every preceding byte
//! ```
//!
//! Section payload layouts live in [`crate::sections`]. Every multi-byte
//! integer is little-endian; every float travels as its IEEE-754 bit
//! pattern, making write→read round-trips bitwise exact.

use bdm_util::{fnv1a64, ByteReader, ByteWriter};

use crate::error::{truncated, CheckpointError};

/// File magic.
pub const MAGIC: [u8; 8] = *b"BDMCKPT\0";
/// Current format version. v2 extended the PARAM section with the health
/// sentinel policy; v3 appended the shard count to PARAM and added the
/// SHARDS section (the partition manifest of sharded runs). Older files are
/// rejected rather than silently misread.
pub const FORMAT_VERSION: u32 = 3;
/// Header `kind` byte of a full checkpoint.
pub const KIND_FULL: u8 = 0;
/// Header `kind` byte of a delta checkpoint.
pub const KIND_DELTA: u8 = 1;

/// Section tags, in canonical file order.
pub mod tag {
    /// Engine parameters ([`bdm_core::Param`]).
    pub const PARAM: [u8; 4] = *b"PARM";
    /// Interaction force coefficients.
    pub const FORCE: [u8; 4] = *b"FORC";
    /// Iteration / uid / topology / generation counters.
    pub const COUNTERS: [u8; 4] = *b"CNTR";
    /// Agent arrays (all domains).
    pub const AGENTS: [u8; 4] = *b"AGNT";
    /// Diffusion grids.
    pub const DIFFUSION: [u8; 4] = *b"DIFF";
    /// Scheduler op list state.
    pub const SCHEDULER: [u8; 4] = *b"SCHD";
    /// Shard-partition manifest of sharded runs (validation-only on
    /// restore: the partition is recomputed from state).
    pub const SHARDS: [u8; 4] = *b"SHRD";
}

/// All seven tags in canonical order (also the write order).
pub const ALL_TAGS: [[u8; 4]; 7] = [
    tag::PARAM,
    tag::FORCE,
    tag::COUNTERS,
    tag::AGENTS,
    tag::DIFFUSION,
    tag::SCHEDULER,
    tag::SHARDS,
];

/// Human-readable section name for error messages.
pub fn tag_name(t: [u8; 4]) -> &'static str {
    match &t {
        b"PARM" => "PARAM",
        b"FORC" => "FORCE",
        b"CNTR" => "COUNTERS",
        b"AGNT" => "AGENTS",
        b"DIFF" => "DIFFUSION",
        b"SCHD" => "SCHEDULER",
        b"SHRD" => "SHARDS",
        _ => "unknown",
    }
}

/// A parsed checkpoint: header fields plus the verified sections.
pub struct Parsed<'a> {
    /// `KIND_FULL` or `KIND_DELTA`.
    pub kind: u8,
    /// Base file id (deltas only; 0 for full checkpoints).
    pub base_id: u64,
    /// `(tag, payload)` in file order; checksums already verified.
    pub sections: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> Parsed<'a> {
    /// The payload of section `t`, if present.
    pub fn section(&self, t: [u8; 4]) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|(st, _)| *st == t)
            .map(|(_, p)| *p)
    }

    /// The payload of section `t`, or the typed missing-section error.
    pub fn require(&self, t: [u8; 4]) -> Result<&'a [u8], CheckpointError> {
        self.section(t).ok_or(CheckpointError::MissingSection {
            section: tag_name(t),
        })
    }
}

/// Assembles a checkpoint file from its sections (already encoded payloads).
pub fn assemble(kind: u8, base_id: u64, sections: &[([u8; 4], Vec<u8>)]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u8(kind);
    w.put_u64(base_id);
    w.put_u32(sections.len() as u32);
    for (t, payload) in sections {
        w.put_bytes(t);
        w.put_u64(payload.len() as u64);
        w.put_u64(fnv1a64(payload));
        w.put_bytes(payload);
    }
    let file_sum = fnv1a64(w.as_slice());
    w.put_u64(file_sum);
    w.into_bytes()
}

/// Parses and fully verifies a checkpoint file: magic, format version,
/// whole-file checksum, then every section checksum. Never panics on
/// malformed input.
pub fn parse(bytes: &[u8]) -> Result<Parsed<'_>, CheckpointError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take_bytes(MAGIC.len()).map_err(truncated("header"))?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.take_u32().map_err(truncated("header"))?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::VersionMismatch { found: version });
    }
    let kind = r.take_u8().map_err(truncated("header"))?;
    if kind != KIND_FULL && kind != KIND_DELTA {
        return Err(CheckpointError::Malformed {
            section: "header",
            detail: format!("unknown checkpoint kind {kind}"),
        });
    }
    let base_id = r.take_u64().map_err(truncated("header"))?;
    let count = r.take_u32().map_err(truncated("header"))? as usize;

    // Verify the trailer before trusting any section metadata: a trailing
    // whole-file checksum catches corruption anywhere, including in the
    // section table itself.
    if bytes.len() < 8 {
        return Err(CheckpointError::ChecksumMismatch { section: "file" });
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a64(body) != stored {
        return Err(CheckpointError::ChecksumMismatch { section: "file" });
    }

    let mut sections = Vec::with_capacity(count);
    for _ in 0..count {
        let t: [u8; 4] = r
            .take_bytes(4)
            .map_err(truncated("section table"))?
            .try_into()
            .unwrap();
        let name = tag_name(t);
        let len = r.take_u64().map_err(truncated(name))? as usize;
        let sum = r.take_u64().map_err(truncated(name))?;
        let payload = r.take_bytes(len).map_err(truncated(name))?;
        if fnv1a64(payload) != sum {
            return Err(CheckpointError::ChecksumMismatch { section: name });
        }
        sections.push((t, payload));
    }
    // Exactly the trailer must remain.
    if r.remaining() != 8 {
        return Err(CheckpointError::Malformed {
            section: "trailer",
            detail: format!("{} bytes after the last section, expected 8", r.remaining()),
        });
    }
    Ok(Parsed {
        kind,
        base_id,
        sections,
    })
}
