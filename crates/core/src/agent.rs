//! Agents — the individual entities of the simulation (paper Section 2).
//!
//! Agents are stored as pool-allocated trait objects
//! ([`AgentBox`] = `PoolBox<dyn Agent>`), mirroring BioDynaMo's raw
//! `Agent*` vectors in the `ResourceManager`. Concrete agents embed an
//! [`AgentBase`] carrying the common state (uid, position, diameter,
//! behaviors) and implement the small amount of glue the engine cannot
//! provide generically (`clone_box`, `as_any`).

use std::any::Any;

use bdm_alloc::{MemoryManager, PoolBox};
use bdm_util::Real3;

use crate::behavior::BehaviorBox;

/// Stable unique identifier of an agent.
///
/// Uids are derived deterministically (hash of parent uid and a per-parent
/// sequence number, see `ExecutionContext::new_agent`), so simulations with a
/// fixed seed produce identical uids regardless of thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentUid(pub u64);

/// Position of an agent inside the resource manager:
/// `(NUMA domain, index within the domain's agent vector)`.
///
/// Handles are invalidated by the end-of-iteration commit (removals swap
/// agents around) and by agent sorting; they must not be stored across
/// iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentHandle {
    /// NUMA domain.
    pub domain: u32,
    /// Index within the domain's agent vector.
    pub index: u32,
}

impl AgentHandle {
    /// Creates a handle.
    pub fn new(domain: usize, index: usize) -> AgentHandle {
        AgentHandle {
            domain: domain as u32,
            index: index as u32,
        }
    }
}

/// Owning pointer to a type-erased agent in pool memory.
pub type AgentBox = PoolBox<dyn Agent>;

/// Common per-agent state embedded in every concrete agent type.
pub struct AgentBase {
    uid: AgentUid,
    position: Real3,
    diameter: f64,
    behaviors: Vec<BehaviorBox>,
}

impl std::fmt::Debug for AgentBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentBase")
            .field("uid", &self.uid)
            .field("position", &self.position)
            .field("diameter", &self.diameter)
            .field("behaviors", &self.behaviors.len())
            .finish()
    }
}

impl AgentBase {
    /// Creates a base with the given uid at the origin.
    pub fn new(uid: AgentUid) -> AgentBase {
        AgentBase {
            uid,
            position: Real3::ZERO,
            diameter: 10.0,
            behaviors: Vec::new(),
        }
    }

    /// Uid accessor.
    pub fn uid(&self) -> AgentUid {
        self.uid
    }

    /// Replaces the uid (used when cloning an agent into a daughter).
    pub fn set_uid(&mut self, uid: AgentUid) {
        self.uid = uid;
    }

    /// Position accessor.
    pub fn position(&self) -> Real3 {
        self.position
    }

    /// Position setter.
    ///
    /// A non-finite position is *counted* (process-global write sentinel,
    /// see [`crate::supervisor::write_sentinel_counts`]) rather than
    /// asserted on: release builds used to silently store NaNs here and
    /// debug builds aborted the whole process. The health sentinel turns
    /// the stored value into a typed violation on its next scan.
    pub fn set_position(&mut self, p: Real3) {
        if !p.is_finite() {
            crate::supervisor::flag_nonfinite_position();
        }
        self.position = p;
    }

    /// Diameter accessor.
    pub fn diameter(&self) -> f64 {
        self.diameter
    }

    /// Diameter setter.
    ///
    /// Like [`AgentBase::set_position`], an invalid (non-finite or negative)
    /// diameter is counted by the write sentinel instead of asserted on.
    pub fn set_diameter(&mut self, d: f64) {
        if !(d.is_finite() && d >= 0.0) {
            crate::supervisor::flag_invalid_diameter();
        }
        self.diameter = d;
    }

    /// The agent's behaviors.
    pub fn behaviors(&self) -> &[BehaviorBox] {
        &self.behaviors
    }

    /// Adds a behavior.
    pub fn add_behavior(&mut self, b: BehaviorBox) {
        self.behaviors.push(b);
    }

    /// Takes the behavior list out (the engine runs behaviors detached from
    /// the agent to satisfy the borrow checker, then puts them back).
    pub(crate) fn take_behaviors(&mut self) -> Vec<BehaviorBox> {
        std::mem::take(&mut self.behaviors)
    }

    /// Puts the behavior list back after execution. Behaviors the agent
    /// added *during* execution were pushed onto the (temporarily empty)
    /// list and are appended behind the surviving originals.
    pub(crate) fn put_behaviors(&mut self, mut original: Vec<BehaviorBox>) {
        original.append(&mut self.behaviors);
        self.behaviors = original;
    }

    /// Clones the base for a *new* agent: copies position/diameter, clones
    /// behaviors that are marked copy-to-new, and assigns `new_uid`.
    pub fn clone_for_daughter(
        &self,
        new_uid: AgentUid,
        mm: &MemoryManager,
        domain: usize,
    ) -> AgentBase {
        AgentBase {
            uid: new_uid,
            position: self.position,
            diameter: self.diameter,
            behaviors: self
                .behaviors
                .iter()
                .filter(|b| b.copy_to_new())
                .map(|b| b.clone_behavior(mm, domain))
                .collect(),
        }
    }

    /// Deep-clones the base including all behaviors (used by agent sorting,
    /// which relocates agents into fresh pool memory).
    pub fn clone_in(&self, mm: &MemoryManager, domain: usize) -> AgentBase {
        AgentBase {
            uid: self.uid,
            position: self.position,
            diameter: self.diameter,
            behaviors: self
                .behaviors
                .iter()
                .map(|b| b.clone_behavior(mm, domain))
                .collect(),
        }
    }
}

/// The agent trait (BioDynaMo's `Agent` class).
pub trait Agent: Send + Sync {
    /// Common state accessor.
    fn base(&self) -> &AgentBase;
    /// Common state accessor (mutable).
    fn base_mut(&mut self) -> &mut AgentBase;

    /// Stable unique id.
    fn uid(&self) -> AgentUid {
        self.base().uid()
    }

    /// Current position.
    fn position(&self) -> Real3 {
        self.base().position()
    }

    /// Moves the agent to `p`.
    fn set_position(&mut self, p: Real3) {
        self.base_mut().set_position(p);
    }

    /// Current diameter (interaction size).
    fn diameter(&self) -> f64 {
        self.base().diameter()
    }

    /// Sets the diameter.
    fn set_diameter(&mut self, d: f64) {
        self.base_mut().set_diameter(d);
    }

    /// A small user-defined value exposed to neighbors through the neighbor
    /// snapshot (e.g. cell type or infection state). Keeps neighbor reads
    /// data-race-free without locking agents.
    fn payload(&self) -> u64 {
        0
    }

    /// Whether the mechanical-forces operation applies to this agent.
    fn participates_in_mechanics(&self) -> bool {
        true
    }

    /// Stable type tag identifying this agent type in a checkpoint. The
    /// default `""` marks the type as **not checkpointable**: serializing a
    /// simulation containing it fails with a typed error instead of writing
    /// a checkpoint that cannot be restored. Tags are wire format — once
    /// published they must never change meaning.
    fn checkpoint_tag(&self) -> &'static str {
        ""
    }

    /// Serializes the type-specific state **beyond** the [`AgentBase`]
    /// fields (uid/position/diameter/behaviors travel separately, written
    /// by the checkpoint layer). The registered reader for
    /// [`Agent::checkpoint_tag`] must consume exactly these bytes.
    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        let _ = out;
    }

    /// Deep-clones the agent into fresh pool memory of `domain`
    /// (used by agent sorting; paper Section 4.2, step G).
    fn clone_box(&self, mm: &MemoryManager, domain: usize) -> AgentBox;

    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Downcast support (mutable).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Helper for implementing [`Agent::clone_box`] in one line:
/// `fn clone_box(&self, mm, d) -> AgentBox { clone_agent_box(self, mm, d) }`.
pub fn clone_agent_box<A>(agent: &A, mm: &MemoryManager, domain: usize) -> AgentBox
where
    A: Agent + CloneIn + 'static,
{
    let cloned = agent.clone_in(mm, domain);
    PoolBox::new_in(cloned, mm, domain).unsize(|p| p as *mut dyn Agent)
}

/// Deep clone with pool-allocated internals (behaviors).
pub trait CloneIn: Sized {
    /// Clones `self`, placing owned behaviors/sub-objects in pool memory of
    /// `domain`.
    fn clone_in(&self, mm: &MemoryManager, domain: usize) -> Self;
}

/// Allocates a concrete agent in pool memory and type-erases it.
pub fn new_agent_box<A: Agent + 'static>(agent: A, mm: &MemoryManager, domain: usize) -> AgentBox {
    PoolBox::new_in(agent, mm, domain).unsize(|p| p as *mut dyn Agent)
}

/// The default spherical agent (BioDynaMo's `Cell`).
pub struct Cell {
    base: AgentBase,
    /// Marker distinguishing cell populations (read by neighbors via
    /// [`Agent::payload`]).
    cell_type: u64,
    /// Volume-growth rate used by growth behaviors (µm³ per hour).
    growth_rate: f64,
    /// Diameter above which division behaviors trigger.
    division_threshold: f64,
}

impl Cell {
    /// Creates a cell with the given uid.
    pub fn new(uid: AgentUid) -> Cell {
        Cell {
            base: AgentBase::new(uid),
            cell_type: 0,
            growth_rate: 100.0,
            division_threshold: 14.0,
        }
    }

    /// Builder: position.
    pub fn with_position(mut self, p: Real3) -> Cell {
        self.base.set_position(p);
        self
    }

    /// Builder: diameter.
    pub fn with_diameter(mut self, d: f64) -> Cell {
        self.base.set_diameter(d);
        self
    }

    /// Builder: cell type marker.
    pub fn with_cell_type(mut self, t: u64) -> Cell {
        self.cell_type = t;
        self
    }

    /// Builder: volume growth rate.
    pub fn with_growth_rate(mut self, r: f64) -> Cell {
        self.growth_rate = r;
        self
    }

    /// Builder: division threshold diameter.
    pub fn with_division_threshold(mut self, t: f64) -> Cell {
        self.division_threshold = t;
        self
    }

    /// Cell type marker.
    pub fn cell_type(&self) -> u64 {
        self.cell_type
    }

    /// Volume growth rate.
    pub fn growth_rate(&self) -> f64 {
        self.growth_rate
    }

    /// Division threshold diameter.
    pub fn division_threshold(&self) -> f64 {
        self.division_threshold
    }

    /// Cell volume (sphere).
    pub fn volume(&self) -> f64 {
        let r = self.diameter() / 2.0;
        4.0 / 3.0 * std::f64::consts::PI * r * r * r
    }

    /// Grows the cell by `delta_volume` (clamped at zero).
    pub fn change_volume(&mut self, delta_volume: f64) {
        let v = (self.volume() + delta_volume).max(0.0);
        let d = 2.0 * (3.0 * v / (4.0 * std::f64::consts::PI)).cbrt();
        self.set_diameter(d);
    }

    /// Splits this cell: shrinks it to half volume and returns the daughter
    /// placed `direction` away at the mother's radius.
    pub fn divide(
        &mut self,
        daughter_uid: AgentUid,
        direction: Real3,
        mm: &MemoryManager,
        domain: usize,
    ) -> Cell {
        let half_volume = self.volume() / 2.0;
        let new_diameter = 2.0 * (3.0 * half_volume / (4.0 * std::f64::consts::PI)).cbrt();
        self.set_diameter(new_diameter);
        let offset = direction.normalized() * (new_diameter / 2.0);
        let mother_pos = self.position();
        self.set_position(mother_pos - offset * 0.5);
        let mut daughter = Cell {
            base: self.base.clone_for_daughter(daughter_uid, mm, domain),
            cell_type: self.cell_type,
            growth_rate: self.growth_rate,
            division_threshold: self.division_threshold,
        };
        daughter.set_diameter(new_diameter);
        daughter.set_position(mother_pos + offset * 0.5);
        daughter
    }
}

impl CloneIn for Cell {
    fn clone_in(&self, mm: &MemoryManager, domain: usize) -> Cell {
        Cell {
            base: self.base.clone_in(mm, domain),
            cell_type: self.cell_type,
            growth_rate: self.growth_rate,
            division_threshold: self.division_threshold,
        }
    }
}

impl Agent for Cell {
    fn base(&self) -> &AgentBase {
        &self.base
    }
    fn base_mut(&mut self) -> &mut AgentBase {
        &mut self.base
    }
    fn payload(&self) -> u64 {
        self.cell_type
    }
    fn checkpoint_tag(&self) -> &'static str {
        "core.Cell"
    }
    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        out.put_u64(self.cell_type);
        out.put_f64(self.growth_rate);
        out.put_f64(self.division_threshold);
    }
    fn clone_box(&self, mm: &MemoryManager, domain: usize) -> AgentBox {
        clone_agent_box(self, mm, domain)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_alloc::PoolConfig;

    fn mm() -> MemoryManager {
        MemoryManager::new(1, 1, PoolConfig::default())
    }

    #[test]
    fn base_accessors() {
        let mut b = AgentBase::new(AgentUid(7));
        assert_eq!(b.uid(), AgentUid(7));
        b.set_position(Real3::new(1.0, 2.0, 3.0));
        b.set_diameter(5.0);
        assert_eq!(b.position(), Real3::new(1.0, 2.0, 3.0));
        assert_eq!(b.diameter(), 5.0);
    }

    #[test]
    fn cell_volume_roundtrip() {
        let mut c = Cell::new(AgentUid(1)).with_diameter(10.0);
        let v = c.volume();
        c.change_volume(0.0);
        assert!((c.diameter() - 10.0).abs() < 1e-9);
        c.change_volume(v); // double the volume
        assert!((c.volume() - 2.0 * v).abs() < 1e-6);
        assert!(c.diameter() > 10.0 && c.diameter() < 20.0);
    }

    #[test]
    fn cell_division_conserves_volume() {
        let mm = mm();
        let mut mother = Cell::new(AgentUid(1))
            .with_diameter(14.0)
            .with_position(Real3::splat(5.0))
            .with_cell_type(3);
        let v_before = mother.volume();
        let daughter = mother.divide(AgentUid(2), Real3::new(1.0, 0.0, 0.0), &mm, 0);
        let v_after = mother.volume() + daughter.volume();
        assert!((v_before - v_after).abs() < 1e-6 * v_before);
        assert_eq!(daughter.cell_type(), 3);
        assert_eq!(daughter.uid(), AgentUid(2));
        assert_ne!(mother.position(), daughter.position());
        // Mother and daughter sit on opposite sides of the division axis.
        assert!(mother.position().x() < daughter.position().x());
    }

    #[test]
    fn type_erasure_roundtrip() {
        let mm = mm();
        let cell = Cell::new(AgentUid(9))
            .with_position(Real3::splat(1.0))
            .with_cell_type(5);
        let boxed: AgentBox = new_agent_box(cell, &mm, 0);
        assert_eq!(boxed.uid(), AgentUid(9));
        assert_eq!(boxed.payload(), 5);
        let cell_ref = boxed.as_any().downcast_ref::<Cell>().unwrap();
        assert_eq!(cell_ref.cell_type(), 5);
        drop(boxed);
        assert_eq!(mm.outstanding(), 0);
    }

    #[test]
    fn clone_box_deep_clones() {
        let mm = mm();
        let cell = Cell::new(AgentUid(3)).with_diameter(8.0);
        let boxed: AgentBox = new_agent_box(cell, &mm, 0);
        let cloned = boxed.clone_box(&mm, 0);
        assert_eq!(cloned.uid(), boxed.uid());
        assert_eq!(cloned.diameter(), 8.0);
        assert_ne!(
            cloned.as_ptr() as *const u8 as usize,
            boxed.as_ptr() as *const u8 as usize,
            "clone lives in fresh memory"
        );
        drop(boxed);
        drop(cloned);
        assert_eq!(mm.outstanding(), 0);
    }

    #[test]
    fn handles() {
        let h = AgentHandle::new(2, 40);
        assert_eq!(h.domain, 2);
        assert_eq!(h.index, 40);
    }
}
