//! Behaviors — functions attached to individual agents (paper Section 2:
//! "Behaviors are functions that can be assigned and removed from an agent
//! and give users fine-grained control over the actions of an agent").
//!
//! Like agents, behaviors are pool-allocated trait objects so that the
//! memory-layout optimizations of Section 4.3 cover them ("the most
//! frequently allocated objects in a simulation: agents and behaviors").

use bdm_alloc::{MemoryManager, PoolBox};

use crate::agent::Agent;
use crate::context::{AgentContext, NeighborAccess};

/// Owning pointer to a type-erased behavior in pool memory.
pub type BehaviorBox = PoolBox<dyn Behavior>;

/// What should happen to the behavior after it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BehaviorControl {
    /// Keep the behavior attached (the default).
    #[default]
    Keep,
    /// Detach and drop the behavior after this run.
    RemoveSelf,
}

/// A behavior attached to an agent.
pub trait Behavior: Send + Sync {
    /// Executes the behavior for `agent`. `ctx` provides neighbor queries,
    /// random numbers, agent creation/removal, and substance access.
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl;

    /// Clones the behavior into pool memory of `domain` (used by agent
    /// sorting and by division when the behavior is copy-to-new).
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox;

    /// Whether the behavior is copied onto daughter agents created by
    /// division (BioDynaMo's "copy to new" flag).
    fn copy_to_new(&self) -> bool {
        true
    }

    /// Which per-neighbor snapshot arrays this kernel reads through
    /// [`AgentContext::for_each_neighbor`] /
    /// [`AgentContext::count_neighbors`]. Models union their behaviors'
    /// declarations into
    /// [`Param::neighbor_access`](crate::param::Param::neighbor_access)
    /// (the engine adds the interaction force's access itself); when the
    /// union excludes [`NeighborAccess::PAYLOADS`], the engine skips
    /// gathering the payload array entirely. Defaults to the conservative
    /// [`NeighborAccess::ALL`] — a behavior that queries no neighbors
    /// should declare [`NeighborAccess::NONE`].
    ///
    /// ```
    /// use bdm_core::{
    ///     Agent, AgentContext, Behavior, BehaviorBox, BehaviorControl, MemoryManager,
    ///     NeighborAccess,
    /// };
    ///
    /// /// Counts neighbors by distance only: no diameter or payload reads.
    /// #[derive(Clone)]
    /// struct Crowding {
    ///     radius: f64,
    /// }
    ///
    /// impl Behavior for Crowding {
    ///     fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
    ///         let _crowd = ctx.count_neighbors(agent.position(), self.radius, |_| true);
    ///         BehaviorControl::Keep
    ///     }
    ///     fn neighbor_access(&self) -> NeighborAccess {
    ///         NeighborAccess::POSITIONS
    ///     }
    ///     fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
    ///         bdm_core::clone_behavior_box(self, mm, domain)
    ///     }
    /// }
    ///
    /// assert!(!Crowding { radius: 10.0 }.neighbor_access().reads_payloads());
    /// ```
    fn neighbor_access(&self) -> NeighborAccess {
        NeighborAccess::ALL
    }

    /// Diagnostic name.
    fn name(&self) -> &'static str {
        "behavior"
    }

    /// Stable type tag identifying this behavior type in a checkpoint. The
    /// default `""` marks the type as **not checkpointable**: serializing an
    /// agent carrying it fails with a typed error instead of silently
    /// dropping the behavior. Tags are wire format — once published they
    /// must never change meaning.
    fn checkpoint_tag(&self) -> &'static str {
        ""
    }

    /// Serializes the behavior's state. The registered reader for
    /// [`Behavior::checkpoint_tag`] must consume exactly these bytes.
    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        let _ = out;
    }
}

/// One-line implementation helper for [`Behavior::clone_behavior`].
pub fn clone_behavior_box<B: Behavior + Clone + 'static>(
    b: &B,
    mm: &MemoryManager,
    domain: usize,
) -> BehaviorBox {
    PoolBox::new_in(b.clone(), mm, domain).unsize(|p| p as *mut dyn Behavior)
}

/// Allocates a concrete behavior in pool memory and type-erases it.
pub fn new_behavior_box<B: Behavior + 'static>(
    b: B,
    mm: &MemoryManager,
    domain: usize,
) -> BehaviorBox {
    PoolBox::new_in(b, mm, domain).unsize(|p| p as *mut dyn Behavior)
}
