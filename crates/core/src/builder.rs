//! Fluent construction of [`Simulation`]s.
//!
//! [`SimulationBuilder`] replaces struct-literal [`Param`] construction at
//! call sites: engine tunables, the interaction force, diffusion grids, and
//! custom [`Operation`]s are all configured in one chain and materialized by
//! [`SimulationBuilder::build`]. [`Param`] remains the internal configuration
//! carrier — `Simulation::new(Param { .. })` stays fully supported.
//!
//! ```
//! use bdm_core::{Cell, Real3, Simulation};
//!
//! let mut sim = Simulation::builder()
//!     .threads(2)
//!     .time_step(1.0)
//!     .build();
//! let uid = sim.new_uid();
//! sim.add_agent(Cell::new(uid).with_position(Real3::splat(5.0)));
//! sim.simulate(3);
//! assert_eq!(sim.num_agents(), 1);
//! ```

use bdm_diffusion::DiffusionGrid;
use bdm_env::EnvironmentKind;
use bdm_sfc::CurveKind;

use crate::faults::FaultPlan;
use crate::force::InteractionForce;
use crate::param::{OptLevel, Param};
use crate::scheduler::Operation;
use crate::simulation::Simulation;
use crate::supervisor::HealthPolicy;

/// Fluent builder for [`Simulation`]; create one with
/// [`Simulation::builder`].
#[derive(Default)]
pub struct SimulationBuilder {
    param: Param,
    force: Option<InteractionForce>,
    grids: Vec<DiffusionGrid>,
    ops: Vec<Box<dyn Operation>>,
    faults: Option<FaultPlan>,
}

impl SimulationBuilder {
    /// A builder with [`Param::default`] settings.
    pub fn new() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// Starts from an explicit parameter set instead of the defaults
    /// (migration path for existing `Param` construction).
    pub fn with_param(mut self, param: Param) -> Self {
        self.param = param;
        self
    }

    /// Applies an optimization-ladder preset (paper Figures 8–10). The
    /// ladder configures the environment backend and toggles the built-in
    /// operations' optimizations cumulatively; later builder calls can
    /// still override individual switches.
    pub fn opt_level(mut self, level: OptLevel) -> Self {
        self.param = self.param.apply_opt_level(level);
        self
    }

    /// Worker threads (default: detect).
    pub fn threads(mut self, threads: usize) -> Self {
        self.param.threads = Some(threads);
        self
    }

    /// Virtual NUMA domains (default: detect).
    pub fn numa_domains(mut self, domains: usize) -> Self {
        self.param.numa_domains = Some(domains);
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.param.seed = seed;
        self
    }

    /// Neighbor-search backend (paper Figure 11).
    pub fn environment(mut self, kind: EnvironmentKind) -> Self {
        self.param.environment = kind;
        self
    }

    /// Simulation time step.
    pub fn time_step(mut self, dt: f64) -> Self {
        self.param.simulation_time_step = dt;
        self
    }

    /// Fixed interaction radius (default: derived from the largest agent
    /// diameter each iteration).
    pub fn interaction_radius(mut self, radius: f64) -> Self {
        self.param.interaction_radius = Some(radius);
        self
    }

    /// Enables/disables the built-in mechanics part of the agent operation.
    pub fn mechanics(mut self, enabled: bool) -> Self {
        self.param.enable_mechanics = enabled;
        self
    }

    /// Enables/disables static-agent detection (paper Section 5).
    pub fn detect_static_agents(mut self, enabled: bool) -> Self {
        self.param.detect_static_agents = enabled;
        self
    }

    /// Frequency of the built-in `agent_sorting` operation (paper
    /// Section 4.2 / Figure 12): `Some(f)` sorts every `f` iterations,
    /// `None` disables the operation.
    pub fn sort_frequency(mut self, frequency: Option<usize>) -> Self {
        self.param.agent_sort_frequency = frequency;
        self
    }

    /// Space-filling curve used by agent sorting.
    pub fn sort_curve(mut self, curve: CurveKind) -> Self {
        self.param.sort_curve = curve;
        self
    }

    /// Keep old agent copies alive during sorting (more memory, better
    /// layout; paper Section 4.2 step G).
    pub fn sort_use_extra_memory(mut self, enabled: bool) -> Self {
        self.param.sort_use_extra_memory = enabled;
        self
    }

    /// Parallel commit of agent additions/removals (paper Section 3.2).
    pub fn parallel_add_remove(mut self, enabled: bool) -> Self {
        self.param.parallel_add_remove = enabled;
        self
    }

    /// NUMA-aware iteration with two-level work stealing (Section 4.1).
    pub fn numa_aware_iteration(mut self, enabled: bool) -> Self {
        self.param.numa_aware_iteration = enabled;
        self
    }

    /// Serve agents/behaviors from the pool allocator (Section 4.3).
    pub fn pool_allocator(mut self, enabled: bool) -> Self {
        self.param.use_pool_allocator = enabled;
        self
    }

    /// Agents per scheduling block of the NUMA-aware iterator.
    pub fn iteration_block_size(mut self, block: usize) -> Self {
        self.param.iteration_block_size = block;
        self
    }

    /// Declares which per-neighbor snapshot arrays the model's behavior
    /// kernels read (union of their
    /// [`Behavior::neighbor_access`](crate::behavior::Behavior::neighbor_access)
    /// declarations; the engine adds the interaction force's access itself
    /// when mechanics is enabled). When the resulting union excludes
    /// [`NeighborAccess`](crate::NeighborAccess)`::PAYLOADS`, the engine
    /// skips gathering the payload array entirely.
    pub fn neighbor_access(mut self, access: crate::context::NeighborAccess) -> Self {
        self.param.neighbor_access = access;
        self
    }

    /// Overrides the interaction force model.
    pub fn force(mut self, force: InteractionForce) -> Self {
        self.force = Some(force);
        self
    }

    /// Registers a diffusion grid. Grids are added in call order, so the
    /// first grid gets index 0 for `AgentContext::substance`/`secrete`.
    pub fn diffusion_grid(mut self, grid: DiffusionGrid) -> Self {
        self.grids.push(grid);
        self
    }

    /// Registers a custom [`Operation`]; it is scheduled at the end of its
    /// kind group and runs at [`Operation::frequency`].
    pub fn operation(mut self, op: impl Operation + 'static) -> Self {
        self.ops.push(Box::new(op));
        self
    }

    /// In-process shard count K (sharded execution with SFC-range
    /// partitioning and halo exchange; see [`crate::sharded`] and
    /// [`Param::shards`]). `1` (the default) is the classic single-engine
    /// path; results are bitwise identical for every K.
    pub fn shards(mut self, shards: usize) -> Self {
        self.param.shards = shards;
        self
    }

    /// Enables the built-in health sentinel with `policy` (registers the
    /// `health_check` operation; see [`crate::supervisor`]).
    pub fn health(mut self, policy: HealthPolicy) -> Self {
        self.param.health = Some(policy);
        self
    }

    /// Shorthand: health sentinel with default policy, scanning every
    /// `frequency` iterations.
    pub fn health_checks_every(mut self, frequency: u64) -> Self {
        self.param.health = Some(HealthPolicy::every(frequency));
        self
    }

    /// Attaches a deterministic fault-injection plan (see [`crate::faults`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The parameter set the builder has accumulated so far.
    pub fn param(&self) -> &Param {
        &self.param
    }

    /// Materializes the simulation.
    pub fn build(self) -> Simulation {
        let mut sim = Simulation::new(self.param);
        if let Some(force) = self.force {
            sim.set_force(force);
        }
        for grid in self.grids {
            sim.add_diffusion_grid(grid);
        }
        for op in self.ops {
            sim.scheduler_mut().add_boxed_op(op);
        }
        if let Some(plan) = self.faults {
            sim.set_fault_plan(plan);
        }
        sim
    }
}

impl std::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("param", &self.param)
            .field("grids", &self.grids.len())
            .field("ops", &self.ops.len())
            .finish()
    }
}
