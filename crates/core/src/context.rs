//! Execution contexts: thread-local deferred operations and the per-agent
//! view handed to behaviors.
//!
//! BioDynaMo's `InPlaceExecutionContext` buffers agent additions and removals
//! thread-locally and commits them at the end of each iteration (paper
//! Section 3.2). We do the same, and additionally route *all* neighbor reads
//! through a per-iteration [`Snapshot`] (position, diameter, user payload of
//! every agent). The snapshot is immutable during the agent-operation phase,
//! which makes concurrent neighbor access data-race-free in safe Rust while
//! preserving the paper's locality properties: the snapshot is indexed by
//! agent index, so agent sorting (Section 4.2) aligns spatial locality with
//! memory locality for neighbor reads exactly as it does for the original's
//! pointer-chasing reads.
//!
//! The snapshot is a **structure of arrays** (paper Section 4, Figure 9/11:
//! memory-layout optimizations dominate end-to-end performance): parallel
//! `positions` / `diameters` / `payloads` arrays instead of one array of
//! 40-byte records. A neighbor visit streams positions from the index's
//! contiguous runs and loads `diameters[idx]` / `payloads[idx]` *lazily* —
//! only for accepted neighbors, and only for the arrays the kernel's
//! declared [`NeighborAccess`] actually reads. When no due kernel reads
//! payloads, the engine skips gathering the `payloads` array entirely.

use bdm_alloc::MemoryManager;
use bdm_diffusion::DiffusionGrid;
use bdm_env::{
    Environment, NeighborQueryScratch, PointCloud, SliceCloud, StencilRuns, UniformGridEnvironment,
};
use bdm_util::{Real3, SimRng};

use crate::agent::{new_agent_box, Agent, AgentBox, AgentHandle, AgentUid};
use crate::rng_stream;

/// Which per-neighbor snapshot arrays a kernel reads — the capability a
/// force/behavior kernel (or a custom
/// [`Operation`](crate::scheduler::Operation)) declares so the engine can
/// skip gathering and streaming arrays nobody will touch, analogous to
/// [`Operation::requires_box_lists`](crate::scheduler::Operation::requires_box_lists)
/// for the grid's linked lists.
///
/// `POSITIONS` and `DIAMETERS` are always gathered (the snapshot's position
/// array feeds the index rebuild and the max-diameter reduction needs every
/// diameter anyway); today only `PAYLOADS` changes what the gather writes.
/// Declaring the full truth anyway is what keeps the capability future-proof
/// and the Figure 5 memory-traffic proxy honest.
///
/// Flags combine with `|`:
///
/// ```
/// use bdm_core::NeighborAccess;
///
/// let access = NeighborAccess::POSITIONS | NeighborAccess::PAYLOADS;
/// assert!(access.contains(NeighborAccess::PAYLOADS));
/// assert!(!access.contains(NeighborAccess::DIAMETERS));
/// assert_eq!(access | NeighborAccess::NONE, access);
/// assert!(NeighborAccess::ALL.contains(access));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NeighborAccess(u8);

impl NeighborAccess {
    /// Reads nothing from the snapshot (e.g. a kernel without neighbor
    /// queries, or one that only counts neighbors by distance).
    pub const NONE: NeighborAccess = NeighborAccess(0);
    /// Reads neighbor positions (implied by issuing any neighbor query —
    /// the distance test streams them; always gathered).
    pub const POSITIONS: NeighborAccess = NeighborAccess(1);
    /// Reads neighbor diameters (the collision force does; always gathered).
    pub const DIAMETERS: NeighborAccess = NeighborAccess(1 << 1);
    /// Reads neighbor payloads ([`Agent::payload`], e.g. cell type or
    /// infection state). Gathered only when some due kernel declares this.
    pub const PAYLOADS: NeighborAccess = NeighborAccess(1 << 2);
    /// Everything — the conservative default for kernels that do not
    /// declare their access pattern.
    pub const ALL: NeighborAccess =
        NeighborAccess(Self::POSITIONS.0 | Self::DIAMETERS.0 | Self::PAYLOADS.0);

    /// Union of two access sets (const-friendly version of `|`).
    #[must_use]
    pub const fn union(self, other: NeighborAccess) -> NeighborAccess {
        NeighborAccess(self.0 | other.0)
    }

    /// Whether every flag of `other` is present in `self`.
    pub const fn contains(self, other: NeighborAccess) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the set includes [`NeighborAccess::PAYLOADS`].
    pub const fn reads_payloads(self) -> bool {
        self.contains(NeighborAccess::PAYLOADS)
    }

    /// The raw flag bits — the checkpoint wire representation.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds the set from [`NeighborAccess::bits`]; `None` if `bits`
    /// contains flags this engine version does not know.
    pub const fn from_bits(bits: u8) -> Option<NeighborAccess> {
        if bits & !NeighborAccess::ALL.0 != 0 {
            return None;
        }
        Some(NeighborAccess(bits))
    }
}

impl Default for NeighborAccess {
    /// The conservative default: [`NeighborAccess::ALL`].
    fn default() -> NeighborAccess {
        NeighborAccess::ALL
    }
}

impl std::ops::BitOr for NeighborAccess {
    type Output = NeighborAccess;
    fn bitor(self, rhs: NeighborAccess) -> NeighborAccess {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for NeighborAccess {
    fn bitor_assign(&mut self, rhs: NeighborAccess) {
        *self = self.union(rhs);
    }
}

/// Immutable per-iteration snapshot of all agents (domain-major order, same
/// indexing as the environment's point cloud), stored as a structure of
/// arrays: the gather writes each array in one contiguous stream, and
/// neighbor reads touch only the arrays the kernel declared in its
/// [`NeighborAccess`].
#[derive(Debug, Default)]
pub struct Snapshot {
    /// Position of every agent at the start of the iteration. Doubles as
    /// the environment rebuild's point cloud (24-byte stride, no virtual
    /// call via [`bdm_env::PointCloud::positions_slice`]).
    pub positions: Vec<Real3>,
    /// Diameter of every agent at the start of the iteration (parallel to
    /// `positions`).
    pub diameters: Vec<f64>,
    /// User payload ([`Agent::payload`]) of every agent, parallel to
    /// `positions` — **empty** when no due kernel declared
    /// [`NeighborAccess::PAYLOADS`] (see `payloads_gathered`).
    pub payloads: Vec<u64>,
    /// Whether `payloads` was gathered this iteration. When `false`,
    /// [`Neighbor::payload`] panics: a kernel reading payloads without
    /// declaring them is a capability bug, not a silent zero.
    pub payloads_gathered: bool,
    /// Start offset of each domain within the arrays (plus a final total).
    pub offsets: Vec<usize>,
    /// Largest agent diameter (drives the default interaction radius).
    pub max_diameter: f64,
    /// Axis-aligned bounds of all snapshot positions, computed during the
    /// gather. `environment_update` passes them to the index rebuild so the
    /// grid skips its own bounding pass over the cloud.
    pub bounds: Option<(Real3, Real3)>,
}

impl Snapshot {
    /// Global index of `(domain, local index)`.
    #[inline]
    pub fn global_index(&self, domain: usize, local: usize) -> usize {
        self.offsets[domain] + local
    }

    /// Inverse of [`Snapshot::global_index`].
    #[inline]
    pub fn split_index(&self, global: usize) -> (usize, usize) {
        // Domains are few (1–4 in the paper's systems); linear scan wins.
        let mut domain = 0;
        while domain + 1 < self.offsets.len() - 1 && self.offsets[domain + 1] <= global {
            domain += 1;
        }
        (domain, global - self.offsets[domain])
    }

    /// Number of agents in the snapshot.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Heap bytes of the arrays the current gather materialized, per the
    /// SoA layout (a skipped `payloads` array costs nothing even if its
    /// buffer lingers from an earlier iteration). The Figure 5/9/11
    /// harness reports this instead of assuming a record size.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.positions.len() * std::mem::size_of::<Real3>()
            + self.diameters.len() * std::mem::size_of::<f64>()
            + self.offsets.len() * std::mem::size_of::<usize>();
        if self.payloads_gathered {
            bytes += self.payloads.len() * std::mem::size_of::<u64>();
        }
        bytes
    }
}

/// The snapshot viewed as a point cloud — what neighbor searches during the
/// agent-operation phase read positions from.
pub struct SnapshotCloud<'a>(pub &'a Snapshot);

impl PointCloud for SnapshotCloud<'_> {
    fn len(&self) -> usize {
        self.0.positions.len()
    }
    fn position(&self, idx: usize) -> Real3 {
        self.0.positions[idx]
    }
    fn positions_slice(&self) -> Option<&[Real3]> {
        Some(&self.0.positions)
    }
    fn diameters(&self) -> Option<&[f64]> {
        // Feeds the uniform grid's conditional diameter scatter: the grid
        // copies these bitwise next to its box-sorted query slots when the
        // engine's update hint requests it.
        Some(&self.0.diameters)
    }
}

/// One accepted neighbor, handed to [`AgentContext::for_each_neighbor`]
/// callbacks.
///
/// The position is carried **by value** — the neighbor index streamed it
/// from its contiguous SoA run for the distance test, so reading it costs
/// nothing. Diameter and payload are **lazy**: each accessor loads from the
/// snapshot's dense array only when called, so a kernel that ignores a
/// field never touches its array (the payload array may not even have been
/// gathered — see [`NeighborAccess`]).
#[derive(Clone, Copy)]
pub struct Neighbor<'a> {
    snapshot: &'a Snapshot,
    index: usize,
    position: Real3,
}

impl Neighbor<'_> {
    /// Global (environment/snapshot) index of the neighbor.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Position at the start of the iteration (already streamed by the
    /// index; no snapshot load).
    #[inline]
    pub fn position(&self) -> Real3 {
        self.position
    }

    /// Diameter at the start of the iteration (one lazy 8-byte load).
    #[inline]
    pub fn diameter(&self) -> f64 {
        self.snapshot.diameters[self.index]
    }

    /// User payload ([`Agent::payload`]) at the start of the iteration
    /// (one lazy 8-byte load).
    ///
    /// # Panics
    /// If the engine skipped the payload gather this iteration because no
    /// due kernel declared [`NeighborAccess::PAYLOADS`] — declare the
    /// access on the kernel (see
    /// [`Behavior::neighbor_access`](crate::behavior::Behavior::neighbor_access),
    /// [`Param::neighbor_access`](crate::param::Param::neighbor_access)).
    #[inline]
    pub fn payload(&self) -> u64 {
        assert!(
            self.snapshot.payloads_gathered,
            "neighbor payloads were not gathered this iteration; declare \
             NeighborAccess::PAYLOADS on the kernel that reads them \
             (Param::neighbor_access / Operation::neighbor_access)"
        );
        self.snapshot.payloads[self.index]
    }
}

/// A queued secretion: `(grid index, position, amount)`.
pub(crate) type Secretion = (usize, Real3, f64);

/// A deferred mutation of another agent, applied at the end of the iteration.
pub(crate) type DeferredFn = Box<dyn FnOnce(&mut dyn Agent) + Send>;

/// Thread-local buffered effects of one iteration.
#[derive(Default)]
pub struct ExecutionContext {
    /// New agents per target NUMA domain.
    pub(crate) new_agents: Vec<Vec<AgentBox>>,
    /// Agents to remove (handles valid until commit).
    pub(crate) removals: Vec<AgentHandle>,
    /// Deferred mutations of other agents.
    pub(crate) deferred: Vec<(AgentHandle, DeferredFn)>,
    /// Queued substance secretions.
    pub(crate) secretions: Vec<Secretion>,
    /// Mechanics statistics: force calculations executed.
    pub(crate) force_calculations: u64,
    /// Mechanics statistics: force calculations served by the box-batched
    /// grid path (vs the scalar per-agent fallback).
    pub(crate) batched_force_queries: u64,
    /// Mechanics statistics: agents skipped as static (paper Section 5).
    pub(crate) static_skipped: u64,
    /// Non-finite force accumulations observed by the mechanics kernel
    /// (folded into a typed health violation at teardown).
    pub(crate) nonfinite_forces: u64,
    /// Reusable neighbor-query scratch: queries issued through this thread's
    /// [`AgentContext`] allocate nothing in steady state.
    pub(crate) query_scratch: NeighborQueryScratch,
    /// Reusable neighbor-index buffer of the mechanics operation (static
    /// detection collects the neighborhood to wake it on movement).
    pub(crate) mech_neighbors: Vec<u32>,
    /// One-entry cache of the box-batched mechanics path: the resolved
    /// stencil runs of the last queried box. All agents resident in one box
    /// share the same ≤9 runs, and after the Morton sort consecutive agents
    /// of a worker usually share a box — so most per-agent stencil
    /// derivations collapse into a three-word compare.
    pub(crate) mech_stencil: StencilCache,
}

/// See [`ExecutionContext::mech_stencil`].
#[derive(Default)]
pub(crate) struct StencilCache {
    /// Grid build the cached runs were resolved against
    /// ([`bdm_env::UniformGridEnvironment::build_count`]; 0 = nothing
    /// cached, the grid's count starts at 1).
    build: u64,
    /// Box coordinates the runs belong to.
    bc: [u32; 3],
    /// Shard grid the runs were resolved against (`u32::MAX` for the global
    /// grid). The K shard grids have *independent* build counters, so
    /// `(build, bc)` alone could collide across them.
    shard: u32,
    /// The resolved runs.
    runs: StencilRuns,
}

impl ExecutionContext {
    /// Creates a context for `num_domains` NUMA domains.
    pub fn new(num_domains: usize) -> ExecutionContext {
        ExecutionContext {
            new_agents: (0..num_domains).map(|_| Vec::new()).collect(),
            ..ExecutionContext::default()
        }
    }

    /// Number of queued new agents.
    pub fn pending_additions(&self) -> usize {
        self.new_agents.iter().map(Vec::len).sum()
    }

    /// Number of queued removals.
    pub fn pending_removals(&self) -> usize {
        self.removals.len()
    }

    /// Queues a pre-built agent for insertion into `domain` (used by tests
    /// and the benchmark harness; behaviors use `AgentContext::new_agent`).
    pub fn queue_new_agent(&mut self, domain: usize, agent: AgentBox) {
        self.new_agents[domain].push(agent);
    }

    /// Queues a removal (used by tests and the benchmark harness).
    pub fn queue_removal(&mut self, handle: AgentHandle) {
        self.removals.push(handle);
    }
}

/// The per-agent view of sharded execution (see
/// [`crate::sharded`]): neighbor queries run against the owning shard's
/// windowed grid instead of the global environment, and the grid's
/// shard-local indices are remapped to global ones before any kernel sees
/// them — behaviors and forces are shard-oblivious.
#[derive(Clone, Copy)]
pub(crate) struct ShardView<'a> {
    /// The owning shard's windowed grid (built over owned + halo members).
    pub grid: &'a UniformGridEnvironment,
    /// Shard-local → global index map (ascending).
    pub members: &'a [u32],
    /// Shard-local member positions — the point cloud behind the
    /// trait-object query fallback when the SoA cache is off.
    pub positions: &'a [Real3],
    /// Shard-local index of the current agent (the query's self-exclusion).
    pub self_local: u32,
    /// Shard id — discriminates the per-worker stencil cache across shard
    /// grids, whose build counters are independent.
    pub shard: u32,
}

/// Everything a behavior may touch while its agent is being processed.
pub struct AgentContext<'a> {
    pub(crate) exec: &'a mut ExecutionContext,
    pub(crate) env: &'a dyn Environment,
    pub(crate) snapshot: &'a Snapshot,
    /// Sharded execution: the owning shard's grid + index remap. `None` on
    /// the single-engine path.
    pub(crate) shard: Option<ShardView<'a>>,
    pub(crate) mm: &'a MemoryManager,
    pub(crate) diffusion: &'a [DiffusionGrid],
    /// NUMA domain new agents are allocated on (the worker's domain).
    pub(crate) alloc_domain: usize,
    /// Handle of the agent currently being processed.
    pub(crate) self_handle: AgentHandle,
    /// Global index of the agent currently being processed.
    pub(crate) self_global: usize,
    /// Simulation time step.
    pub dt: f64,
    /// Current iteration (1-based).
    pub iteration: u64,
    /// Deterministic per-(agent, iteration) random stream: identical results
    /// regardless of thread count or work stealing.
    pub rng: SimRng,
    /// Sequence number for deterministic child-uid derivation.
    pub(crate) uid_seq: u64,
    pub(crate) self_uid: AgentUid,
}

impl<'a> AgentContext<'a> {
    /// Handle of the current agent.
    pub fn self_handle(&self) -> AgentHandle {
        self.self_handle
    }

    /// The simulation's memory manager (for manual agent construction, e.g.
    /// cell division placing daughter behaviors in pool memory).
    pub fn memory_manager(&self) -> &'a MemoryManager {
        self.mm
    }

    /// The NUMA domain new agents created by this context land on.
    pub fn alloc_domain(&self) -> usize {
        self.alloc_domain
    }

    /// Translates a global (environment/snapshot) index into
    /// `(domain, local index)` — e.g. to build an [`AgentHandle`] for
    /// [`AgentContext::defer_on_agent`].
    pub fn split_global(&self, global: usize) -> (usize, usize) {
        self.snapshot.split_index(global)
    }

    /// Global (environment) index of the current agent.
    pub fn self_index(&self) -> usize {
        self.self_global
    }

    /// Visits every neighbor within `radius` of `pos`, excluding the current
    /// agent. The callback receives `(global index, neighbor, distance²)` —
    /// all reads go to the immutable snapshot, never to live agents. The
    /// [`Neighbor`] view carries the position the index already streamed
    /// from its contiguous SoA run; diameter/payload load lazily, only when
    /// the kernel calls the accessor. Queries reuse this thread's
    /// [`NeighborQueryScratch`], so they allocate nothing in steady state
    /// (hence `&mut self`).
    pub fn for_each_neighbor(
        &mut self,
        pos: Real3,
        radius: f64,
        mut f: impl FnMut(usize, Neighbor<'_>, f64),
    ) {
        let snapshot = self.snapshot;
        if let Some(sv) = self.shard {
            // Sharded path: query the owning shard's windowed grid and remap
            // its local indices to global before the kernel sees them. The
            // shard grid holds exactly the within-radius agents the global
            // grid holds (halo completeness) in the same relative order
            // (ascending-global member insertion), so the visit sequence is
            // bitwise that of the single-engine query.
            let members = sv.members;
            let exclude = Some(sv.self_local as usize);
            let served = sv
                .grid
                .for_each_neighbor_soa(pos, exclude, radius, |idx, p, d2| {
                    let g = members[idx] as usize;
                    f(
                        g,
                        Neighbor {
                            snapshot,
                            index: g,
                            position: p,
                        },
                        d2,
                    )
                });
            if !served {
                let cloud = SliceCloud(sv.positions);
                let scratch = &mut self.exec.query_scratch;
                Environment::for_each_neighbor(
                    sv.grid,
                    &cloud,
                    pos,
                    exclude,
                    radius,
                    scratch,
                    &mut |idx, p, d2| {
                        let g = members[idx] as usize;
                        f(
                            g,
                            Neighbor {
                                snapshot,
                                index: g,
                                position: p,
                            },
                            d2,
                        )
                    },
                );
            }
            return;
        }
        // Fast path: the uniform grid's SoA cache with the kernel closure
        // monomorphized straight into the nine-run scan — no virtual call
        // per query or per neighbor (the dominant cost at 10⁶ agents).
        if let Some(grid) = self.env.as_uniform_grid() {
            let served =
                grid.for_each_neighbor_soa(pos, Some(self.self_global), radius, |idx, p, d2| {
                    f(
                        idx,
                        Neighbor {
                            snapshot,
                            index: idx,
                            position: p,
                        },
                        d2,
                    )
                });
            if served {
                return;
            }
        }
        let cloud = SnapshotCloud(self.snapshot);
        let scratch = &mut self.exec.query_scratch;
        self.env.for_each_neighbor(
            &cloud,
            pos,
            Some(self.self_global),
            radius,
            scratch,
            &mut |idx, p, d2| {
                f(
                    idx,
                    Neighbor {
                        snapshot,
                        index: idx,
                        position: p,
                    },
                    d2,
                )
            },
        );
    }

    /// Box-batched mechanics neighbor scan — the grid fast path of
    /// [`AgentContext::for_each_neighbor`] specialized for the force
    /// kernel. The visitor receives `(index, position, diameter,
    /// distance²)`:
    ///
    /// * the **diameter** streams from the grid's box-sorted scatter (a
    ///   bitwise copy of `snapshot.diameters[index]`) instead of a random
    ///   per-neighbor gather;
    /// * the ≤9 **stencil runs** come from this worker's one-entry cache —
    ///   every agent resident in the same box reuses the same row offsets
    ///   ([`ExecutionContext::mech_stencil`]);
    /// * each run is scanned in a **single bounds-check-free streamed
    ///   pass** over the interleaved slot array — sequential 32-byte
    ///   loads, no per-candidate indirection — accepting in slot order,
    ///   so the accepted sequence is identical to the scalar scan's.
    ///   (A two-pass chunked variant that pre-computed distances per
    ///   block measured *slower* than this on the 10⁶ protocol; the
    ///   accept branch is cheap and the extra pass re-touched the slots.)
    ///
    /// Visit order, the accepted set, and every visited value are bitwise
    /// those of the per-agent path (same shared stencil traversal, copied
    /// diameters). Returns `false` without visiting anything when the
    /// batched path cannot serve the query — non-grid environment, sparse
    /// cloud, diameters not scattered this iteration, or a radius beyond
    /// the build radius — and the caller falls back to
    /// [`AgentContext::for_each_neighbor`] plus the lazy diameter load.
    pub(crate) fn for_each_neighbor_mech(
        &mut self,
        pos: Real3,
        radius: f64,
        f: &mut impl FnMut(usize, Real3, f64, f64),
    ) -> bool {
        // Sharded execution scans the owning shard's grid (local indices,
        // remapped to global on accept); the single-engine path scans the
        // global grid (indices already global, marked by the `u32::MAX`
        // shard key in the stencil cache).
        let (grid, exclude, shard_key, members): (
            &UniformGridEnvironment,
            usize,
            u32,
            Option<&[u32]>,
        ) = match self.shard {
            Some(sv) => (sv.grid, sv.self_local as usize, sv.shard, Some(sv.members)),
            None => {
                let Some(grid) = self.env.as_uniform_grid() else {
                    return false;
                };
                (grid, self.self_global, u32::MAX, None)
            }
        };
        if !grid.radius_within_build(radius) {
            return false;
        }
        let (Some(slots), Some(diameters)) = (grid.slots(), grid.scattered_diameters()) else {
            return false;
        };
        let bc = grid.box_coordinates(pos);
        let build = grid.build_count();
        let cache = &mut self.exec.mech_stencil;
        if cache.build != build || cache.bc != bc || cache.shard != shard_key {
            let Some(runs) = grid.stencil_runs(bc) else {
                return false;
            };
            *cache = StencilCache {
                build,
                bc,
                shard: shard_key,
                runs,
            };
        }
        let r2 = radius * radius;
        for &(start, end) in cache.runs.runs() {
            let (start, end) = (start as usize, end as usize);
            debug_assert!(end <= slots.len() && diameters.len() == slots.len());
            for i in start..end {
                // SAFETY: stencil runs are produced by the grid that owns
                // `slots` for the same build (checked via `build_count`
                // above), so `start..end` indexes in bounds; `diameters`
                // is scattered alongside `slots` in the same rebuild pass
                // and has the same length (debug-asserted above).
                let s = unsafe { slots.get_unchecked(i) };
                let d2 = pos.distance_sq(&s.position);
                if d2 <= r2 {
                    let idx = s.index as usize;
                    if idx != exclude {
                        // SAFETY: same bound as `slots` above.
                        let diameter = unsafe { *diameters.get_unchecked(i) };
                        let g = match members {
                            Some(m) => m[idx] as usize,
                            None => idx,
                        };
                        f(g, s.position, diameter, d2);
                    }
                }
            }
        }
        true
    }

    /// Counts neighbors within `radius` of `pos` satisfying `pred`.
    pub fn count_neighbors(
        &mut self,
        pos: Real3,
        radius: f64,
        mut pred: impl FnMut(Neighbor<'_>) -> bool,
    ) -> usize {
        let mut n = 0;
        self.for_each_neighbor(pos, radius, |_, d, _| {
            if pred(d) {
                n += 1;
            }
        });
        n
    }

    /// Derives a fresh deterministic uid for a child of the current agent.
    pub fn next_uid(&mut self) -> AgentUid {
        let mut s = self.self_uid.0 ^ self.iteration.wrapping_mul(0xD1B5_4A32_D192_ED03);
        s = s.wrapping_add(self.uid_seq.wrapping_mul(0xA076_1D64_78BD_642F));
        self.uid_seq += 1;
        AgentUid(bdm_util::rng::splitmix64(&mut s))
    }

    /// Queues a new agent for insertion at the end of the iteration
    /// (committed with the parallel addition of paper Section 3.2).
    pub fn new_agent<A: Agent + 'static>(&mut self, agent: A) {
        let boxed = new_agent_box(agent, self.mm, self.alloc_domain);
        self.exec.new_agents[self.alloc_domain].push(boxed);
    }

    /// Queues the current agent for removal.
    pub fn remove_self(&mut self) {
        self.exec.removals.push(self.self_handle);
    }

    /// Queues removal of an arbitrary agent (must not be queued twice in the
    /// same iteration).
    pub fn remove_agent(&mut self, handle: AgentHandle) {
        self.exec.removals.push(handle);
    }

    /// Defers a mutation of another agent; applied serially at the end of
    /// the iteration, before removals.
    pub fn defer_on_agent(
        &mut self,
        handle: AgentHandle,
        f: impl FnOnce(&mut dyn Agent) + Send + 'static,
    ) {
        self.exec.deferred.push((handle, Box::new(f)));
    }

    /// Read access to a diffusion grid by index (as registered on the
    /// simulation).
    pub fn substance(&self, grid: usize) -> &DiffusionGrid {
        &self.diffusion[grid]
    }

    /// Number of registered diffusion grids.
    pub fn num_substances(&self) -> usize {
        self.diffusion.len()
    }

    /// Queues a secretion of `amount` into grid `grid` at `pos` (applied
    /// before the diffusion step of this iteration).
    pub fn secrete(&mut self, grid: usize, pos: Real3, amount: f64) {
        debug_assert!(grid < self.diffusion.len());
        self.exec.secretions.push((grid, pos, amount));
    }
}

/// Builds the per-(agent, iteration) RNG stream.
pub(crate) fn agent_rng(seed: u64, uid: AgentUid, iteration: u64) -> SimRng {
    rng_stream(seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15), uid.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(offsets: Vec<usize>, n: usize) -> Snapshot {
        Snapshot {
            positions: vec![Real3::ZERO; n],
            diameters: vec![0.0; n],
            payloads: vec![0; n],
            payloads_gathered: true,
            offsets,
            max_diameter: 10.0,
            bounds: None,
        }
    }

    #[test]
    fn global_and_split_index_roundtrip() {
        // Two domains: 5 and 3 agents.
        let s = snapshot(vec![0, 5, 8], 8);
        for (domain, local, global) in [(0, 0, 0), (0, 4, 4), (1, 0, 5), (1, 2, 7)] {
            assert_eq!(s.global_index(domain, local), global);
            assert_eq!(s.split_index(global), (domain, local));
        }
    }

    #[test]
    fn split_index_single_domain() {
        let s = snapshot(vec![0, 4], 4);
        assert_eq!(s.split_index(3), (0, 3));
    }

    #[test]
    fn split_index_with_empty_middle_domain() {
        let s = snapshot(vec![0, 2, 2, 5], 5);
        assert_eq!(s.split_index(1), (0, 1));
        // Global 2 belongs to domain 2 (domain 1 is empty).
        assert_eq!(s.split_index(2), (2, 0));
        assert_eq!(s.split_index(4), (2, 2));
    }

    #[test]
    fn neighbor_access_flags_combine() {
        let a = NeighborAccess::POSITIONS | NeighborAccess::DIAMETERS;
        assert!(a.contains(NeighborAccess::POSITIONS));
        assert!(a.contains(NeighborAccess::DIAMETERS));
        assert!(!a.reads_payloads());
        assert!((a | NeighborAccess::PAYLOADS).reads_payloads());
        assert_eq!(a | NeighborAccess::NONE, a);
        assert!(NeighborAccess::ALL.contains(a));
        assert_eq!(NeighborAccess::default(), NeighborAccess::ALL);
        let mut acc = NeighborAccess::NONE;
        acc |= NeighborAccess::PAYLOADS;
        assert!(acc.reads_payloads());
        assert!(!NeighborAccess::NONE.contains(NeighborAccess::POSITIONS));
    }

    #[test]
    fn neighbor_view_loads_lazily() {
        let mut s = snapshot(vec![0, 2], 2);
        s.diameters[1] = 7.5;
        s.payloads[1] = 42;
        let n = Neighbor {
            snapshot: &s,
            index: 1,
            position: Real3::new(1.0, 2.0, 3.0),
        };
        assert_eq!(n.index(), 1);
        assert_eq!(n.position(), Real3::new(1.0, 2.0, 3.0));
        assert_eq!(n.diameter(), 7.5);
        assert_eq!(n.payload(), 42);
    }

    #[test]
    #[should_panic(expected = "payloads were not gathered")]
    fn neighbor_payload_panics_when_skipped() {
        let mut s = snapshot(vec![0, 2], 2);
        s.payloads.clear();
        s.payloads_gathered = false;
        let n = Neighbor {
            snapshot: &s,
            index: 0,
            position: Real3::ZERO,
        };
        let _ = n.payload();
    }

    #[test]
    fn snapshot_memory_counts_only_gathered_arrays() {
        let with = snapshot(vec![0, 4], 4);
        let mut without = snapshot(vec![0, 4], 4);
        without.payloads_gathered = false;
        assert_eq!(
            with.memory_bytes() - without.memory_bytes(),
            4 * std::mem::size_of::<u64>()
        );
    }

    #[test]
    fn execution_context_counters() {
        let ctx = ExecutionContext::new(2);
        assert_eq!(ctx.pending_additions(), 0);
        assert_eq!(ctx.pending_removals(), 0);
        assert_eq!(ctx.new_agents.len(), 2);
    }

    #[test]
    fn agent_rng_is_deterministic_and_distinct() {
        let mut a = agent_rng(1, AgentUid(5), 3);
        let mut b = agent_rng(1, AgentUid(5), 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = agent_rng(1, AgentUid(6), 3);
        let mut d = agent_rng(1, AgentUid(5), 4);
        let x = agent_rng(1, AgentUid(5), 3).next_u64();
        assert_ne!(c.next_u64(), x);
        assert_ne!(d.next_u64(), x);
    }
}
