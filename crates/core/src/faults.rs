//! Deterministic fault injection for recovery testing.
//!
//! Recovery paths that are only exercised when hardware misbehaves are
//! recovery paths that do not work. This module makes faults a first-class,
//! *seeded* input: a [`FaultPlan`] lists planned faults as
//! `(site × iteration × kind)` triples, the engine consults the plan at a
//! small set of named [`FaultSite`]s (before each scheduled operation, at
//! grid rebuild, at checkpoint capture), and each fault fires **exactly
//! once** — so after the supervisor restores a checkpoint and replays the
//! window, the fault does not re-fire and the retry converges to the
//! uninterrupted trajectory bit-for-bit.
//!
//! Plans are either hand-built ([`FaultPlan::push`]) for targeted tests or
//! derived from a seed ([`FaultPlan::seeded`]) for soak runs; both are fully
//! deterministic.

use bdm_util::SimRng;

/// Where in the engine a fault fires.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Immediately before the scheduler runs the named operation (built-in
    /// names live in [`builtin`](crate::scheduler::builtin)).
    BeforeOp(String),
    /// At the start of the environment (neighbor-index) rebuild phase.
    GridRebuild,
    /// When a supervisor captures a checkpoint into its ring. Faults at this
    /// site are handled by the capture path itself, which is how the
    /// checkpoint-targeted kinds ([`FaultKind::CheckpointBitFlip`],
    /// [`FaultKind::DeltaGap`]) get a buffer to corrupt.
    CheckpointCapture,
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSite::BeforeOp(name) => write!(f, "before op `{name}`"),
            FaultSite::GridRebuild => write!(f, "grid rebuild"),
            FaultSite::CheckpointCapture => write!(f, "checkpoint capture"),
        }
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (unwinds out of `Simulation::step`).
    Panic,
    /// Write `NaN` into the position of the agent at `agent_index`
    /// (reduced modulo the live agent count at fire time). Exercises the
    /// silent-corruption path: nothing unwinds, the health sentinel must
    /// *find* it.
    NanPosition {
        /// Index into the live agent set, reduced modulo the count.
        agent_index: usize,
    },
    /// Flip one bit of the newest checkpoint buffer (byte offset reduced
    /// modulo the buffer length). Only meaningful at
    /// [`FaultSite::CheckpointCapture`]; the corrupted buffer fails its
    /// checksum on restore, forcing fallback to an older ring entry.
    CheckpointBitFlip {
        /// Byte offset into the checkpoint buffer, reduced modulo its length.
        byte: u64,
    },
    /// Skip the due checkpoint capture entirely, leaving a gap in the ring —
    /// a later recovery must replay a longer window from an older entry.
    /// Only meaningful at [`FaultSite::CheckpointCapture`].
    DeltaGap,
}

impl FaultKind {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::NanPosition { .. } => "nan position write",
            FaultKind::CheckpointBitFlip { .. } => "checkpoint bit flip",
            FaultKind::DeltaGap => "delta-chain gap",
        }
    }
}

/// One planned fault: fire `kind` at `site` on `iteration`, once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    /// Where the fault fires.
    pub site: FaultSite,
    /// Iteration the fault fires on (iterations count from 1).
    pub iteration: u64,
    /// What the fault does.
    pub kind: FaultKind,
    fired: bool,
}

impl PlannedFault {
    /// Whether this fault has already fired.
    pub fn fired(&self) -> bool {
        self.fired
    }
}

/// A deterministic schedule of faults to inject into a simulation.
///
/// Attach with
/// [`SimulationBuilder::fault_plan`](crate::builder::SimulationBuilder::fault_plan)
/// or [`Simulation::set_fault_plan`](crate::simulation::Simulation::set_fault_plan).
/// The plan is plain data and travels *with* the failing run: a supervisor
/// transplants it onto the restored simulation so already-fired faults stay
/// fired across recoveries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a planned fault and returns the plan for chaining.
    pub fn push(mut self, site: FaultSite, iteration: u64, kind: FaultKind) -> FaultPlan {
        self.faults.push(PlannedFault {
            site,
            iteration,
            kind,
            fired: false,
        });
        self
    }

    /// Derives a plan of `count` faults from `seed`: sites drawn from
    /// `sites`, iterations uniform in `[first_iteration, last_iteration]`,
    /// kinds alternating over panics and NaN writes (the two kinds that are
    /// meaningful at simulation sites; use [`FaultPlan::push`] for the
    /// checkpoint-targeted kinds). Fully deterministic for a fixed seed.
    pub fn seeded(
        seed: u64,
        sites: &[FaultSite],
        first_iteration: u64,
        last_iteration: u64,
        count: usize,
    ) -> FaultPlan {
        assert!(!sites.is_empty(), "seeded plan needs at least one site");
        assert!(first_iteration >= 1 && last_iteration >= first_iteration);
        let mut rng = SimRng::stream(seed, 0xFA17);
        let span = (last_iteration - first_iteration + 1) as usize;
        let mut plan = FaultPlan::new();
        for i in 0..count {
            let site = sites[rng.below(sites.len())].clone();
            let iteration = first_iteration + rng.below(span) as u64;
            let kind = if i % 2 == 0 {
                FaultKind::Panic
            } else {
                FaultKind::NanPosition {
                    agent_index: rng.below(usize::MAX / 2),
                }
            };
            plan = plan.push(site, iteration, kind);
        }
        plan
    }

    /// Number of planned faults (fired or not).
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// Whether every planned fault has fired.
    pub fn all_fired(&self) -> bool {
        self.faults.iter().all(|f| f.fired)
    }

    /// Takes the first unfired fault matching `site` and `iteration`,
    /// marking it fired.
    pub fn take_due(&mut self, site: &FaultSite, iteration: u64) -> Option<FaultKind> {
        self.take_matching(iteration, |s| s == site)
    }

    /// [`FaultPlan::take_due`] for [`FaultSite::BeforeOp`] without
    /// allocating the site key.
    pub fn take_due_op(&mut self, op_name: &str, iteration: u64) -> Option<FaultKind> {
        self.take_matching(
            iteration,
            |s| matches!(s, FaultSite::BeforeOp(n) if n == op_name),
        )
    }

    fn take_matching(
        &mut self,
        iteration: u64,
        pred: impl Fn(&FaultSite) -> bool,
    ) -> Option<FaultKind> {
        let f = self
            .faults
            .iter_mut()
            .find(|f| !f.fired && f.iteration == iteration && pred(&f.site))?;
        f.fired = true;
        Some(f.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::builtin;

    #[test]
    fn faults_fire_exactly_once() {
        let mut plan = FaultPlan::new().push(
            FaultSite::BeforeOp(builtin::AGENT_OPS.to_string()),
            3,
            FaultKind::Panic,
        );
        assert!(plan.take_due_op(builtin::AGENT_OPS, 2).is_none());
        assert!(plan.take_due_op(builtin::SNAPSHOT, 3).is_none());
        assert_eq!(
            plan.take_due_op(builtin::AGENT_OPS, 3),
            Some(FaultKind::Panic)
        );
        assert!(plan.take_due_op(builtin::AGENT_OPS, 3).is_none(), "once");
        assert!(plan.all_fired());
    }

    #[test]
    fn site_matching_distinguishes_kinds_of_site() {
        let mut plan = FaultPlan::new()
            .push(FaultSite::GridRebuild, 2, FaultKind::Panic)
            .push(
                FaultSite::CheckpointCapture,
                2,
                FaultKind::CheckpointBitFlip { byte: 99 },
            );
        assert!(plan.take_due(&FaultSite::CheckpointCapture, 1).is_none());
        assert_eq!(
            plan.take_due(&FaultSite::GridRebuild, 2),
            Some(FaultKind::Panic)
        );
        assert_eq!(
            plan.take_due(&FaultSite::CheckpointCapture, 2),
            Some(FaultKind::CheckpointBitFlip { byte: 99 })
        );
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let sites = [
            FaultSite::BeforeOp(builtin::AGENT_OPS.to_string()),
            FaultSite::GridRebuild,
        ];
        let a = FaultPlan::seeded(42, &sites, 1, 20, 6);
        let b = FaultPlan::seeded(42, &sites, 1, 20, 6);
        let c = FaultPlan::seeded(43, &sites, 1, 20, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 6);
        assert!(!a.is_empty());
        assert!(a
            .faults()
            .iter()
            .all(|f| (1..=20).contains(&f.iteration) && !f.fired()));
    }

    #[test]
    fn display_and_labels() {
        assert_eq!(FaultSite::BeforeOp("x".into()).to_string(), "before op `x`");
        assert_eq!(FaultSite::GridRebuild.to_string(), "grid rebuild");
        assert_eq!(FaultKind::Panic.label(), "panic");
        assert_eq!(FaultKind::DeltaGap.label(), "delta-chain gap");
    }
}
