//! Pairwise collision forces (BioDynaMo's `InteractionForce`, following the
//! Cortex3D force model of Zubler & Douglas the paper references in
//! Section 5).
//!
//! The sphere–sphere force combines an elastic repulsion proportional to the
//! overlap with an adhesive attraction proportional to the square root of the
//! overlap times the effective radius:
//!
//! ```text
//! δ  = r₁ + r₂ − |x₂ − x₁|          (overlap; ≤ 0 → no force)
//! r* = r₁ r₂ / (r₁ + r₂)            (effective interaction radius)
//! F  = k δ − γ √(r* δ)              (along the center line)
//! ```
//!
//! with repulsion coefficient `k = 2` and adhesion coefficient `γ = 1` by
//! default (BioDynaMo's defaults). The static-agent detection mechanism of
//! Section 5 is tightly coupled to this implementation (condition ii).

use bdm_util::Real3;

/// Parameters of the default interaction force.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractionForce {
    /// Elastic repulsion coefficient (`k`).
    pub repulsion: f64,
    /// Adhesive attraction coefficient (`γ`).
    pub attraction: f64,
}

impl Default for InteractionForce {
    fn default() -> Self {
        InteractionForce {
            repulsion: 2.0,
            attraction: 1.0,
        }
    }
}

impl InteractionForce {
    /// Purely repulsive variant (used by the Biocellion cell-sorting model,
    /// where adhesion is modelled separately per type pair).
    pub fn repulsive_only() -> InteractionForce {
        InteractionForce {
            repulsion: 2.0,
            attraction: 0.0,
        }
    }

    /// Which per-neighbor snapshot arrays the force kernel reads:
    /// positions and diameters, never the payload. The engine unions this
    /// into the iteration's [`NeighborAccess`](crate::NeighborAccess)
    /// whenever mechanics is enabled, so models only declare their
    /// *behavior* kernels' access.
    pub fn neighbor_access(&self) -> crate::context::NeighborAccess {
        crate::context::NeighborAccess::POSITIONS.union(crate::context::NeighborAccess::DIAMETERS)
    }

    /// Force exerted **on** the sphere at `pos1` by the sphere at `pos2`.
    /// Returns `Real3::ZERO` when the spheres do not touch.
    #[inline]
    pub fn sphere_sphere(&self, pos1: Real3, diameter1: f64, pos2: Real3, diameter2: f64) -> Real3 {
        self.sphere_sphere_sq(pos1, diameter1, pos2, diameter2, pos1.distance_sq(&pos2))
    }

    /// [`InteractionForce::sphere_sphere`] for callers that already hold the
    /// **squared** center distance — every accepted neighbor of a
    /// fixed-radius query computed it for the distance test, so the force
    /// kernel reuses it instead of re-deriving `|x₁ − x₂|²` from the
    /// positions.
    ///
    /// **Bitwise identical** to `sphere_sphere` whenever
    /// `dist_sq == pos1.distance_sq(&pos2)`: `distance_sq` sums the squared
    /// component deltas in the same order as `(pos1 - pos2).norm_sq()`, so
    /// the single square root here sees the identical operand (pinned by a
    /// unit test below).
    #[inline]
    pub fn sphere_sphere_sq(
        &self,
        pos1: Real3,
        diameter1: f64,
        pos2: Real3,
        diameter2: f64,
        dist_sq: f64,
    ) -> Real3 {
        let r1 = 0.5 * diameter1;
        let r2 = 0.5 * diameter2;
        let delta = pos1 - pos2; // points away from the neighbor
        let center_distance = dist_sq.sqrt();
        let overlap = r1 + r2 - center_distance;
        if overlap <= 0.0 {
            return Real3::ZERO;
        }
        // Coincident centers: push in a fixed direction to separate them.
        if center_distance < 1e-12 {
            return Real3::new(self.repulsion * overlap, 0.0, 0.0);
        }
        let r_eff = r1 * r2 / (r1 + r2);
        let magnitude = self.repulsion * overlap - self.attraction * (r_eff * overlap).sqrt();
        delta * (magnitude / center_distance)
    }

    /// Force on a sphere at `pos` from a capsule (cylinder with hemispherical
    /// caps) between `a` and `b` with the given diameter — the neurite
    /// interaction used by the neuroscience specialization. The capsule is
    /// treated as a sphere centered at the closest point on the segment.
    #[inline]
    pub fn sphere_capsule(
        &self,
        pos: Real3,
        diameter: f64,
        a: Real3,
        b: Real3,
        capsule_diameter: f64,
    ) -> Real3 {
        let closest = closest_point_on_segment(pos, a, b);
        self.sphere_sphere(pos, diameter, closest, capsule_diameter)
    }
}

/// Closest point to `p` on the segment `[a, b]`.
#[inline]
pub fn closest_point_on_segment(p: Real3, a: Real3, b: Real3) -> Real3 {
    let ab = b - a;
    let len_sq = ab.norm_sq();
    if len_sq < 1e-24 {
        return a;
    }
    let t = ((p - a).dot(&ab) / len_sq).clamp(0.0, 1.0);
    a + ab * t
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: InteractionForce = InteractionForce {
        repulsion: 2.0,
        attraction: 1.0,
    };

    #[test]
    fn no_force_when_apart() {
        let f = F.sphere_sphere(Real3::ZERO, 10.0, Real3::new(20.0, 0.0, 0.0), 10.0);
        assert_eq!(f, Real3::ZERO);
    }

    #[test]
    fn no_force_at_exact_touch() {
        let f = F.sphere_sphere(Real3::ZERO, 10.0, Real3::new(10.0, 0.0, 0.0), 10.0);
        assert_eq!(f, Real3::ZERO);
    }

    #[test]
    fn overlap_repels_along_center_line() {
        let f = F.sphere_sphere(Real3::ZERO, 10.0, Real3::new(8.0, 0.0, 0.0), 10.0);
        // Overlap 2, r_eff 2.5: magnitude = 2*2 - sqrt(5) ≈ 1.764 > 0,
        // pointing in -x2 direction (away from the neighbor) for pos1.
        assert!(f.x() < 0.0, "{f:?} pushes agent 1 away from agent 2");
        assert_eq!(f.y(), 0.0);
        assert_eq!(f.z(), 0.0);
        let expected = -(2.0 * 2.0 - (2.5f64 * 2.0).sqrt());
        assert!((f.x() - expected).abs() < 1e-12);
    }

    #[test]
    fn slight_overlap_is_adhesive() {
        // For small overlap the sqrt adhesion term dominates: net attraction.
        let f = F.sphere_sphere(Real3::ZERO, 10.0, Real3::new(9.9, 0.0, 0.0), 10.0);
        assert!(f.x() > 0.0, "{f:?} pulls agent 1 toward agent 2");
    }

    #[test]
    fn newton_third_law() {
        let p1 = Real3::new(1.0, 2.0, 3.0);
        let p2 = Real3::new(4.0, 3.0, 1.0);
        let f12 = F.sphere_sphere(p1, 8.0, p2, 6.0);
        let f21 = F.sphere_sphere(p2, 6.0, p1, 8.0);
        assert!((f12 + f21).norm() < 1e-12);
    }

    #[test]
    fn coincident_centers_still_separate() {
        let f = F.sphere_sphere(Real3::splat(1.0), 10.0, Real3::splat(1.0), 10.0);
        assert!(f.norm() > 0.0);
        assert!(f.is_finite());
    }

    #[test]
    fn repulsive_only_never_attracts() {
        let f = InteractionForce::repulsive_only();
        for dist in [1.0, 5.0, 9.0, 9.99] {
            let force = f.sphere_sphere(Real3::ZERO, 10.0, Real3::new(dist, 0.0, 0.0), 10.0);
            assert!(force.x() <= 0.0, "dist {dist}: {force:?}");
        }
    }

    #[test]
    fn sphere_sphere_sq_is_bitwise_identical() {
        // The squared-distance entry point must reproduce `sphere_sphere`
        // bit for bit when fed `distance_sq` — the box-batched mechanics
        // path depends on this identity for determinism.
        let mut rng = bdm_util::SimRng::new(7);
        for _ in 0..1000 {
            let p1 = rng.point_in_cube(0.0, 20.0);
            let p2 = p1 + rng.unit_vector() * rng.uniform_in(0.0, 12.0);
            let (d1, d2) = (rng.uniform_in(1.0, 12.0), rng.uniform_in(1.0, 12.0));
            let a = F.sphere_sphere(p1, d1, p2, d2);
            let b = F.sphere_sphere_sq(p1, d1, p2, d2, p1.distance_sq(&p2));
            for axis in 0..3 {
                assert_eq!(a[axis].to_bits(), b[axis].to_bits(), "{p1:?} vs {p2:?}");
            }
        }
    }

    #[test]
    fn closest_point_cases() {
        let a = Real3::ZERO;
        let b = Real3::new(10.0, 0.0, 0.0);
        // Projection inside the segment.
        assert_eq!(
            closest_point_on_segment(Real3::new(3.0, 4.0, 0.0), a, b),
            Real3::new(3.0, 0.0, 0.0)
        );
        // Clamped to the endpoints.
        assert_eq!(
            closest_point_on_segment(Real3::new(-5.0, 1.0, 0.0), a, b),
            a
        );
        assert_eq!(
            closest_point_on_segment(Real3::new(15.0, 1.0, 0.0), a, b),
            b
        );
        // Degenerate segment.
        assert_eq!(closest_point_on_segment(Real3::splat(3.0), a, a), a);
    }

    #[test]
    fn capsule_force_uses_closest_point() {
        let a = Real3::new(-10.0, 0.0, 0.0);
        let b = Real3::new(10.0, 0.0, 0.0);
        // Sphere above the middle of the capsule, overlapping.
        let f = F.sphere_capsule(Real3::new(0.0, 4.0, 0.0), 6.0, a, b, 4.0);
        assert!(f.y() > 0.0, "pushed away perpendicular to the axis: {f:?}");
        assert!(f.x().abs() < 1e-12);
        // Out of reach -> zero.
        let f = F.sphere_capsule(Real3::new(0.0, 50.0, 0.0), 6.0, a, b, 4.0);
        assert_eq!(f, Real3::ZERO);
    }
}
