//! # bdm-core
//!
//! The BioDynaMo simulation engine core — a from-scratch Rust implementation
//! of the engine presented in "High-Performance and Scalable Agent-Based
//! Simulation with BioDynaMo" (PPoPP 2023):
//!
//! * [`agent`] — agents as pool-allocated trait objects, the default
//!   spherical [`Cell`].
//! * [`behavior`] — behaviors attached to individual agents.
//! * [`resource_manager`] — per-NUMA-domain agent storage with the parallel
//!   addition/removal algorithms of Section 3.2 (Figure 1).
//! * [`context`] — thread-local execution contexts and the data-race-free
//!   neighbor snapshot.
//! * [`force`] — the Cortex3D-style interaction force.
//! * `ops` (crate-private) — behavior execution and mechanics with static-agent detection
//!   (Section 5).
//! * `sorting` (crate-private) — Morton-order agent sorting and NUMA balancing
//!   (Section 4.2, Figure 3).
//! * [`param`] — parameters and the optimization ladder of the evaluation.
//! * [`scheduler`] — the first-class [`Operation`] pipeline of Algorithm 1:
//!   ordered op list, per-op frequencies and timings, built-in phases.
//! * [`sharded`] — in-process sharded execution: SFC-range partitioning,
//!   halo exchange, per-shard windowed grids; bitwise shard-count-invariant.
//! * [`builder`] — fluent [`SimulationBuilder`] construction.
//! * [`simulation`] — the simulation object driving the scheduler.
//! * [`supervisor`] — health sentinels: typed runtime state validation
//!   (non-finite scans, bounds, count explosions) instead of asserts.
//! * [`faults`] — deterministic, seeded fault injection at named engine
//!   sites, for exercising recovery paths reproducibly.
//! * [`testing`] — bitwise state capture and differential comparison for the
//!   conformance suites (checkpoint replay, cross-backend determinism).

#![warn(missing_docs)]

pub mod agent;
pub mod behavior;
pub mod builder;
pub mod context;
pub mod faults;
pub mod force;
pub(crate) mod ops;
pub mod param;
pub mod resource_manager;
pub mod scheduler;
pub mod sharded;
pub mod simulation;
pub(crate) mod sorting;
pub mod supervisor;
pub mod testing;

pub use agent::{
    clone_agent_box, new_agent_box, Agent, AgentBase, AgentBox, AgentHandle, AgentUid, Cell,
    CloneIn,
};
pub use behavior::{clone_behavior_box, new_behavior_box, Behavior, BehaviorBox, BehaviorControl};
pub use builder::SimulationBuilder;
pub use context::{AgentContext, ExecutionContext, Neighbor, NeighborAccess, Snapshot};
pub use faults::{FaultKind, FaultPlan, FaultSite, PlannedFault};
pub use force::InteractionForce;
pub use param::{OptLevel, Param};
pub use resource_manager::{CommitStats, ResourceManager, StaticFlags};
pub use scheduler::{builtin, OpInfo, OpKind, Operation, Scheduler, SimulationCtx};
pub use sharded::{ShardManifest, ShardReport, ShardStats, MAX_SHARDS};
pub use simulation::{SimStats, Simulation, StandaloneOp};
pub use supervisor::{HealthPolicy, HealthViolation, HealthViolationKind};

// Re-exported engine substrates for convenience.
pub use bdm_alloc::{MemoryManager, PoolBox, PoolConfig};
pub use bdm_diffusion::{BoundaryCondition, DiffusionGrid};
pub use bdm_env::{Environment, EnvironmentKind};
pub use bdm_numa::{NumaThreadPool, NumaTopology};
pub use bdm_sfc::CurveKind;
pub use bdm_util::{Real3, SimRng};

/// Derives an independent RNG stream (seed, stream id).
pub fn rng_stream(seed: u64, stream: u64) -> SimRng {
    SimRng::stream(seed, stream)
}
