//! Agent operations: behavior execution and the mechanical-forces operation
//! with static-agent detection (paper Sections 2 and 5).

use bdm_util::Real3;

use crate::agent::Agent;
use crate::behavior::BehaviorControl;
use crate::context::AgentContext;
use crate::force::InteractionForce;
use crate::resource_manager::{StaticFlags, VIOL_CUR, VIOL_NEXT};

/// Runs all behaviors of `agent`. Behaviors are temporarily detached from
/// the agent so they can receive `&mut dyn Agent` without aliasing; behaviors
/// returning [`BehaviorControl::RemoveSelf`] are dropped.
pub(crate) fn run_behaviors(agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) {
    let mut behaviors = agent.base_mut().take_behaviors();
    let mut i = 0;
    let mut len = behaviors.len();
    while i < len {
        match behaviors[i].run(agent, ctx) {
            BehaviorControl::Keep => i += 1,
            BehaviorControl::RemoveSelf => {
                behaviors.swap_remove(i);
                len -= 1;
            }
        }
    }
    agent.base_mut().put_behaviors(behaviors);
}

/// Configuration of the mechanics operation for one iteration.
pub(crate) struct MechanicsConfig {
    pub force: InteractionForce,
    /// Neighbor-search radius (the environment's build radius).
    pub search_radius: f64,
    /// Time step used to turn forces into displacements.
    pub dt: f64,
    /// Hard displacement cap (`simulation_max_displacement`).
    pub max_displacement: f64,
    /// Static-detection on/off (`detect_static_agents`).
    pub detect_static: bool,
    /// Displacements below this are "did not move".
    pub static_threshold: f64,
    /// Box-batched force accumulation on/off (`Param::box_batched_mechanics`;
    /// the off position pins the scalar path for parity tests).
    pub box_batched: bool,
}

/// Shared view of the per-domain violation flags, addressed by global index.
///
/// Double-buffered within one byte (see [`VIOL_CUR`]/[`VIOL_NEXT`]): raises
/// from this pass land on the NEXT bit, takes consume only the CUR bit set
/// by the *previous* pass, so the outcome never depends on which of two
/// concurrently processed agents ran first.
pub(crate) struct ViolationTable<'a> {
    /// One slice per domain.
    pub slices: Vec<&'a [std::sync::atomic::AtomicU8]>,
    /// Domain offsets (with total appended).
    pub offsets: &'a [usize],
}

impl ViolationTable<'_> {
    #[inline]
    fn locate(&self, global: usize) -> (usize, usize) {
        let mut d = 0;
        while d + 1 < self.offsets.len() - 1 && self.offsets[d + 1] <= global {
            d += 1;
        }
        (d, global - self.offsets[d])
    }

    /// Raises a violation for the *next* iteration's pass of the agent at
    /// `global`.
    #[inline]
    pub fn raise(&self, global: usize) {
        let (d, i) = self.locate(global);
        self.slices[d][i].fetch_or(VIOL_NEXT, std::sync::atomic::Ordering::Relaxed);
    }

    /// Consumes the pending violation flag of the agent at `global`.
    #[inline]
    pub fn take(&self, global: usize) -> bool {
        let (d, i) = self.locate(global);
        let prev = self.slices[d][i].fetch_and(!VIOL_CUR, std::sync::atomic::Ordering::Relaxed);
        prev & VIOL_CUR != 0
    }
}

/// The mechanical-forces agent operation: pairwise collision forces against
/// all neighbors, displacement application, and the static-agent detection
/// of paper Section 5.
///
/// Returns `true` if the force calculation was skipped (agent static).
pub(crate) fn run_mechanics(
    agent: &mut dyn Agent,
    flags: &mut StaticFlags,
    global: usize,
    violations: &ViolationTable<'_>,
    ctx: &mut AgentContext<'_>,
    cfg: &MechanicsConfig,
    neighbor_scratch: &mut Vec<u32>,
) -> bool {
    let snap_position = ctx.snapshot.positions[global];
    let snap_diameter = ctx.snapshot.diameters[global];
    let pos_now = agent.position();
    let diameter_now = agent.diameter();
    // Condition (ii): attribute changes that could increase the force —
    // growth or behavior-driven movement since the snapshot was taken.
    let behavior_changed = pos_now.distance_sq(&snap_position)
        > cfg.static_threshold * cfg.static_threshold
        || diameter_now > snap_diameter + 1e-12;
    // Condition (iii): new agents announce their presence to their
    // neighborhood on their first mechanics pass.
    let is_first_pass = flags.created_iter > 0 && flags.created_iter + 1 == ctx.iteration;

    if cfg.detect_static {
        // Consume the violation flag set by neighbors during the previous
        // iteration (conditions i–iii, push-based).
        let violated = violations.take(global);
        if flags.is_static && !violated && !behavior_changed && !is_first_pass {
            ctx.exec.static_skipped += 1;
            return true;
        }
    }

    // Pairwise collision forces against all neighbors (condition iv counts
    // the non-zero ones).
    let mut total_force = Real3::ZERO;
    let mut nonzero_forces = 0u32;
    neighbor_scratch.clear();
    let collect_neighbors = cfg.detect_static;
    // Box-batched fast path: positions AND diameters stream from the
    // grid's box-sorted arrays, the stencil is resolved once per box, and
    // each run is one bounds-check-free pass. Bit-identical to the
    // fallback: same visit order (shared stencil traversal), bitwise-copied
    // diameters, and `sphere_sphere_sq` fed the query's streamed d² equals
    // `sphere_sphere` bit for bit (see its docs).
    let batched = cfg.box_batched
        && ctx.for_each_neighbor_mech(pos_now, cfg.search_radius, &mut |idx, npos, ndiam, d2| {
            let f = cfg
                .force
                .sphere_sphere_sq(pos_now, diameter_now, npos, ndiam, d2);
            if f != Real3::ZERO {
                nonzero_forces += 1;
                total_force += f;
            }
            if collect_neighbors {
                neighbor_scratch.push(idx as u32);
            }
        });
    if batched {
        ctx.exec.batched_force_queries += 1;
    } else {
        // Fallback (sparse clouds, non-grid environments, unscattered
        // diameters): the neighbor position the index streamed (free) plus
        // one lazy diameter load per accepted neighbor — never the payload.
        ctx.for_each_neighbor(pos_now, cfg.search_radius, |idx, nd, d2| {
            let f =
                cfg.force
                    .sphere_sphere_sq(pos_now, diameter_now, nd.position(), nd.diameter(), d2);
            if f != Real3::ZERO {
                nonzero_forces += 1;
                total_force += f;
            }
            if collect_neighbors {
                neighbor_scratch.push(idx as u32);
            }
        });
    }
    ctx.exec.force_calculations += 1;

    // Forces translate into displacement with unit mobility, capped by
    // `simulation_max_displacement`.
    let mut displacement = total_force * cfg.dt;
    if !displacement.is_finite() {
        // Count instead of abort: a NaN norm fails every comparison below,
        // so the position write is naturally skipped and the corruption is
        // contained to this counter (surfaced as a NonFiniteForce violation
        // at teardown) instead of spreading through the population.
        ctx.exec.nonfinite_forces += 1;
    }
    let norm = displacement.norm();
    if norm > cfg.max_displacement {
        displacement *= cfg.max_displacement / norm;
    }
    let moved = norm > cfg.static_threshold;
    if moved {
        agent.set_position(pos_now + displacement);
    }

    if cfg.detect_static {
        if moved || behavior_changed || is_first_pass {
            // The agent changed: it cannot be static, and all of its
            // neighbors must re-evaluate their forces next iteration.
            flags.is_static = false;
            for &n in neighbor_scratch.iter() {
                violations.raise(n as usize);
            }
            if moved {
                // Also wake agents around the *new* position: a mover can
                // enter the interaction radius of an agent that was not a
                // neighbor at the old position. Static agents have not
                // moved, so the (stale) index still holds them at their
                // true positions and this query finds exactly the sleepers
                // that must re-evaluate.
                ctx.for_each_neighbor(agent.position(), cfg.search_radius, |idx, _nd, _d2| {
                    violations.raise(idx);
                });
            }
        } else {
            // Did not move, nothing changed; condition (iv) allows at most
            // one non-zero neighbor force (so that a shrinking or removed
            // neighbor cannot release a hidden counter-force).
            flags.is_static = nonzero_forces <= 1;
        }
    }
    false
}
