//! Simulation parameters and the optimization presets of the evaluation.
//!
//! The paper's Figures 8–10 progressively switch on the presented
//! optimizations starting from the "BioDynaMo standard implementation"
//! (all optimizations off, kd-tree environment). [`OptLevel`] encodes that
//! cumulative ladder; [`Param::apply_opt_level`] configures a parameter set
//! accordingly.
//!
//! [`Param`] is the configuration *carrier*: prefer the fluent
//! [`Simulation::builder()`](crate::simulation::Simulation::builder) at
//! call sites; struct-literal construction (`Param { .. }`) remains fully
//! supported for models and tests that sweep parameters programmatically.

use bdm_env::EnvironmentKind;
use bdm_sfc::CurveKind;

use crate::context::NeighborAccess;

/// All tunables of the simulation engine.
#[derive(Debug, Clone)]
pub struct Param {
    /// RNG seed; fixed seed + one thread ⇒ bit-reproducible runs.
    pub seed: u64,
    /// Neighbor-search backend (paper Figure 11).
    pub environment: EnvironmentKind,
    /// Fixed interaction radius; `None` derives it from the largest agent
    /// diameter each iteration (BioDynaMo's default box sizing).
    pub interaction_radius: Option<f64>,
    /// Simulation time step (hours in the biology models).
    pub simulation_time_step: f64,
    /// Hard cap on per-iteration displacement (BioDynaMo's
    /// `simulation_max_displacement`).
    pub simulation_max_displacement: f64,
    /// Enables the mechanical-forces agent operation.
    pub enable_mechanics: bool,
    /// Enables the static-region detection of paper Section 5
    /// (BioDynaMo's `detect_static_agents`).
    pub detect_static_agents: bool,
    /// Displacements below this threshold count as "did not move" for the
    /// static detection conditions.
    pub static_displacement_threshold: f64,
    /// Agent sorting frequency (paper Section 4.2 / Figure 12):
    /// `Some(f)` sorts every `f` iterations, `None` disables sorting.
    pub agent_sort_frequency: Option<usize>,
    /// Space-filling curve used by agent sorting (paper Section 4.2 chose
    /// Morton over Hilbert after measuring a negligible 0.54% difference;
    /// both are available for the ablation).
    pub sort_curve: CurveKind,
    /// Keep all old agent copies alive until the sorting step finished
    /// (more memory, better layout; paper Section 4.2 last paragraph and the
    /// "sorting uses extra memory" series of Figure 9).
    pub sort_use_extra_memory: bool,
    /// Commit agent additions/removals with the parallel algorithms of
    /// Section 3.2 (off = serial commit, as in the standard implementation).
    pub parallel_add_remove: bool,
    /// NUMA-aware iteration with two-level work stealing (Section 4.1);
    /// off = flat parallel loop without domain affinity.
    pub numa_aware_iteration: bool,
    /// Serve agents/behaviors from the pool allocator (Section 4.3);
    /// off = system allocator.
    pub use_pool_allocator: bool,
    /// Worker threads (`None` = detect; see `BDM_THREADS`).
    pub threads: Option<usize>,
    /// Virtual NUMA domains (`None` = detect; see `BDM_NUMA_DOMAINS`).
    pub numa_domains: Option<usize>,
    /// Agents per scheduling block of the NUMA-aware iterator.
    pub iteration_block_size: usize,
    /// Memory-block growth factor of the pool allocator
    /// (`mem_mgr_growth_rate`).
    pub mem_mgr_growth_rate: f64,
    /// Union of the [`NeighborAccess`] declarations of the model's behavior
    /// kernels — which per-neighbor snapshot arrays they read. The engine
    /// adds the interaction force's own access when mechanics is enabled,
    /// plus every due custom operation's
    /// [`Operation::neighbor_access`](crate::scheduler::Operation::neighbor_access);
    /// when the union excludes [`NeighborAccess::PAYLOADS`], the snapshot
    /// gather skips the payload array entirely. Defaults to the conservative
    /// [`NeighborAccess::ALL`].
    pub neighbor_access: NeighborAccess,
    /// Run the mechanics force accumulation on the box-batched grid path:
    /// stencil runs resolved once per box, positions and diameters streamed
    /// from the grid's box-sorted arrays, distance tests in vectorizable
    /// chunks. Bit-identical to the per-agent path by construction; `false`
    /// pins the scalar path (parity tests and A/B measurements). On by
    /// default.
    pub box_batched_mechanics: bool,
    /// In-process shard count K (see [`crate::sharded`]). `1` (the
    /// default) runs the classic single-engine path. `K > 1` partitions
    /// the population into K SFC-range shards, registers the built-in
    /// `halo_exchange` operation between `snapshot` and
    /// `environment_update`, and builds K windowed per-shard grids instead
    /// of the global index. Results are **bitwise identical for every K**
    /// as long as behaviors respect the sharding movement contract (no
    /// agent moves more than one interaction radius per iteration before
    /// its neighbor queries). Requires the uniform-grid environment;
    /// capped at [`MAX_SHARDS`](crate::sharded::MAX_SHARDS).
    pub shards: usize,
    /// Health-sentinel policy: when set, the default scheduler registers
    /// the built-in `health_check` operation with the policy's frequency,
    /// scanning for non-finite state, bounds escapes, and agent-count
    /// explosions (see [`crate::supervisor`]). `None` (the default)
    /// registers no sentinel. Carried in the checkpoint PARAM section so a
    /// restored simulation re-creates the identical pipeline.
    pub health: Option<crate::supervisor::HealthPolicy>,
}

impl Default for Param {
    fn default() -> Self {
        Param {
            seed: 4357,
            environment: EnvironmentKind::UniformGrid,
            interaction_radius: None,
            simulation_time_step: 0.01,
            simulation_max_displacement: 3.0,
            enable_mechanics: true,
            detect_static_agents: false,
            static_displacement_threshold: 1e-5,
            agent_sort_frequency: None,
            sort_curve: CurveKind::Morton,
            sort_use_extra_memory: false,
            parallel_add_remove: true,
            numa_aware_iteration: true,
            use_pool_allocator: true,
            threads: None,
            numa_domains: None,
            iteration_block_size: 1000,
            mem_mgr_growth_rate: 2.0,
            neighbor_access: NeighborAccess::ALL,
            box_batched_mechanics: true,
            shards: 1,
            health: None,
        }
    }
}

/// The cumulative optimization ladder of the evaluation (Figures 8–10).
/// Each level includes all previous ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// "BioDynaMo standard implementation": kd-tree environment, serial
    /// add/remove, no sorting, no NUMA awareness, system allocator, no
    /// static detection.
    Standard,
    /// + the optimized uniform grid (Section 3.1).
    UniformGrid,
    /// + parallel addition/removal of agents (Section 3.2).
    ParallelAddRemove,
    /// + memory-layout optimizations: NUMA-aware iteration, agent sorting,
    ///   pool allocator (Section 4).
    MemoryLayout,
    /// + extra memory during agent sorting (Section 4.2, step G).
    SortExtraMemory,
    /// + static agent detection (Section 5) — the full engine.
    StaticDetection,
}

impl OptLevel {
    /// All levels in ladder order.
    pub const ALL: [OptLevel; 6] = [
        OptLevel::Standard,
        OptLevel::UniformGrid,
        OptLevel::ParallelAddRemove,
        OptLevel::MemoryLayout,
        OptLevel::SortExtraMemory,
        OptLevel::StaticDetection,
    ];

    /// Human-readable label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::Standard => "standard",
            OptLevel::UniformGrid => "+uniform_grid",
            OptLevel::ParallelAddRemove => "+parallel_add_remove",
            OptLevel::MemoryLayout => "+memory_layout",
            OptLevel::SortExtraMemory => "+sort_extra_memory",
            OptLevel::StaticDetection => "+static_detection",
        }
    }
}

impl Param {
    /// Configures this parameter set for an optimization level of the
    /// evaluation ladder. `default_sort_freq` is used once sorting becomes
    /// active (the paper's Figure 12 studies the frequency; 10 is a good
    /// middle value on our models).
    pub fn apply_opt_level(mut self, level: OptLevel) -> Param {
        // Start from everything off…
        self.environment = EnvironmentKind::KdTree;
        self.parallel_add_remove = false;
        self.numa_aware_iteration = false;
        self.agent_sort_frequency = None;
        self.sort_use_extra_memory = false;
        self.use_pool_allocator = false;
        self.detect_static_agents = false;
        // …then switch on cumulatively.
        if level >= OptLevel::UniformGrid {
            self.environment = EnvironmentKind::UniformGrid;
        }
        if level >= OptLevel::ParallelAddRemove {
            self.parallel_add_remove = true;
        }
        if level >= OptLevel::MemoryLayout {
            self.numa_aware_iteration = true;
            self.agent_sort_frequency = Some(10);
            self.use_pool_allocator = true;
        }
        if level >= OptLevel::SortExtraMemory {
            self.sort_use_extra_memory = true;
        }
        if level >= OptLevel::StaticDetection {
            self.detect_static_agents = true;
        }
        self
    }

    /// The "standard implementation" baseline of the evaluation.
    pub fn standard() -> Param {
        Param::default().apply_opt_level(OptLevel::Standard)
    }

    /// Fully optimized engine (without static detection, which the paper
    /// recommends enabling only when static regions are expected).
    pub fn optimized() -> Param {
        Param::default().apply_opt_level(OptLevel::SortExtraMemory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_optimized() {
        let p = Param::default();
        assert_eq!(p.environment, EnvironmentKind::UniformGrid);
        assert!(p.parallel_add_remove);
        assert!(p.numa_aware_iteration);
        assert!(p.use_pool_allocator);
        assert!(!p.detect_static_agents, "opt-in per the paper");
    }

    #[test]
    fn standard_turns_everything_off() {
        let p = Param::standard();
        assert_eq!(p.environment, EnvironmentKind::KdTree);
        assert!(!p.parallel_add_remove);
        assert!(!p.numa_aware_iteration);
        assert!(p.agent_sort_frequency.is_none());
        assert!(!p.use_pool_allocator);
        assert!(!p.detect_static_agents);
    }

    #[test]
    fn ladder_is_cumulative() {
        let grid = Param::default().apply_opt_level(OptLevel::UniformGrid);
        assert_eq!(grid.environment, EnvironmentKind::UniformGrid);
        assert!(!grid.parallel_add_remove);

        let mem = Param::default().apply_opt_level(OptLevel::MemoryLayout);
        assert_eq!(mem.environment, EnvironmentKind::UniformGrid);
        assert!(mem.parallel_add_remove);
        assert!(mem.numa_aware_iteration);
        assert!(mem.use_pool_allocator);
        assert!(mem.agent_sort_frequency.is_some());
        assert!(!mem.sort_use_extra_memory);
        assert!(!mem.detect_static_agents);

        let full = Param::default().apply_opt_level(OptLevel::StaticDetection);
        assert!(full.sort_use_extra_memory);
        assert!(full.detect_static_agents);
    }

    #[test]
    fn ladder_order() {
        for w in OptLevel::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(OptLevel::ALL.len(), 6);
        for l in OptLevel::ALL {
            assert!(!l.label().is_empty());
        }
    }
}
