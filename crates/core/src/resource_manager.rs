//! The resource manager: per-NUMA-domain agent storage with parallel
//! addition and removal (paper Sections 3.2 and 4.1, Figures 1 and 2).
//!
//! Agents live in one pointer vector per (virtual) NUMA domain
//! (`Vec<AgentBox>`), exactly like BioDynaMo's `ResourceManager` keeps one
//! `std::vector<Agent*>` per NUMA node. Empty slots are disallowed, so
//! removing an agent from the middle swaps it with an element from the tail
//! before shrinking — the five-step parallel algorithm of Figure 1.
//!
//! Next to every agent vector sits an index-synchronized *sidecar*:
//! the static-detection state of Section 5 (`StaticFlags` owned exclusively
//! by the agent's processing thread, plus an `AtomicBool` violation flag
//! neighbors may set concurrently). All commit operations keep the sidecars
//! aligned.

use std::sync::atomic::{AtomicU8, Ordering};

use bdm_env::PointCloud;
use bdm_numa::NumaThreadPool;
use bdm_util::prefix_sum::prefix_sum_exclusive;
use bdm_util::send_ptr::SendMut;
use bdm_util::Real3;

use crate::agent::{Agent, AgentBox, AgentHandle};
use crate::context::ExecutionContext;

/// Per-agent static-detection state owned by the agent's processing thread.
#[derive(Debug, Clone, Copy)]
pub struct StaticFlags {
    /// Whether the force calculation may be skipped this iteration.
    pub is_static: bool,
    /// Iteration at which the agent was committed (detects "new" agents for
    /// condition iii of Section 5).
    pub created_iter: u64,
}

impl StaticFlags {
    fn new(created_iter: u64) -> StaticFlags {
        StaticFlags {
            is_static: false,
            created_iter,
        }
    }
}

/// Violation flag bit: pending for the *next* mechanics pass (what
/// [`ResourceManager::take_violation`] consumes).
///
/// The flag is double-buffered within one byte so that raising and
/// consuming can overlap inside the same parallel agent pass without the
/// outcome depending on scheduling: a raise during iteration *k* targets
/// [`VIOL_NEXT`], takes during *k* consume only `VIOL_CUR`, and
/// [`ResourceManager::promote_violations`] shifts NEXT into CUR once the
/// pass has finished. With a single bit, whether a neighbor's raise landed
/// before or after the victim's take decided *which iteration* the victim
/// woke up in — a data race breaking bit-reproducibility.
pub(crate) const VIOL_CUR: u8 = 0b01;
/// Violation flag bit: raised during the currently running agent pass.
pub(crate) const VIOL_NEXT: u8 = 0b10;

/// Storage of one NUMA domain.
#[derive(Default)]
pub(crate) struct DomainStore {
    pub(crate) agents: Vec<AgentBox>,
    pub(crate) flags: Vec<StaticFlags>,
    pub(crate) violations: Vec<AtomicU8>,
}

impl DomainStore {
    fn push(&mut self, agent: AgentBox, iteration: u64) {
        self.agents.push(agent);
        self.flags.push(StaticFlags::new(iteration));
        self.violations.push(AtomicU8::new(0));
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.agents.swap(a, b);
        self.flags.swap(a, b);
        self.violations.swap(a, b);
    }

    fn truncate(&mut self, len: usize) {
        self.agents.truncate(len);
        self.flags.truncate(len);
        self.violations.truncate(len);
    }

    fn len(&self) -> usize {
        self.agents.len()
    }
}

/// Statistics of one commit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Agents added.
    pub added: usize,
    /// Agents removed.
    pub removed: usize,
}

/// Owner of all agents (BioDynaMo's `ResourceManager`).
pub struct ResourceManager {
    pub(crate) domains: Vec<DomainStore>,
    /// Bumped on every change that can invalidate an index-addressed
    /// snapshot (push, commit, sort rewrite, exclusive agent access):
    /// consumers compare generations to detect that agent indices were
    /// remapped or an agent was mutated in place — a pure length check
    /// misses same-count add/remove pairs and in-place moves.
    pub(crate) generation: u64,
}

impl ResourceManager {
    /// Creates an empty manager with `num_domains` NUMA domains.
    pub fn new(num_domains: usize) -> ResourceManager {
        assert!(num_domains > 0);
        ResourceManager {
            domains: (0..num_domains).map(|_| DomainStore::default()).collect(),
            generation: 0,
        }
    }

    /// Structural-change generation (see the field docs).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of NUMA domains.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// Total number of agents.
    pub fn num_agents(&self) -> usize {
        self.domains.iter().map(DomainStore::len).sum()
    }

    /// Agents in one domain.
    pub fn num_in_domain(&self, domain: usize) -> usize {
        self.domains[domain].len()
    }

    /// Per-domain agent counts (input to the NUMA-aware iterator).
    pub fn domain_sizes(&self) -> Vec<usize> {
        self.domains.iter().map(DomainStore::len).collect()
    }

    /// Global-index offsets of each domain, with the total appended.
    pub fn offsets(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.domains.len() + 1);
        let mut acc = 0;
        for d in &self.domains {
            out.push(acc);
            acc += d.len();
        }
        out.push(acc);
        out
    }

    /// Inserts an agent during model initialization (round-robin balancing
    /// is the caller's responsibility; `Simulation::add_agent` does it).
    pub fn push(&mut self, domain: usize, agent: AgentBox, iteration: u64) -> AgentHandle {
        self.generation += 1;
        let store = &mut self.domains[domain];
        store.push(agent, iteration);
        AgentHandle::new(domain, store.len() - 1)
    }

    /// Shared access to an agent.
    pub fn agent(&self, h: AgentHandle) -> &dyn Agent {
        &*self.domains[h.domain as usize].agents[h.index as usize]
    }

    /// Exclusive access to an agent. Counts as a structural change for
    /// [`ResourceManager::generation`]: the caller may move the agent, which
    /// invalidates index-addressed position snapshots taken earlier in the
    /// iteration (the engine then re-reads live agents instead).
    pub fn agent_mut(&mut self, h: AgentHandle) -> &mut dyn Agent {
        self.generation += 1;
        &mut *self.domains[h.domain as usize].agents[h.index as usize]
    }

    /// The static-detection sidecar of an agent (checkpointing; Section 5
    /// state survives a serialize→restore round trip through this pair of
    /// accessors).
    pub fn static_flags(&self, h: AgentHandle) -> StaticFlags {
        self.domains[h.domain as usize].flags[h.index as usize]
    }

    /// Overwrites the static-detection sidecar of an agent (restore path).
    /// Does not count as a structural change: the agent itself is untouched.
    pub fn set_static_flags(&mut self, h: AgentHandle, flags: StaticFlags) {
        self.domains[h.domain as usize].flags[h.index as usize] = flags;
    }

    /// Visits every agent with its handle.
    pub fn for_each_agent(&self, mut f: impl FnMut(AgentHandle, &dyn Agent)) {
        for (d, store) in self.domains.iter().enumerate() {
            for (i, agent) in store.agents.iter().enumerate() {
                f(AgentHandle::new(d, i), &**agent);
            }
        }
    }

    /// Commits the buffered additions and removals of all execution contexts
    /// (the end-of-iteration teardown of paper Section 3.2).
    ///
    /// With `parallel` set, additions use grow-once + parallel writes and
    /// removals use the five-step swap algorithm of Figure 1; otherwise both
    /// run serially (the "standard implementation" baseline).
    pub fn commit(
        &mut self,
        ctxs: &mut [ExecutionContext],
        pool: &NumaThreadPool,
        parallel: bool,
        iteration: u64,
    ) -> CommitStats {
        let mut stats = CommitStats::default();

        // ---- Removals (before additions, so handles stay valid). ----
        // Group removal indices by domain.
        let num_domains = self.domains.len();
        let mut removals: Vec<Vec<u32>> = vec![Vec::new(); num_domains];
        for ctx in ctxs.iter_mut() {
            for h in ctx.removals.drain(..) {
                removals[h.domain as usize].push(h.index);
            }
        }
        for (d, mut list) in removals.into_iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            // Defensive dedup: removing the same slot twice would corrupt
            // the swap algorithm.
            list.sort_unstable();
            list.dedup();
            stats.removed += list.len();
            if parallel {
                parallel_remove(&mut self.domains[d], &list, pool);
            } else {
                serial_remove(&mut self.domains[d], &list);
            }
        }

        // ---- Additions. ----
        for d in 0..num_domains {
            let total: usize = ctxs.iter().map(|c| c.new_agents[d].len()).sum();
            if total == 0 {
                continue;
            }
            stats.added += total;
            let store = &mut self.domains[d];
            if parallel {
                parallel_append(store, ctxs, d, iteration, pool);
            } else {
                for ctx in ctxs.iter_mut() {
                    for agent in ctx.new_agents[d].drain(..) {
                        store.push(agent, iteration);
                    }
                }
            }
        }
        // A commit without additions or removals leaves every index and
        // agent untouched — only structural change advances the generation
        // (delta checkpoints skip the agent section on an unchanged
        // generation, so a no-op commit must not invalidate it).
        if stats.added > 0 || stats.removed > 0 {
            self.generation += 1;
        }
        stats
    }
}

/// Serial reference removal: swap-remove from the highest index down.
fn serial_remove(store: &mut DomainStore, sorted_indices: &[u32]) {
    for &idx in sorted_indices.iter().rev() {
        let idx = idx as usize;
        let last = store.len() - 1;
        store.swap(idx, last);
        store.truncate(last);
    }
}

/// The five-step parallel removal algorithm of paper Figure 1.
///
/// Runs in O(removed) time and space (steps 1–4 parallel) — independent of
/// the number of *remaining* agents.
fn parallel_remove(store: &mut DomainStore, indices: &[u32], pool: &NumaThreadPool) {
    let removed = indices.len();
    let old_size = store.len();
    debug_assert!(removed <= old_size);
    let new_size = old_size - removed;

    // Step 1: initialize the auxiliary arrays.
    const NIL: u32 = u32::MAX;
    let mut to_right = vec![NIL; removed];
    let mut not_to_left = vec![0u8; removed];

    // Step 2: fill them. Each parallel block of the (sorted) removal list
    // writes disjoint `to_right` slots; `not_to_left` slots are keyed by
    // `idx - new_size` and therefore unique per removed index.
    {
        let to_right_ptr = SendMut::new(to_right.as_mut_ptr());
        let not_left_ptr = SendMut::new(not_to_left.as_mut_ptr());
        pool.parallel_for(removed, 1024, &|_ctx, range| {
            for k in range {
                let idx = indices[k] as usize;
                if idx < new_size {
                    // This removed agent sits left of the boundary; its slot
                    // must be refilled from the right.
                    // SAFETY: slot k is written exactly once.
                    unsafe { to_right_ptr.write(k, indices[k]) };
                } else {
                    // SAFETY: idx - new_size < removed, unique per idx.
                    unsafe { not_left_ptr.write(idx - new_size, 1u8) };
                }
            }
        });
    }

    // Step 3: per-block compaction. `to_right`: move non-NIL entries to the
    // block front. `not_to_left` → `to_left`: a zero at position p means the
    // agent at `p + new_size` survives and must move left; replace it with
    // that index and move it to the block front.
    let nthreads = pool.num_threads();
    let block = removed.div_ceil(nthreads).max(1);
    let nblocks = removed.div_ceil(block);
    let mut swaps_right = vec![0usize; nblocks];
    let mut swaps_left = vec![0usize; nblocks];
    {
        let sr = SendMut::new(swaps_right.as_mut_ptr());
        let to_right_ptr = SendMut::new(to_right.as_mut_ptr());
        pool.parallel_for(nblocks, 1, &|_c, range| {
            for b in range {
                let start = b * block;
                let end = (start + block).min(removed);
                let mut write = start;
                for read in start..end {
                    // SAFETY: disjoint block [start, end).
                    unsafe {
                        let v = *to_right_ptr.ptr_at(read);
                        if v != NIL {
                            *to_right_ptr.ptr_at(write) = v;
                            write += 1;
                        }
                    }
                }
                // SAFETY: slot b written exactly once.
                unsafe { sr.write(b, write - start) };
            }
        });
        // `not_to_left` entries are u8 flags and cannot hold indices, so the
        // semantic change to `to_left` (paper step 3) writes into a dedicated
        // index array.
        let not_left_ptr = SendMut::new(not_to_left.as_mut_ptr());
        let sl = SendMut::new(swaps_left.as_mut_ptr());
        let mut to_left = vec![NIL; removed];
        let tl = SendMut::new(to_left.as_mut_ptr());
        pool.parallel_for(nblocks, 1, &|_c, range| {
            for b in range {
                let start = b * block;
                let end = (start + block).min(removed);
                let mut write = start;
                for read in start..end {
                    // SAFETY: disjoint block [start, end).
                    unsafe {
                        if *not_left_ptr.ptr_at(read) == 0 {
                            *tl.ptr_at(write) = (read + new_size) as u32;
                            write += 1;
                        }
                    }
                }
                // SAFETY: slot b written exactly once.
                unsafe { sl.write(b, write - start) };
            }
        });

        // Step 4: prefix sums over the per-block swap counters, then perform
        // the swaps in parallel.
        let total_right = prefix_sum_exclusive(&mut swaps_right);
        let total_left = prefix_sum_exclusive(&mut swaps_left);
        debug_assert_eq!(
            total_right, total_left,
            "removed-left-of-boundary must equal survivors-right-of-boundary"
        );
        let nswaps = total_right;
        // Compact the block-local runs into dense global arrays (parallel,
        // O(removed)).
        let mut right_dense = vec![NIL; nswaps];
        let mut left_dense = vec![NIL; nswaps];
        {
            let rd = SendMut::new(right_dense.as_mut_ptr());
            let ld = SendMut::new(left_dense.as_mut_ptr());
            let swaps_right = &swaps_right;
            let swaps_left = &swaps_left;
            let to_right = &to_right;
            let to_left = &to_left;
            pool.parallel_for(nblocks, 1, &|_c, range| {
                for b in range {
                    let start = b * block;
                    let end = (start + block).min(removed);
                    let rbase = swaps_right[b];
                    let rlen = if b + 1 < nblocks {
                        swaps_right[b + 1] - rbase
                    } else {
                        nswaps - rbase
                    };
                    for j in 0..rlen {
                        debug_assert!(start + j < end);
                        // SAFETY: dense ranges per block are disjoint.
                        unsafe { rd.write(rbase + j, to_right[start + j]) };
                    }
                    let lbase = swaps_left[b];
                    let llen = if b + 1 < nblocks {
                        swaps_left[b + 1] - lbase
                    } else {
                        nswaps - lbase
                    };
                    for j in 0..llen {
                        debug_assert!(start + j < end);
                        // SAFETY: dense ranges per block are disjoint.
                        unsafe { ld.write(lbase + j, to_left[start + j]) };
                    }
                }
            });
        }
        // Perform the swaps: survivor at `left_dense[k]` fills the hole at
        // `right_dense[k]`. Distinct k touch distinct indices, so parallel
        // swaps are safe.
        {
            let agents_ptr = SendMut::new(store.agents.as_mut_ptr());
            let flags_ptr = SendMut::new(store.flags.as_mut_ptr());
            let viol_ptr = SendMut::new(store.violations.as_mut_ptr());
            let right_dense = &right_dense;
            let left_dense = &left_dense;
            pool.parallel_for(nswaps, 512, &|_c, range| {
                for k in range {
                    let a = right_dense[k] as usize;
                    let b = left_dense[k] as usize;
                    // SAFETY: all `a` are unique removed slots < new_size,
                    // all `b` are unique survivor slots >= new_size.
                    unsafe {
                        agents_ptr.swap(a, b);
                        flags_ptr.swap(a, b);
                        viol_ptr.swap(a, b);
                    }
                }
            });
        }
    }

    // Step 5: shrink — drops the removed agents now sitting in the tail.
    store.truncate(new_size);
}

/// Parallel append: grow once, then let every worker move its own queued
/// agents into its disjoint slice (paper Section 3.2, "additions are
/// trivial").
fn parallel_append(
    store: &mut DomainStore,
    ctxs: &mut [ExecutionContext],
    domain: usize,
    iteration: u64,
    pool: &NumaThreadPool,
) {
    let old_len = store.len();
    let mut per_thread: Vec<usize> = ctxs.iter().map(|c| c.new_agents[domain].len()).collect();
    let total = prefix_sum_exclusive(&mut per_thread);
    store.agents.reserve(total);
    store.flags.reserve(total);
    store.violations.reserve(total);
    {
        assert_eq!(
            ctxs.len(),
            pool.num_threads(),
            "one execution context per worker thread"
        );
        let agents_ptr = SendMut::new(unsafe { store.agents.as_mut_ptr().add(old_len) });
        let flags_ptr = SendMut::new(unsafe { store.flags.as_mut_ptr().add(old_len) });
        let viol_ptr = SendMut::new(unsafe { store.violations.as_mut_ptr().add(old_len) });
        let ctxs_ptr = SendMut::new(ctxs.as_mut_ptr());
        let per_thread = &per_thread;
        pool.broadcast(&move |wctx| {
            // SAFETY: each context is accessed by exactly its own worker.
            let ctx = unsafe { ctxs_ptr.get_mut(wctx.thread_id) };
            let base = per_thread[wctx.thread_id];
            for (j, agent) in ctx.new_agents[domain].drain(..).enumerate() {
                // SAFETY: slot base+j is within the reserved region and
                // written exactly once.
                unsafe {
                    agents_ptr.write(base + j, agent);
                    flags_ptr.write(base + j, StaticFlags::new(iteration));
                    viol_ptr.write(base + j, AtomicU8::new(0));
                }
            }
        });
        // SAFETY: all `total` slots were initialized above.
        unsafe {
            store.agents.set_len(old_len + total);
            store.flags.set_len(old_len + total);
            store.violations.set_len(old_len + total);
        }
    }
}

/// The resource manager viewed as a point cloud — positions are read through
/// the agent pointers exactly like the original engine does during the
/// environment update.
pub struct ResourceManagerCloud<'a> {
    rm: &'a ResourceManager,
    offsets: Vec<usize>,
}

impl<'a> ResourceManagerCloud<'a> {
    /// Creates the view.
    pub fn new(rm: &'a ResourceManager) -> ResourceManagerCloud<'a> {
        ResourceManagerCloud {
            offsets: rm.offsets(),
            rm,
        }
    }

    /// Global index → `(domain, local index)`.
    #[inline]
    pub fn split_index(&self, global: usize) -> (usize, usize) {
        let mut domain = 0;
        while domain + 1 < self.offsets.len() - 1 && self.offsets[domain + 1] <= global {
            domain += 1;
        }
        (domain, global - self.offsets[domain])
    }
}

impl PointCloud for ResourceManagerCloud<'_> {
    fn len(&self) -> usize {
        *self.offsets.last().unwrap()
    }
    fn position(&self, idx: usize) -> Real3 {
        let (d, i) = self.split_index(idx);
        self.rm.domains[d].agents[i].position()
    }
}

// Violation-flag helpers used by the mechanics operation.
impl ResourceManager {
    /// Marks agent `(domain, local)` as having a pending static-detection
    /// violation (paper Section 5 "sets the affected agents to not static").
    /// Restore API: the flag becomes visible to the *next* mechanics pass,
    /// exactly like a flag promoted at the end of the previous iteration.
    #[inline]
    pub fn raise_violation(&self, domain: usize, local: usize) {
        self.domains[domain].violations[local].store(VIOL_CUR, Ordering::Relaxed);
    }

    /// Consumes the pending violation flag of an agent.
    #[inline]
    pub fn take_violation(&self, domain: usize, local: usize) -> bool {
        let prev = self.domains[domain].violations[local].fetch_and(!VIOL_CUR, Ordering::Relaxed);
        prev & VIOL_CUR != 0
    }

    /// Reads the pending violation flag of an agent **without** consuming it
    /// (checkpointing: the flag is cross-iteration state — raised by moving
    /// neighbors in iteration *k*, consumed by the mechanics pass of
    /// *k* + 1 — so it must be serialized intact).
    #[inline]
    pub fn violation(&self, domain: usize, local: usize) -> bool {
        self.domains[domain].violations[local].load(Ordering::Relaxed) & VIOL_CUR != 0
    }

    /// Shifts every violation raised during the just-finished agent pass
    /// ([`VIOL_NEXT`]) into the pending position ([`VIOL_CUR`]) and clears
    /// pending flags nobody consumed. Runs once per iteration, after the
    /// parallel agent phase — never concurrently with raises or takes.
    pub(crate) fn promote_violations(&self) {
        for store in &self.domains {
            for v in &store.violations {
                let bits = v.load(Ordering::Relaxed);
                if bits != 0 {
                    let promoted = if bits & VIOL_NEXT != 0 { VIOL_CUR } else { 0 };
                    v.store(promoted, Ordering::Relaxed);
                }
            }
        }
    }
}
