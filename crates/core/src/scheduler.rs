//! First-class operations and the scheduler (paper Section 2, Algorithm 1).
//!
//! The paper organizes one simulation iteration as an ordered list of
//! *operations*: pre standalone operations (snapshot, environment update),
//! agent operations (behaviors + mechanics, executed per agent in parallel),
//! standalone operations (diffusion, user tasks), and post standalone
//! operations (teardown/commit, agent sorting). Each operation carries an
//! execution *frequency*: an operation with frequency `f` runs on every
//! iteration that is a multiple of `f` (iterations count from 1).
//!
//! [`Scheduler`] owns that ordered list and is the single place where
//! pipeline stages are added, removed, re-timed, or toggled;
//! [`Simulation::step`](crate::simulation::Simulation::step) contains no
//! phase logic of its own — it asks the scheduler which operations are due,
//! times each one, and runs it. The built-in phases are themselves
//! registered as operations (see [`builtin`] for their names), so the
//! Figure 5 runtime breakdown is derived directly from per-operation
//! scheduler timings.

use std::time::Duration;

use bdm_util::{TimeBuckets, Timer};

use crate::context::NeighborAccess;
use crate::simulation::{Simulation, StandaloneOp};

/// Built-in operation names (also the Figure 5 phase/bucket names).
pub mod builtin {
    /// Gathers positions/diameters/payloads into the iteration snapshot.
    pub const SNAPSHOT: &str = "snapshot";
    /// Partitions the snapshot across shards and rebuilds the per-shard
    /// halo clouds (registered when
    /// [`Param::shards`](crate::param::Param::shards) > 1; see
    /// [`crate::sharded`]).
    pub const HALO_EXCHANGE: &str = "halo_exchange";
    /// Rebuilds the neighbor-search index (uniform grid / kd-tree / octree).
    pub const ENVIRONMENT: &str = "environment_update";
    /// Behaviors + mechanical forces for every agent, in parallel.
    pub const AGENT_OPS: &str = "agent_ops";
    /// Applies queued secretions and steps the diffusion grids.
    pub const DIFFUSION: &str = "diffusion";
    /// Deferred mutations and the parallel commit of additions/removals.
    pub const TEARDOWN: &str = "teardown";
    /// Space-filling-curve agent sorting and NUMA balancing (Section 4.2).
    pub const AGENT_SORTING: &str = "agent_sorting";
    /// Timing bucket that aggregates the diffusion operation and all
    /// user-registered standalone operations (legacy Figure 5 name).
    pub const STANDALONE_BUCKET: &str = "standalone_ops";
    /// Health-sentinel scan (registered when
    /// [`Param::health`](crate::param::Param::health) is set; see
    /// [`crate::supervisor`]).
    pub const HEALTH_CHECK: &str = "health_check";
}

/// Where in the iteration an operation executes (paper Algorithm 1).
///
/// The scheduler keeps its list ordered by kind: all `Pre` operations run
/// before all `Agent` operations, which run before all `Standalone`
/// operations, which run before all `Post` operations. Within a kind,
/// registration order is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Pre standalone operations: run before the agent phase (L3–5).
    Pre,
    /// Agent operations: the per-agent parallel phase (L7–11).
    Agent,
    /// Standalone operations: once per due iteration, after the agent
    /// phase (L12–14).
    Standalone,
    /// Post standalone operations: teardown, commit, sorting (L16–18).
    Post,
}

impl OpKind {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Pre => "pre",
            OpKind::Agent => "agent",
            OpKind::Standalone => "standalone",
            OpKind::Post => "post",
        }
    }

    fn group(self) -> u8 {
        match self {
            OpKind::Pre => 0,
            OpKind::Agent => 1,
            OpKind::Standalone => 2,
            OpKind::Post => 3,
        }
    }
}

/// Execution context handed to every operation: full access to the
/// [`Simulation`] plus the per-iteration scratch the built-in phases
/// communicate through (interaction radius, commit statistics).
///
/// Derefs to [`Simulation`], so `ctx.num_agents()`,
/// `ctx.resource_manager_mut()`, `ctx.diffusion_grid(0)` etc. all work
/// directly.
pub struct SimulationCtx<'a> {
    /// The simulation being stepped.
    pub sim: &'a mut Simulation,
}

impl std::ops::Deref for SimulationCtx<'_> {
    type Target = Simulation;
    fn deref(&self) -> &Simulation {
        self.sim
    }
}

impl std::ops::DerefMut for SimulationCtx<'_> {
    fn deref_mut(&mut self) -> &mut Simulation {
        self.sim
    }
}

/// A schedulable pipeline stage (paper Section 2: "operations").
///
/// Implement this trait to add custom stages to the engine via
/// [`Scheduler::add_op`] or
/// [`SimulationBuilder::operation`](crate::builder::SimulationBuilder::operation).
/// The scheduler copies [`Operation::frequency`] once at registration;
/// re-time a registered operation with [`Scheduler::set_frequency`].
pub trait Operation: Send {
    /// Unique name; used for lookup, reordering, and the timing report.
    fn name(&self) -> &str;

    /// Where in the iteration this operation runs.
    fn kind(&self) -> OpKind;

    /// Initial execution frequency: run on every iteration that is a
    /// multiple of this value (iterations count from 1). Defaults to 1 —
    /// every iteration.
    fn frequency(&self) -> u64 {
        1
    }

    /// Whether the operation additionally runs on iteration 1 even when
    /// its frequency would first make it due later. Copied once at
    /// registration, like [`Operation::frequency`]. Defaults to `false`.
    ///
    /// The built-in `agent_sorting` operation opts in: agents sit in
    /// initialization order until the first sort, and with the usual
    /// frequency of 10 the entire first window of a simulation would run
    /// its neighbor phase over a cache-hostile layout (paper Section 4.2 —
    /// sorting exists precisely to align memory order with space). One
    /// sort up front makes iteration 2 onwards spatially coherent.
    fn runs_on_first_iteration(&self) -> bool {
        false
    }

    /// Whether this operation walks the uniform grid's per-box *linked
    /// lists* (`box_head` / `successor`). The scheduler aggregates this over
    /// the registered operations each iteration — counting an operation as
    /// a consumer if it becomes due any time before the **next**
    /// `environment_update` run, so the request also covers operations
    /// placed ahead of the rebuild in the pipeline (they read the previous
    /// build) — and hands the result to
    /// [`Environment::update_with`](bdm_env::Environment::update_with) as a
    /// capability hint: when no consumer requires the lists, dense clouds
    /// skip the CAS list insertion and serve all consumers from the SoA
    /// cache. The built-in operations — including `agent_sorting`, which
    /// reads the SoA box order directly — never need them, so the default is
    /// `false`; override it in a custom operation that calls `box_head` or
    /// `successor` on the grid. (`for_each_in_box` and `box_slots` are
    /// served from the SoA cache and need no override.) If a declaring
    /// operation appears *between* the rebuilds of a re-timed environment
    /// pipeline, the engine forces one extra rebuild so the lists exist on
    /// the first iteration the operation runs; only explicitly *disabling*
    /// the `environment_update` op leaves the request unsatisfiable.
    fn requires_box_lists(&self) -> bool {
        false
    }

    /// Which per-neighbor snapshot arrays this operation reads (via
    /// [`Simulation::snapshot`](crate::simulation::Simulation::snapshot) or
    /// neighbor queries). Aggregated by the scheduler over the operations
    /// due before the next `snapshot` gather — exactly like
    /// [`Operation::requires_box_lists`] — and combined with the agent
    /// kernels' declaration
    /// ([`Param::neighbor_access`](crate::param::Param::neighbor_access) +
    /// the interaction force): when the union excludes
    /// [`NeighborAccess::PAYLOADS`], the gather skips the payload array
    /// entirely.
    ///
    /// Defaults to the conservative [`NeighborAccess::ALL`] so an undeclared
    /// custom operation can read everything; the built-in operations
    /// override it to [`NeighborAccess::NONE`] (the built-in `agent_ops`
    /// kernel access is declared through `Param`, not here).
    fn neighbor_access(&self) -> NeighborAccess {
        NeighborAccess::ALL
    }

    /// Executes the operation for the current iteration.
    fn run(&mut self, ctx: &mut SimulationCtx<'_>);
}

/// Introspection record for one scheduled operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpInfo {
    /// Operation name.
    pub name: String,
    /// Phase kind.
    pub kind: OpKind,
    /// Current execution frequency.
    pub frequency: u64,
    /// Whether the operation is currently enabled.
    pub enabled: bool,
    /// Accumulated wall-clock time across all executions.
    pub total: Duration,
    /// Number of times the operation has run.
    pub runs: u64,
}

/// One entry of the scheduler's ordered op list.
pub(crate) struct ScheduledOp {
    op: Box<dyn Operation>,
    kind: OpKind,
    frequency: u64,
    /// Also due on iteration 1 regardless of `frequency`
    /// ([`Operation::runs_on_first_iteration`]).
    due_at_first: bool,
    enabled: bool,
    /// Timing bucket this op's runtime is attributed to (Figure 5 names).
    bucket: String,
    total: Duration,
    runs: u64,
}

impl ScheduledOp {
    fn new(op: Box<dyn Operation>, bucket: Option<String>) -> ScheduledOp {
        let kind = op.kind();
        let frequency = op.frequency().max(1);
        let due_at_first = op.runs_on_first_iteration();
        let bucket = bucket.unwrap_or_else(|| op.name().to_string());
        ScheduledOp {
            op,
            kind,
            frequency,
            due_at_first,
            enabled: true,
            bucket,
            total: Duration::ZERO,
            runs: 0,
        }
    }
}

/// A structural edit requested while the op list was detached (i.e. from
/// inside a running operation); applied when the iteration finishes.
enum DeferredEdit {
    SetFrequency(String, u64),
    SetEnabled(String, bool),
    Remove(String),
}

/// Owner of the ordered operation list; drives which operations are due
/// each iteration and accumulates per-operation wall-clock timings.
///
/// # Example
///
/// Operations register into kind groups and can be re-timed, toggled, and
/// inspected by name:
///
/// ```
/// use bdm_core::scheduler::{OpKind, Operation, Scheduler, SimulationCtx};
///
/// struct Census;
/// impl Operation for Census {
///     fn name(&self) -> &str { "census" }
///     fn kind(&self) -> OpKind { OpKind::Standalone }
///     fn frequency(&self) -> u64 { 5 } // every 5th iteration
///     fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
///         let _agents = ctx.num_agents();
///     }
/// }
///
/// let mut scheduler = Scheduler::new();
/// scheduler.add_op(Census);
/// assert_eq!(scheduler.frequency("census"), Some(5));
/// assert!(scheduler.is_enabled("census"));
///
/// scheduler.set_frequency("census", 2); // re-time at runtime
/// scheduler.set_enabled("census", false); // or park it without removing
/// assert_eq!(scheduler.op_names(), vec!["census"]);
/// ```
///
/// Inside a running [`Simulation`] the scheduler owns the whole pipeline —
/// the built-in phases are ordinary operations (see [`builtin`]) — and
/// [`Scheduler::ops`] reports their accumulated wall-clock timings.
#[derive(Default)]
pub struct Scheduler {
    entries: Vec<ScheduledOp>,
    /// True while `Simulation::step` runs the detached op list.
    detached: bool,
    /// Edits requested from inside a running operation.
    deferred: Vec<DeferredEdit>,
    /// [`OpInfo`] snapshot of the pipeline captured when the op list was
    /// last detached: while an iteration runs, `entries` is empty, so
    /// introspection from *inside* an operation (the mid-window checkpoint)
    /// reads this instead of [`Scheduler::ops`].
    pipeline_info: Vec<OpInfo>,
}

impl Scheduler {
    /// An empty scheduler (no operations registered).
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Registers an operation at the end of its kind group (all `Pre` ops
    /// run before all `Agent` ops, and so on; see [`OpKind`]).
    pub fn add_op(&mut self, op: impl Operation + 'static) {
        self.add_boxed_op(Box::new(op));
    }

    /// [`Scheduler::add_op`] for an already-boxed operation.
    pub fn add_boxed_op(&mut self, op: Box<dyn Operation>) {
        self.insert_grouped(ScheduledOp::new(op, None));
    }

    /// Registers an operation with an explicit timing bucket (used for the
    /// built-in phases and legacy standalone closures).
    pub(crate) fn add_op_in_bucket(&mut self, op: Box<dyn Operation>, bucket: &str) {
        self.insert_grouped(ScheduledOp::new(op, Some(bucket.to_string())));
    }

    /// Inserts `op` immediately before the operation named `anchor`
    /// (ignoring kind groups). Returns `false` if `anchor` is not
    /// registered; the op is not added in that case.
    pub fn add_op_before(&mut self, anchor: &str, op: impl Operation + 'static) -> bool {
        match self.position(anchor) {
            Some(idx) => {
                self.entries
                    .insert(idx, ScheduledOp::new(Box::new(op), None));
                true
            }
            None => false,
        }
    }

    /// Inserts `op` immediately after the operation named `anchor`
    /// (ignoring kind groups). Returns `false` if `anchor` is not
    /// registered; the op is not added in that case.
    pub fn add_op_after(&mut self, anchor: &str, op: impl Operation + 'static) -> bool {
        match self.position(anchor) {
            Some(idx) => {
                self.entries
                    .insert(idx + 1, ScheduledOp::new(Box::new(op), None));
                true
            }
            None => false,
        }
    }

    /// Removes the operation named `name`. Returns `false` if absent.
    ///
    /// From inside a running operation the removal is deferred to the end
    /// of the iteration; `true` then means *accepted* (the edit is dropped
    /// if no such op exists).
    pub fn remove_op(&mut self, name: &str) -> bool {
        match self.position(name) {
            Some(idx) => {
                self.entries.remove(idx);
                true
            }
            None if self.detached => {
                self.deferred.push(DeferredEdit::Remove(name.to_string()));
                true
            }
            None => false,
        }
    }

    /// Re-times the operation named `name` to run every `frequency`
    /// iterations (clamped to ≥ 1) and enables it. Returns `false` if
    /// absent.
    ///
    /// From inside a running operation the edit is deferred to the end of
    /// the iteration; `true` then means *accepted* (the edit is dropped if
    /// no such op exists).
    pub fn set_frequency(&mut self, name: &str, frequency: u64) -> bool {
        if let Some(e) = self.entry_mut(name) {
            e.frequency = frequency.max(1);
            e.enabled = true;
            true
        } else if self.detached {
            self.deferred
                .push(DeferredEdit::SetFrequency(name.to_string(), frequency));
            true
        } else {
            false
        }
    }

    /// Enables or disables the operation named `name` without removing it.
    /// Returns `false` if absent.
    ///
    /// From inside a running operation the edit is deferred to the end of
    /// the iteration; `true` then means *accepted* (the edit is dropped if
    /// no such op exists).
    pub fn set_enabled(&mut self, name: &str, enabled: bool) -> bool {
        if let Some(e) = self.entry_mut(name) {
            e.enabled = enabled;
            true
        } else if self.detached {
            self.deferred
                .push(DeferredEdit::SetEnabled(name.to_string(), enabled));
            true
        } else {
            false
        }
    }

    /// The current frequency of the operation named `name`.
    pub fn frequency(&self, name: &str) -> Option<u64> {
        self.entry(name).map(|e| e.frequency)
    }

    /// Whether the operation named `name` is registered and enabled.
    pub fn is_enabled(&self, name: &str) -> bool {
        self.entry(name).is_some_and(|e| e.enabled)
    }

    /// Whether an operation named `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.position(name).is_some()
    }

    /// Number of registered operations.
    pub fn num_ops(&self) -> usize {
        self.entries.len()
    }

    /// Introspection snapshot of every operation, in execution order.
    pub fn ops(&self) -> Vec<OpInfo> {
        Scheduler::infos(&self.entries)
    }

    fn infos(entries: &[ScheduledOp]) -> Vec<OpInfo> {
        entries
            .iter()
            .map(|e| OpInfo {
                name: e.op.name().to_string(),
                kind: e.kind,
                frequency: e.frequency,
                enabled: e.enabled,
                total: e.total,
                runs: e.runs,
            })
            .collect()
    }

    /// The pipeline as it stood when the current iteration started. Outside
    /// an iteration this equals [`Scheduler::ops`]; *inside* one (the op
    /// list is detached and `ops()` sees only operations registered during
    /// the iteration) it reports the pre-iteration snapshot — the view a
    /// mid-window checkpoint must serialize.
    pub fn pipeline_info(&self) -> Vec<OpInfo> {
        if self.detached {
            self.pipeline_info.clone()
        } else {
            self.ops()
        }
    }

    /// True while the op list is detached, i.e. the scheduler is currently
    /// running an iteration and the caller sits inside an operation.
    pub fn mid_iteration(&self) -> bool {
        self.detached
    }

    /// Operation names in execution order.
    pub fn op_names(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| e.op.name().to_string())
            .collect()
    }

    /// The per-phase wall-clock buckets derived from the per-operation
    /// timings (the Figure 5 runtime breakdown). Built-in phases map to the
    /// legacy bucket names; user operations registered through
    /// [`Simulation::add_standalone_op`] aggregate into `"standalone_ops"`,
    /// and custom [`Operation`]s appear under their own name.
    pub fn time_buckets(&self) -> TimeBuckets {
        let mut buckets = TimeBuckets::new();
        for e in &self.entries {
            if e.runs > 0 {
                buckets.add(&e.bucket, e.total);
            }
        }
        buckets
    }

    /// Resets all accumulated timings and run counts.
    pub fn reset_timings(&mut self) {
        for e in &mut self.entries {
            e.total = Duration::ZERO;
            e.runs = 0;
        }
    }

    /// Whether the entry is due on `iteration` (iterations count from 1).
    fn is_due(entry: &ScheduledOp, iteration: u64) -> bool {
        entry.enabled
            && (iteration.is_multiple_of(entry.frequency) || (entry.due_at_first && iteration == 1))
    }

    /// Whether any operation declaring [`Operation::requires_box_lists`]
    /// will run before the *next* `environment_update` — the
    /// scheduler-side half of the environment capability hint, computed by
    /// `Simulation::step` before the pipeline runs. The window spans this
    /// iteration plus one environment-update period: an index built now is
    /// read until the next rebuild, including by consumers positioned
    /// *before* `environment_update` in the pipeline (they see the
    /// previous build) and by consumers whose frequency makes them due
    /// only on a later iteration of a slow-rebuilding pipeline.
    pub(crate) fn due_ops_require_box_lists(entries: &[ScheduledOp], iteration: u64) -> bool {
        let env_freq = entries
            .iter()
            .find(|e| e.op.name() == builtin::ENVIRONMENT)
            .map(|e| e.frequency)
            .unwrap_or(1);
        let window_end = iteration.saturating_add(env_freq);
        entries.iter().any(|e| {
            // O(1) "due within [iteration, window_end]" — frequencies are
            // arbitrary u64s, so scanning the window would not terminate in
            // reasonable time for a slow-rebuilding pipeline.
            let next_due = if e.due_at_first && iteration == 1 {
                1
            } else {
                iteration.div_ceil(e.frequency).saturating_mul(e.frequency)
            };
            e.enabled && e.op.requires_box_lists() && next_due <= window_end
        })
    }

    /// Union of the [`Operation::neighbor_access`] declarations of every
    /// operation due before the *next* `snapshot` gather — the
    /// scheduler-side half of the payload-skip capability, computed by
    /// `Simulation::step` before the pipeline runs. `agent_kernel_access`
    /// substitutes for the built-in `agent_ops` operation, whose kernels
    /// (behaviors + interaction force) declare their access through
    /// [`Param::neighbor_access`](crate::param::Param::neighbor_access)
    /// rather than the trait method. The window mirrors
    /// [`Scheduler::due_ops_require_box_lists`]: a snapshot gathered now is
    /// read until the next gather, including by consumers positioned before
    /// the `snapshot` op in the pipeline and by consumers of a
    /// slow-regathering pipeline that become due later in its period.
    pub(crate) fn due_ops_neighbor_access(
        entries: &[ScheduledOp],
        iteration: u64,
        agent_kernel_access: NeighborAccess,
    ) -> NeighborAccess {
        let snapshot_freq = entries
            .iter()
            .find(|e| e.op.name() == builtin::SNAPSHOT)
            .map(|e| e.frequency)
            .unwrap_or(1);
        let window_end = iteration.saturating_add(snapshot_freq);
        let mut access = NeighborAccess::NONE;
        for e in entries {
            let next_due = if e.due_at_first && iteration == 1 {
                1
            } else {
                iteration.div_ceil(e.frequency).saturating_mul(e.frequency)
            };
            if e.enabled && next_due <= window_end {
                access |= if e.op.name() == builtin::AGENT_OPS {
                    agent_kernel_access
                } else {
                    e.op.neighbor_access()
                };
            }
        }
        access
    }

    /// Executes one iteration over a detached op list (see
    /// [`Scheduler::take_entries`]): for each due op, time it, run it.
    ///
    /// `force_environment` additionally runs the (enabled)
    /// `environment_update` op even when its frequency says it is not due —
    /// used when a box-list-requiring consumer appeared after the last
    /// rebuild of a slow-rebuilding pipeline, so the index it reads this
    /// iteration actually has the lists (an explicit `set_enabled(false)`
    /// on the environment op is still respected).
    pub(crate) fn run_iteration(
        entries: &mut [ScheduledOp],
        ctx: &mut SimulationCtx<'_>,
        force_environment: bool,
    ) {
        let iteration = ctx.sim.iteration();
        for entry in entries.iter_mut() {
            let forced =
                force_environment && entry.enabled && entry.op.name() == builtin::ENVIRONMENT;
            if !Scheduler::is_due(entry, iteration) && !forced {
                continue;
            }
            // Named injection site: a planned fault scheduled before this
            // operation fires here (no-op unless a plan is attached).
            ctx.sim.fire_op_fault(entry.op.name());
            let t = Timer::start();
            entry.op.run(ctx);
            entry.total += t.elapsed();
            entry.runs += 1;
        }
    }

    /// Detaches the op list so `step` can run it while operations retain
    /// `&mut Simulation` access (and may register further ops, which land
    /// in the now-empty list and are merged back by
    /// [`Scheduler::put_entries`]).
    pub(crate) fn take_entries(&mut self) -> Vec<ScheduledOp> {
        self.detached = true;
        self.pipeline_info = Scheduler::infos(&self.entries);
        std::mem::take(&mut self.entries)
    }

    /// Restores the detached op list. Operations registered while it was
    /// detached are re-inserted into their kind groups, then deferred
    /// re-time/toggle/remove edits are applied — both take effect from the
    /// next iteration.
    pub(crate) fn put_entries(&mut self, main: Vec<ScheduledOp>) {
        let added = std::mem::replace(&mut self.entries, main);
        for e in added {
            self.insert_grouped(e);
        }
        self.detached = false;
        for edit in std::mem::take(&mut self.deferred) {
            match edit {
                DeferredEdit::SetFrequency(name, freq) => {
                    self.set_frequency(&name, freq);
                }
                DeferredEdit::SetEnabled(name, enabled) => {
                    self.set_enabled(&name, enabled);
                }
                DeferredEdit::Remove(name) => {
                    self.remove_op(&name);
                }
            }
        }
    }

    fn insert_grouped(&mut self, entry: ScheduledOp) {
        let group = entry.kind.group();
        let idx = self
            .entries
            .iter()
            .position(|e| e.kind.group() > group)
            .unwrap_or(self.entries.len());
        self.entries.insert(idx, entry);
    }

    fn position(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.op.name() == name)
    }

    fn entry(&self, name: &str) -> Option<&ScheduledOp> {
        self.entries.iter().find(|e| e.op.name() == name)
    }

    fn entry_mut(&mut self, name: &str) -> Option<&mut ScheduledOp> {
        self.entries.iter_mut().find(|e| e.op.name() == name)
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("ops", &self.op_names())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Built-in operations: the phases of Algorithm 1, extracted from the old
// monolithic `Simulation::step`. Each one delegates to a `pub(crate)` phase
// method on `Simulation` so the split-borrow internals stay in simulation.rs.
// ---------------------------------------------------------------------------

pub(crate) struct SnapshotOp;

impl Operation for SnapshotOp {
    fn neighbor_access(&self) -> NeighborAccess {
        NeighborAccess::NONE
    }
    fn name(&self) -> &str {
        builtin::SNAPSHOT
    }
    fn kind(&self) -> OpKind {
        OpKind::Pre
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        ctx.sim.phase_snapshot();
    }
}

pub(crate) struct HaloExchangeOp;

impl Operation for HaloExchangeOp {
    fn neighbor_access(&self) -> NeighborAccess {
        NeighborAccess::NONE
    }
    fn name(&self) -> &str {
        builtin::HALO_EXCHANGE
    }
    fn kind(&self) -> OpKind {
        OpKind::Pre
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        ctx.sim.phase_halo_exchange();
    }
}

pub(crate) struct EnvironmentOp;

impl Operation for EnvironmentOp {
    fn neighbor_access(&self) -> NeighborAccess {
        NeighborAccess::NONE
    }
    fn name(&self) -> &str {
        builtin::ENVIRONMENT
    }
    fn kind(&self) -> OpKind {
        OpKind::Pre
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        ctx.sim.phase_environment();
    }
}

pub(crate) struct AgentOp;

impl Operation for AgentOp {
    fn name(&self) -> &str {
        builtin::AGENT_OPS
    }
    fn kind(&self) -> OpKind {
        OpKind::Agent
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        ctx.sim.phase_agent_ops();
    }
}

pub(crate) struct DiffusionOp;

impl Operation for DiffusionOp {
    fn neighbor_access(&self) -> NeighborAccess {
        NeighborAccess::NONE
    }
    fn name(&self) -> &str {
        builtin::DIFFUSION
    }
    fn kind(&self) -> OpKind {
        OpKind::Standalone
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        ctx.sim.phase_diffusion();
    }
}

pub(crate) struct TeardownOp;

impl Operation for TeardownOp {
    fn neighbor_access(&self) -> NeighborAccess {
        NeighborAccess::NONE
    }
    fn name(&self) -> &str {
        builtin::TEARDOWN
    }
    fn kind(&self) -> OpKind {
        OpKind::Post
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        ctx.sim.phase_teardown();
    }
}

pub(crate) struct SortingOp;

impl Operation for SortingOp {
    fn neighbor_access(&self) -> NeighborAccess {
        NeighborAccess::NONE
    }
    fn runs_on_first_iteration(&self) -> bool {
        // One sort up front: iteration 2 onwards runs the neighbor phase
        // over a spatially coherent layout instead of initialization order
        // (measured −40% agent_ops at 10⁶ on unsorted clustering).
        true
    }
    fn name(&self) -> &str {
        builtin::AGENT_SORTING
    }
    fn kind(&self) -> OpKind {
        OpKind::Post
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        ctx.sim.phase_sorting();
    }
}

/// Adapter turning a legacy `FnMut(&mut Simulation)` closure (see
/// [`Simulation::add_standalone_op`]) into an [`Operation`].
pub(crate) struct ClosureOp {
    name: String,
    frequency: u64,
    f: StandaloneOp,
}

impl ClosureOp {
    pub(crate) fn new(name: String, frequency: u64, f: StandaloneOp) -> ClosureOp {
        ClosureOp { name, frequency, f }
    }
}

impl Operation for ClosureOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn kind(&self) -> OpKind {
        OpKind::Standalone
    }
    fn frequency(&self) -> u64 {
        self.frequency
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        (self.f)(ctx.sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop {
        name: &'static str,
        kind: OpKind,
        freq: u64,
    }

    impl Operation for Noop {
        fn name(&self) -> &str {
            self.name
        }
        fn kind(&self) -> OpKind {
            self.kind
        }
        fn frequency(&self) -> u64 {
            self.freq
        }
        fn neighbor_access(&self) -> NeighborAccess {
            // Like the built-in ops: reads nothing from the snapshot.
            NeighborAccess::NONE
        }
        fn run(&mut self, _ctx: &mut SimulationCtx<'_>) {}
    }

    fn noop(name: &'static str, kind: OpKind) -> Noop {
        Noop {
            name,
            kind,
            freq: 1,
        }
    }

    #[test]
    fn kind_groups_stay_ordered() {
        let mut s = Scheduler::new();
        s.add_op(noop("post1", OpKind::Post));
        s.add_op(noop("pre1", OpKind::Pre));
        s.add_op(noop("standalone1", OpKind::Standalone));
        s.add_op(noop("agent1", OpKind::Agent));
        s.add_op(noop("pre2", OpKind::Pre));
        assert_eq!(
            s.op_names(),
            vec!["pre1", "pre2", "agent1", "standalone1", "post1"]
        );
    }

    #[test]
    fn anchored_insertion_and_removal() {
        let mut s = Scheduler::new();
        s.add_op(noop("a", OpKind::Standalone));
        s.add_op(noop("c", OpKind::Standalone));
        assert!(s.add_op_before("c", noop("b", OpKind::Standalone)));
        assert!(s.add_op_after("c", noop("d", OpKind::Standalone)));
        assert_eq!(s.op_names(), vec!["a", "b", "c", "d"]);
        assert!(!s.add_op_before("missing", noop("x", OpKind::Standalone)));
        assert!(s.remove_op("b"));
        assert!(!s.remove_op("b"));
        assert_eq!(s.op_names(), vec!["a", "c", "d"]);
    }

    #[test]
    fn frequency_and_enablement() {
        let mut s = Scheduler::new();
        s.add_op(Noop {
            name: "op",
            kind: OpKind::Standalone,
            freq: 7,
        });
        assert_eq!(s.frequency("op"), Some(7));
        assert!(s.is_enabled("op"));
        assert!(s.set_enabled("op", false));
        assert!(!s.is_enabled("op"));
        // set_frequency re-enables and clamps to >= 1.
        assert!(s.set_frequency("op", 0));
        assert_eq!(s.frequency("op"), Some(1));
        assert!(s.is_enabled("op"));
        assert!(!s.set_frequency("missing", 3));
        assert_eq!(s.frequency("missing"), None);
    }

    #[test]
    fn due_semantics_are_multiples_of_frequency() {
        let entry = ScheduledOp::new(
            Box::new(Noop {
                name: "op",
                kind: OpKind::Standalone,
                freq: 3,
            }),
            None,
        );
        let due: Vec<u64> = (1..=10).filter(|&i| Scheduler::is_due(&entry, i)).collect();
        assert_eq!(due, vec![3, 6, 9]);
        let mut disabled = entry;
        disabled.enabled = false;
        assert!(!Scheduler::is_due(&disabled, 3));
    }

    #[test]
    fn first_iteration_opt_in_runs_once_up_front() {
        struct FirstToo;
        impl Operation for FirstToo {
            fn name(&self) -> &str {
                "first_too"
            }
            fn kind(&self) -> OpKind {
                OpKind::Post
            }
            fn frequency(&self) -> u64 {
                10
            }
            fn runs_on_first_iteration(&self) -> bool {
                true
            }
            fn run(&mut self, _ctx: &mut SimulationCtx<'_>) {}
        }
        let mut s = Scheduler::new();
        s.add_op(FirstToo);
        let due: Vec<u64> = (1..=21)
            .filter(|&i| Scheduler::is_due(&s.entries[0], i))
            .collect();
        assert_eq!(due, vec![1, 10, 20], "first iteration plus multiples");
        // Plain ops keep the multiples-only semantics.
        let plain = ScheduledOp::new(
            Box::new(Noop {
                name: "plain",
                kind: OpKind::Post,
                freq: 10,
            }),
            None,
        );
        assert!(!Scheduler::is_due(&plain, 1));
        // Disabling parks the first-iteration run too.
        s.entries[0].enabled = false;
        assert!(!Scheduler::is_due(&s.entries[0], 1));
    }

    #[test]
    fn neighbor_access_aggregates_over_the_snapshot_window() {
        struct PayloadReader {
            freq: u64,
        }
        impl Operation for PayloadReader {
            fn name(&self) -> &str {
                "payload_reader"
            }
            fn kind(&self) -> OpKind {
                OpKind::Standalone
            }
            fn frequency(&self) -> u64 {
                self.freq
            }
            fn neighbor_access(&self) -> NeighborAccess {
                NeighborAccess::PAYLOADS
            }
            fn run(&mut self, _ctx: &mut SimulationCtx<'_>) {}
        }

        let kernels = NeighborAccess::POSITIONS | NeighborAccess::DIAMETERS;
        // Built-in-ish pipeline: snapshot (freq 1) + agent op; no payload
        // consumer → kernels' declaration passes through unchanged.
        let mut s = Scheduler::new();
        s.add_op(noop(builtin::SNAPSHOT, OpKind::Pre));
        s.add_op(noop(builtin::AGENT_OPS, OpKind::Agent));
        let access = Scheduler::due_ops_neighbor_access(&s.entries, 1, kernels);
        assert_eq!(access, kernels, "plain Noop ops must not add access");

        // A due payload consumer widens the union.
        s.add_op(PayloadReader { freq: 1 });
        let access = Scheduler::due_ops_neighbor_access(&s.entries, 1, kernels);
        assert!(access.reads_payloads());

        // Re-timed to every 5th iteration: the snapshot regathers every
        // iteration, so only the gather feeding iteration 5 pays for it.
        assert!(s.set_frequency("payload_reader", 5));
        assert!(!Scheduler::due_ops_neighbor_access(&s.entries, 1, kernels).reads_payloads());
        assert!(Scheduler::due_ops_neighbor_access(&s.entries, 5, kernels).reads_payloads());
        // Disabled consumers never count.
        assert!(s.set_enabled("payload_reader", false));
        assert!(!Scheduler::due_ops_neighbor_access(&s.entries, 5, kernels).reads_payloads());

        // A slow snapshot (freq 3) must cover consumers due anywhere in its
        // window: the gather at iteration 3 serves iterations 3-5.
        assert!(s.set_frequency("payload_reader", 5));
        assert!(s.set_frequency(builtin::SNAPSHOT, 3));
        assert!(Scheduler::due_ops_neighbor_access(&s.entries, 3, kernels).reads_payloads());
    }

    #[test]
    fn buckets_aggregate_by_bucket_name() {
        let mut s = Scheduler::new();
        s.add_op_in_bucket(
            Box::new(noop("user1", OpKind::Standalone)),
            builtin::STANDALONE_BUCKET,
        );
        s.add_op_in_bucket(
            Box::new(noop("user2", OpKind::Standalone)),
            builtin::STANDALONE_BUCKET,
        );
        s.entries[0].total = Duration::from_millis(2);
        s.entries[0].runs = 1;
        s.entries[1].total = Duration::from_millis(3);
        s.entries[1].runs = 1;
        let buckets = s.time_buckets();
        assert_eq!(
            buckets.get(builtin::STANDALONE_BUCKET),
            Some(Duration::from_millis(5))
        );
        s.reset_timings();
        assert_eq!(s.time_buckets().total(), Duration::ZERO);
    }

    #[test]
    fn ops_snapshot_reports_state() {
        let mut s = Scheduler::new();
        s.add_op(Noop {
            name: "op",
            kind: OpKind::Pre,
            freq: 5,
        });
        let info = &s.ops()[0];
        assert_eq!(info.name, "op");
        assert_eq!(info.kind, OpKind::Pre);
        assert_eq!(info.frequency, 5);
        assert!(info.enabled);
        assert_eq!(info.runs, 0);
        assert_eq!(s.num_ops(), 1);
        assert!(s.contains("op"));
        assert_eq!(OpKind::Agent.label(), "agent");
    }
}
