//! Sharded in-process execution: SFC-range partitioning and halo exchange.
//!
//! The TeraAgent direction of the paper's lineage scales past one node by
//! spatial domain decomposition: split the population into K spatially
//! compact *shards*, give each shard its own neighbor index over its own
//! agents plus a read-only *halo* of boundary agents from neighboring
//! shards, and exchange halos between iterations. This module implements
//! that execution model **in process**: K shards share one
//! [`ResourceManager`](crate::resource_manager::ResourceManager) and one
//! iteration [`Snapshot`], the "wire format" of the exchange is the
//! snapshot's SoA arrays copied into per-shard member arrays, and the
//! partition is recomputed from scratch every exchange — recomputation *is*
//! the migration step, and because it happens in ascending agent-index
//! order from an iteration-boundary snapshot it is deterministic.
//!
//! # Bitwise shard-count invariance
//!
//! Results must be bitwise identical for every shard count. Three
//! invariants deliver that:
//!
//! 1. **Box membership** — every shard grid is built inside a
//!    [`GridFrame`] pinning the *global* anchor and lattice, so an agent
//!    lands in exactly the box the single-engine grid would assign (the
//!    box-coordinate computation is floating point; the frame keeps the
//!    expression and its inputs identical).
//! 2. **Halo completeness** — a shard's cloud contains every agent whose
//!    box lies within Chebyshev distance `halo_width` of a box the shard
//!    owns, so every box a neighbor query from an owned agent can visit
//!    holds the same within-radius agents the global grid holds. Extra
//!    (beyond-radius) halo agents are harmless: the `d² ≤ r²` filter
//!    rejects them exactly as the global grid would.
//! 3. **Within-box order** — shard member lists are built in ascending
//!    global index, and the grid's build inserts cloud points in index
//!    order, so the accepted-neighbor subsequence of any box is the global
//!    sequence filtered to the shard's members — identical once halo
//!    completeness guarantees no within-radius member is missing.
//!
//! The partition itself never feeds the simulation results, only the
//! execution schedule — which is why a checkpoint can be restored into a
//! *different* shard count and replay bitwise identically.

use std::collections::HashMap;
use std::time::Duration;

use bdm_env::{
    BoxListPolicy, Environment, GridFrame, PointCloud, UniformGridEnvironment, UpdateHint,
};
use bdm_sfc::{morton3_encode, shard_of, split_ranges, ShardRange};
use bdm_util::{Real3, Timer};

use crate::context::Snapshot;

/// Maximum supported shard count: halo membership is tracked as one `u64`
/// bitmask per occupied box.
pub const MAX_SHARDS: usize = 64;

/// One shard's slice of the population: owned + halo members in ascending
/// global-index order, with the snapshot columns copied alongside (the
/// exchange's SoA wire format — what a distributed implementation would
/// put on the network).
pub(crate) struct ShardCloud {
    /// Shard-local → global index map (ascending).
    pub members: Vec<u32>,
    /// Member positions, bitwise copies of the snapshot's.
    pub positions: Vec<Real3>,
    /// Member diameters, bitwise copies of the snapshot's (feeds the shard
    /// grid's conditional diameter scatter).
    pub diameters: Vec<f64>,
}

impl PointCloud for ShardCloud {
    fn len(&self) -> usize {
        self.positions.len()
    }
    fn position(&self, idx: usize) -> Real3 {
        self.positions[idx]
    }
    fn positions_slice(&self) -> Option<&[Real3]> {
        Some(&self.positions)
    }
    fn diameters(&self) -> Option<&[f64]> {
        Some(&self.diameters)
    }
}

/// Per-shard statistics of the last exchange/build cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Agents this shard owns (processes in the agent phase).
    pub owned: usize,
    /// Read-only halo copies imported from neighboring shards.
    pub halo: usize,
    /// Wall-clock time of this shard's last grid build.
    pub grid_build: Duration,
}

/// Aggregate report of the sharded execution state (see
/// [`Simulation::shard_report`](crate::simulation::Simulation::shard_report)).
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Configured shard count K.
    pub shards: usize,
    /// Halo exchanges performed (partition + clouds rebuilt).
    pub exchanges: u64,
    /// Exchanges skipped because `ResourceManager::generation` and the
    /// interaction radius were unchanged since the last exchange.
    pub exchange_skips: u64,
    /// Wall-clock time of the last full exchange.
    pub last_exchange: Duration,
    /// Per-shard owned/halo counts and grid-build times.
    pub per_shard: Vec<ShardStats>,
}

/// Partition manifest of the last exchange — what the checkpoint's `SHRD`
/// section records (validation-only on restore: the partition is a pure
/// function of state and is recomputed from scratch after any restore,
/// which is what makes restore-into-a-different-shard-count bitwise-safe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Shard count the run executed with.
    pub shards: u64,
    /// The Morton-code ranges `[begin, end)` of the last partition.
    pub ranges: Vec<(u64, u64)>,
    /// Agents owned per shard at the last exchange.
    pub owned: Vec<u64>,
}

/// The engine-side state of sharded execution: partition, per-shard clouds
/// and grids, and the skip-if-unchanged bookkeeping.
pub(crate) struct ShardedState {
    /// Configured shard count K (≥ 2; K == 1 runs the single-engine path).
    pub shards: usize,
    /// Morton-code ranges of the current partition.
    pub ranges: Vec<ShardRange>,
    /// Global index → owning shard.
    pub owner: Vec<u32>,
    /// Global index → local index within the owner's cloud.
    pub local_of: Vec<u32>,
    /// Per-shard member clouds (owned + halo, ascending global index).
    pub clouds: Vec<ShardCloud>,
    /// Per-shard windowed grids.
    pub grids: Vec<UniformGridEnvironment>,
    /// Per-shard `(min, max)` global box coordinates of the member boxes
    /// (the grid window); `None` for an empty shard.
    windows: Vec<Option<([u32; 3], [u32; 3])>>,
    /// Global frame of the current exchange: anchor, global lattice dims,
    /// and the global SoA-cache decision forced onto every shard build.
    frame: Option<(Real3, [u32; 3], bool)>,
    /// Iteration the exchange last ran for; the environment and agent
    /// phases take the sharded path only when this matches the current
    /// iteration (0 = never ran / deactivated).
    pub active_iteration: u64,
    /// `ResourceManager::generation` of the last full exchange.
    last_generation: Option<u64>,
    /// Interaction-radius bits of the last full exchange.
    last_radius_bits: u64,
    /// Population size of the last full exchange.
    last_n: usize,
    /// Monotonic stamp incremented on every full exchange; grid builds are
    /// keyed on it so unchanged clouds skip the K rebuilds too.
    exchange_stamp: u64,
    /// `(exchange_stamp, box-list policy, diameter scatter)` the grids were
    /// last built for.
    grids_built_for: Option<(u64, BoxListPolicy, bool)>,
    /// Full exchanges performed.
    pub exchanges: u64,
    /// Exchanges skipped (generation/radius/population unchanged).
    pub exchange_skips: u64,
    /// Wall-clock time of the last full exchange.
    pub last_exchange: Duration,
    /// Per-shard grid-build times of the last build cycle.
    pub grid_build: Vec<Duration>,
    /// Per-shard owned-agent counts of the last exchange.
    pub owned_counts: Vec<usize>,
    /// Reusable per-agent Morton-code buffer.
    codes: Vec<u64>,
}

impl ShardedState {
    /// Creates the state for `shards` shards (2 ..= [`MAX_SHARDS`]).
    pub fn new(shards: usize) -> ShardedState {
        assert!(
            (2..=MAX_SHARDS).contains(&shards),
            "sharded execution supports 2..={MAX_SHARDS} shards, got {shards}"
        );
        ShardedState {
            shards,
            ranges: Vec::new(),
            owner: Vec::new(),
            local_of: Vec::new(),
            clouds: (0..shards)
                .map(|_| ShardCloud {
                    members: Vec::new(),
                    positions: Vec::new(),
                    diameters: Vec::new(),
                })
                .collect(),
            grids: (0..shards).map(|_| UniformGridEnvironment::new()).collect(),
            windows: vec![None; shards],
            frame: None,
            active_iteration: 0,
            last_generation: None,
            last_radius_bits: 0,
            last_n: 0,
            exchange_stamp: 0,
            grids_built_for: None,
            exchanges: 0,
            exchange_skips: 0,
            last_exchange: Duration::ZERO,
            grid_build: vec![Duration::ZERO; shards],
            owned_counts: vec![0; shards],
            codes: Vec::new(),
        }
    }

    /// Drops out of sharded execution for the current iteration (stale
    /// snapshot, degraded environment): the engine falls back to the
    /// single-engine path until the next successful exchange.
    pub fn deactivate(&mut self) {
        self.active_iteration = 0;
        // The next exchange must rebuild from scratch.
        self.last_generation = None;
    }

    /// The halo exchange: (re)partitions the population by Morton-code
    /// range and rebuilds the per-shard member clouds, skipping everything
    /// when the population generation, size, and interaction radius are
    /// unchanged since the last exchange.
    ///
    /// `halo_width` is the Chebyshev box distance the halo extends past a
    /// shard's owned boxes: 1 covers queries centered inside owned boxes;
    /// static-agent detection needs more because a mover's wake query
    /// centers on its *post-displacement* position.
    pub fn exchange(
        &mut self,
        snapshot: &Snapshot,
        radius: f64,
        generation: u64,
        iteration: u64,
        halo_width: u32,
    ) {
        let n = snapshot.len();
        if self.last_generation == Some(generation)
            && self.last_radius_bits == radius.to_bits()
            && self.last_n == n
        {
            self.active_iteration = iteration;
            self.exchange_skips += 1;
            return;
        }
        let timer = Timer::start();
        for cloud in &mut self.clouds {
            cloud.members.clear();
            cloud.positions.clear();
            cloud.diameters.clear();
        }
        self.windows.iter_mut().for_each(|w| *w = None);
        self.owned_counts.iter_mut().for_each(|c| *c = 0);
        self.owner.clear();
        self.local_of.clear();
        self.frame = None;

        if n > 0 {
            let (min, max) = snapshot
                .bounds
                .expect("a non-empty snapshot carries bounds");
            let global_dims = UniformGridEnvironment::global_dims_for(min, max, radius);
            let inv = 1.0 / radius;
            let build_cache = UniformGridEnvironment::global_build_cache(global_dims, n);
            self.frame = Some((min, global_dims, build_cache));

            // Pass 1: every agent's global box Morton code (ascending
            // global index — the deterministic migration order).
            self.codes.clear();
            self.codes.reserve(n);
            for pos in &snapshot.positions {
                let bc =
                    UniformGridEnvironment::global_box_coordinates(*pos, min, inv, global_dims);
                self.codes.push(morton3_encode(bc[0], bc[1], bc[2]));
            }
            self.ranges = split_ranges(&self.codes, self.shards);

            // Pass 2: ownership + halo membership. Membership is a pure
            // function of the agent's box, so it is memoized per occupied
            // box: the mask has bit t set iff some box within Chebyshev
            // `halo_width` of this box is owned by shard t.
            let w = halo_width as i64;
            let mut memo: HashMap<u64, ([u32; 3], u32, u64)> = HashMap::with_capacity(1024.min(n));
            self.owner.resize(n, 0);
            self.local_of.resize(n, 0);
            for g in 0..n {
                let code = self.codes[g];
                let (bc, own, mask) = match memo.get(&code) {
                    Some(&entry) => entry,
                    None => {
                        let bc = UniformGridEnvironment::global_box_coordinates(
                            snapshot.positions[g],
                            min,
                            inv,
                            global_dims,
                        );
                        let own = shard_of(&self.ranges, code) as u32;
                        let mut mask = 0u64;
                        for dz in -w..=w {
                            let z = (bc[2] as i64 + dz).clamp(0, global_dims[2] as i64 - 1);
                            for dy in -w..=w {
                                let y = (bc[1] as i64 + dy).clamp(0, global_dims[1] as i64 - 1);
                                for dx in -w..=w {
                                    let x = (bc[0] as i64 + dx).clamp(0, global_dims[0] as i64 - 1);
                                    let c = morton3_encode(x as u32, y as u32, z as u32);
                                    mask |= 1u64 << shard_of(&self.ranges, c);
                                }
                            }
                        }
                        memo.insert(code, (bc, own, mask));
                        (bc, own, mask)
                    }
                };
                self.owner[g] = own;
                let mut m = mask;
                while m != 0 {
                    let t = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let cloud = &mut self.clouds[t];
                    if t as u32 == own {
                        self.local_of[g] = cloud.members.len() as u32;
                        self.owned_counts[t] += 1;
                    }
                    cloud.members.push(g as u32);
                    cloud.positions.push(snapshot.positions[g]);
                    cloud.diameters.push(snapshot.diameters[g]);
                    match &mut self.windows[t] {
                        Some((lo, hi)) => {
                            for a in 0..3 {
                                lo[a] = lo[a].min(bc[a]);
                                hi[a] = hi[a].max(bc[a]);
                            }
                        }
                        win @ None => *win = Some((bc, bc)),
                    }
                }
            }
        } else {
            self.ranges = split_ranges(&[], self.shards);
        }

        self.active_iteration = iteration;
        self.last_generation = Some(generation);
        self.last_radius_bits = radius.to_bits();
        self.last_n = n;
        self.exchange_stamp += 1;
        self.exchanges += 1;
        self.last_exchange = timer.elapsed();
    }

    /// Rebuilds the K shard grids over the current clouds (no-op when the
    /// clouds and build capabilities are unchanged). Every build is framed
    /// to the global lattice ([`GridFrame`]) so box membership is bitwise
    /// that of the single-engine grid.
    pub fn build_grids(
        &mut self,
        policy: BoxListPolicy,
        scatter_diameters: bool,
        radius: f64,
        bounds: Option<(Real3, Real3)>,
    ) {
        if self.grids_built_for == Some((self.exchange_stamp, policy, scatter_diameters)) {
            return;
        }
        let frame = self.frame;
        for t in 0..self.shards {
            let timer = Timer::start();
            match (self.windows[t], frame) {
                (Some((lo, hi)), Some((anchor, global_dims, build_cache))) => {
                    let hint = UpdateHint {
                        build_box_lists: policy,
                        known_bounds: bounds,
                        scatter_diameters,
                        grid_frame: Some(GridFrame {
                            anchor,
                            global_dims,
                            box_offset: lo,
                            dims: [hi[0] - lo[0] + 1, hi[1] - lo[1] + 1, hi[2] - lo[2] + 1],
                            build_cache,
                        }),
                    };
                    self.grids[t].update_with(&self.clouds[t], radius, hint);
                }
                // Empty shard: an empty-cloud update resets the grid to a
                // zero-box state whose queries visit nothing.
                _ => self.grids[t].update_with(&self.clouds[t], radius, UpdateHint::default()),
            }
            self.grid_build[t] = timer.elapsed();
        }
        self.grids_built_for = Some((self.exchange_stamp, policy, scatter_diameters));
    }

    /// Aggregate report of the current sharded state.
    pub fn report(&self) -> ShardReport {
        ShardReport {
            shards: self.shards,
            exchanges: self.exchanges,
            exchange_skips: self.exchange_skips,
            last_exchange: self.last_exchange,
            per_shard: (0..self.shards)
                .map(|t| ShardStats {
                    owned: self.owned_counts[t],
                    halo: self.clouds[t].members.len() - self.owned_counts[t],
                    grid_build: self.grid_build[t],
                })
                .collect(),
        }
    }

    /// Partition manifest of the last exchange (checkpoint `SHRD` section).
    pub fn manifest(&self) -> ShardManifest {
        ShardManifest {
            shards: self.shards as u64,
            ranges: self.ranges.iter().map(|r| (r.begin, r.end)).collect(),
            owned: self.owned_counts.iter().map(|&c| c as u64).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_of(positions: Vec<Real3>) -> Snapshot {
        let n = positions.len();
        let mut lo = Real3::splat(f64::INFINITY);
        let mut hi = Real3::splat(f64::NEG_INFINITY);
        for p in &positions {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Snapshot {
            positions,
            diameters: vec![10.0; n],
            payloads: Vec::new(),
            payloads_gathered: false,
            offsets: vec![0, n],
            max_diameter: 10.0,
            bounds: (n > 0).then_some((lo, hi)),
        }
    }

    fn line(n: usize, spacing: f64) -> Vec<Real3> {
        (0..n)
            .map(|i| Real3::new(i as f64 * spacing, 0.0, 0.0))
            .collect()
    }

    #[test]
    fn ownership_partitions_every_agent_exactly_once() {
        let snap = snapshot_of(line(100, 15.0));
        let mut st = ShardedState::new(4);
        st.exchange(&snap, 10.0, 1, 1, 1);
        let total_owned: usize = st.owned_counts.iter().sum();
        assert_eq!(total_owned, 100);
        for g in 0..100 {
            let t = st.owner[g] as usize;
            let local = st.local_of[g] as usize;
            assert_eq!(st.clouds[t].members[local] as usize, g);
        }
    }

    #[test]
    fn members_ascend_and_carry_snapshot_columns() {
        let snap = snapshot_of(line(50, 15.0));
        let mut st = ShardedState::new(3);
        st.exchange(&snap, 10.0, 1, 1, 1);
        for cloud in &st.clouds {
            assert!(cloud.members.windows(2).all(|w| w[0] < w[1]));
            for (i, &g) in cloud.members.iter().enumerate() {
                assert_eq!(
                    cloud.positions[i].0.map(f64::to_bits),
                    snap.positions[g as usize].0.map(f64::to_bits)
                );
            }
        }
    }

    #[test]
    fn halo_covers_range_frontiers() {
        // Agents 15 apart, radius 10: each box (edge 10) holds one agent
        // at most; neighbors within the interaction radius sit in adjacent
        // boxes, so each frontier agent must appear in both shard clouds.
        let snap = snapshot_of(line(40, 8.0));
        let mut st = ShardedState::new(2);
        st.exchange(&snap, 10.0, 1, 1, 1);
        let total_members: usize = st.clouds.iter().map(|c| c.members.len()).sum();
        assert!(
            total_members > 40,
            "frontier agents must be duplicated into neighbor shards"
        );
        // Every agent's own box neighborhood must be covered: for any two
        // agents within the radius, the owner shard of one must hold the
        // other as a member.
        for a in 0..40usize {
            for b in 0..40usize {
                if a == b {
                    continue;
                }
                let d = snap.positions[a].distance_sq(&snap.positions[b]).sqrt();
                if d <= 10.0 {
                    let t = st.owner[a] as usize;
                    assert!(
                        st.clouds[t].members.contains(&(b as u32)),
                        "agent {b} within radius of {a} missing from shard {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn exchange_skips_when_generation_unchanged() {
        let snap = snapshot_of(line(20, 15.0));
        let mut st = ShardedState::new(2);
        st.exchange(&snap, 10.0, 7, 1, 1);
        assert_eq!(st.exchanges, 1);
        st.exchange(&snap, 10.0, 7, 2, 1);
        assert_eq!(st.exchanges, 1);
        assert_eq!(st.exchange_skips, 1);
        assert_eq!(st.active_iteration, 2);
        st.exchange(&snap, 10.0, 8, 3, 1);
        assert_eq!(st.exchanges, 2);
    }

    #[test]
    fn empty_population_exchanges_cleanly() {
        let snap = snapshot_of(Vec::new());
        let mut st = ShardedState::new(3);
        st.exchange(&snap, 10.0, 1, 1, 1);
        assert_eq!(st.ranges.len(), 3);
        assert!(st.clouds.iter().all(|c| c.members.is_empty()));
        let report = st.report();
        assert_eq!(report.shards, 3);
        assert!(report.per_shard.iter().all(|s| s.owned == 0 && s.halo == 0));
    }

    #[test]
    fn manifest_matches_partition() {
        let snap = snapshot_of(line(30, 15.0));
        let mut st = ShardedState::new(2);
        st.exchange(&snap, 10.0, 1, 1, 1);
        let m = st.manifest();
        assert_eq!(m.shards, 2);
        assert_eq!(m.ranges.len(), 2);
        assert_eq!(m.owned.iter().sum::<u64>(), 30);
    }
}
