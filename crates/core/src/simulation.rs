//! The simulation object (paper Section 2, Algorithm 1).
//!
//! One iteration is an ordered list of
//! [`Operation`](crate::scheduler::Operation)s owned by the
//! [`Scheduler`]; [`Simulation::step`] contains no phase logic itself — for
//! each due operation it times it and runs it. The default pipeline:
//!
//! 1. **Pre standalone operations** — `snapshot`, `environment_update`
//!    (Algorithm 1 L3–5; the barrier of L6 is implicit in the phase change).
//! 2. **Agent operations** — `agent_ops`: behaviors and mechanical forces
//!    for every agent, in parallel with the NUMA-aware iterator (L7–11).
//! 3. **Standalone operations** — `diffusion` (secretion application +
//!    diffusion steps) and user-registered operations (L12–14).
//! 4. **Post standalone operations** — `teardown` (deferred mutations,
//!    commit of additions/removals, Section 3.2) and `agent_sorting` when
//!    due (Section 4.2) (L16–18).
//!
//! Per-operation wall-clock time is accumulated by the scheduler;
//! [`Simulation::time_buckets`] derives the operation-runtime breakdown of
//! Figure 5 from those timings. The split-borrow kernels the built-in
//! operations delegate to live here as `pub(crate)` phase methods.

use bdm_alloc::{MemoryManager, MemoryStats, PoolConfig};
use bdm_diffusion::DiffusionGrid;
use bdm_env::{BoxListPolicy, Environment, UpdateHint};
use bdm_numa::{NumaThreadPool, NumaTopology, StealStats};
use bdm_util::send_ptr::SendMut;
use bdm_util::{Real3, TimeBuckets};

use crate::agent::{new_agent_box, Agent, AgentHandle, AgentUid};
use crate::builder::SimulationBuilder;
use crate::context::{
    agent_rng, AgentContext, ExecutionContext, NeighborAccess, ShardView, Snapshot, SnapshotCloud,
};
use crate::faults::{FaultKind, FaultPlan, FaultSite};
use crate::force::InteractionForce;
use crate::ops::{run_behaviors, run_mechanics, MechanicsConfig, ViolationTable};
use crate::param::Param;
use crate::resource_manager::{CommitStats, ResourceManager, ResourceManagerCloud};
use crate::scheduler::{
    builtin, AgentOp, ClosureOp, DiffusionOp, EnvironmentOp, HaloExchangeOp, Scheduler,
    SimulationCtx, SnapshotOp, SortingOp, TeardownOp,
};
use crate::sharded::{ShardManifest, ShardReport, ShardedState, MAX_SHARDS};
use crate::sorting::sort_and_balance;
use crate::supervisor::{HealthCheckOp, HealthMonitor, HealthViolation, HealthViolationKind};

/// Aggregate statistics across all iterations run so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Agents added by behaviors (committed).
    pub agents_added: u64,
    /// Agents removed by behaviors (committed).
    pub agents_removed: u64,
    /// Force calculations executed.
    pub force_calculations: u64,
    /// Force calculations served by the box-batched grid path (stencil
    /// resolved once per box, diameters streamed box-sorted). The rest ran
    /// the scalar per-agent fallback.
    pub batched_force_queries: u64,
    /// Force calculations skipped by static detection (Section 5).
    pub static_skipped: u64,
    /// Agent sorting passes executed.
    pub sorts: u64,
    /// Health-sentinel scans executed ([`Simulation::run_health_check`]).
    pub health_checks_run: u64,
    /// Health violations detected (sentinel scans + mechanics-kernel
    /// non-finite force accumulations).
    pub violations_detected: u64,
    /// Recovery attempts a supervisor performed on this simulation
    /// (maintained via [`Simulation::set_recovery_counters`]).
    pub recoveries_attempted: u64,
    /// Recovery attempts that completed the previously-failing window.
    pub recoveries_succeeded: u64,
}

/// A user-registered standalone operation (paper Section 2: "executed once
/// per iteration to perform a specific task").
pub type StandaloneOp = Box<dyn FnMut(&mut Simulation) + Send>;

/// The central simulation object: owns the agents, environment, diffusion
/// grids, thread pool, memory manager, and the operation [`Scheduler`].
///
/// Field order matters for drop order: everything holding pool-allocated
/// boxes (`rm`, `ctxs`) is declared before `mm`.
pub struct Simulation {
    param: Param,
    topology: NumaTopology,
    pool: NumaThreadPool,
    rm: ResourceManager,
    ctxs: Vec<ExecutionContext>,
    env: Box<dyn Environment>,
    diffusion: Vec<DiffusionGrid>,
    snapshot: Snapshot,
    scheduler: Scheduler,
    mm: MemoryManager,
    iteration: u64,
    uid_counter: u64,
    init_round_robin: usize,
    stats: SimStats,
    force: InteractionForce,
    /// Interaction radius of the current iteration; written by the
    /// `snapshot` operation, read by `environment_update`, `agent_ops`,
    /// and `agent_sorting`.
    step_radius: f64,
    /// Commit statistics of the current iteration; written by `teardown`,
    /// read by `agent_sorting` (a changed population forces an index
    /// rebuild before sorting).
    step_commit: CommitStats,
    /// Whether any operation due this iteration requires the uniform grid's
    /// per-box linked lists (aggregated from
    /// [`Operation::requires_box_lists`](crate::scheduler::Operation::requires_box_lists)
    /// by `step`); `environment_update` forwards it as the index's
    /// [`UpdateHint`].
    step_box_lists: bool,
    /// Union of the snapshot arrays the kernels due this iteration read
    /// (aggregated by `step` from [`Param::neighbor_access`], the
    /// interaction force, and every due operation's
    /// [`Operation::neighbor_access`](crate::scheduler::Operation::neighbor_access));
    /// the `snapshot` operation skips gathering the payload array when the
    /// union excludes [`NeighborAccess::PAYLOADS`].
    step_access: NeighborAccess,
    /// Iteration whose agents the snapshot was gathered over; lets
    /// `environment_update` reuse the snapshot's contiguous positions (and
    /// bounds) instead of re-reading every agent through two virtual calls.
    snapshot_iteration: u64,
    /// Resource-manager generation at snapshot time: a custom operation
    /// that adds/removes/commits agents between `snapshot` and
    /// `environment_update` remaps agent indices even when the count is
    /// unchanged, so freshness is generation equality, not a length check.
    snapshot_generation: u64,
    /// Sharded execution state ([`Param::shards`] > 1): SFC-range
    /// partition, per-shard clouds and grids, halo-exchange bookkeeping.
    /// `None` on the single-engine path.
    sharded: Option<ShardedState>,
    /// Bounded log of typed health violations (sentinel findings).
    health: HealthMonitor,
    /// Planned fault injections; `None` (the default) keeps every injection
    /// hook on a single `is_none()` branch.
    faults: Option<FaultPlan>,
}

impl Simulation {
    /// Creates a simulation from parameters.
    pub fn new(param: Param) -> Simulation {
        assert!(
            param.shards >= 1 && param.shards <= MAX_SHARDS,
            "Param::shards must be in 1..={MAX_SHARDS}, got {}",
            param.shards
        );
        assert!(
            param.shards == 1 || param.environment == bdm_env::EnvironmentKind::UniformGrid,
            "sharded execution (Param::shards > 1) requires the uniform-grid \
             environment, got {:?}",
            param.environment
        );
        let mut topology = NumaTopology::detect();
        if param.threads.is_some() || param.numa_domains.is_some() {
            let threads = param.threads.unwrap_or_else(|| topology.num_threads());
            let domains = param
                .numa_domains
                .unwrap_or_else(|| topology.num_domains())
                .min(threads);
            topology = NumaTopology::new(domains, threads);
        }
        let num_domains = topology.num_domains();
        let num_threads = topology.num_threads();
        let pool = NumaThreadPool::new(topology.clone());
        let mm = if param.use_pool_allocator {
            MemoryManager::new(
                num_domains,
                num_threads,
                PoolConfig {
                    growth_rate: param.mem_mgr_growth_rate,
                    ..PoolConfig::default()
                },
            )
        } else {
            MemoryManager::system_only(num_domains, num_threads)
        };
        // Register every worker with the allocator so deallocations from the
        // owning domain take the thread-private fast path (Figure 4B).
        pool.broadcast(&|wctx| bdm_alloc::register_thread(wctx.thread_id, wctx.domain));
        let env = param.environment.create();
        let sharded = (param.shards > 1).then(|| ShardedState::new(param.shards));
        Simulation {
            rm: ResourceManager::new(num_domains),
            ctxs: (0..num_threads)
                .map(|_| ExecutionContext::new(num_domains))
                .collect(),
            env,
            diffusion: Vec::new(),
            snapshot: Snapshot::default(),
            scheduler: default_scheduler(&param),
            mm,
            iteration: 0,
            uid_counter: 0,
            init_round_robin: 0,
            stats: SimStats::default(),
            force: InteractionForce::default(),
            topology,
            pool,
            param,
            step_radius: 0.0,
            step_commit: CommitStats::default(),
            step_box_lists: false,
            step_access: NeighborAccess::ALL,
            snapshot_iteration: 0,
            snapshot_generation: 0,
            sharded,
            health: HealthMonitor::default(),
            faults: None,
        }
    }

    /// A fluent builder with default parameters (see [`SimulationBuilder`]).
    ///
    /// ```
    /// use bdm_core::{Cell, Real3, Simulation};
    ///
    /// let mut sim = Simulation::builder().threads(2).time_step(1.0).build();
    /// let uid = sim.new_uid();
    /// sim.add_agent(Cell::new(uid).with_position(Real3::splat(5.0)));
    /// sim.simulate(3);
    /// assert_eq!(sim.num_agents(), 1);
    /// assert_eq!(sim.iteration(), 3);
    /// ```
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::new()
    }

    /// Simulation parameters.
    pub fn param(&self) -> &Param {
        &self.param
    }

    /// The (virtual) NUMA topology in use.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// Overrides the interaction force model.
    pub fn set_force(&mut self, force: InteractionForce) {
        self.force = force;
    }

    /// The interaction force model in use.
    pub fn force(&self) -> InteractionForce {
        self.force
    }

    /// The seed feeding every per-(agent, iteration) RNG stream.
    pub fn rng_seed(&self) -> u64 {
        self.param.seed
    }

    /// Re-seeds the simulation's RNG streams. Agent RNGs are stateless —
    /// derived per (seed, uid, iteration) — so the new seed takes effect
    /// from the next iteration; checkpoint restore and the property-test
    /// harness use this instead of reaching into `Param`.
    pub fn set_rng_seed(&mut self, seed: u64) {
        self.param.seed = seed;
    }

    /// Highest uid issued so far (restore API: uid issuance must resume
    /// exactly where the checkpointed run stood).
    pub fn uid_counter(&self) -> u64 {
        self.uid_counter
    }

    /// Overwrites the uid counter (restore API).
    pub fn set_uid_counter(&mut self, v: u64) {
        self.uid_counter = v;
    }

    /// Overwrites the iteration counter (restore API: the next
    /// [`Simulation::step`] runs iteration `iteration + 1`).
    pub fn set_iteration(&mut self, iteration: u64) {
        self.iteration = iteration;
    }

    /// Round-robin cursor of [`Simulation::add_agent`] (restore API: agents
    /// added after a restore must land on the same domains as in the
    /// original run).
    pub fn init_cursor(&self) -> usize {
        self.init_round_robin
    }

    /// Overwrites the round-robin cursor (restore API).
    pub fn set_init_cursor(&mut self, v: usize) {
        self.init_round_robin = v;
    }

    /// Number of registered diffusion grids.
    pub fn num_diffusion_grids(&self) -> usize {
        self.diffusion.len()
    }

    /// Inserts a deserialized agent into a **specific** domain with its
    /// static-detection sidecar (restore path: placement must reproduce the
    /// checkpointed run exactly, so round-robin balancing is bypassed).
    pub fn restore_agent<A: Agent + 'static>(
        &mut self,
        domain: usize,
        agent: A,
        flags: crate::resource_manager::StaticFlags,
        violation: bool,
    ) -> AgentHandle {
        let boxed = new_agent_box(agent, &self.mm, domain);
        let h = self.rm.push(domain, boxed, flags.created_iter);
        self.rm.set_static_flags(h, flags);
        if violation {
            self.rm.raise_violation(domain, h.index as usize);
        }
        h
    }

    /// Issues a fresh uid for model initialization.
    pub fn new_uid(&mut self) -> AgentUid {
        self.uid_counter += 1;
        AgentUid(self.uid_counter)
    }

    /// Adds an agent during model initialization, balancing domains
    /// round-robin.
    pub fn add_agent<A: Agent + 'static>(&mut self, agent: A) -> AgentHandle {
        let domain = self.init_round_robin % self.rm.num_domains();
        self.init_round_robin += 1;
        let boxed = new_agent_box(agent, &self.mm, domain);
        self.rm.push(domain, boxed, 0)
    }

    /// Registers a diffusion grid; returns its index for
    /// `AgentContext::substance` / `AgentContext::secrete`.
    pub fn add_diffusion_grid(&mut self, grid: DiffusionGrid) -> usize {
        self.diffusion.push(grid);
        self.diffusion.len() - 1
    }

    /// Read access to a diffusion grid.
    pub fn diffusion_grid(&self, idx: usize) -> &DiffusionGrid {
        &self.diffusion[idx]
    }

    /// Mutable access to a diffusion grid (initialization).
    pub fn diffusion_grid_mut(&mut self, idx: usize) -> &mut DiffusionGrid {
        &mut self.diffusion[idx]
    }

    /// Registers a standalone operation executed every `frequency`
    /// iterations after the agent operations.
    ///
    /// This is the legacy closure-based entry point; it wraps the closure in
    /// an [`Operation`](crate::scheduler::Operation) of kind `Standalone`
    /// whose runtime is attributed to the `standalone_ops` timing bucket.
    /// Prefer implementing [`Operation`](crate::scheduler::Operation) and
    /// registering it via [`Simulation::scheduler_mut`] or
    /// [`SimulationBuilder::operation`] for named per-op timings and
    /// placement control.
    pub fn add_standalone_op(
        &mut self,
        name: impl Into<String>,
        frequency: usize,
        op: StandaloneOp,
    ) {
        self.scheduler.add_op_in_bucket(
            Box::new(ClosureOp::new(name.into(), frequency.max(1) as u64, op)),
            builtin::STANDALONE_BUCKET,
        );
    }

    /// The operation scheduler: the ordered pipeline of this simulation.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Exclusive access to the scheduler: add, remove, reorder, re-time, or
    /// toggle operations.
    ///
    /// From *inside* a running operation, `add_op`, `set_frequency`,
    /// `set_enabled`, and `remove_op` are deferred and take effect from the
    /// next iteration; anchored insertion and introspection only see
    /// operations added during the current iteration (the main list is
    /// detached while it executes).
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.scheduler
    }

    /// Number of live agents.
    pub fn num_agents(&self) -> usize {
        self.rm.num_agents()
    }

    /// Current iteration (0 before the first step).
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Simulated time (`iteration × dt`).
    pub fn time(&self) -> f64 {
        self.iteration as f64 * self.param.simulation_time_step
    }

    /// Shared access to the resource manager.
    pub fn resource_manager(&self) -> &ResourceManager {
        &self.rm
    }

    /// Exclusive access to the resource manager (model initialization,
    /// custom standalone operations).
    pub fn resource_manager_mut(&mut self) -> &mut ResourceManager {
        &mut self.rm
    }

    /// Visits every agent.
    pub fn for_each_agent(&self, f: impl FnMut(AgentHandle, &dyn Agent)) {
        self.rm.for_each_agent(f);
    }

    /// Counts agents matching a predicate.
    pub fn count_agents(&self, mut pred: impl FnMut(&dyn Agent) -> bool) -> usize {
        let mut n = 0;
        self.rm.for_each_agent(|_, a| {
            if pred(a) {
                n += 1;
            }
        });
        n
    }

    /// Per-phase wall-clock buckets (Figure 5's runtime breakdown), derived
    /// from the scheduler's per-operation timings. Built-in operations keep
    /// the legacy phase names (`snapshot`, `environment_update`,
    /// `agent_ops`, `standalone_ops`, `teardown`, `agent_sorting`); custom
    /// [`Operation`](crate::scheduler::Operation)s appear under their own
    /// name.
    pub fn time_buckets(&self) -> TimeBuckets {
        self.scheduler.time_buckets()
    }

    /// Aggregate engine statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Memory-allocator statistics (Figure 13).
    pub fn memory_stats(&self) -> MemoryStats {
        self.mm.stats()
    }

    /// Work-stealing counters since the last call (Figure 2 arrows 4/5).
    pub fn take_steal_stats(&self) -> StealStats {
        self.pool.take_steal_stats()
    }

    /// Heap footprint of the neighbor-search index (Figure 11d).
    pub fn environment_memory_bytes(&self) -> usize {
        self.env.memory_bytes()
    }

    /// Per-shard execution report — owned/halo counts, grid-build times,
    /// exchange counters ([`Param::shards`] > 1; `None` on the
    /// single-engine path).
    pub fn shard_report(&self) -> Option<ShardReport> {
        self.sharded.as_ref().map(ShardedState::report)
    }

    /// Partition manifest of the last halo exchange (`None` on the
    /// single-engine path or before the first exchange) — recorded in the
    /// checkpoint's `SHRD` section for audit; restore recomputes the
    /// partition from state, so a checkpoint restores into *any* shard
    /// count bitwise-identically.
    pub fn shard_manifest(&self) -> Option<ShardManifest> {
        self.sharded
            .as_ref()
            .filter(|s| s.exchanges > 0)
            .map(ShardedState::manifest)
    }

    /// The per-iteration snapshot gathered by the `snapshot` operation —
    /// SoA arrays of every agent's position/diameter/payload at the start
    /// of the current iteration (see [`Snapshot`]). A custom operation
    /// reading `payloads` must declare
    /// [`NeighborAccess::PAYLOADS`](crate::NeighborAccess) via
    /// [`Operation::neighbor_access`](crate::scheduler::Operation::neighbor_access),
    /// otherwise the array is skipped ([`Snapshot::payloads_gathered`]).
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Heap bytes of the snapshot arrays the current iteration gathered
    /// (per-array SoA accounting; the Figure 5/9/11 harness reports this
    /// instead of assuming a record size).
    pub fn snapshot_memory_bytes(&self) -> usize {
        self.snapshot.memory_bytes()
    }

    /// The neighbor-search index of the current iteration (rebuilt by the
    /// `environment_update` operation). Custom operations can downcast via
    /// [`Environment::as_uniform_grid`] for grid-specific reads; an
    /// operation that walks the grid's linked lists (`box_head` /
    /// `successor`) must also override
    /// [`Operation::requires_box_lists`](crate::scheduler::Operation::requires_box_lists)
    /// so the lazy rebuild materializes them.
    pub fn environment(&self) -> &dyn Environment {
        &*self.env
    }

    /// Name of the active environment backend.
    pub fn environment_name(&self) -> &'static str {
        self.env.name()
    }

    /// The memory manager (advanced use: custom agent allocation).
    pub fn memory_manager(&self) -> &MemoryManager {
        &self.mm
    }

    // -- Health sentinel ---------------------------------------------------

    /// Runs the health-sentinel scan now, regardless of the `health_check`
    /// operation's frequency (a supervisor forces a scan before every
    /// checkpoint capture so corrupted state is never checkpointed).
    ///
    /// Scans agent positions/diameters for non-finite values, positions
    /// against [`HealthPolicy::bounds`], the agent count against
    /// [`HealthPolicy::max_agents`], and — when
    /// [`HealthPolicy::check_diffusion`] — every diffusion grid's
    /// concentration array.
    ///
    /// [`HealthPolicy::bounds`]: crate::supervisor::HealthPolicy::bounds
    /// [`HealthPolicy::max_agents`]: crate::supervisor::HealthPolicy::max_agents
    /// [`HealthPolicy::check_diffusion`]: crate::supervisor::HealthPolicy::check_diffusion
    ///
    /// Findings are recorded as typed
    /// [`HealthViolation`]s (capped; exact totals in
    /// [`SimStats::violations_detected`]) and the number found by *this*
    /// scan is returned. The scan mutates nothing step-relevant, so it never
    /// perturbs bit-reproducibility.
    pub fn run_health_check(&mut self) -> usize {
        let policy = self.param.health.clone().unwrap_or_default();
        let iteration = self.iteration;
        let mut found = 0usize;
        let mut records: Vec<HealthViolation> = Vec::new();
        let push = |records: &mut Vec<HealthViolation>, v: HealthViolation| {
            if records.len() < crate::supervisor::MAX_RECORDED_VIOLATIONS {
                records.push(v);
            }
        };
        let bounds = policy.bounds;
        self.rm.for_each_agent(|_h, a| {
            let p = a.position();
            let d = a.diameter();
            if !p.is_finite() {
                found += 1;
                push(
                    &mut records,
                    HealthViolation {
                        kind: HealthViolationKind::NonFinitePosition,
                        iteration,
                        agent: Some(a.uid().0),
                        detail: format!("({}, {}, {})", p.x(), p.y(), p.z()),
                    },
                );
            } else if let Some((lo, hi)) = bounds {
                let escaped = p.x() < lo.x()
                    || p.y() < lo.y()
                    || p.z() < lo.z()
                    || p.x() > hi.x()
                    || p.y() > hi.y()
                    || p.z() > hi.z();
                if escaped {
                    found += 1;
                    push(
                        &mut records,
                        HealthViolation {
                            kind: HealthViolationKind::OutOfBounds,
                            iteration,
                            agent: Some(a.uid().0),
                            detail: format!("({}, {}, {})", p.x(), p.y(), p.z()),
                        },
                    );
                }
            }
            if !d.is_finite() || d < 0.0 {
                found += 1;
                push(
                    &mut records,
                    HealthViolation {
                        kind: HealthViolationKind::InvalidDiameter,
                        iteration,
                        agent: Some(a.uid().0),
                        detail: format!("{d}"),
                    },
                );
            }
        });
        if policy.check_diffusion {
            for (gi, grid) in self.diffusion.iter().enumerate() {
                if let Some(bi) = grid.concentrations().iter().position(|c| !c.is_finite()) {
                    found += 1;
                    push(
                        &mut records,
                        HealthViolation {
                            kind: HealthViolationKind::NonFiniteConcentration,
                            iteration,
                            agent: None,
                            detail: format!("grid #{gi} ({}) box {bi}", grid.name()),
                        },
                    );
                }
            }
        }
        if let Some(max) = policy.max_agents {
            let n = self.rm.num_agents() as u64;
            if n > max {
                found += 1;
                push(
                    &mut records,
                    HealthViolation {
                        kind: HealthViolationKind::AgentExplosion,
                        iteration,
                        agent: None,
                        detail: format!("{n} agents > limit {max}"),
                    },
                );
            }
        }
        for v in records {
            self.health.record(v);
        }
        self.stats.health_checks_run += 1;
        self.stats.violations_detected += found as u64;
        found
    }

    /// The recorded health violations (oldest first, detail capped — exact
    /// totals live in [`SimStats::violations_detected`]).
    pub fn health_violations(&self) -> &[HealthViolation] {
        self.health.violations()
    }

    /// Drains the recorded health violations.
    pub fn take_health_violations(&mut self) -> Vec<HealthViolation> {
        self.health.take()
    }

    /// Records an externally detected violation (used by supervisors).
    pub fn record_health_violation(&mut self, v: HealthViolation) {
        self.stats.violations_detected += 1;
        self.health.record(v);
    }

    /// Overwrites the recovery counters of [`SimStats`]. Called by a
    /// supervisor after each restore: restoring replaces the simulation
    /// object (and its stats), so the supervisor re-applies its running
    /// totals to keep soak reports observable from `stats()`.
    pub fn set_recovery_counters(&mut self, attempted: u64, succeeded: u64) {
        self.stats.recoveries_attempted = attempted;
        self.stats.recoveries_succeeded = succeeded;
    }

    // -- Degradation switches (recovery ladder) ---------------------------

    /// Replaces the neighbor-search backend at runtime — the "force the
    /// brute-force/kd-tree backend" degradation of the recovery ladder. The
    /// new index is built on the next `environment_update` run.
    pub fn set_environment_kind(&mut self, kind: bdm_env::EnvironmentKind) {
        self.param.environment = kind;
        self.env = kind.create();
        if kind != bdm_env::EnvironmentKind::UniformGrid {
            // Sharded execution is grid-only; degrading the backend also
            // degrades to the single-engine path (results stay bitwise —
            // shard-count invariance means K shards and one engine agree).
            self.param.shards = 1;
            self.sharded = None;
        }
        // The old snapshot still matches the agents; only the index is new.
        self.snapshot_generation = self.snapshot_generation.wrapping_sub(1);
    }

    /// Toggles the box-batched mechanics path (bit-identical to the scalar
    /// path by construction, so this degradation preserves trajectories).
    pub fn set_box_batched_mechanics(&mut self, enabled: bool) {
        self.param.box_batched_mechanics = enabled;
    }

    /// Toggles static-agent detection at runtime.
    pub fn set_detect_static_agents(&mut self, enabled: bool) {
        self.param.detect_static_agents = enabled;
    }

    // -- Fault injection ---------------------------------------------------

    /// Attaches a fault plan; the engine consults it at the named
    /// [`FaultSite`]s. See [`crate::faults`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Detaches the fault plan (a supervisor transplants it onto the
    /// restored simulation so already-fired faults stay fired).
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Takes a due fault for `site` at the current iteration without
    /// executing it (used by supervisors for the
    /// [`FaultSite::CheckpointCapture`] site, whose kinds act on buffers the
    /// simulation cannot see).
    pub fn take_due_fault(&mut self, site: &FaultSite) -> Option<FaultKind> {
        let iteration = self.iteration;
        self.faults.as_mut()?.take_due(site, iteration)
    }

    /// Injection hook: consults the plan before the scheduler runs `op`.
    pub(crate) fn fire_op_fault(&mut self, op: &str) {
        if self.faults.is_none() {
            return;
        }
        let iteration = self.iteration;
        let kind = self
            .faults
            .as_mut()
            .and_then(|p| p.take_due_op(op, iteration));
        if let Some(kind) = kind {
            self.execute_fault(kind, &format!("before op `{op}`"));
        }
    }

    /// Injection hook: consults the plan at the start of the environment
    /// rebuild phase.
    pub(crate) fn fire_grid_fault(&mut self) {
        if self.faults.is_none() {
            return;
        }
        let iteration = self.iteration;
        let kind = self
            .faults
            .as_mut()
            .and_then(|p| p.take_due(&FaultSite::GridRebuild, iteration));
        if let Some(kind) = kind {
            self.execute_fault(kind, "at grid rebuild");
        }
    }

    fn execute_fault(&mut self, kind: FaultKind, site: &str) {
        match kind {
            FaultKind::Panic => {
                panic!(
                    "injected fault: panic {site} at iteration {}",
                    self.iteration
                );
            }
            FaultKind::NanPosition { agent_index } => {
                let n = self.rm.num_agents();
                if n == 0 {
                    return;
                }
                let global = agent_index % n;
                let offsets = self.rm.offsets();
                let mut d = 0;
                while d + 1 < offsets.len() - 1 && offsets[d + 1] <= global {
                    d += 1;
                }
                let h = AgentHandle::new(d, global - offsets[d]);
                // Goes through the sanctioned setter, which itself trips the
                // write sentinel — the silent-corruption path under test.
                self.rm.agent_mut(h).set_position(Real3::splat(f64::NAN));
            }
            // Checkpoint-targeted kinds act on supervisor-owned buffers;
            // firing them at a simulation site is a no-op.
            FaultKind::CheckpointBitFlip { .. } | FaultKind::DeltaGap => {}
        }
    }

    /// Runs `iterations` simulation steps (Algorithm 1 L2–19).
    pub fn simulate(&mut self, iterations: usize) {
        for _ in 0..iterations {
            self.step();
        }
    }

    /// Executes one iteration of Algorithm 1: for each due operation in the
    /// scheduler's ordered list, time it and run it. All phase logic lives
    /// in the operations themselves (see [`crate::scheduler`]).
    pub fn step(&mut self) {
        self.iteration += 1;
        self.step_commit = CommitStats::default();
        // Detach the op list so operations get `&mut Simulation` access;
        // ops registered during the iteration land in the (empty) scheduler
        // and are merged back afterwards.
        let mut entries = self.scheduler.take_entries();
        // Scheduler → environment capability hint: does anything due this
        // iteration walk the grid's linked lists? (The built-ins never do —
        // sorting reads the SoA box order — so this is `false` unless a
        // custom operation opts in.)
        self.step_box_lists = Scheduler::due_ops_require_box_lists(&entries, self.iteration);
        // Scheduler → snapshot capability: which per-neighbor arrays will
        // anything read before the next gather? The built-in agent kernels
        // (behaviors + mechanics) declare through Param and the force;
        // custom operations through Operation::neighbor_access.
        let agent_kernel_access = if self.param.enable_mechanics {
            self.param.neighbor_access | self.force.neighbor_access()
        } else {
            self.param.neighbor_access
        };
        self.step_access =
            Scheduler::due_ops_neighbor_access(&entries, self.iteration, agent_kernel_access);
        // A consumer can appear between the rebuilds of a re-timed
        // (frequency > 1) environment pipeline — via add_op, set_enabled,
        // or a frequency change — in which case the build it would read
        // this iteration lacks the lists. Force one rebuild so the
        // documented `requires_box_lists` contract holds unconditionally
        // while the environment op is enabled.
        let force_environment = self.step_box_lists
            && self
                .env
                .as_uniform_grid()
                .is_some_and(|g| g.soa_active() && !g.lists_active());
        // A panicking operation must not leak the detached list (the
        // pipeline would be empty forever if the caller catches the
        // unwind), so restore it before re-raising.
        let result = {
            let mut ctx = SimulationCtx { sim: self };
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Scheduler::run_iteration(&mut entries, &mut ctx, force_environment)
            }))
        };
        self.scheduler.put_entries(entries);
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }

    // -- Built-in phase kernels (called by the scheduler's built-in ops) --

    /// The `snapshot` operation: gathers the per-iteration snapshot and
    /// derives the iteration's interaction radius. The snapshot gather and
    /// the index build are separate operations so the Figure 11 build-time
    /// comparison isolates the index structure.
    pub(crate) fn phase_snapshot(&mut self) {
        self.build_snapshot();
        self.snapshot_iteration = self.iteration;
        self.snapshot_generation = self.rm.generation();
        self.step_radius = self
            .param
            .interaction_radius
            .unwrap_or_else(|| self.snapshot.max_diameter.max(1e-6));
    }

    /// The `halo_exchange` operation ([`Param::shards`] > 1): partitions
    /// the snapshot by Morton-code range and rebuilds the per-shard member
    /// clouds — owned agents plus read-only halo copies of every agent
    /// within the halo width of the shard's SFC-range frontier. Runs
    /// between `snapshot` and `environment_update`; skipped entirely (the
    /// engine degrades to the single-engine path for the iteration) when
    /// the snapshot is not fresh.
    pub(crate) fn phase_halo_exchange(&mut self) {
        let n = self.rm.num_agents();
        let snapshot_fresh = self.snapshot_iteration == self.iteration
            && self.snapshot_generation == self.rm.generation()
            && self.snapshot.len() == n;
        // Halo width in boxes (box length == interaction radius):
        //   * ring 1 — the query stencil around the query center's box;
        //   * ring 2 — behaviors may move an agent before mechanics
        //     queries at its live position (division offset, chemotaxis,
        //     random walks). The sharding contract caps that movement at
        //     one interaction radius per iteration;
        //   * static detection additionally queries at the post-mechanics
        //     position, up to the displacement cap further out.
        let halo_width = 2 + if self.param.detect_static_agents && self.step_radius > 0.0 {
            (self.param.simulation_max_displacement / self.step_radius).floor() as u32 + 1
        } else {
            0
        };
        let (snapshot, generation, radius, iteration) = (
            &self.snapshot,
            self.rm.generation(),
            self.step_radius,
            self.iteration,
        );
        if let Some(st) = self.sharded.as_mut() {
            if snapshot_fresh {
                st.exchange(snapshot, radius, generation, iteration, halo_width);
            } else {
                st.deactivate();
            }
        }
    }

    /// The `environment_update` operation: rebuilds the neighbor index
    /// (Algorithm 1 L3–5). The rebuild reads positions from the snapshot
    /// gathered this iteration (contiguous memory, bounds already known)
    /// whenever it is fresh; without a fresh snapshot — e.g. a custom
    /// pipeline that dropped the snapshot op — it falls back to reading the
    /// agents directly. Under sharded execution with a completed halo
    /// exchange, the K per-shard windowed grids are built instead of the
    /// global index.
    pub(crate) fn phase_environment(&mut self) {
        self.fire_grid_fault();
        let n = self.rm.num_agents();
        if n == 0 {
            return;
        }
        let box_lists = if self.step_box_lists {
            BoxListPolicy::Always
        } else {
            BoxListPolicy::IfNeeded
        };
        let scatter = self.step_access.contains(NeighborAccess::DIAMETERS);
        let (radius, bounds, iteration) = (self.step_radius, self.snapshot.bounds, self.iteration);
        if let Some(st) = self.sharded.as_mut() {
            if st.active_iteration == iteration {
                st.build_grids(box_lists, scatter, radius, bounds);
                return;
            }
        }
        let snapshot_fresh = self.snapshot_iteration == self.iteration
            && self.snapshot_generation == self.rm.generation()
            && self.snapshot.len() == n;
        if snapshot_fresh {
            let hint = UpdateHint {
                build_box_lists: box_lists,
                known_bounds: self.snapshot.bounds,
                // Some due kernel reads neighbor diameters (the mechanics
                // force always does) → the grid scatters them box-sorted
                // next to its query slots so those reads stream.
                scatter_diameters: self.step_access.contains(NeighborAccess::DIAMETERS),
                grid_frame: None,
            };
            let cloud = SnapshotCloud(&self.snapshot);
            self.env.update_with(&cloud, self.step_radius, hint);
        } else {
            let hint = UpdateHint {
                build_box_lists: box_lists,
                known_bounds: None,
                // Without a fresh snapshot there is no diameter slice to
                // scatter from (the resource-manager cloud reads agents
                // through pointers); readers use the lazy fallback.
                scatter_diameters: false,
                grid_frame: None,
            };
            let cloud = ResourceManagerCloud::new(&self.rm);
            self.env.update_with(&cloud, self.step_radius, hint);
        }
    }

    /// The `agent_ops` operation: behaviors + mechanics for every agent in
    /// parallel (Algorithm 1 L7–11).
    pub(crate) fn phase_agent_ops(&mut self) {
        if self.rm.num_agents() > 0 {
            self.run_agent_ops(self.step_radius);
            if self.param.detect_static_agents {
                // Make the violations raised during this pass visible to the
                // next one. Doing the shift here — after the parallel pass,
                // before anything else observes the flags — keeps wake-ups
                // scheduling-independent (see `VIOL_CUR`).
                self.rm.promote_violations();
            }
            // Behaviors and mechanics mutate agents in place; advance the
            // structural generation so state observers (delta checkpoints)
            // see the population as changed. Runs after the environment
            // rebuild, so the snapshot-freshness equality is unaffected.
            self.rm.generation += 1;
        }
    }

    /// The `diffusion` operation: applies queued secretions and steps the
    /// diffusion grids (Algorithm 1 L12–14).
    pub(crate) fn phase_diffusion(&mut self) {
        self.apply_secretions();
        let dt = self.param.simulation_time_step;
        for grid in &mut self.diffusion {
            grid.step(dt);
        }
    }

    /// The `teardown` operation: deferred mutations and the commit of
    /// additions/removals (Section 3.2, Algorithm 1 L16–18).
    pub(crate) fn phase_teardown(&mut self) {
        self.apply_deferred();
        let commit = self.rm.commit(
            &mut self.ctxs,
            &self.pool,
            self.param.parallel_add_remove,
            self.iteration,
        );
        self.stats.agents_added += commit.added as u64;
        self.stats.agents_removed += commit.removed as u64;
        self.step_commit = commit;
    }

    /// The `agent_sorting` operation (Section 4.2): space-filling-curve
    /// sort and NUMA balancing. Only effective on the uniform-grid
    /// environment; its frequency comes from `Param::agent_sort_frequency`
    /// and can be re-timed via the scheduler.
    pub(crate) fn phase_sorting(&mut self) {
        // If the commit of this iteration added or removed agents, the index
        // built at the start of the iteration no longer matches the
        // resource manager and must be rebuilt: the sort's memory safety
        // depends on the box lists referencing current agent indices.
        // Without population changes the index is merely position-stale,
        // which is harmless — the sort only needs *a* consistent spatial
        // binning of the current index set.
        let box_lists = if self.step_box_lists {
            BoxListPolicy::Always
        } else {
            BoxListPolicy::IfNeeded
        };
        if (self.step_commit.added > 0 || self.step_commit.removed > 0) && self.rm.num_agents() > 0
        {
            let cloud = ResourceManagerCloud::new(&self.rm);
            // The sort itself reads the SoA box order on dense clouds and
            // the lists only on sparse ones (where the grid builds them
            // anyway) — but a due operation that declared
            // `requires_box_lists` may still run after this rebuild, so
            // its capability request carries over.
            let hint = UpdateHint {
                build_box_lists: box_lists,
                known_bounds: None,
                scatter_diameters: false,
                grid_frame: None,
            };
            self.env.update_with(&cloud, self.step_radius, hint);
        } else if self.rm.num_agents() > 0
            && self
                .sharded
                .as_ref()
                .is_some_and(|s| s.active_iteration == self.iteration)
        {
            // Sharded iteration without population changes: the K shard
            // grids served the agent phase and the *global* index was never
            // built. The sort needs a global index over the iteration's
            // agents — rebuild it from the same snapshot with the same hint
            // the single-engine `environment_update` would have used, so
            // the resulting box order (and therefore the sorted agent
            // permutation) is bitwise that of the single-engine run.
            let hint = UpdateHint {
                build_box_lists: box_lists,
                known_bounds: self.snapshot.bounds,
                scatter_diameters: self.step_access.contains(NeighborAccess::DIAMETERS),
                grid_frame: None,
            };
            let cloud = SnapshotCloud(&self.snapshot);
            self.env.update_with(&cloud, self.step_radius, hint);
        }
        if let Some(grid) = self.env.as_uniform_grid() {
            let moved = sort_and_balance(
                &mut self.rm,
                grid,
                &self.mm,
                &self.pool,
                &self.topology,
                self.param.sort_curve,
                self.param.sort_use_extra_memory,
            );
            if moved > 0 {
                self.stats.sorts += 1;
            }
        }
    }

    /// Builds the per-iteration snapshot — the SoA arrays (positions,
    /// diameters, and payloads when this iteration's [`NeighborAccess`]
    /// reads them) and the max diameter — reading agents through their
    /// pointers in ONE sweep.
    fn build_snapshot(&mut self) {
        let offsets = self.rm.offsets();
        let total = *offsets.last().unwrap();
        let gather_payloads = self.step_access.reads_payloads();
        self.snapshot.offsets = offsets;
        self.snapshot.positions.resize(total, Real3::ZERO);
        self.snapshot.diameters.resize(total, 0.0);
        if gather_payloads {
            self.snapshot.payloads.resize(total, 0);
        } else {
            // Payload-skip fast path: nobody due before the next gather
            // reads payloads, so neither gather nor stream the array.
            self.snapshot.payloads.clear();
        }
        self.snapshot.payloads_gathered = gather_payloads;
        let sizes = self.rm.domain_sizes();
        let max_diameter = std::sync::atomic::AtomicU64::new(0f64.to_bits());
        // Position bounds fold into the same sweep: the environment rebuild
        // needs them, and computing them here saves it a full pass over the
        // agents. Merged per block under a mutex (blocks are coarse).
        let bounds =
            std::sync::Mutex::new((Real3::splat(f64::INFINITY), Real3::splat(f64::NEG_INFINITY)));
        {
            let pos_ptr = SendMut::new(self.snapshot.positions.as_mut_ptr());
            let diam_ptr = SendMut::new(self.snapshot.diameters.as_mut_ptr());
            let payload_ptr = SendMut::new(self.snapshot.payloads.as_mut_ptr());
            let snap_offsets = &self.snapshot.offsets;
            let rm = &self.rm;
            let max_ref = &max_diameter;
            let bounds_ref = &bounds;
            let block = self.param.iteration_block_size;
            let body = |domain: usize, range: std::ops::Range<usize>| {
                let mut local_max = 0f64;
                let mut local_lo = Real3::splat(f64::INFINITY);
                let mut local_hi = Real3::splat(f64::NEG_INFINITY);
                let base = snap_offsets[domain];
                for i in range {
                    let agent = &*rm.domains[domain].agents[i];
                    let d = agent.diameter();
                    local_max = local_max.max(d);
                    let position = agent.position();
                    local_lo = local_lo.min(&position);
                    local_hi = local_hi.max(&position);
                    // SAFETY: global slot base+i written exactly once.
                    unsafe {
                        pos_ptr.write(base + i, position);
                        diam_ptr.write(base + i, d);
                        if gather_payloads {
                            payload_ptr.write(base + i, agent.payload());
                        }
                    }
                }
                // Atomic f64 max via CAS on the bit pattern.
                let mut cur = max_ref.load(std::sync::atomic::Ordering::Relaxed);
                while f64::from_bits(cur) < local_max {
                    match max_ref.compare_exchange_weak(
                        cur,
                        local_max.to_bits(),
                        std::sync::atomic::Ordering::Relaxed,
                        std::sync::atomic::Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(c) => cur = c,
                    }
                }
                if local_lo[0] <= local_hi[0] {
                    let mut merged = bounds_ref.lock().unwrap();
                    merged.0 = merged.0.min(&local_lo);
                    merged.1 = merged.1.max(&local_hi);
                }
            };
            if self.param.numa_aware_iteration {
                self.pool
                    .numa_for(&sizes, block, &|_w, domain, range| body(domain, range));
            } else {
                let splitter = GlobalSplitter(&self.snapshot.offsets);
                self.pool.parallel_for(total, block, &|_w, range| {
                    splitter.for_each_domain_range(range, &body)
                });
            }
        }
        self.snapshot.max_diameter = f64::from_bits(max_diameter.into_inner());
        self.snapshot.bounds = (total > 0).then(|| bounds.into_inner().unwrap());
    }

    /// The parallel agent-operation phase: behaviors + mechanics.
    fn run_agent_ops(&mut self, radius: f64) {
        let sizes = self.rm.domain_sizes();
        let offsets = self.rm.offsets();
        let num_domains = sizes.len();
        // Split-borrow agents (&mut via raw ptr), flags (&mut via raw ptr),
        // and violations (&, atomics) per domain.
        let mut agent_ptrs = Vec::with_capacity(num_domains);
        let mut flag_ptrs = Vec::with_capacity(num_domains);
        let mut violation_slices = Vec::with_capacity(num_domains);
        for store in self.rm.domains.iter_mut() {
            agent_ptrs.push(SendMut::new(store.agents.as_mut_ptr()));
            flag_ptrs.push(SendMut::new(store.flags.as_mut_ptr()));
            violation_slices.push(&store.violations[..]);
        }
        let violations = ViolationTable {
            slices: violation_slices,
            offsets: &offsets,
        };
        let mech = MechanicsConfig {
            force: self.force,
            search_radius: radius,
            dt: self.param.simulation_time_step,
            max_displacement: self.param.simulation_max_displacement,
            detect_static: self.param.detect_static_agents,
            static_threshold: self.param.static_displacement_threshold,
            box_batched: self.param.box_batched_mechanics,
        };
        let ctxs_ptr = SendMut::new(self.ctxs.as_mut_ptr());
        let env = &*self.env;
        // Sharded execution: the parallel loop below is *identical* to the
        // single-engine one (same splitter, same blocks, same per-thread
        // contexts) — only the per-agent neighbor-query target differs.
        // Each agent queries its owning shard's windowed grid through a
        // `ShardView` that remaps shard-local hits back to global indices,
        // so kernels (and FP summation order) never see the partition.
        let shard_state = self
            .sharded
            .as_ref()
            .filter(|s| s.active_iteration == self.iteration);
        let snapshot = &self.snapshot;
        let mm = &self.mm;
        let diffusion = &self.diffusion[..];
        let enable_mechanics = self.param.enable_mechanics;
        let seed = self.param.seed;
        let dt = self.param.simulation_time_step;
        let iteration = self.iteration;
        let offsets_ref = &offsets;
        let agent_ptrs = &agent_ptrs;
        let flag_ptrs = &flag_ptrs;
        let violations_ref = &violations;
        let mech_ref = &mech;

        let body =
            move |worker: bdm_numa::WorkerCtx, domain: usize, range: std::ops::Range<usize>| {
                // SAFETY: each worker accesses only its own execution context.
                let exec = unsafe { ctxs_ptr.get_mut(worker.thread_id) };
                // The mechanics neighbor buffer persists across blocks and
                // iterations on this thread (zero allocation in steady
                // state); it is taken out of the context so the context can
                // be mutably borrowed by the agent context below.
                let mut neighbor_scratch = std::mem::take(&mut exec.mech_neighbors);
                for i in range {
                    // SAFETY: each (domain, i) is processed by exactly one task.
                    let agent_box = unsafe { agent_ptrs[domain].get_mut(i) };
                    let flags = unsafe { flag_ptrs[domain].get_mut(i) };
                    let agent: &mut dyn Agent = &mut **agent_box;
                    let global = offsets_ref[domain] + i;
                    let uid = agent.uid();
                    let shard = shard_state.map(|st| {
                        let s = st.owner[global] as usize;
                        ShardView {
                            grid: &st.grids[s],
                            members: &st.clouds[s].members,
                            positions: &st.clouds[s].positions,
                            self_local: st.local_of[global],
                            shard: s as u32,
                        }
                    });
                    let mut actx = AgentContext {
                        exec,
                        env,
                        snapshot,
                        shard,
                        mm,
                        diffusion,
                        alloc_domain: worker.domain,
                        self_handle: crate::agent::AgentHandle::new(domain, i),
                        self_global: global,
                        dt,
                        iteration,
                        rng: agent_rng(seed, uid, iteration),
                        uid_seq: 0,
                        self_uid: uid,
                    };
                    run_behaviors(agent, &mut actx);
                    if enable_mechanics && agent.participates_in_mechanics() {
                        run_mechanics(
                            agent,
                            flags,
                            global,
                            violations_ref,
                            &mut actx,
                            mech_ref,
                            &mut neighbor_scratch,
                        );
                    }
                }
                exec.mech_neighbors = neighbor_scratch;
            };
        let block = self.param.iteration_block_size;
        if self.param.numa_aware_iteration {
            self.pool.numa_for(&sizes, block, &body);
        } else {
            let total: usize = sizes.iter().sum();
            let splitter = GlobalSplitter(&offsets);
            self.pool.parallel_for(total, block, &|w, range| {
                splitter.for_each_domain_range(range, &|domain, r| body(w, domain, r))
            });
        }
    }

    /// Applies queued secretions to the diffusion grids.
    fn apply_secretions(&mut self) {
        for ctx in &mut self.ctxs {
            for (grid, pos, amount) in ctx.secretions.drain(..) {
                self.diffusion[grid].increase_concentration(pos, amount);
            }
        }
    }

    /// Applies deferred mutations of other agents (serial; rare).
    fn apply_deferred(&mut self) {
        for t in 0..self.ctxs.len() {
            let deferred = std::mem::take(&mut self.ctxs[t].deferred);
            for (handle, f) in deferred {
                f(self.rm.agent_mut(handle));
            }
        }
        // Fold per-iteration mechanics counters into the aggregate stats.
        let mut nonfinite = 0u64;
        for ctx in &mut self.ctxs {
            self.stats.force_calculations += std::mem::take(&mut ctx.force_calculations);
            self.stats.batched_force_queries += std::mem::take(&mut ctx.batched_force_queries);
            self.stats.static_skipped += std::mem::take(&mut ctx.static_skipped);
            nonfinite += std::mem::take(&mut ctx.nonfinite_forces);
        }
        // The mechanics kernel counts non-finite force accumulations instead
        // of aborting (the old hot-loop assert); surface them as typed
        // violations so release builds detect what debug builds used to
        // crash on.
        if nonfinite > 0 {
            self.stats.violations_detected += nonfinite;
            self.health.record(HealthViolation {
                kind: HealthViolationKind::NonFiniteForce,
                iteration: self.iteration,
                agent: None,
                detail: format!("{nonfinite} non-finite force accumulation(s)"),
            });
        }
    }
}

/// Builds the default operation pipeline of Algorithm 1 from a parameter
/// set. The optimization switches of [`Param`] (and thus
/// [`OptLevel::apply_opt_level`](crate::param::OptLevel)) map onto the
/// built-in operations: `agent_sort_frequency` becomes the `agent_sorting`
/// op's frequency/enablement, `detect_static_agents` and
/// `enable_mechanics` configure the `agent_ops` kernel, and
/// `parallel_add_remove` configures `teardown`.
fn default_scheduler(param: &Param) -> Scheduler {
    let mut scheduler = Scheduler::new();
    // Between snapshot and index rebuild: the exchange partitions the
    // fresh snapshot; `environment_update` then builds the K shard grids
    // instead of the global index. Registered for every configuration (a
    // no-op at K == 1) so the pipeline shape — and hence the checkpoint's
    // scheduler section — is independent of the shard count and a
    // checkpoint restores into any K.
    scheduler.add_op(SnapshotOp);
    scheduler.add_op(HaloExchangeOp);
    scheduler.add_op(EnvironmentOp);
    scheduler.add_op(AgentOp);
    scheduler.add_op_in_bucket(Box::new(DiffusionOp), builtin::STANDALONE_BUCKET);
    scheduler.add_op(TeardownOp);
    scheduler.add_op(SortingOp);
    match param.agent_sort_frequency {
        Some(freq) if freq > 0 => {
            scheduler.set_frequency(builtin::AGENT_SORTING, freq as u64);
        }
        _ => {
            scheduler.set_enabled(builtin::AGENT_SORTING, false);
        }
    }
    if let Some(health) = &param.health {
        // Last Post stage: scans the committed state of the iteration.
        // Driven by Param so checkpoint restore re-creates the same
        // pipeline from the restored parameters alone.
        scheduler.add_op(HealthCheckOp {
            frequency: health.frequency.max(1),
        });
    }
    scheduler
}

/// Translates global-index ranges into per-domain ranges (used when NUMA
/// awareness is off and the flat iterator hands out global ranges).
struct GlobalSplitter<'a>(&'a [usize]);

impl GlobalSplitter<'_> {
    fn for_each_domain_range(
        &self,
        range: std::ops::Range<usize>,
        f: &dyn Fn(usize, std::ops::Range<usize>),
    ) {
        let offsets = self.0;
        let mut start = range.start;
        while start < range.end {
            let mut d = 0;
            while d + 1 < offsets.len() - 1 && offsets[d + 1] <= start {
                d += 1;
            }
            let local_start = start - offsets[d];
            let domain_end = offsets[d + 1];
            let end = range.end.min(domain_end);
            f(d, local_start..local_start + (end - start));
            start = end;
        }
    }
}
