//! Agent sorting and balancing (paper Section 4.2, Figure 3).
//!
//! Rewrites the resource manager so that agents close in 3-D space become
//! close in memory, and rebalances them across NUMA domains proportionally
//! to each domain's thread count. The algorithm exploits the uniform grid:
//!
//! 1. Enumerate the grid boxes in Morton order using the linear-time
//!    gap-offset table of `bdm-sfc` (Figure 3 D/E) — no sorting, no visits
//!    to out-of-domain codes.
//! 2. Count agents per box, prefix-sum, and partition agents among NUMA
//!    domains proportionally to their thread counts (Figure 3 F).
//! 3. Copy every agent into **freshly allocated pool memory** of its target
//!    domain in the new order (Figure 3 G) — the copy is what turns spatial
//!    locality into allocation locality.
//!
//! With `use_extra_memory`, all old agent copies are kept until the step
//! finished (better layout, more peak memory); otherwise each old agent is
//! freed immediately after its copy is made (paper Section 4.2, last
//! paragraph of the algorithm description).

use std::sync::atomic::AtomicU8;

use bdm_alloc::MemoryManager;
use bdm_env::UniformGridEnvironment;
use bdm_numa::{NumaThreadPool, NumaTopology};
use bdm_sfc::{hilbert3_encode, CurveKind, GapOffsets};
use bdm_util::prefix_sum::prefix_sum_exclusive;
use bdm_util::send_ptr::SendMut;

use crate::agent::AgentBox;
use crate::resource_manager::{DomainStore, ResourceManager, StaticFlags};

/// Sorts and balances all agents; returns the number of agents moved
/// (= total agents) or 0 if the environment has no grid to sort by.
pub(crate) fn sort_and_balance(
    rm: &mut ResourceManager,
    grid: &UniformGridEnvironment,
    mm: &MemoryManager,
    pool: &NumaThreadPool,
    topology: &NumaTopology,
    curve: CurveKind,
    use_extra_memory: bool,
) -> usize {
    let dims = grid.dims();
    let total: usize = rm.num_agents();
    if total == 0 || dims.contains(&0) {
        return 0;
    }
    let offsets = rm.offsets();

    // --- Step 1 (Figure 3 D/E): boxes in space-filling-curve order. ---
    // Morton: linear time via the gap-offset DFS. Hilbert: the ablation of
    // Section 4.2 — no gap-offset analogue exists, so enumeration costs an
    // explicit O(B log B) sort, which is part of why the paper chose Morton.
    let flats: Vec<usize> = match curve {
        CurveKind::Morton => {
            let gap = GapOffsets::compute_3d(dims[0], dims[1], dims[2]);
            gap.iter_coords()
                .map(|(x, y, z)| grid.flat_index([x, y, z]))
                .collect()
        }
        CurveKind::Hilbert => {
            let bits = dims
                .iter()
                .map(|&d| d.next_power_of_two().trailing_zeros())
                .max()
                .unwrap_or(1)
                .max(1);
            let mut keyed: Vec<(u64, usize)> =
                Vec::with_capacity(dims.iter().map(|&d| d as usize).product());
            for z in 0..dims[2] {
                for y in 0..dims[1] {
                    for x in 0..dims[0] {
                        keyed.push((hilbert3_encode(x, y, z, bits), grid.flat_index([x, y, z])));
                    }
                }
            }
            keyed.sort_unstable_by_key(|&(code, _)| code);
            keyed.into_iter().map(|(_, flat)| flat).collect()
        }
    };

    // --- Step 2 (Figure 3 F): agents per box + prefix sum + partition. ---
    // On dense clouds the grid's SoA cache *is* the box-grouped order the
    // sort needs (its counting sort already grouped the agents), so both
    // passes read it directly — O(1) counts and slice copies — instead of
    // chasing the per-box linked lists, which the lazy rebuild does not
    // even materialize unless the cloud is sparse.
    let use_soa = grid.soa_active();
    let mut counts = box_counts(grid, &flats, pool, use_soa);
    // A real assert, not a debug one: the unsafe copy loop below relies on
    // `new_order` being a permutation of all current agent indices, which
    // only holds if the grid was rebuilt after the last add/remove commit.
    let counted = prefix_sum_exclusive(&mut counts); // counts[b] = start offset
    assert_eq!(
        counted, total,
        "agent sorting requires a fresh environment index: the grid indexes \
         {counted} agents but the resource manager holds {total}"
    );

    // New order: global old indices arranged by Morton-ordered boxes.
    let new_order = box_grouped_order(grid, &flats, &counts, total, pool, use_soa);

    // Domain shares proportional to thread counts (Figure 3 F: "each NUMA
    // domain receives a share corresponding to its number of threads").
    let num_domains = topology.num_domains();
    let total_threads = topology.num_threads();
    let mut bounds = Vec::with_capacity(num_domains + 1);
    bounds.push(0usize);
    let mut acc_threads = 0usize;
    for d in 0..num_domains {
        acc_threads += topology.threads_in_domain(d);
        bounds.push(total * acc_threads / total_threads);
    }
    debug_assert_eq!(*bounds.last().unwrap(), total);

    // --- Step 3 (Figure 3 G): copy agents into fresh memory, new order. ---
    // Old stores are wrapped in Option so the no-extra-memory mode can free
    // each source immediately after it was copied.
    let mut old_domains: Vec<Vec<Option<AgentBox>>> = rm
        .domains
        .iter_mut()
        .map(|store| store.agents.drain(..).map(Some).collect())
        .collect();
    let old_flags: Vec<Vec<StaticFlags>> = rm
        .domains
        .iter_mut()
        .map(|store| std::mem::take(&mut store.flags))
        .collect();
    let old_violations: Vec<Vec<AtomicU8>> = rm
        .domains
        .iter_mut()
        .map(|store| std::mem::take(&mut store.violations))
        .collect();

    let split = |global: usize| -> (usize, usize) {
        let mut d = 0;
        while d + 1 < offsets.len() - 1 && offsets[d + 1] <= global {
            d += 1;
        }
        (d, global - offsets[d])
    };

    // Build each target domain in parallel: sizes are known, so allocate
    // uninitialized vectors and fill them with the NUMA-aware iterator (the
    // copying thread belongs to the target domain, so pool allocations land
    // on the right virtual node).
    let sizes: Vec<usize> = (0..num_domains)
        .map(|d| bounds[d + 1] - bounds[d])
        .collect();
    let mut new_stores: Vec<DomainStore> = sizes
        .iter()
        .map(|&n| {
            let mut s = DomainStore::default();
            s.agents.reserve(n);
            s.flags.reserve(n);
            s.violations.reserve(n);
            s
        })
        .collect();
    {
        let agent_ptrs: Vec<SendMut<AgentBox>> = new_stores
            .iter_mut()
            .map(|s| SendMut::new(s.agents.as_mut_ptr()))
            .collect();
        let flag_ptrs: Vec<SendMut<StaticFlags>> = new_stores
            .iter_mut()
            .map(|s| SendMut::new(s.flags.as_mut_ptr()))
            .collect();
        let viol_ptrs: Vec<SendMut<AtomicU8>> = new_stores
            .iter_mut()
            .map(|s| SendMut::new(s.violations.as_mut_ptr()))
            .collect();
        let old_ptrs: Vec<SendMut<Option<AgentBox>>> = old_domains
            .iter_mut()
            .map(|v| SendMut::new(v.as_mut_ptr()))
            .collect();
        let new_order = &new_order;
        let bounds = &bounds;
        let old_flags = &old_flags;
        let old_violations = &old_violations;
        pool.numa_for(&sizes, 1024, &|_wctx, domain, range| {
            for k in range {
                let global_old = new_order[bounds[domain] + k] as usize;
                let (od, oi) = split(global_old);
                // SAFETY: each old index appears exactly once in new_order,
                // so this Option is taken by exactly one task.
                let old_box = unsafe { (*old_ptrs[od].ptr_at(oi)).take().expect("unique take") };
                let cloned = old_box.clone_box(mm, domain);
                if !use_extra_memory {
                    // Free the obsolete copy immediately (lower peak memory,
                    // interleaved allocator traffic).
                    drop(old_box);
                } else {
                    // Keep it alive until the whole step finished: put it
                    // back; the batch drop happens below.
                    // SAFETY: same unique slot as above.
                    unsafe { *old_ptrs[od].ptr_at(oi) = Some(old_box) };
                }
                // SAFETY: slot k of the target domain written exactly once.
                unsafe {
                    agent_ptrs[domain].write(k, cloned);
                    flag_ptrs[domain].write(k, old_flags[od][oi]);
                    viol_ptrs[domain].write(
                        k,
                        AtomicU8::new(
                            old_violations[od][oi].load(std::sync::atomic::Ordering::Relaxed),
                        ),
                    );
                }
            }
        });
        for (s, &n) in new_stores.iter_mut().zip(&sizes) {
            // SAFETY: all n slots initialized by the loop above.
            unsafe {
                s.agents.set_len(n);
                s.flags.set_len(n);
                s.violations.set_len(n);
            }
        }
    }
    // With extra memory, all old copies die here, after the copy finished.
    drop(old_domains);
    rm.domains = new_stores;
    rm.generation += 1;
    total
}

/// Agents per box, in `flats` order — read from the SoA cache's offset
/// table (O(1) per box) or counted by walking the per-box linked lists.
fn box_counts(
    grid: &UniformGridEnvironment,
    flats: &[usize],
    pool: &NumaThreadPool,
    use_soa: bool,
) -> Vec<usize> {
    let mut counts: Vec<usize> = vec![0; flats.len()];
    let counts_ptr = SendMut::new(counts.as_mut_ptr());
    pool.parallel_for(flats.len(), 256, &|_c, range| {
        for b in range {
            let n = if use_soa {
                grid.box_slots(flats[b]).expect("SoA cache active").len()
            } else {
                let mut n = 0usize;
                grid.for_each_in_box(flats[b], &mut |_| n += 1);
                n
            };
            // SAFETY: slot b written exactly once.
            unsafe { counts_ptr.write(b, n) };
        }
    });
    counts
}

/// Old global agent indices grouped by the boxes of `flats`, box `b`'s
/// agents starting at `offsets[b]` — copied from the SoA cache's sorted
/// index runs or gathered from the linked lists. Both sources group the
/// same agents into the same ranges; only the within-box order differs
/// (ascending agent index vs. reverse insertion order), which the sort is
/// insensitive to.
fn box_grouped_order(
    grid: &UniformGridEnvironment,
    flats: &[usize],
    offsets: &[usize],
    total: usize,
    pool: &NumaThreadPool,
    use_soa: bool,
) -> Vec<u32> {
    let mut new_order: Vec<u32> = vec![0; total];
    let order_ptr = SendMut::new(new_order.as_mut_ptr());
    pool.parallel_for(flats.len(), 256, &|_c, range| {
        for b in range {
            let mut w = offsets[b];
            if use_soa {
                for slot in grid.box_slots(flats[b]).expect("SoA cache active") {
                    // SAFETY: box ranges [offsets[b], offsets[b+1]) are disjoint.
                    unsafe { order_ptr.write(w, slot.index) };
                    w += 1;
                }
            } else {
                grid.for_each_in_box(flats[b], &mut |agent| {
                    // SAFETY: box ranges [offsets[b], offsets[b+1]) are disjoint.
                    unsafe { order_ptr.write(w, agent) };
                    w += 1;
                });
            }
        }
    });
    new_order
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_env::{Environment, SliceCloud};
    use bdm_util::{Real3, SimRng};

    /// Grid over a dense random cloud, built under the standalone default
    /// hint so BOTH structures (linked lists and SoA cache) are live.
    fn dense_grid() -> (UniformGridEnvironment, usize) {
        let mut rng = SimRng::new(2024);
        let points: Vec<Real3> = (0..700).map(|_| rng.point_in_cube(0.0, 22.0)).collect();
        let n = points.len();
        let mut grid = UniformGridEnvironment::new();
        grid.update(&SliceCloud(&points), 3.0);
        assert!(grid.soa_active() && grid.lists_active());
        (grid, n)
    }

    fn morton_flats(grid: &UniformGridEnvironment) -> Vec<usize> {
        let dims = grid.dims();
        let gap = GapOffsets::compute_3d(dims[0], dims[1], dims[2]);
        gap.iter_coords()
            .map(|(x, y, z)| grid.flat_index([x, y, z]))
            .collect()
    }

    #[test]
    fn soa_and_list_paths_agree_on_counts_and_grouping() {
        let (grid, total) = dense_grid();
        let pool = NumaThreadPool::new(NumaTopology::new(2, 2));
        let flats = morton_flats(&grid);

        let counts_soa = box_counts(&grid, &flats, &pool, true);
        let counts_list = box_counts(&grid, &flats, &pool, false);
        assert_eq!(counts_soa, counts_list);

        let mut offsets = counts_soa;
        let counted = prefix_sum_exclusive(&mut offsets);
        assert_eq!(counted, total);

        let order_soa = box_grouped_order(&grid, &flats, &offsets, total, &pool, true);
        let order_list = box_grouped_order(&grid, &flats, &offsets, total, &pool, false);
        // Same Morton-ordered grouping from both sources: every box range
        // holds the same agent set (within-box order may differ — the SoA
        // run is ascending by agent index, the list is reverse insertion).
        for b in 0..flats.len() {
            let end = if b + 1 < flats.len() {
                offsets[b + 1]
            } else {
                total
            };
            let mut seg_soa = order_soa[offsets[b]..end].to_vec();
            let mut seg_list = order_list[offsets[b]..end].to_vec();
            seg_soa.sort_unstable();
            seg_list.sort_unstable();
            assert_eq!(seg_soa, seg_list, "box {b} groups different agents");
        }
        // And each is a permutation of all agents.
        let mut sorted = order_soa;
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &a)| a as usize == i));
    }

    #[test]
    fn soa_order_within_box_is_ascending_agent_index() {
        let (grid, _) = dense_grid();
        for flat in 0..grid.num_boxes() {
            let slots = grid.box_slots(flat).expect("SoA active");
            assert!(
                slots.windows(2).all(|w| w[0].index < w[1].index),
                "box {flat} not ascending: {:?}",
                slots.iter().map(|s| s.index).collect::<Vec<_>>()
            );
        }
    }
}
