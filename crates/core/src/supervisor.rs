//! Health sentinels: cheap, typed runtime state validation.
//!
//! A long-running simulation must *detect* corrupted state instead of either
//! aborting the process (debug asserts) or silently integrating NaNs into
//! every downstream iteration (release builds). This module provides the
//! pieces of that first line of defense:
//!
//! * [`HealthPolicy`] — what to scan and how often, carried in
//!   [`Param::health`](crate::param::Param::health) so checkpoint restore
//!   re-creates the exact same pipeline (the sentinel op is registered by
//!   `default_scheduler` whenever the policy is present).
//! * [`HealthViolation`] / [`HealthViolationKind`] — a typed finding: which
//!   agent, which field, which iteration — instead of a panic.
//! * The built-in `health_check` [`Operation`]
//!   (name [`builtin::HEALTH_CHECK`]),
//!   which runs
//!   [`Simulation::run_health_check`](crate::Simulation::run_health_check)
//!   at the configured frequency
//!   as the last `Post` stage of the pipeline.
//! * Process-global *write sentinels* ([`write_sentinel_counts`]) that count
//!   non-finite position / invalid diameter writes at the setter itself —
//!   the always-on replacement for the release-silent `debug_assert!`s that
//!   previously guarded [`AgentBase::set_position`](crate::agent::AgentBase::set_position)
//!   and [`AgentBase::set_diameter`](crate::agent::AgentBase::set_diameter).
//!
//! The scan itself mutates nothing step-relevant (it only appends to the
//! violation log and bumps [`SimStats`](crate::simulation::SimStats)
//! counters), so enabling the sentinel never perturbs bit-reproducibility.

use std::sync::atomic::{AtomicU64, Ordering};

use bdm_util::Real3;

use crate::context::NeighborAccess;
use crate::scheduler::{builtin, OpKind, Operation, SimulationCtx};

/// Maximum number of [`HealthViolation`] records kept per simulation. The
/// counters in [`SimStats`](crate::simulation::SimStats) keep exact totals;
/// the per-violation detail is capped so a mass corruption (10⁶ NaN agents)
/// does not allocate a gigabyte of diagnostics.
pub const MAX_RECORDED_VIOLATIONS: usize = 128;

/// What the health sentinel scans for and how often.
///
/// Stored in [`Param::health`](crate::param::Param::health): when present,
/// the default scheduler registers the built-in `health_check` operation
/// with [`HealthPolicy::frequency`]. The policy travels through checkpoints
/// (PARAM section), so a restored simulation re-creates the same sentinel.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// Run the scan on every iteration that is a multiple of this value
    /// (iterations count from 1; clamped to ≥ 1 at registration).
    pub frequency: u64,
    /// When set, any agent position outside the axis-aligned box
    /// `[min, max]` is reported as [`HealthViolationKind::OutOfBounds`].
    pub bounds: Option<(Real3, Real3)>,
    /// When set, a total agent count above this value is reported as
    /// [`HealthViolationKind::AgentExplosion`].
    pub max_agents: Option<u64>,
    /// Scan every diffusion grid's concentration array for non-finite
    /// values. On by default; the scan is a contiguous `f64` sweep.
    pub check_diffusion: bool,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            frequency: 8,
            bounds: None,
            max_agents: None,
            check_diffusion: true,
        }
    }
}

impl HealthPolicy {
    /// A policy that scans every `frequency` iterations with all structural
    /// checks (finiteness, diffusion) and no bounds/count limits.
    pub fn every(frequency: u64) -> HealthPolicy {
        HealthPolicy {
            frequency: frequency.max(1),
            ..HealthPolicy::default()
        }
    }
}

/// The field/invariant a [`HealthViolation`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthViolationKind {
    /// An agent position with a non-finite coordinate.
    NonFinitePosition,
    /// An agent diameter that is NaN, infinite, or negative.
    InvalidDiameter,
    /// An agent position outside [`HealthPolicy::bounds`].
    OutOfBounds,
    /// A non-finite value in a diffusion grid's concentration array.
    NonFiniteConcentration,
    /// Total agent count above [`HealthPolicy::max_agents`].
    AgentExplosion,
    /// A non-finite force/displacement produced by the mechanics kernel
    /// (counted per accumulation window by the worker contexts).
    NonFiniteForce,
}

impl HealthViolationKind {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            HealthViolationKind::NonFinitePosition => "non-finite position",
            HealthViolationKind::InvalidDiameter => "invalid diameter",
            HealthViolationKind::OutOfBounds => "out of bounds",
            HealthViolationKind::NonFiniteConcentration => "non-finite concentration",
            HealthViolationKind::AgentExplosion => "agent explosion",
            HealthViolationKind::NonFiniteForce => "non-finite force",
        }
    }
}

/// One typed finding of the health sentinel: what went wrong, where, when.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthViolation {
    /// The violated invariant.
    pub kind: HealthViolationKind,
    /// Iteration the scan ran on (iterations count from 1).
    pub iteration: u64,
    /// Uid of the offending agent, when the violation is agent-scoped.
    pub agent: Option<u64>,
    /// Free-form detail (the offending value, grid/box index, counts).
    pub detail: String,
}

impl std::fmt::Display for HealthViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at iteration {}", self.kind.label(), self.iteration)?;
        if let Some(uid) = self.agent {
            write!(f, " (agent uid {uid})")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

/// Per-simulation violation log with a bounded record buffer.
///
/// Exact totals live in [`SimStats`](crate::simulation::SimStats); this
/// keeps the first [`MAX_RECORDED_VIOLATIONS`] detailed records so a
/// supervisor (or a test) can see *what* failed, not just *that* something
/// failed.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    violations: Vec<HealthViolation>,
}

impl HealthMonitor {
    /// Appends a violation record, dropping detail past the cap.
    pub fn record(&mut self, v: HealthViolation) {
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(v);
        }
    }

    /// The recorded violations, oldest first.
    pub fn violations(&self) -> &[HealthViolation] {
        &self.violations
    }

    /// Drains the recorded violations.
    pub fn take(&mut self) -> Vec<HealthViolation> {
        std::mem::take(&mut self.violations)
    }

    /// Whether no violations are recorded.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Write sentinels: the always-on replacement for the setter debug_asserts.
// Process-global because an `AgentBase` setter has no path to its owning
// simulation; the per-sim scan remains the authoritative detector, these
// counters make the *write itself* observable (and keep release builds from
// ignoring what debug builds used to abort on).
// ---------------------------------------------------------------------------

static NONFINITE_POSITION_WRITES: AtomicU64 = AtomicU64::new(0);
static INVALID_DIAMETER_WRITES: AtomicU64 = AtomicU64::new(0);

/// Counts a non-finite position write (called by
/// [`AgentBase::set_position`](crate::agent::AgentBase::set_position)).
#[cold]
pub(crate) fn flag_nonfinite_position() {
    NONFINITE_POSITION_WRITES.fetch_add(1, Ordering::Relaxed);
}

/// Counts an invalid (non-finite or negative) diameter write (called by
/// [`AgentBase::set_diameter`](crate::agent::AgentBase::set_diameter)).
#[cold]
pub(crate) fn flag_invalid_diameter() {
    INVALID_DIAMETER_WRITES.fetch_add(1, Ordering::Relaxed);
}

/// Cumulative process-wide `(non-finite position, invalid diameter)` write
/// counts since process start. Monotonic; shared by every simulation in the
/// process, so treat it as a diagnostic signal, not a per-run statistic —
/// per-run detection is [`Simulation::run_health_check`]'s job.
///
/// [`Simulation::run_health_check`]: crate::simulation::Simulation::run_health_check
pub fn write_sentinel_counts() -> (u64, u64) {
    (
        NONFINITE_POSITION_WRITES.load(Ordering::Relaxed),
        INVALID_DIAMETER_WRITES.load(Ordering::Relaxed),
    )
}

/// The built-in `health_check` operation: runs the sentinel scan at the
/// policy frequency as the last `Post` stage. Registered by the default
/// scheduler when [`Param::health`](crate::param::Param::health) is set.
pub(crate) struct HealthCheckOp {
    pub(crate) frequency: u64,
}

impl Operation for HealthCheckOp {
    fn name(&self) -> &str {
        builtin::HEALTH_CHECK
    }
    fn kind(&self) -> OpKind {
        OpKind::Post
    }
    fn frequency(&self) -> u64 {
        self.frequency
    }
    fn neighbor_access(&self) -> NeighborAccess {
        NeighborAccess::NONE
    }
    fn run(&mut self, ctx: &mut SimulationCtx<'_>) {
        ctx.sim.run_health_check();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_every_clamps_frequency() {
        assert_eq!(HealthPolicy::every(0).frequency, 1);
        assert_eq!(HealthPolicy::every(5).frequency, 5);
        assert!(HealthPolicy::default().check_diffusion);
    }

    #[test]
    fn monitor_caps_recorded_detail() {
        let mut m = HealthMonitor::default();
        for i in 0..(MAX_RECORDED_VIOLATIONS + 10) {
            m.record(HealthViolation {
                kind: HealthViolationKind::NonFinitePosition,
                iteration: i as u64,
                agent: Some(i as u64),
                detail: String::new(),
            });
        }
        assert_eq!(m.violations().len(), MAX_RECORDED_VIOLATIONS);
        let drained = m.take();
        assert_eq!(drained.len(), MAX_RECORDED_VIOLATIONS);
        assert!(m.is_empty());
    }

    #[test]
    fn violation_display_names_agent_and_iteration() {
        let v = HealthViolation {
            kind: HealthViolationKind::InvalidDiameter,
            iteration: 7,
            agent: Some(42),
            detail: "-1".to_string(),
        };
        let s = v.to_string();
        assert!(s.contains("invalid diameter"), "{s}");
        assert!(s.contains("iteration 7"), "{s}");
        assert!(s.contains("uid 42"), "{s}");
    }

    #[test]
    fn write_sentinels_are_monotonic() {
        let (p0, d0) = write_sentinel_counts();
        flag_nonfinite_position();
        flag_invalid_diameter();
        let (p1, d1) = write_sentinel_counts();
        assert!(p1 > p0);
        assert!(d1 > d0);
    }
}
