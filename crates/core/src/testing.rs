//! Differential-conformance test support.
//!
//! The checkpoint-replay, determinism, and cross-backend suites all need the
//! same two primitives: capture "everything step-relevant" from a running
//! [`Simulation`] into a comparable value, and — when two captures differ —
//! name the *first* diverging agent instead of dumping two megabyte-sized
//! structures. This module is the single definition of that state so the
//! test suites and the checkpoint crate cannot drift apart.
//!
//! Two comparison modes:
//!
//! * [`first_divergence`] — **bitwise**: every float is compared by its bit
//!   pattern. This is the contract checkpoint restore must meet (restore →
//!   step N ≡ straight-run step N, exactly).
//! * [`first_divergence_within`] — **tolerance**: different environment
//!   backends enumerate neighbors in different orders, so force summation
//!   order (and hence the last few mantissa bits) legitimately differs.
//!   Discrete state (uid sets, payloads, type tags, counts) must still match
//!   exactly; positions and diameters may differ by a small epsilon.

use std::collections::BTreeMap;

use crate::simulation::Simulation;

/// Step-relevant state of one agent, floats as raw bit patterns.
///
/// Deliberately excludes the agent's NUMA domain: a newborn agent lands on
/// the domain of whichever work-stealing worker ran its parent, so placement
/// is scheduling-dependent even between two identical straight runs. The
/// engine's determinism contract (and therefore this record) covers agent
/// *state*, which is placement-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentRecord {
    /// Position, each coordinate as `f64::to_bits`.
    pub position: [u64; 3],
    /// Diameter as `f64::to_bits`.
    pub diameter: u64,
    /// Payload word (type/state encoding, readable by neighbors).
    pub payload: u64,
    /// The agent's [`checkpoint_tag`](crate::Agent::checkpoint_tag).
    pub tag: String,
    /// Type-specific state from [`checkpoint_write`](crate::Agent::checkpoint_write).
    pub body: Vec<u8>,
    /// Per-behavior `(checkpoint_tag-or-name, checkpoint_write bytes)`.
    pub behaviors: Vec<(String, Vec<u8>)>,
    /// Static-region detection flag (Section 5).
    pub is_static: bool,
    /// Iteration the agent was committed in.
    pub created_iter: u64,
    /// Pending displacement-violation flag (consumed next iteration).
    pub violation: bool,
}

/// Bitwise state of one diffusion grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridRecord {
    /// Substance name.
    pub name: String,
    /// Boxes per dimension.
    pub resolution: usize,
    /// Concentrations as `f64::to_bits`, x fastest.
    pub concentrations: Vec<u64>,
}

/// Everything step-relevant, captured from a simulation at rest
/// (between [`Simulation::step`] calls).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFingerprint {
    /// Completed iterations.
    pub iteration: u64,
    /// Next agent uid to be handed out.
    pub uid_counter: u64,
    /// Agents keyed by uid.
    pub agents: BTreeMap<u64, AgentRecord>,
    /// Diffusion grids in registration order.
    pub grids: Vec<GridRecord>,
}

/// Captures the step-relevant state of `sim`.
pub fn fingerprint(sim: &Simulation) -> SimFingerprint {
    let rm = sim.resource_manager();
    let mut agents = BTreeMap::new();
    sim.for_each_agent(|h, a| {
        let p = a.position();
        let mut body = bdm_util::ByteWriter::new();
        a.checkpoint_write(&mut body);
        let behaviors = a
            .base()
            .behaviors()
            .iter()
            .map(|b| {
                let mut bytes = bdm_util::ByteWriter::new();
                b.checkpoint_write(&mut bytes);
                let tag = b.checkpoint_tag();
                let tag = if tag.is_empty() { b.name() } else { tag };
                (tag.to_string(), bytes.into_bytes())
            })
            .collect();
        let flags = rm.static_flags(h);
        agents.insert(
            a.uid().0,
            AgentRecord {
                position: [p.x().to_bits(), p.y().to_bits(), p.z().to_bits()],
                diameter: a.diameter().to_bits(),
                payload: a.payload(),
                tag: a.checkpoint_tag().to_string(),
                body: body.into_bytes(),
                behaviors,
                is_static: flags.is_static,
                created_iter: flags.created_iter,
                violation: rm.violation(h.domain as usize, h.index as usize),
            },
        );
    });
    let grids = (0..sim.num_diffusion_grids())
        .map(|i| {
            let g = sim.diffusion_grid(i);
            GridRecord {
                name: g.name().to_string(),
                resolution: g.resolution(),
                concentrations: g.concentrations().iter().map(|c| c.to_bits()).collect(),
            }
        })
        .collect();
    SimFingerprint {
        iteration: sim.iteration(),
        uid_counter: sim.uid_counter(),
        agents,
        grids,
    }
}

/// Bitwise comparison: returns a description of the first divergence between
/// `a` and `b` (naming the first diverging agent uid and field), or `None`
/// when the fingerprints are identical.
pub fn first_divergence(a: &SimFingerprint, b: &SimFingerprint) -> Option<String> {
    if a.iteration != b.iteration {
        return Some(format!("iteration: {} vs {}", a.iteration, b.iteration));
    }
    if a.uid_counter != b.uid_counter {
        return Some(format!(
            "uid_counter: {} vs {}",
            a.uid_counter, b.uid_counter
        ));
    }
    if let Some(d) = uid_set_divergence(a, b) {
        return Some(d);
    }
    for (idx, (uid, ra)) in a.agents.iter().enumerate() {
        let rb = &b.agents[uid];
        if ra != rb {
            let field = if ra.position != rb.position {
                format!(
                    "position {:?} vs {:?}",
                    decode3(ra.position),
                    decode3(rb.position)
                )
            } else if ra.diameter != rb.diameter {
                format!(
                    "diameter {} vs {}",
                    f64::from_bits(ra.diameter),
                    f64::from_bits(rb.diameter)
                )
            } else if ra.payload != rb.payload {
                format!("payload {} vs {}", ra.payload, rb.payload)
            } else if ra.body != rb.body {
                format!("agent body bytes {:?} vs {:?}", ra.body, rb.body)
            } else if ra.behaviors != rb.behaviors {
                format!("behaviors {:?} vs {:?}", ra.behaviors, rb.behaviors)
            } else {
                format!("{ra:?} vs {rb:?}")
            };
            return Some(format!("agent #{idx} uid {uid}: {field}"));
        }
    }
    grid_divergence(a, b, 0.0)
}

/// Tolerance comparison for cross-backend runs: discrete state must match
/// exactly; positions, diameters, and concentrations may differ by `tol`.
/// Returns a description of the first divergence (agent index and uid), or
/// `None` if the states agree.
pub fn first_divergence_within(a: &SimFingerprint, b: &SimFingerprint, tol: f64) -> Option<String> {
    if a.iteration != b.iteration {
        return Some(format!("iteration: {} vs {}", a.iteration, b.iteration));
    }
    if let Some(d) = uid_set_divergence(a, b) {
        return Some(d);
    }
    for (idx, (uid, ra)) in a.agents.iter().enumerate() {
        let rb = &b.agents[uid];
        if ra.payload != rb.payload {
            return Some(format!(
                "agent #{idx} uid {uid}: payload {} vs {}",
                ra.payload, rb.payload
            ));
        }
        if ra.tag != rb.tag {
            return Some(format!(
                "agent #{idx} uid {uid}: type {:?} vs {:?}",
                ra.tag, rb.tag
            ));
        }
        let pa = decode3(ra.position);
        let pb = decode3(rb.position);
        for axis in 0..3 {
            if (pa[axis] - pb[axis]).abs() > tol {
                return Some(format!(
                    "agent #{idx} uid {uid}: position[{axis}] {} vs {} (tol {tol})",
                    pa[axis], pb[axis]
                ));
            }
        }
        let da = f64::from_bits(ra.diameter);
        let db = f64::from_bits(rb.diameter);
        if (da - db).abs() > tol {
            return Some(format!(
                "agent #{idx} uid {uid}: diameter {da} vs {db} (tol {tol})"
            ));
        }
    }
    grid_divergence(a, b, tol)
}

fn uid_set_divergence(a: &SimFingerprint, b: &SimFingerprint) -> Option<String> {
    if a.agents.len() != b.agents.len() {
        return Some(format!(
            "agent count: {} vs {}",
            a.agents.len(),
            b.agents.len()
        ));
    }
    for (idx, (ua, ub)) in a.agents.keys().zip(b.agents.keys()).enumerate() {
        if ua != ub {
            return Some(format!("agent #{idx}: uid {ua} vs {ub}"));
        }
    }
    None
}

fn grid_divergence(a: &SimFingerprint, b: &SimFingerprint, tol: f64) -> Option<String> {
    if a.grids.len() != b.grids.len() {
        return Some(format!(
            "grid count: {} vs {}",
            a.grids.len(),
            b.grids.len()
        ));
    }
    for (g, (ga, gb)) in a.grids.iter().zip(&b.grids).enumerate() {
        if ga.name != gb.name || ga.resolution != gb.resolution {
            return Some(format!(
                "grid #{g}: ({}, {}) vs ({}, {})",
                ga.name, ga.resolution, gb.name, gb.resolution
            ));
        }
        for (i, (ca, cb)) in ga.concentrations.iter().zip(&gb.concentrations).enumerate() {
            let va = f64::from_bits(*ca);
            let vb = f64::from_bits(*cb);
            let differs = if tol == 0.0 {
                ca != cb
            } else {
                (va - vb).abs() > tol
            };
            if differs {
                return Some(format!("grid #{g} ({}) box {i}: {va} vs {vb}", ga.name));
            }
        }
    }
    None
}

fn decode3(bits: [u64; 3]) -> [f64; 3] {
    [
        f64::from_bits(bits[0]),
        f64::from_bits(bits[1]),
        f64::from_bits(bits[2]),
    ]
}

/// Panics with the first divergence if `a` and `b` are not bitwise
/// identical; `context` names the comparison in the panic message.
pub fn assert_identical(a: &SimFingerprint, b: &SimFingerprint, context: &str) {
    if let Some(d) = first_divergence(a, b) {
        panic!("{context}: states diverge — {d}");
    }
}

/// Shard count for determinism tests, from `BDM_TEST_SHARDS` (default 1).
///
/// CI runs the determinism matrix at `BDM_TEST_SHARDS` ∈ {1, 4}: because
/// results are bitwise shard-count-invariant (`tests/sharded_conformance.rs`),
/// every bit-reproducibility test must pass unchanged on the sharded path.
/// Only tests running on the uniform grid may use this — `shards > 1`
/// requires [`EnvironmentKind::UniformGrid`](crate::EnvironmentKind).
pub fn test_shards() -> usize {
    match std::env::var("BDM_TEST_SHARDS") {
        Ok(v) => {
            let k: usize = v
                .parse()
                .unwrap_or_else(|_| panic!("BDM_TEST_SHARDS: not a number: {v}"));
            assert!(
                (1..=crate::MAX_SHARDS).contains(&k),
                "BDM_TEST_SHARDS must be in 1..={}, got {k}",
                crate::MAX_SHARDS
            );
            k
        }
        Err(_) => 1,
    }
}
