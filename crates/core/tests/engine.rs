//! End-to-end engine tests: parallel commit (Figure 1), behaviors,
//! mechanics, static detection (Section 5), agent sorting (Section 4.2),
//! and determinism.

use bdm_core::{
    clone_behavior_box, new_agent_box, new_behavior_box, Agent, AgentContext, AgentHandle,
    AgentUid, Behavior, BehaviorControl, Cell, DiffusionGrid, EnvironmentKind, ExecutionContext,
    MemoryManager, NumaThreadPool, NumaTopology, Param, Real3, ResourceManager, Simulation,
};
use bdm_sfc::morton3_encode;
use bdm_util::SimRng;
use proptest::prelude::*;

fn mm(domains: usize, threads: usize) -> MemoryManager {
    MemoryManager::new(domains, threads, bdm_alloc_cfg())
}

fn bdm_alloc_cfg() -> bdm_alloc::PoolConfig {
    bdm_alloc::PoolConfig::default()
}

/// Builds an RM with `uids` as cells in one domain.
fn rm_with_uids(uids: &[u64], mm: &MemoryManager) -> ResourceManager {
    let mut rm = ResourceManager::new(1);
    for &u in uids {
        let cell = Cell::new(AgentUid(u));
        rm.push(0, new_agent_box(cell, mm, 0), 0);
    }
    rm
}

fn surviving_uids(rm: &ResourceManager) -> Vec<u64> {
    let mut v = Vec::new();
    rm.for_each_agent(|_, a| v.push(a.uid().0));
    v
}

#[test]
fn figure1_removal_example() {
    // Paper Figure 1: agents [5,2,1,8,7,3,6], remove {2,8} (thread 0) and
    // {7} (thread 1) → result [5,3,1,6].
    let pool = NumaThreadPool::new(NumaTopology::new(1, 2));
    let m = mm(1, 2);
    let mut rm = rm_with_uids(&[5, 2, 1, 8, 7, 3, 6], &m);
    let mut ctxs = vec![ExecutionContext::new(1), ExecutionContext::new(1)];
    ctxs[0].queue_removal(AgentHandle::new(0, 1)); // uid 2
    ctxs[0].queue_removal(AgentHandle::new(0, 3)); // uid 8
    ctxs[1].queue_removal(AgentHandle::new(0, 4)); // uid 7
    let stats = rm.commit(&mut ctxs, &pool, true, 1);
    assert_eq!(stats.removed, 3);
    assert_eq!(surviving_uids(&rm), vec![5, 3, 1, 6]);
    drop(rm);
    assert_eq!(m.outstanding(), 0);
}

#[test]
fn parallel_and_serial_removal_agree() {
    let pool = NumaThreadPool::new(NumaTopology::new(2, 4));
    for removals in [
        vec![0usize],
        vec![9],
        vec![0, 9],
        vec![0, 1, 2, 3, 4],
        vec![5, 6, 7, 8, 9],
        (0..10).collect::<Vec<_>>(),
        vec![2, 4, 6, 8],
    ] {
        let uids: Vec<u64> = (100..110).collect();
        let survivors_expected: std::collections::BTreeSet<u64> = uids
            .iter()
            .enumerate()
            .filter(|(i, _)| !removals.contains(i))
            .map(|(_, &u)| u)
            .collect();
        for parallel in [false, true] {
            let m = mm(1, 4);
            let mut rm = rm_with_uids(&uids, &m);
            let mut ctxs: Vec<ExecutionContext> =
                (0..4).map(|_| ExecutionContext::new(1)).collect();
            for (k, &idx) in removals.iter().enumerate() {
                ctxs[k % 4].queue_removal(AgentHandle::new(0, idx));
            }
            rm.commit(&mut ctxs, &pool, parallel, 1);
            let got: std::collections::BTreeSet<u64> = surviving_uids(&rm).into_iter().collect();
            assert_eq!(got, survivors_expected, "parallel={parallel} {removals:?}");
            drop(rm);
            assert_eq!(m.outstanding(), 0);
        }
    }
}

#[test]
fn parallel_additions_add_everything() {
    let pool = NumaThreadPool::new(NumaTopology::new(2, 4));
    let m = mm(2, 4);
    let mut rm = ResourceManager::new(2);
    let mut ctxs: Vec<ExecutionContext> = (0..4).map(|_| ExecutionContext::new(2)).collect();
    let mut expected = std::collections::BTreeSet::new();
    for t in 0..4u64 {
        for j in 0..50u64 {
            let uid = 1000 + t * 100 + j;
            expected.insert(uid);
            let domain = (j % 2) as usize;
            let cell = Cell::new(AgentUid(uid));
            ctxs[t as usize].queue_new_agent(domain, new_agent_box(cell, &m, domain));
        }
    }
    let stats = rm.commit(&mut ctxs, &pool, true, 3);
    assert_eq!(stats.added, 200);
    assert_eq!(rm.num_agents(), 200);
    let got: std::collections::BTreeSet<u64> = surviving_uids(&rm).into_iter().collect();
    assert_eq!(got, expected);
    // Both domains received their share.
    assert_eq!(rm.num_in_domain(0), 100);
    assert_eq!(rm.num_in_domain(1), 100);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_parallel_removal_matches_reference(
        n in 1usize..200,
        seed in any::<u64>(),
        frac in 0.0f64..1.0,
    ) {
        let pool = NumaThreadPool::new(NumaTopology::new(2, 4));
        let m = mm(1, 4);
        let uids: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
        let mut rng = SimRng::new(seed);
        let removals: Vec<usize> = (0..n).filter(|_| rng.chance(frac)).collect();
        let expected: std::collections::BTreeSet<u64> = uids
            .iter()
            .enumerate()
            .filter(|(i, _)| !removals.contains(i))
            .map(|(_, &u)| u)
            .collect();
        let mut rm = rm_with_uids(&uids, &m);
        let mut ctxs: Vec<ExecutionContext> = (0..4).map(|_| ExecutionContext::new(1)).collect();
        for (k, &idx) in removals.iter().enumerate() {
            ctxs[k % 4].queue_removal(AgentHandle::new(0, idx));
        }
        rm.commit(&mut ctxs, &pool, true, 1);
        let got: std::collections::BTreeSet<u64> = surviving_uids(&rm).into_iter().collect();
        prop_assert_eq!(got, expected);
        drop(rm);
        prop_assert_eq!(m.outstanding(), 0);
    }
}

// ---------------------------------------------------------------------------
// Behaviors used by the simulation-level tests.
// ---------------------------------------------------------------------------

/// Grows the cell and divides above the threshold (the cell-proliferation
/// behavior of the paper's benchmark suite).
#[derive(Clone)]
struct GrowDivide;

impl Behavior for GrowDivide {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        let cell = agent.as_any_mut().downcast_mut::<Cell>().expect("cell");
        if cell.diameter() < cell.division_threshold() {
            let rate = cell.growth_rate();
            cell.change_volume(rate * ctx.dt);
        } else {
            let uid = ctx.next_uid();
            let dir = ctx.rng.unit_vector();
            let mm = ctx_mm(ctx);
            let daughter = cell.divide(uid, dir, mm, ctx_domain(ctx));
            ctx.new_agent(daughter);
        }
        BehaviorControl::Keep
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> bdm_core::BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
    fn name(&self) -> &'static str {
        "GrowDivide"
    }
}

// Division needs the memory manager for daughter behaviors; expose the
// context internals through small helpers (the public API used by bdm-models
// wraps this more conveniently).
fn ctx_mm<'a>(ctx: &AgentContext<'a>) -> &'a MemoryManager {
    ctx.memory_manager()
}
fn ctx_domain(ctx: &AgentContext<'_>) -> usize {
    ctx.alloc_domain()
}

/// Removes the agent once it shrinks below a diameter.
#[derive(Clone)]
struct DieBelow(f64);

impl Behavior for DieBelow {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        agent.set_diameter(agent.diameter() - 0.5);
        if agent.diameter() < self.0 {
            ctx.remove_self();
        }
        BehaviorControl::Keep
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> bdm_core::BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
}

/// Secretes into grid 0 every iteration.
#[derive(Clone)]
struct Secrete(f64);

impl Behavior for Secrete {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        let pos = agent.position();
        ctx.secrete(0, pos, self.0);
        BehaviorControl::Keep
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> bdm_core::BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
}

/// One-shot behavior that removes itself after the first run.
#[derive(Clone)]
struct OneShot;

impl Behavior for OneShot {
    fn run(&mut self, agent: &mut dyn Agent, _ctx: &mut AgentContext<'_>) -> BehaviorControl {
        agent.set_diameter(agent.diameter() + 1.0);
        BehaviorControl::RemoveSelf
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> bdm_core::BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
}

fn small_param(threads: usize) -> Param {
    Param {
        threads: Some(threads),
        numa_domains: Some(threads.min(2)),
        simulation_time_step: 1.0,
        ..Param::default()
    }
}

fn add_cell_with_behavior<B: Behavior + 'static>(
    sim: &mut Simulation,
    pos: Real3,
    diameter: f64,
    behavior: B,
) -> AgentHandle {
    let uid = sim.new_uid();
    let mut cell = Cell::new(uid).with_position(pos).with_diameter(diameter);
    let b = new_behavior_box(behavior, sim.memory_manager(), 0);
    cell.base_mut().add_behavior(b);
    sim.add_agent(cell)
}

#[test]
fn growth_and_division_increase_population() {
    let mut sim = Simulation::new(small_param(2));
    let mut rng = SimRng::new(1);
    for _ in 0..20 {
        let pos = rng.point_in_cube(0.0, 60.0);
        add_cell_with_behavior(&mut sim, pos, 10.0, GrowDivide);
    }
    assert_eq!(sim.num_agents(), 20);
    sim.simulate(30);
    assert!(
        sim.num_agents() > 20,
        "cells should have divided: {}",
        sim.num_agents()
    );
    assert_eq!(sim.stats().agents_added as usize, sim.num_agents() - 20);
    // All diameters stay within sane bounds.
    sim.for_each_agent(|_, a| {
        assert!(a.diameter() > 0.0 && a.diameter() < 20.0);
        assert!(a.position().is_finite());
    });
}

#[test]
fn mechanics_separates_overlapping_cells() {
    let mut param = small_param(1);
    param.detect_static_agents = false;
    let mut sim = Simulation::new(param);
    let u1 = sim.new_uid();
    let u2 = sim.new_uid();
    sim.add_agent(
        Cell::new(u1)
            .with_position(Real3::new(0.0, 0.0, 0.0))
            .with_diameter(10.0),
    );
    sim.add_agent(
        Cell::new(u2)
            .with_position(Real3::new(4.0, 0.0, 0.0))
            .with_diameter(10.0),
    );
    let before = 4.0;
    sim.simulate(50);
    let mut positions = Vec::new();
    sim.for_each_agent(|_, a| positions.push(a.position()));
    let dist = positions[0].distance(&positions[1]);
    assert!(
        dist > before,
        "strong overlap must be pushed apart: {dist} <= {before}"
    );
}

#[test]
fn removal_behavior_empties_simulation() {
    let mut sim = Simulation::new(small_param(2));
    for i in 0..40 {
        add_cell_with_behavior(&mut sim, Real3::splat(i as f64 * 12.0), 8.0, DieBelow(6.0));
    }
    sim.simulate(10);
    assert_eq!(sim.num_agents(), 0, "all agents shrank away");
    assert_eq!(sim.stats().agents_removed, 40);
    // Engine keeps running on an empty population.
    sim.simulate(5);
    assert_eq!(sim.num_agents(), 0);
}

#[test]
fn one_shot_behavior_detaches() {
    let mut sim = Simulation::new(small_param(1));
    let h = add_cell_with_behavior(&mut sim, Real3::ZERO, 10.0, OneShot);
    sim.simulate(3);
    let agent = sim.resource_manager().agent(h);
    assert_eq!(agent.diameter(), 11.0, "ran exactly once");
    assert_eq!(agent.base().behaviors().len(), 0, "behavior detached");
}

#[test]
fn secretion_reaches_diffusion_grid() {
    let mut sim = Simulation::new(small_param(2));
    sim.add_diffusion_grid(DiffusionGrid::new("s", 0.1, 0.0, 8, Real3::ZERO, 80.0));
    for i in 0..10 {
        add_cell_with_behavior(&mut sim, Real3::splat(i as f64 * 8.0), 5.0, Secrete(2.0));
    }
    sim.simulate(5);
    let total = sim.diffusion_grid(0).total();
    assert!((total - 10.0 * 2.0 * 5.0).abs() < 1e-9, "total={total}");
}

#[test]
fn static_detection_skips_settled_regions() {
    let mut param = small_param(2);
    param.detect_static_agents = true;
    let mut sim = Simulation::new(param);
    // A sparse grid of cells, far apart: no forces, nothing moves.
    for x in 0..5 {
        for y in 0..5 {
            let uid = sim.new_uid();
            sim.add_agent(
                Cell::new(uid)
                    .with_position(Real3::new(x as f64 * 30.0, y as f64 * 30.0, 0.0))
                    .with_diameter(10.0),
            );
        }
    }
    sim.simulate(10);
    let stats = sim.stats();
    assert!(
        stats.static_skipped > 0,
        "settled agents must be skipped: {stats:?}"
    );
    // Skips start from iteration 3 at the latest: 25 agents × ~8 iterations.
    assert!(stats.static_skipped >= 25 * 6, "{stats:?}");
}

#[test]
fn static_detection_matches_non_static_results() {
    // The optimization must not change simulation results: compare final
    // positions with and without static detection (serial for determinism).
    let run = |detect: bool| -> Vec<(u64, [f64; 3])> {
        let mut param = small_param(1);
        param.detect_static_agents = detect;
        let mut sim = Simulation::new(param);
        let mut rng = SimRng::new(99);
        for _ in 0..30 {
            let uid = sim.new_uid();
            sim.add_agent(
                Cell::new(uid)
                    .with_position(rng.point_in_cube(0.0, 40.0))
                    .with_diameter(9.0),
            );
        }
        sim.simulate(40);
        let mut out = Vec::new();
        sim.for_each_agent(|_, a| out.push((a.uid().0, a.position().into())));
        out.sort_by_key(|(u, _)| *u);
        out
    };
    let without = run(false);
    let with = run(true);
    assert_eq!(without.len(), with.len());
    for ((u1, p1), (u2, p2)) in without.iter().zip(with.iter()) {
        assert_eq!(u1, u2);
        let d = Real3::from(*p1).distance(&Real3::from(*p2));
        assert!(
            d < 1e-6,
            "uid {u1}: static detection changed the result by {d}"
        );
    }
}

#[test]
fn serial_runs_are_deterministic() {
    let run = || -> Vec<(u64, [f64; 3], f64)> {
        let mut sim = Simulation::new(small_param(1));
        let mut rng = SimRng::new(7);
        for _ in 0..25 {
            let pos = rng.point_in_cube(0.0, 50.0);
            add_cell_with_behavior(&mut sim, pos, 9.0, GrowDivide);
        }
        sim.simulate(25);
        let mut out = Vec::new();
        sim.for_each_agent(|_, a| out.push((a.uid().0, a.position().into(), a.diameter())));
        out.sort_by_key(|(u, _, _)| *u);
        out
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.0, y.0);
        assert_eq!(x.1, y.1, "positions bit-identical for uid {}", x.0);
        assert_eq!(x.2, y.2);
    }
}

#[test]
fn thread_counts_agree_statistically() {
    // Multi-threaded runs use per-(agent, iteration) RNG streams, so the
    // *set* of agents/uids must match a serial run exactly even though
    // commit order differs.
    let run = |threads: usize| -> std::collections::BTreeSet<u64> {
        let mut sim = Simulation::new(small_param(threads));
        let mut rng = SimRng::new(3);
        for _ in 0..20 {
            let pos = rng.point_in_cube(0.0, 80.0);
            add_cell_with_behavior(&mut sim, pos, 9.5, GrowDivide);
        }
        sim.simulate(20);
        let mut uids = std::collections::BTreeSet::new();
        sim.for_each_agent(|_, a| {
            uids.insert(a.uid().0);
        });
        uids
    };
    let serial = run(1);
    let parallel = run(2);
    assert_eq!(serial, parallel, "uid sets must agree across thread counts");
}

#[test]
fn sorting_preserves_agents_and_orders_by_morton_code() {
    let mut param = small_param(2);
    param.agent_sort_frequency = Some(1);
    param.enable_mechanics = false; // keep positions fixed
    let mut sim = Simulation::new(param);
    let mut rng = SimRng::new(11);
    let mut expected = std::collections::BTreeSet::new();
    for _ in 0..300 {
        let uid = sim.new_uid();
        expected.insert(uid.0);
        sim.add_agent(
            Cell::new(uid)
                .with_position(rng.point_in_cube(0.0, 100.0))
                .with_diameter(10.0),
        );
    }
    sim.simulate(2);
    assert!(sim.stats().sorts >= 2);
    // All agents survived the relocation.
    let got: std::collections::BTreeSet<u64> =
        surviving_uids(sim.resource_manager()).into_iter().collect();
    assert_eq!(got, expected);

    // Agents are in Morton order: reconstruct box coordinates with the same
    // grid geometry (box length = max diameter = 10, min = bbox min).
    let mut positions = Vec::new();
    sim.for_each_agent(|_, a| positions.push(a.position()));
    let min = positions
        .iter()
        .fold(Real3::splat(f64::INFINITY), |m, p| m.min(p));
    let code = |p: &Real3| {
        let bx = ((p.x() - min.x()) / 10.0) as u32;
        let by = ((p.y() - min.y()) / 10.0) as u32;
        let bz = ((p.z() - min.z()) / 10.0) as u32;
        morton3_encode(bx, by, bz)
    };
    // Global order across domains must be non-decreasing.
    let codes: Vec<u64> = positions.iter().map(code).collect();
    let violations = codes.windows(2).filter(|w| w[0] > w[1]).count();
    assert_eq!(
        violations, 0,
        "agents must be stored in Morton order after sorting"
    );
}

#[test]
fn hilbert_sorting_preserves_agents_and_improves_locality() {
    // The Section 4.2 ablation: Hilbert-ordered sorting must be a valid
    // permutation (no agent lost, no duplicate) and, like Morton, must
    // place spatial neighbors near each other in memory.
    let mut param = small_param(2);
    param.agent_sort_frequency = Some(1);
    param.sort_curve = bdm_core::CurveKind::Hilbert;
    param.enable_mechanics = false;
    let mut sim = Simulation::new(param);
    let mut rng = SimRng::new(23);
    let mut expected = std::collections::BTreeSet::new();
    for _ in 0..300 {
        let uid = sim.new_uid();
        expected.insert(uid.0);
        sim.add_agent(
            Cell::new(uid)
                .with_position(rng.point_in_cube(0.0, 100.0))
                .with_diameter(10.0),
        );
    }
    sim.simulate(2);
    assert!(sim.stats().sorts >= 2);
    let got: std::collections::BTreeSet<u64> =
        surviving_uids(sim.resource_manager()).into_iter().collect();
    assert_eq!(got, expected);

    // Locality metric: mean distance between memory-adjacent agents must be
    // far below the random-layout expectation (~half the domain diagonal).
    let mut positions = Vec::new();
    sim.for_each_agent(|_, a| positions.push(a.position()));
    let mean_adjacent: f64 = positions
        .windows(2)
        .map(|w| w[0].distance(&w[1]))
        .sum::<f64>()
        / (positions.len() - 1) as f64;
    assert!(
        mean_adjacent < 40.0,
        "memory-adjacent agents must be spatially close: {mean_adjacent:.1}"
    );
}

#[test]
fn morton_and_hilbert_sorting_agree_on_outcomes() {
    // The curve choice changes memory layout only, never simulation results.
    let run = |curve: bdm_core::CurveKind| -> Vec<u64> {
        let mut param = small_param(2);
        param.agent_sort_frequency = Some(2);
        param.sort_curve = curve;
        let mut sim = Simulation::new(param);
        let mut rng = SimRng::new(31);
        for _ in 0..100 {
            let pos = rng.point_in_cube(0.0, 60.0);
            add_cell_with_behavior(&mut sim, pos, 9.0, GrowDivide);
        }
        sim.simulate(10);
        let mut uids = surviving_uids(sim.resource_manager());
        uids.sort_unstable();
        uids
    };
    assert_eq!(
        run(bdm_core::CurveKind::Morton),
        run(bdm_core::CurveKind::Hilbert)
    );
}

#[test]
fn sorting_with_and_without_extra_memory_agree() {
    let run = |extra: bool| -> Vec<u64> {
        let mut param = small_param(2);
        param.agent_sort_frequency = Some(2);
        param.sort_use_extra_memory = extra;
        let mut sim = Simulation::new(param);
        let mut rng = SimRng::new(5);
        for _ in 0..100 {
            let pos = rng.point_in_cube(0.0, 60.0);
            add_cell_with_behavior(&mut sim, pos, 9.0, GrowDivide);
        }
        sim.simulate(10);
        let mut uids = surviving_uids(sim.resource_manager());
        uids.sort_unstable();
        uids
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn all_environments_give_same_serial_results() {
    let run = |kind: EnvironmentKind| -> Vec<(u64, [f64; 3])> {
        let mut param = small_param(1);
        param.environment = kind;
        let mut sim = Simulation::new(param);
        let mut rng = SimRng::new(17);
        for _ in 0..40 {
            let uid = sim.new_uid();
            sim.add_agent(
                Cell::new(uid)
                    .with_position(rng.point_in_cube(0.0, 40.0))
                    .with_diameter(9.0),
            );
        }
        sim.simulate(20);
        let mut out = Vec::new();
        sim.for_each_agent(|_, a| out.push((a.uid().0, a.position().into())));
        out.sort_by_key(|(u, _)| *u);
        out
    };
    let grid = run(EnvironmentKind::UniformGrid);
    let kd = run(EnvironmentKind::KdTree);
    let oct = run(EnvironmentKind::Octree);
    for (g, k) in grid.iter().zip(kd.iter()) {
        assert_eq!(g.0, k.0);
        let d = Real3::from(g.1).distance(&Real3::from(k.1));
        assert!(d < 1e-9, "kd-tree deviates for uid {}: {d}", g.0);
    }
    for (g, o) in grid.iter().zip(oct.iter()) {
        let d = Real3::from(g.1).distance(&Real3::from(o.1));
        assert!(d < 1e-9, "octree deviates for uid {}: {d}", g.0);
    }
}

#[test]
fn deferred_mutations_apply() {
    /// Marks all neighbors' cell type via deferred mutation.
    #[derive(Clone)]
    struct Tag;
    impl Behavior for Tag {
        fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
            let pos = agent.position();
            let mut neighbors = Vec::new();
            ctx.for_each_neighbor(pos, 15.0, |idx, _nd, _d2| neighbors.push(idx));
            for idx in neighbors {
                let (domain, local) = ctx.split_global(idx);
                ctx.defer_on_agent(AgentHandle::new(domain, local), |a| {
                    if let Some(c) = a.as_any_mut().downcast_mut::<Cell>() {
                        *c = std::mem::replace(c, Cell::new(c.uid())).with_cell_type(7);
                    }
                });
            }
            BehaviorControl::RemoveSelf
        }
        fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> bdm_core::BehaviorBox {
            clone_behavior_box(self, mm, domain)
        }
    }
    let mut param = small_param(1);
    param.enable_mechanics = false;
    param.interaction_radius = Some(15.0);
    let mut sim = Simulation::new(param);
    add_cell_with_behavior(&mut sim, Real3::ZERO, 10.0, Tag);
    let u2 = sim.new_uid();
    sim.add_agent(
        Cell::new(u2)
            .with_position(Real3::new(5.0, 0.0, 0.0))
            .with_diameter(10.0),
    );
    sim.simulate(1);
    let tagged = sim.count_agents(|a| a.payload() == 7);
    assert_eq!(tagged, 1, "the neighbor was tagged via deferred mutation");
}

#[test]
fn pool_box_accounting_balances_after_drop() {
    let param = small_param(2);
    let mut sim = Simulation::new(param);
    let mut rng = SimRng::new(2);
    for _ in 0..50 {
        let pos = rng.point_in_cube(0.0, 50.0);
        add_cell_with_behavior(&mut sim, pos, 9.0, GrowDivide);
    }
    sim.simulate(10);
    let stats = sim.memory_stats();
    assert!(stats.pool_allocations > 0, "agents live in the pool");
    // Dropping the simulation must return every element.
    // (Checked implicitly: PoolBox drops before the MemoryManager because of
    // field order; a leak would abort the allocator's Drop in debug builds.)
    drop(sim);
}
