//! Property tests for the snapshot's global↔(domain, local) index mapping.
//!
//! `Snapshot::global_index` / `Snapshot::split_index` translate between the
//! environment's flat agent indices and the resource manager's per-domain
//! storage; every consumer of a neighbor query result depends on the two
//! being exact inverses, for any domain-size distribution including empty
//! domains at either end or in the middle.

use bdm_core::Snapshot;
use proptest::prelude::*;

/// Builds a snapshot whose offset table encodes the given domain sizes
/// (the arrays themselves are irrelevant to the index mapping).
fn snapshot_with_sizes(sizes: &[usize]) -> Snapshot {
    let mut offsets = Vec::with_capacity(sizes.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &s in sizes {
        acc += s;
        offsets.push(acc);
    }
    Snapshot {
        offsets,
        ..Snapshot::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prop_global_and_split_index_are_inverse(
        sizes in proptest::collection::vec(0usize..50, 1..6),
    ) {
        let snap = snapshot_with_sizes(&sizes);
        let total: usize = sizes.iter().sum();

        // (domain, local) → global → (domain, local).
        for (domain, &size) in sizes.iter().enumerate() {
            for local in 0..size {
                let global = snap.global_index(domain, local);
                prop_assert!(global < total);
                prop_assert_eq!(snap.split_index(global), (domain, local));
            }
        }

        // global → (domain, local) → global, with the domain non-empty and
        // the local index inside it.
        for global in 0..total {
            let (domain, local) = snap.split_index(global);
            prop_assert!(local < sizes[domain]);
            prop_assert_eq!(snap.global_index(domain, local), global);
        }
    }
}
