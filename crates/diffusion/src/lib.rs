//! # bdm-diffusion
//!
//! Extracellular substance diffusion — the substrate behind the "diffusion
//! volumes" of paper Table 1 (cell clustering: 54 M volumes, neuroscience:
//! 65 k volumes). Agents secrete substances into a regular grid; the solver
//! advances the diffusion–decay PDE with an explicit forward-time
//! central-space (FTCS) 7-point stencil, parallelized over z-slices; agents
//! read concentrations and gradients back via trilinear-free nearest-box
//! sampling plus central differences (what BioDynaMo's `DiffusionGrid` does).
//!
//! ∂c/∂t = D ∇²c − μ c
//!
//! The explicit scheme is stable for dt ≤ h²/(6D); [`DiffusionGrid::step`]
//! automatically substeps to respect the bound.

#![warn(missing_docs)]

use bdm_util::Real3;
use rayon::prelude::*;

/// Boundary condition at the faces of the diffusion volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundaryCondition {
    /// Zero-flux (Neumann): substance is reflected, total mass is conserved
    /// when decay is zero. BioDynaMo's "closed" boundaries.
    #[default]
    ClosedReflecting,
    /// Zero-concentration (Dirichlet): substance leaks out at the faces.
    OpenAbsorbing,
}

/// A named substance diffusing on a regular cubic grid.
#[derive(Debug, Clone)]
pub struct DiffusionGrid {
    name: String,
    diffusion_coefficient: f64,
    decay_constant: f64,
    resolution: usize,
    boundary: BoundaryCondition,
    /// Lower corner and edge length of the cubic domain.
    min: Real3,
    edge: f64,
    box_length: f64,
    /// Cached `1 / box_length`: agents look up their box once per
    /// concentration/gradient read and once per applied secretion, so the
    /// per-axis position scaling multiplies instead of dividing (three
    /// dependent divisions per call dominate the lookup otherwise — same
    /// trick as the uniform grid's `inv_box_length`).
    inv_box_length: f64,
    /// Concentrations, `resolution³` values, x fastest.
    c: Vec<f64>,
    /// Double buffer for the stencil sweep.
    c_next: Vec<f64>,
    /// Bumped on every concentration change (secretion, solver step,
    /// wholesale overwrite) — delta checkpoints compare versions to skip
    /// serializing an unchanged grid.
    version: u64,
}

impl DiffusionGrid {
    /// Creates a grid for `name` over the cubic domain `[min, min+edge]³`
    /// with `resolution` boxes per axis.
    pub fn new(
        name: impl Into<String>,
        diffusion_coefficient: f64,
        decay_constant: f64,
        resolution: usize,
        min: Real3,
        edge: f64,
    ) -> DiffusionGrid {
        assert!(resolution >= 2, "need at least 2 boxes per axis");
        assert!(edge > 0.0 && diffusion_coefficient >= 0.0 && decay_constant >= 0.0);
        let n = resolution * resolution * resolution;
        DiffusionGrid {
            name: name.into(),
            diffusion_coefficient,
            decay_constant,
            resolution,
            boundary: BoundaryCondition::default(),
            min,
            edge,
            box_length: edge / resolution as f64,
            inv_box_length: resolution as f64 / edge,
            c: vec![0.0; n],
            c_next: vec![0.0; n],
            version: 0,
        }
    }

    /// Sets the boundary condition (builder style).
    pub fn with_boundary(mut self, bc: BoundaryCondition) -> DiffusionGrid {
        self.boundary = bc;
        self
    }

    /// Substance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Diffusion coefficient `D`.
    pub fn diffusion_coefficient(&self) -> f64 {
        self.diffusion_coefficient
    }

    /// Decay constant `μ`.
    pub fn decay_constant(&self) -> f64 {
        self.decay_constant
    }

    /// The active boundary condition.
    pub fn boundary(&self) -> BoundaryCondition {
        self.boundary
    }

    /// Lower corner of the cubic domain.
    pub fn domain_min(&self) -> Real3 {
        self.min
    }

    /// Concentration-change counter (see the field docs): strictly
    /// monotonic over secretions, solver steps, and overwrites.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Overwrites the change counter (checkpoint restore, applied after
    /// [`DiffusionGrid::set_concentrations`] so a restored grid continues
    /// the original's version sequence).
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Boxes per axis.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Total number of diffusion volumes (`resolution³`), the quantity
    /// reported in paper Table 1.
    pub fn num_volumes(&self) -> usize {
        self.c.len()
    }

    /// Edge length of one box.
    pub fn box_length(&self) -> f64 {
        self.box_length
    }

    /// Edge length of the whole cubic domain.
    pub fn domain_edge(&self) -> f64 {
        self.edge
    }

    /// Box index containing `pos` (positions outside clamp to the border).
    #[inline]
    pub fn box_index(&self, pos: Real3) -> usize {
        let r = self.resolution;
        let mut idx = [0usize; 3];
        for a in 0..3 {
            let rel = (pos[a] - self.min[a]) * self.inv_box_length;
            idx[a] = (rel.max(0.0) as usize).min(r - 1);
        }
        idx[0] + r * (idx[1] + r * idx[2])
    }

    /// Concentration of the box containing `pos`.
    #[inline]
    pub fn concentration_at(&self, pos: Real3) -> f64 {
        self.c[self.box_index(pos)]
    }

    /// Adds `amount` to the box containing `pos` (agent secretion).
    pub fn increase_concentration(&mut self, pos: Real3, amount: f64) {
        let i = self.box_index(pos);
        self.c[i] += amount;
        self.version += 1;
    }

    /// Central-difference concentration gradient at `pos`
    /// (used by chemotaxis behaviors).
    pub fn gradient_at(&self, pos: Real3) -> Real3 {
        let r = self.resolution;
        let flat = self.box_index(pos);
        let x = flat % r;
        let y = (flat / r) % r;
        let z = flat / (r * r);
        let h2 = 2.0 * self.box_length;
        let sample = |xx: usize, yy: usize, zz: usize| self.c[xx + r * (yy + r * zz)];
        let d = |lo: f64, hi: f64| (hi - lo) / h2;
        Real3::new(
            d(
                sample(x.saturating_sub(1), y, z),
                sample((x + 1).min(r - 1), y, z),
            ),
            d(
                sample(x, y.saturating_sub(1), z),
                sample(x, (y + 1).min(r - 1), z),
            ),
            d(
                sample(x, y, z.saturating_sub(1)),
                sample(x, y, (z + 1).min(r - 1)),
            ),
        )
    }

    /// Sum of all concentrations (∝ total substance mass).
    pub fn total(&self) -> f64 {
        self.c.iter().sum()
    }

    /// Largest stable time step of the explicit scheme.
    pub fn max_stable_dt(&self) -> f64 {
        if self.diffusion_coefficient == 0.0 {
            return f64::INFINITY;
        }
        self.box_length * self.box_length / (6.0 * self.diffusion_coefficient)
    }

    /// Advances the PDE by `dt`, substepping if `dt` exceeds the stability
    /// bound.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0 && dt.is_finite());
        let stable = self.max_stable_dt() * 0.9;
        let substeps = (dt / stable).ceil().max(1.0) as usize;
        let sub_dt = dt / substeps as f64;
        for _ in 0..substeps {
            self.substep(sub_dt);
        }
        self.version += 1;
    }

    /// One FTCS update, parallel over z-slices.
    fn substep(&mut self, dt: f64) {
        let r = self.resolution;
        let h2 = self.box_length * self.box_length;
        let alpha = self.diffusion_coefficient * dt / h2;
        let decay = self.decay_constant * dt;
        let boundary = self.boundary;
        let c = &self.c;
        let out = &mut self.c_next;
        // Small grids (the common case in the scaled-down models) update
        // faster serially than the per-slice fork-join can dispatch; the
        // paper's 54M-volume grids take the parallel path.
        const PARALLEL_VOLUME_THRESHOLD: usize = 1 << 16;
        let body = |z: usize, slice: &mut [f64]| {
            // Neighbor sampling with boundary handling. For reflecting
            // boundaries the out-of-domain neighbor mirrors the center value
            // (zero flux); for absorbing boundaries it is zero.
            let get = |x: i64, y: i64, zz: i64, center: f64| -> f64 {
                if x < 0 || y < 0 || zz < 0 || x >= r as i64 || y >= r as i64 || zz >= r as i64 {
                    match boundary {
                        BoundaryCondition::ClosedReflecting => center,
                        BoundaryCondition::OpenAbsorbing => 0.0,
                    }
                } else {
                    c[x as usize + r * (y as usize + r * zz as usize)]
                }
            };
            let z = z as i64;
            for y in 0..r as i64 {
                for x in 0..r as i64 {
                    let center = c[x as usize + r * (y as usize + r * z as usize)];
                    let lap = get(x - 1, y, z, center)
                        + get(x + 1, y, z, center)
                        + get(x, y - 1, z, center)
                        + get(x, y + 1, z, center)
                        + get(x, y, z - 1, center)
                        + get(x, y, z + 1, center)
                        - 6.0 * center;
                    slice[(x + y * r as i64) as usize] =
                        (center + alpha * lap) * (1.0 - decay).max(0.0);
                }
            }
        };
        if c.len() < PARALLEL_VOLUME_THRESHOLD {
            for (z, slice) in out.chunks_mut(r * r).enumerate() {
                body(z, slice);
            }
        } else {
            out.par_chunks_mut(r * r)
                .enumerate()
                .for_each(|(z, slice)| body(z, slice));
        }
        std::mem::swap(&mut self.c, &mut self.c_next);
    }

    /// Direct read-only access to the concentration values.
    pub fn concentrations(&self) -> &[f64] {
        &self.c
    }

    /// Overwrites every concentration (checkpoint restore; also handy for
    /// initializing analytic profiles). The values are adopted bitwise —
    /// a restored grid steps exactly like the original.
    ///
    /// # Panics
    /// If `values.len() != resolution³`.
    pub fn set_concentrations(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.c.len(),
            "expected resolution³ = {} values",
            self.c.len()
        );
        self.c.copy_from_slice(values);
        self.version += 1;
    }

    /// Approximate heap footprint.
    pub fn memory_bytes(&self) -> usize {
        (self.c.capacity() + self.c_next.capacity()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid(resolution: usize) -> DiffusionGrid {
        DiffusionGrid::new("test", 0.5, 0.0, resolution, Real3::ZERO, 10.0)
    }

    #[test]
    fn construction_and_geometry() {
        let g = grid(10);
        assert_eq!(g.resolution(), 10);
        assert_eq!(g.num_volumes(), 1000);
        assert!((g.box_length() - 1.0).abs() < 1e-12);
        assert_eq!(g.name(), "test");
        assert!(g.memory_bytes() >= 2 * 1000 * 8);
    }

    #[test]
    fn box_index_clamps_out_of_domain() {
        let g = grid(4);
        assert_eq!(g.box_index(Real3::splat(-100.0)), 0);
        let last = g.num_volumes() - 1;
        assert_eq!(g.box_index(Real3::splat(100.0)), last);
    }

    #[test]
    fn secretion_then_read_back() {
        let mut g = grid(8);
        let p = Real3::new(3.2, 4.7, 5.1);
        g.increase_concentration(p, 2.5);
        assert_eq!(g.concentration_at(p), 2.5);
        assert_eq!(g.total(), 2.5);
    }

    #[test]
    fn mass_conservation_closed_boundaries() {
        let mut g = grid(12).with_boundary(BoundaryCondition::ClosedReflecting);
        g.increase_concentration(Real3::splat(5.0), 100.0);
        for _ in 0..50 {
            g.step(0.1);
        }
        assert!((g.total() - 100.0).abs() < 1e-9, "total={}", g.total());
        assert!(g
            .concentrations()
            .iter()
            .all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn open_boundaries_lose_mass() {
        let mut g = grid(8).with_boundary(BoundaryCondition::OpenAbsorbing);
        g.increase_concentration(Real3::splat(1.0), 100.0); // near a corner
        for _ in 0..200 {
            g.step(0.1);
        }
        assert!(g.total() < 50.0, "mass must leak out: {}", g.total());
    }

    #[test]
    fn decay_is_exponential_without_diffusion() {
        let mut g = DiffusionGrid::new("d", 0.0, 0.1, 4, Real3::ZERO, 4.0);
        g.increase_concentration(Real3::splat(2.0), 1.0);
        g.step(1.0);
        // One explicit step: c *= (1 - mu*dt)
        assert!((g.total() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn diffusion_spreads_symmetrically() {
        let mut g = grid(9);
        let center = Real3::splat(5.0); // box (4,4,4) is the exact center
        g.increase_concentration(center, 1.0);
        for _ in 0..20 {
            g.step(0.05);
        }
        // Mirror boxes around the center must hold equal concentration.
        let r = 9usize;
        let at = |x: usize, y: usize, z: usize| g.concentrations()[x + r * (y + r * z)];
        let eps = 1e-12;
        assert!((at(3, 4, 4) - at(5, 4, 4)).abs() < eps);
        assert!((at(4, 3, 4) - at(4, 5, 4)).abs() < eps);
        assert!((at(4, 4, 3) - at(4, 4, 5)).abs() < eps);
        assert!((at(3, 4, 4) - at(4, 3, 4)).abs() < eps, "axis symmetry");
        // Center remains the maximum.
        let max = g
            .concentrations()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(max, at(4, 4, 4));
    }

    #[test]
    fn gradient_points_toward_source() {
        let mut g = grid(16);
        let source = Real3::new(8.0, 5.0, 5.0);
        g.increase_concentration(source, 10.0);
        for _ in 0..30 {
            g.step(0.05);
        }
        let probe = Real3::new(4.0, 5.0, 5.0); // left of the source
        let grad = g.gradient_at(probe);
        assert!(
            grad.x() > 0.0,
            "gradient x must point toward source: {grad:?}"
        );
        assert!(grad.y().abs() < grad.x());
    }

    #[test]
    fn unstable_dt_is_substepped() {
        let mut g = grid(8); // stable dt ~ 10/8 squared / 3 ≈ 0.52
        g.increase_concentration(Real3::splat(5.0), 1.0);
        g.step(100.0); // far beyond the stability bound
        assert!(g
            .concentrations()
            .iter()
            .all(|&v| v.is_finite() && v >= -1e-12));
        assert!((g.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_diffusion_keeps_profile() {
        let mut g = DiffusionGrid::new("z", 0.0, 0.0, 6, Real3::ZERO, 6.0);
        g.increase_concentration(Real3::splat(3.0), 7.0);
        let before = g.concentrations().to_vec();
        g.step(1.0);
        assert_eq!(g.concentrations(), &before[..]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_mass_conserved_and_nonnegative(
            seed in any::<u64>(),
            res in 4usize..12,
            d_coef in 0.01f64..2.0,
            steps in 1usize..20,
        ) {
            let mut g = DiffusionGrid::new("p", d_coef, 0.0, res, Real3::ZERO, 10.0);
            let mut rng = bdm_util::SimRng::new(seed);
            let mut injected = 0.0;
            for _ in 0..10 {
                let amount = rng.uniform_in(0.1, 5.0);
                g.increase_concentration(rng.point_in_cube(0.0, 10.0), amount);
                injected += amount;
            }
            for _ in 0..steps {
                g.step(0.2);
            }
            prop_assert!((g.total() - injected).abs() < 1e-6 * injected.max(1.0));
            prop_assert!(g.concentrations().iter().all(|&v| v >= -1e-12 && v.is_finite()));
        }

        #[test]
        fn prop_decay_reduces_mass(
            res in 4usize..10,
            decay in 0.01f64..0.5,
        ) {
            let mut g = DiffusionGrid::new("p", 0.1, decay, res, Real3::ZERO, 10.0);
            g.increase_concentration(Real3::splat(5.0), 10.0);
            let before = g.total();
            g.step(0.5);
            prop_assert!(g.total() < before);
            prop_assert!(g.total() > 0.0);
        }
    }
}
