//! O(n²) reference environment.
//!
//! Not used by the engine — it exists so tests and property checks can
//! validate the real environments against an implementation too simple to be
//! wrong, and so the serial baseline engine (Cortex3D/NetLogo stand-in) has a
//! deliberately naive index.

use bdm_util::Real3;

use crate::{Environment, NeighborQueryScratch, PointCloud, UpdateHint};

/// Brute-force fixed-radius search over a cached copy of the positions.
#[derive(Debug, Default)]
pub struct BruteForceEnvironment {
    positions: Vec<Real3>,
    bounds: Option<(Real3, Real3)>,
}

impl BruteForceEnvironment {
    /// Creates an empty environment.
    pub fn new() -> BruteForceEnvironment {
        BruteForceEnvironment::default()
    }
}

impl Environment for BruteForceEnvironment {
    fn update_with(&mut self, cloud: &dyn PointCloud, _interaction_radius: f64, hint: UpdateHint) {
        self.positions.clear();
        self.positions.reserve(cloud.len());
        for i in 0..cloud.len() {
            self.positions.push(cloud.position(i));
        }
        self.bounds = match hint.known_bounds {
            Some(b) if !self.positions.is_empty() => Some(b),
            _ => self.positions.iter().fold(None, |acc, p| match acc {
                None => Some((*p, *p)),
                Some((lo, hi)) => Some((lo.min(p), hi.max(p))),
            }),
        };
    }

    fn for_each_neighbor(
        &self,
        _cloud: &dyn PointCloud,
        pos: Real3,
        exclude: Option<usize>,
        radius: f64,
        _scratch: &mut NeighborQueryScratch,
        visit: &mut dyn FnMut(usize, Real3, f64),
    ) {
        let r2 = radius * radius;
        for (i, p) in self.positions.iter().enumerate() {
            if Some(i) == exclude {
                continue;
            }
            let d2 = pos.distance_sq(p);
            if d2 <= r2 {
                visit(i, *p, d2);
            }
        }
    }

    fn clear(&mut self) {
        self.positions.clear();
        self.bounds = None;
    }

    fn memory_bytes(&self) -> usize {
        self.positions.capacity() * std::mem::size_of::<Real3>()
    }

    fn name(&self) -> &'static str {
        "brute_force"
    }

    fn bounds(&self) -> Option<(Real3, Real3)> {
        self.bounds
    }
}
