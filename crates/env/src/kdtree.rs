//! kd-tree environment — the from-scratch stand-in for BioDynaMo's
//! `nanoflann` backend.
//!
//! Median-split on the widest axis, bucketed leaves (`leaf_size`, nanoflann's
//! depth/leaf parameter validated in paper Section 6.9). The build is
//! **serial by design**: the paper attributes the poor scalability of the
//! "standard implementation" to exactly this serial kd-tree build (Section
//! 6.8), and we preserve that behaviour for the Figure 10/11 reproductions.

use bdm_util::Real3;

use crate::{Environment, NeighborQueryScratch, PointCloud, UpdateHint};

/// Default leaf bucket size (matches nanoflann's common default).
pub const DEFAULT_LEAF_SIZE: usize = 10;

enum Node {
    /// Interior node: split axis, split value, children indices into `nodes`.
    Split {
        axis: usize,
        value: f64,
        left: u32,
        right: u32,
    },
    /// Leaf: range into `indices`.
    Leaf { start: u32, end: u32 },
}

/// kd-tree over a point cloud (positions cached at build time, like
/// nanoflann's dataset adaptor).
pub struct KdTreeEnvironment {
    nodes: Vec<Node>,
    indices: Vec<u32>,
    positions: Vec<Real3>,
    root: Option<u32>,
    leaf_size: usize,
    bounds: Option<(Real3, Real3)>,
}

impl Default for KdTreeEnvironment {
    fn default() -> Self {
        Self::new()
    }
}

impl KdTreeEnvironment {
    /// Creates an empty tree with the default leaf size.
    pub fn new() -> KdTreeEnvironment {
        KdTreeEnvironment::with_leaf_size(DEFAULT_LEAF_SIZE)
    }

    /// Creates an empty tree with a custom leaf bucket size.
    pub fn with_leaf_size(leaf_size: usize) -> KdTreeEnvironment {
        KdTreeEnvironment {
            nodes: Vec::new(),
            indices: Vec::new(),
            positions: Vec::new(),
            root: None,
            leaf_size: leaf_size.max(1),
            bounds: None,
        }
    }

    /// Recursively builds the subtree over `indices[lo..hi]`; returns the
    /// node id.
    fn build(&mut self, lo: usize, hi: usize, min: Real3, max: Real3) -> u32 {
        let id = self.nodes.len() as u32;
        if hi - lo <= self.leaf_size {
            self.nodes.push(Node::Leaf {
                start: lo as u32,
                end: hi as u32,
            });
            return id;
        }
        // Widest axis of the actual extent.
        let extent = max - min;
        let axis = (0..3)
            .max_by(|&a, &b| extent[a].total_cmp(&extent[b]))
            .unwrap();
        let mid = (lo + hi) / 2;
        let positions = &self.positions;
        self.indices[lo..hi].select_nth_unstable_by(mid - lo, |&a, &b| {
            positions[a as usize][axis].total_cmp(&positions[b as usize][axis])
        });
        let split_value = positions[self.indices[mid] as usize][axis];
        self.nodes.push(Node::Split {
            axis,
            value: split_value,
            left: 0,
            right: 0,
        });
        let mut lmax = max;
        lmax[axis] = split_value;
        let mut rmin = min;
        rmin[axis] = split_value;
        let left = self.build(lo, mid, min, lmax);
        let right = self.build(mid, hi, rmin, max);
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[id as usize]
        {
            *l = left;
            *r = right;
        }
        id
    }

    /// Iterative radius search over an explicit node stack — the stack
    /// lives in the caller's [`NeighborQueryScratch`], so repeated queries
    /// perform no allocation (the recursive formulation would be
    /// allocation-free too, but the explicit stack caps the depth cost and
    /// matches the octree's traversal).
    fn search(
        &self,
        root: u32,
        pos: Real3,
        exclude: Option<usize>,
        r: f64,
        r2: f64,
        stack: &mut Vec<u32>,
        visit: &mut dyn FnMut(usize, Real3, f64),
    ) {
        stack.clear();
        stack.push(root);
        while let Some(node) = stack.pop() {
            match &self.nodes[node as usize] {
                Node::Leaf { start, end } => {
                    for &i in &self.indices[*start as usize..*end as usize] {
                        let idx = i as usize;
                        if Some(idx) == exclude {
                            continue;
                        }
                        let p = self.positions[idx];
                        let d2 = pos.distance_sq(&p);
                        if d2 <= r2 {
                            visit(idx, p, d2);
                        }
                    }
                }
                Node::Split {
                    axis,
                    value,
                    left,
                    right,
                } => {
                    let delta = pos[*axis] - *value;
                    // Descend the near side first, prune the far side by
                    // the distance to the splitting plane.
                    let (near, far) = if delta < 0.0 {
                        (*left, *right)
                    } else {
                        (*right, *left)
                    };
                    if delta.abs() <= r {
                        stack.push(far);
                    }
                    stack.push(near);
                }
            }
        }
    }
}

impl Environment for KdTreeEnvironment {
    fn update_with(&mut self, cloud: &dyn PointCloud, _interaction_radius: f64, hint: UpdateHint) {
        let n = cloud.len();
        self.nodes.clear();
        self.indices.clear();
        self.positions.clear();
        self.root = None;
        self.bounds = None;
        if n == 0 {
            return;
        }
        self.positions.reserve(n);
        for i in 0..n {
            self.positions.push(cloud.position(i));
        }
        let (min, max) = hint.known_bounds.unwrap_or_else(|| {
            let (mut min, mut max) = (self.positions[0], self.positions[0]);
            for p in &self.positions[1..] {
                min = min.min(p);
                max = max.max(p);
            }
            (min, max)
        });
        self.bounds = Some((min, max));
        self.indices.extend(0..n as u32);
        // Serial build, by design (see module docs).
        let root = self.build(0, n, min, max);
        self.root = Some(root);
    }

    fn for_each_neighbor(
        &self,
        _cloud: &dyn PointCloud,
        pos: Real3,
        exclude: Option<usize>,
        radius: f64,
        scratch: &mut NeighborQueryScratch,
        visit: &mut dyn FnMut(usize, Real3, f64),
    ) {
        if let Some(root) = self.root {
            self.search(
                root,
                pos,
                exclude,
                radius,
                radius * radius,
                &mut scratch.node_stack,
                visit,
            );
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.indices.clear();
        self.positions.clear();
        self.root = None;
        self.bounds = None;
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.indices.capacity() * std::mem::size_of::<u32>()
            + self.positions.capacity() * std::mem::size_of::<Real3>()
    }

    fn name(&self) -> &'static str {
        "kd_tree"
    }

    fn bounds(&self) -> Option<(Real3, Real3)> {
        self.bounds
    }
}
