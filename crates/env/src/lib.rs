//! # bdm-env
//!
//! Radial neighbor-search environments (paper Sections 2 and 3.1).
//!
//! BioDynaMo exposes a common `Environment` interface with three
//! implementations compared in the paper's Figure 11:
//!
//! * [`UniformGridEnvironment`] — the paper's optimized uniform grid with
//!   timestamped boxes (O(#agents) rebuild) and an array-based linked list;
//!   the engine's default and the fastest choice for the agent workload.
//! * [`KdTreeEnvironment`] — a from-scratch kd-tree standing in for the
//!   `nanoflann` backend (serial build, bucketed leaves).
//! * [`OctreeEnvironment`] — a from-scratch octree standing in for the
//!   Behley et al. backend (serial build, bucket-size parameter).
//! * [`BruteForceEnvironment`] — O(n²) reference used by tests.
//!
//! Environments index any [`PointCloud`]; the engine adapts its resource
//! manager to this trait, and tests use plain position slices.
//!
//! Queries are **allocation-free**: every call to
//! [`Environment::for_each_neighbor`] threads a caller-owned
//! [`NeighborQueryScratch`] through the index so that tree traversals reuse
//! one node stack instead of allocating per query. The engine keeps one
//! scratch per worker thread; tests and examples create one on the stack.

#![warn(missing_docs)]

pub mod brute;
pub mod kdtree;
pub mod octree;
pub mod uniform_grid;

use bdm_util::Real3;

pub use brute::BruteForceEnvironment;
pub use kdtree::KdTreeEnvironment;
pub use octree::OctreeEnvironment;
pub use uniform_grid::{SortedSlot, StencilRuns, UniformGridEnvironment};

/// Read-only view of the agent positions an environment indexes.
pub trait PointCloud: Sync {
    /// Number of points.
    fn len(&self) -> usize;
    /// True if the cloud holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Position of point `idx` (`idx < len`).
    fn position(&self, idx: usize) -> Real3;
    /// The positions as one contiguous slice, if the cloud is backed by
    /// one. Index rebuilds are O(#agents) sweeps over the positions; a
    /// slice lets them read straight memory instead of a virtual call per
    /// point (the engine hands the environment its snapshot's position
    /// array, so the hot path always takes this route).
    fn positions_slice(&self) -> Option<&[Real3]> {
        None
    }
    /// Per-point diameters parallel to the positions, if the cloud carries
    /// them (the engine's snapshot does; raw position clouds do not).
    /// Consumed by the uniform grid's conditional diameter scatter when the
    /// caller's [`UpdateHint::scatter_diameters`] requests it.
    fn diameters(&self) -> Option<&[f64]> {
        None
    }
}

impl PointCloud for Vec<Real3> {
    fn len(&self) -> usize {
        <[Real3]>::len(self)
    }
    fn position(&self, idx: usize) -> Real3 {
        self[idx]
    }
    fn positions_slice(&self) -> Option<&[Real3]> {
        Some(self)
    }
}

/// Borrowed position slice viewed as a [`PointCloud`] (used by tests,
/// examples, the baseline engine, and the engine's snapshot positions).
#[derive(Debug, Clone, Copy)]
pub struct SliceCloud<'a>(pub &'a [Real3]);

impl PointCloud for SliceCloud<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn position(&self, idx: usize) -> Real3 {
        self.0[idx]
    }
    fn positions_slice(&self) -> Option<&[Real3]> {
        Some(self.0)
    }
}

/// Reusable per-thread scratch space for neighbor queries.
///
/// Fixed-radius queries must not allocate on the hot path (paper
/// Challenge 1: the neighbor phase dominates at 10⁶+ agents). Environments
/// that need traversal state — the kd-tree and octree node stacks — borrow
/// it from this scratch instead of allocating per query; the uniform grid
/// needs none. The buffers grow to a high-water mark on the first queries
/// and are reused afterwards, so steady-state queries perform **zero**
/// allocations.
///
/// The engine owns one scratch per worker thread (inside its per-thread
/// execution context); standalone callers create one with
/// [`NeighborQueryScratch::new`] and reuse it across queries.
#[derive(Debug, Default)]
pub struct NeighborQueryScratch {
    /// Node stack reused by the tree-based environments' iterative
    /// traversals (node ids into their arena vectors).
    pub(crate) node_stack: Vec<u32>,
}

impl NeighborQueryScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused.
    pub fn new() -> NeighborQueryScratch {
        NeighborQueryScratch::default()
    }
}

/// Which neighbor-search backend to use (paper Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EnvironmentKind {
    /// The optimized uniform grid of Section 3.1 (default).
    #[default]
    UniformGrid,
    /// kd-tree (nanoflann stand-in).
    KdTree,
    /// Octree (Behley et al. stand-in).
    Octree,
    /// O(n²) brute force — the differential-testing reference backend.
    Brute,
}

impl EnvironmentKind {
    /// Instantiates the corresponding environment with default parameters.
    pub fn create(self) -> Box<dyn Environment> {
        match self {
            EnvironmentKind::UniformGrid => Box::new(UniformGridEnvironment::new()),
            EnvironmentKind::KdTree => Box::new(KdTreeEnvironment::new()),
            EnvironmentKind::Octree => Box::new(OctreeEnvironment::new()),
            EnvironmentKind::Brute => Box::new(BruteForceEnvironment::new()),
        }
    }

    /// Stable wire code used by the checkpoint format. Codes are append-only:
    /// existing values never change meaning across engine versions.
    pub fn code(self) -> u8 {
        match self {
            EnvironmentKind::UniformGrid => 0,
            EnvironmentKind::KdTree => 1,
            EnvironmentKind::Octree => 2,
            EnvironmentKind::Brute => 3,
        }
    }

    /// Inverse of [`EnvironmentKind::code`]; `None` for unknown codes
    /// (e.g. a checkpoint written by a newer engine).
    pub fn from_code(code: u8) -> Option<EnvironmentKind> {
        match code {
            0 => Some(EnvironmentKind::UniformGrid),
            1 => Some(EnvironmentKind::KdTree),
            2 => Some(EnvironmentKind::Octree),
            3 => Some(EnvironmentKind::Brute),
            _ => None,
        }
    }

    /// All backends, in wire-code order — the differential suites iterate
    /// this instead of hard-coding the list.
    pub const ALL: [EnvironmentKind; 4] = [
        EnvironmentKind::UniformGrid,
        EnvironmentKind::KdTree,
        EnvironmentKind::Octree,
        EnvironmentKind::Brute,
    ];
}

/// Engine-supplied context for one [`Environment::update_with`] call.
///
/// The scheduler knows, before the index is rebuilt, which consumers will
/// touch it this iteration and what it already learned about the cloud while
/// gathering the iteration snapshot. The hint lets an index skip work that
/// nobody will read:
///
/// * `build_box_lists` — whether any consumer will walk the uniform grid's
///   per-box linked lists (`box_head` / `successor` / `for_each_in_box`)
///   this iteration. When `false` *and* the cloud is dense enough for the
///   SoA query cache, the grid skips the CAS linked-list insertion entirely;
///   sparse clouds build the lists regardless because queries fall back to
///   them. Environments without box lists ignore the flag.
/// * `known_bounds` — axis-aligned bounds of `cloud`, if the caller already
///   computed them (the engine derives them during the snapshot gather, so
///   the index build saves a full pass over the agents). Must enclose every
///   point of the cloud exactly as tightly as the index's own reduction
///   would (the engine passes the min/max over the identical positions).
/// * `scatter_diameters` — whether some consumer will read neighbor
///   *diameters* this iteration (the scheduler's due-kernel
///   `NeighborAccess` union declares it). The uniform grid then scatters a
///   box-sorted diameter array alongside its query cache in the same pass
///   — if the cloud carries diameters ([`PointCloud::diameters`]) — so the
///   force kernel streams them with the positions instead of gathering
///   `diameters[idx]` per accepted neighbor. Purely an optimization:
///   readers fall back to the lazy per-index load when the scatter was
///   skipped, and the scattered values are bitwise copies.
///
/// [`UpdateHint::default`] is the conservative standalone contract: build
/// everything the cloud supports, compute bounds from the cloud — except
/// the diameter scatter, which defaults off because plain position clouds
/// carry no diameters and no reader requires it for correctness.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpdateHint {
    /// Request the per-box linked lists even if queries will not need them.
    pub build_box_lists: BoxListPolicy,
    /// Precomputed tight bounds of the cloud, if the caller has them.
    pub known_bounds: Option<(Real3, Real3)>,
    /// Request the box-sorted diameter scatter (uniform grid only; requires
    /// the cloud to implement [`PointCloud::diameters`]).
    pub scatter_diameters: bool,
    /// Pin the uniform grid's geometry to an externally fixed frame instead
    /// of deriving it from the cloud (sharded execution; see [`GridFrame`]).
    /// `None` (the default) keeps the self-derived geometry.
    pub grid_frame: Option<GridFrame>,
}

/// Externally pinned grid geometry for a [`UniformGridEnvironment`] build.
///
/// The sharded engine gives every shard its own grid over a *subset* of the
/// global point cloud (owned + halo agents), but bitwise shard-count
/// invariance requires each agent to land in **exactly** the box the
/// single-engine global grid would assign — the box coordinate computation
/// `((pos - anchor) * inv_box_length) as i64` is floating point, so the
/// anchor must be the *global* anchor, not the shard cloud's own minimum.
///
/// A frame pins: the global anchor, the shard's window into the global box
/// lattice (`box_offset` + `dims`, so a shard only allocates boxes for its
/// own region), and the global SoA-cache decision (`build_cache`), which
/// must not flip per shard because the SoA and linked-list query paths
/// enumerate neighbors along different (equally valid) orders.
///
/// Box coordinates are computed against the global frame first and then
/// shifted by `box_offset` in exact integer arithmetic, so membership is
/// bitwise-identical to the global grid by construction.
#[derive(Debug, Clone, Copy)]
pub struct GridFrame {
    /// Global grid anchor (the single-engine `grid_min`).
    pub anchor: Real3,
    /// Global grid dimensions in boxes (the single-engine `dims`); global
    /// box coordinates are clamped into this lattice *before* the window
    /// shift, mirroring the single-engine clamp.
    pub global_dims: [u32; 3],
    /// Global box coordinate of this window's origin box.
    pub box_offset: [u32; 3],
    /// Window dimensions in boxes; the build allocates only
    /// `dims[0]·dims[1]·dims[2]` boxes.
    pub dims: [u32; 3],
    /// The *global* grid's SoA-cache decision, forced onto this build.
    pub build_cache: bool,
}

/// Whether [`Environment::update_with`] must materialize the uniform grid's
/// per-box linked lists (see [`UpdateHint::build_box_lists`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoxListPolicy {
    /// Build the lists unconditionally (standalone/default contract: all
    /// grid accessors stay usable).
    #[default]
    Always,
    /// Build the lists only when the index needs them itself (the uniform
    /// grid's sparse fallback); dense clouds serve every registered
    /// consumer from the SoA cache.
    IfNeeded,
}

/// A rebuildable fixed-radius neighbor-search index.
pub trait Environment: Send + Sync {
    /// Rebuilds the index over `cloud` for fixed-radius queries up to
    /// `interaction_radius` (known at the start of each iteration; paper
    /// Section 3.1 exploits exactly this). Equivalent to
    /// [`Environment::update_with`] under [`UpdateHint::default`] — every
    /// auxiliary structure is built, bounds are computed from the cloud.
    fn update(&mut self, cloud: &dyn PointCloud, interaction_radius: f64) {
        self.update_with(cloud, interaction_radius, UpdateHint::default());
    }

    /// Rebuilds the index like [`Environment::update`], with an engine
    /// [`UpdateHint`] describing which capabilities this iteration's
    /// consumers actually need. Implementations may use the hint to skip
    /// work (the uniform grid's lazy linked list) but must stay correct if
    /// they ignore it.
    fn update_with(&mut self, cloud: &dyn PointCloud, interaction_radius: f64, hint: UpdateHint);

    /// Visits every point within `radius` of `pos` (`radius` must not exceed
    /// the `interaction_radius` the index was built with). `exclude` skips
    /// the querying agent itself. The callback receives
    /// `(index, position, distance²)` — the index streams the accepted
    /// neighbor's position it already loaded for the distance test, so
    /// consumers never pay a second (random-access) position load.
    ///
    /// `cloud` must be the point cloud the index was built over: the index
    /// stores agent *indices*, and implementations may either re-read
    /// positions through `cloud` or stream them from a position copy cached
    /// at [`Environment::update`] time (both are equivalent under the
    /// contract that `cloud` is unchanged since the last update).
    ///
    /// `scratch` provides reusable traversal state so the query performs no
    /// allocation; pass the same scratch for consecutive queries on one
    /// thread to stay at its high-water mark.
    fn for_each_neighbor(
        &self,
        cloud: &dyn PointCloud,
        pos: Real3,
        exclude: Option<usize>,
        radius: f64,
        scratch: &mut NeighborQueryScratch,
        visit: &mut dyn FnMut(usize, Real3, f64),
    );

    /// Drops the index contents.
    fn clear(&mut self);

    /// Approximate heap footprint of the index, for the Figure 11d
    /// comparison.
    fn memory_bytes(&self) -> usize;

    /// Short name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Axis-aligned bounds of the indexed points, if any.
    fn bounds(&self) -> Option<(Real3, Real3)>;

    /// Downcast used by the agent-sorting operation, which exploits the
    /// uniform grid's internals (paper Section 4.2: "we utilize its
    /// characteristics to achieve fast sorting and balancing").
    fn as_uniform_grid(&self) -> Option<&UniformGridEnvironment> {
        None
    }
}

/// Collects neighbor indices, sorted — convenience for tests and examples.
pub fn neighbors_of(
    env: &dyn Environment,
    cloud: &dyn PointCloud,
    pos: Real3,
    exclude: Option<usize>,
    radius: f64,
) -> Vec<usize> {
    let mut out = Vec::new();
    let mut scratch = NeighborQueryScratch::new();
    env.for_each_neighbor(
        cloud,
        pos,
        exclude,
        radius,
        &mut scratch,
        &mut |idx, _pos, _d2| out.push(idx),
    );
    out.sort_unstable();
    out
}
