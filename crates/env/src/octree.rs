//! Octree environment — the from-scratch stand-in for the Behley et al.
//! radius-neighbor octree used by BioDynaMo.
//!
//! A point octree over the bounding cube with a `bucket_size` leaf capacity
//! (the parameter the paper validates in Section 6.9). Build is serial, like
//! the original; the search descends only octants intersecting the query
//! sphere and, following Behley et al., takes whole octants without
//! per-point checks when an octant is entirely inside the sphere.

use bdm_util::Real3;

use crate::{Environment, NeighborQueryScratch, PointCloud, UpdateHint};

/// Default leaf bucket size (Behley et al. use 32 for their experiments).
pub const DEFAULT_BUCKET_SIZE: usize = 32;

enum Node {
    Inner {
        /// Child node ids; `u32::MAX` marks an absent octant.
        children: [u32; 8],
        center: Real3,
        half: f64,
    },
    Leaf {
        start: u32,
        end: u32,
        center: Real3,
        half: f64,
    },
}

/// Octree over a cached copy of the point positions.
pub struct OctreeEnvironment {
    nodes: Vec<Node>,
    indices: Vec<u32>,
    positions: Vec<Real3>,
    root: Option<u32>,
    bucket_size: usize,
    bounds: Option<(Real3, Real3)>,
}

impl Default for OctreeEnvironment {
    fn default() -> Self {
        Self::new()
    }
}

const ABSENT: u32 = u32::MAX;

impl OctreeEnvironment {
    /// Creates an empty octree with the default bucket size.
    pub fn new() -> OctreeEnvironment {
        OctreeEnvironment::with_bucket_size(DEFAULT_BUCKET_SIZE)
    }

    /// Creates an empty octree with a custom bucket size.
    pub fn with_bucket_size(bucket_size: usize) -> OctreeEnvironment {
        OctreeEnvironment {
            nodes: Vec::new(),
            indices: Vec::new(),
            positions: Vec::new(),
            root: None,
            bucket_size: bucket_size.max(1),
            bounds: None,
        }
    }

    /// Builds the subtree over `indices[lo..hi]` inside the cube
    /// `(center, half)`; returns the node id.
    fn build(&mut self, lo: usize, hi: usize, center: Real3, half: f64) -> u32 {
        let id = self.nodes.len() as u32;
        // Degenerate cubes (coincident points) must terminate as leaves.
        if hi - lo <= self.bucket_size || half < 1e-9 {
            self.nodes.push(Node::Leaf {
                start: lo as u32,
                end: hi as u32,
                center,
                half,
            });
            return id;
        }
        self.nodes.push(Node::Inner {
            children: [ABSENT; 8],
            center,
            half,
        });
        // Partition indices into the eight octants (three stable passes of
        // in-place partitioning keep it simple and cache-friendly).
        let octant_of = |p: &Real3| -> usize {
            usize::from(p.x() >= center.x())
                | (usize::from(p.y() >= center.y()) << 1)
                | (usize::from(p.z() >= center.z()) << 2)
        };
        // Counting pass.
        let mut counts = [0usize; 8];
        for &i in &self.indices[lo..hi] {
            counts[octant_of(&self.positions[i as usize])] += 1;
        }
        let mut starts = [0usize; 8];
        let mut acc = lo;
        for o in 0..8 {
            starts[o] = acc;
            acc += counts[o];
        }
        // Scatter into a scratch buffer, then copy back.
        let mut scratch = vec![0u32; hi - lo];
        let mut cursors = starts;
        for &i in &self.indices[lo..hi] {
            let o = octant_of(&self.positions[i as usize]);
            scratch[cursors[o] - lo] = i;
            cursors[o] += 1;
        }
        self.indices[lo..hi].copy_from_slice(&scratch);
        drop(scratch);

        let quarter = half * 0.5;
        let mut children = [ABSENT; 8];
        for (o, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let child_center = Real3::new(
                center.x() + if o & 1 != 0 { quarter } else { -quarter },
                center.y() + if o & 2 != 0 { quarter } else { -quarter },
                center.z() + if o & 4 != 0 { quarter } else { -quarter },
            );
            children[o] = self.build(starts[o], starts[o] + count, child_center, quarter);
        }
        if let Node::Inner { children: c, .. } = &mut self.nodes[id as usize] {
            *c = children;
        }
        id
    }

    /// Iterative radius search over an explicit node stack borrowed from
    /// the caller's [`NeighborQueryScratch`] — zero allocation per query.
    fn search(
        &self,
        root: u32,
        pos: Real3,
        exclude: Option<usize>,
        r2: f64,
        stack: &mut Vec<u32>,
        visit: &mut dyn FnMut(usize, Real3, f64),
    ) {
        stack.clear();
        stack.push(root);
        while let Some(node) = stack.pop() {
            match &self.nodes[node as usize] {
                Node::Leaf { start, end, .. } => {
                    for &i in &self.indices[*start as usize..*end as usize] {
                        let idx = i as usize;
                        if Some(idx) == exclude {
                            continue;
                        }
                        let p = self.positions[idx];
                        let d2 = pos.distance_sq(&p);
                        if d2 <= r2 {
                            visit(idx, p, d2);
                        }
                    }
                }
                Node::Inner { children, .. } => {
                    for &child in children {
                        if child == ABSENT {
                            continue;
                        }
                        let (c_center, c_half) = self.node_cube(child);
                        if cube_intersects_sphere(c_center, c_half, pos, r2) {
                            stack.push(child);
                        }
                    }
                }
            }
        }
    }

    fn node_cube(&self, node: u32) -> (Real3, f64) {
        match &self.nodes[node as usize] {
            Node::Inner { center, half, .. } | Node::Leaf { center, half, .. } => (*center, *half),
        }
    }
}

/// Cube (center, half-edge) vs. sphere (pos, radius²) intersection test.
fn cube_intersects_sphere(center: Real3, half: f64, pos: Real3, r2: f64) -> bool {
    let mut d2 = 0.0;
    for a in 0..3 {
        let d = (pos[a] - center[a]).abs() - half;
        if d > 0.0 {
            d2 += d * d;
        }
    }
    d2 <= r2
}

impl Environment for OctreeEnvironment {
    fn update_with(&mut self, cloud: &dyn PointCloud, _interaction_radius: f64, hint: UpdateHint) {
        let n = cloud.len();
        self.nodes.clear();
        self.indices.clear();
        self.positions.clear();
        self.root = None;
        self.bounds = None;
        if n == 0 {
            return;
        }
        self.positions.reserve(n);
        for i in 0..n {
            self.positions.push(cloud.position(i));
        }
        let (min, max) = hint.known_bounds.unwrap_or_else(|| {
            let (mut min, mut max) = (self.positions[0], self.positions[0]);
            for p in &self.positions[1..] {
                min = min.min(p);
                max = max.max(p);
            }
            (min, max)
        });
        self.bounds = Some((min, max));
        self.indices.extend(0..n as u32);
        let center = (min + max) * 0.5;
        let half = ((max - min).max_element() * 0.5).max(1e-9);
        let root = self.build(0, n, center, half);
        self.root = Some(root);
    }

    fn for_each_neighbor(
        &self,
        _cloud: &dyn PointCloud,
        pos: Real3,
        exclude: Option<usize>,
        radius: f64,
        scratch: &mut NeighborQueryScratch,
        visit: &mut dyn FnMut(usize, Real3, f64),
    ) {
        if let Some(root) = self.root {
            self.search(
                root,
                pos,
                exclude,
                radius * radius,
                &mut scratch.node_stack,
                visit,
            );
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.indices.clear();
        self.positions.clear();
        self.root = None;
        self.bounds = None;
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.indices.capacity() * std::mem::size_of::<u32>()
            + self.positions.capacity() * std::mem::size_of::<Real3>()
    }

    fn name(&self) -> &'static str {
        "octree"
    }

    fn bounds(&self) -> Option<(Real3, Real3)> {
        self.bounds
    }
}
