//! The optimized uniform grid of paper Section 3.1.
//!
//! Key properties reproduced from the paper:
//!
//! * **O(#agents) rebuild** — every box carries a timestamp; a box is empty
//!   unless its timestamp equals the grid's current one, so boxes are never
//!   zeroed ("we can build the grid in O(#agents) time instead of
//!   O(#agents + #boxes), which is relevant for large simulation spaces that
//!   are not fully populated").
//! * **Array-based linked list** — agents in a box form a singly-linked list
//!   through the `successors` array, indexed by the same agent indices as the
//!   resource manager; the box only stores the list head. After agent sorting
//!   (Section 4.2) agents that share a box are also close in memory, which
//!   speeds up walking this list.
//! * **Parallel build** — agents are inserted concurrently with a CAS on the
//!   packed `(timestamp, head)` word of their box.
//! * **3×3×3 search** — a fixed-radius query visits the query box and its 26
//!   surrounding boxes.
//! * **SoA query cache** — when the box table is dense enough, `update()`
//!   additionally builds a per-box-sorted structure-of-arrays copy of the
//!   positions (positions + agent indices delimited by a prefix-sum offset
//!   table). Queries then stream contiguous memory instead of chasing the
//!   `successors` linked list through array-of-structs agents, and because
//!   boxes adjacent in x are adjacent in the sorted arrays, the 3×3×3
//!   stencil collapses into nine contiguous runs.

use std::sync::atomic::{AtomicU64, Ordering};

use bdm_util::prefix_sum::prefix_sum_exclusive;
use bdm_util::send_ptr::SendMut;
use bdm_util::Real3;
use rayon::prelude::*;

use crate::{Environment, NeighborQueryScratch, PointCloud};

/// Sentinel for "no agent" in box heads and the successors list.
const NIL: u32 = u32::MAX;

/// Below this point count the build runs serially: the fork-join overhead of
/// the parallel path costs more than the whole serial build (measured with
/// the `env_build` Criterion bench; the paper's Challenge 1 concerns large
/// populations, where the parallel path wins).
const PARALLEL_BUILD_THRESHOLD: usize = 1 << 16;

/// The SoA query cache is built only when the box table is at most this many
/// boxes per indexed point. Beyond it the cloud is so sparse that the
/// per-box passes of the cache build (O(#boxes)) would break the grid's
/// O(#agents) rebuild guarantee — those clouds keep the linked-list query
/// path, whose lazy timestamps never touch empty boxes.
const SOA_MAX_BOXES_PER_POINT: usize = 4;

/// Packs a box's `(timestamp, head)` into one atomic word so that the lazy
/// reset-on-first-touch and the list push are a single CAS.
#[inline]
fn pack(ts: u32, head: u32) -> u64 {
    ((ts as u64) << 32) | head as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// The uniform grid environment (`UniformGridEnvironment` in BioDynaMo).
///
/// # Example
///
/// Index a point cloud and run an allocation-free fixed-radius query:
///
/// ```
/// use bdm_env::{Environment, NeighborQueryScratch, UniformGridEnvironment};
/// use bdm_util::Real3;
///
/// let points = vec![
///     Real3::new(0.0, 0.0, 0.0),
///     Real3::new(1.0, 0.0, 0.0),
///     Real3::new(9.0, 0.0, 0.0),
/// ];
/// let mut grid = UniformGridEnvironment::new();
/// grid.update(&points, 2.0); // interaction radius = box edge length
///
/// let mut scratch = NeighborQueryScratch::new();
/// let mut hits = Vec::new();
/// grid.for_each_neighbor(
///     &points,
///     points[0],
///     Some(0), // exclude the querying point itself
///     2.0,
///     &mut scratch,
///     &mut |idx, d2| hits.push((idx, d2)),
/// );
/// assert_eq!(hits, vec![(1, 1.0)]);
/// ```
pub struct UniformGridEnvironment {
    /// Packed `(timestamp, head)` per box.
    boxes: Vec<AtomicU64>,
    /// `successors[i]` = next agent in the same box, or `NIL`.
    successors: Vec<u32>,
    /// Current grid timestamp; a box is valid only if its stamp matches.
    timestamp: u32,
    /// Number of boxes per axis.
    dims: [u32; 3],
    /// Lower corner of the grid.
    grid_min: Real3,
    /// Edge length of a cubic box (= interaction radius).
    box_length: f64,
    /// Cached `1 / box_length`: the per-point box computation multiplies
    /// instead of dividing (three divisions per agent dominate the build
    /// otherwise).
    inv_box_length: f64,
    /// Number of indexed points.
    num_points: usize,
    /// Bounds of the indexed points.
    bounds: Option<(Real3, Real3)>,
    /// Exclusive prefix-sum offset table of the SoA cache: box `b`'s agents
    /// occupy `sorted_*[cell_offsets[b]..cell_offsets[b + 1]]`. Only valid
    /// while `soa_active`.
    cell_offsets: Vec<usize>,
    /// Positions grouped by box (SoA copy taken at `update()` time).
    sorted_positions: Vec<Real3>,
    /// Agent indices parallel to `sorted_positions`.
    sorted_indices: Vec<u32>,
    /// Per-agent flat box index recorded during insertion (scratch for the
    /// agent-major counting sort of the SoA build; filled only when the
    /// cache will be built).
    agent_boxes: Vec<u64>,
    /// Per-box write cursors of the SoA scatter pass (scratch, reused).
    soa_cursors: Vec<usize>,
    /// Whether the SoA cache matches the current build (dense clouds only;
    /// see [`SOA_MAX_BOXES_PER_POINT`]).
    soa_active: bool,
}

impl Default for UniformGridEnvironment {
    fn default() -> Self {
        Self::new()
    }
}

impl UniformGridEnvironment {
    /// Creates an empty grid.
    pub fn new() -> UniformGridEnvironment {
        UniformGridEnvironment {
            boxes: Vec::new(),
            successors: Vec::new(),
            timestamp: 0,
            dims: [0; 3],
            grid_min: Real3::ZERO,
            box_length: 1.0,
            inv_box_length: 1.0,
            num_points: 0,
            bounds: None,
            cell_offsets: Vec::new(),
            sorted_positions: Vec::new(),
            sorted_indices: Vec::new(),
            agent_boxes: Vec::new(),
            soa_cursors: Vec::new(),
            soa_active: false,
        }
    }

    /// Number of boxes per axis.
    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    /// Lower corner of the grid.
    pub fn grid_min(&self) -> Real3 {
        self.grid_min
    }

    /// Box edge length the grid was built with.
    pub fn box_length(&self) -> f64 {
        self.box_length
    }

    /// Total number of boxes.
    pub fn num_boxes(&self) -> usize {
        self.dims.iter().map(|&d| d as usize).product()
    }

    /// Box coordinates containing `pos` (clamped into the grid).
    #[inline]
    pub fn box_coordinates(&self, pos: Real3) -> [u32; 3] {
        let mut out = [0u32; 3];
        for a in 0..3 {
            let rel = (pos[a] - self.grid_min[a]) * self.inv_box_length;
            let idx = if rel <= 0.0 { 0 } else { rel as i64 };
            out[a] = (idx.min(self.dims[a] as i64 - 1)).max(0) as u32;
        }
        out
    }

    /// Flattened (row-major) index of box `(x, y, z)`.
    #[inline]
    pub fn flat_index(&self, bc: [u32; 3]) -> usize {
        (bc[0] as usize)
            + (self.dims[0] as usize)
                * ((bc[1] as usize) + (self.dims[1] as usize) * bc[2] as usize)
    }

    /// Head of the agent list of the box at `flat` (used by the sorting
    /// operation), or `None` if the box is empty this iteration.
    #[inline]
    pub fn box_head(&self, flat: usize) -> Option<u32> {
        let (ts, head) = unpack(self.boxes[flat].load(Ordering::Relaxed));
        (ts == self.timestamp && head != NIL).then_some(head)
    }

    /// Successor of `agent` within its box list (used by the sorting
    /// operation).
    #[inline]
    pub fn successor(&self, agent: u32) -> Option<u32> {
        let next = self.successors[agent as usize];
        (next != NIL).then_some(next)
    }

    /// Iterates the agents of one box.
    pub fn for_each_in_box(&self, flat: usize, visit: &mut dyn FnMut(u32)) {
        let mut cur = self.box_head(flat);
        while let Some(i) = cur {
            visit(i);
            cur = self.successor(i);
        }
    }

    /// Whether the last [`Environment::update`] built the SoA query cache
    /// (dense clouds; see the module docs). When `false`, queries fall back
    /// to walking the `successors` linked list.
    pub fn soa_active(&self) -> bool {
        self.soa_active
    }

    /// Builds the SoA query cache: an agent-major counting sort of all
    /// agents by box, reading the per-agent flat box index recorded in
    /// `agent_boxes` during insertion — no linked-list walks, so the build
    /// streams the agent arrays instead of pointer-chasing `successors`:
    ///
    /// 1. count agents per box, exclusive prefix sum → `cell_offsets`;
    /// 2. scatter each agent's position/index into its box's range.
    ///
    /// All buffers are reused across updates (grow-only), so a steady-state
    /// rebuild allocates nothing. Above the build threshold both passes run
    /// in parallel with one relaxed `fetch_add` per agent (same cost class
    /// as the insertion CAS); within-box order then depends on scheduling,
    /// exactly like the linked-list order after a parallel insertion.
    fn build_soa(&mut self, cloud: &dyn PointCloud, n: usize, nboxes: usize) {
        self.cell_offsets.clear();
        self.cell_offsets.resize(nboxes + 1, 0);
        let flats = &self.agent_boxes[..n];
        // Pass 1: per-box counts into cell_offsets[..nboxes] (the final
        // slot stays 0 so the exclusive prefix sum turns it into the
        // total).
        if n < PARALLEL_BUILD_THRESHOLD {
            for &flat in flats {
                self.cell_offsets[flat as usize] += 1;
            }
        } else {
            // SAFETY: usize and AtomicUsize have identical layout; the
            // counts are only accessed through the atomic view here. The
            // pointer comes from `as_mut_ptr` because the view mutates.
            let counts = unsafe {
                std::slice::from_raw_parts(
                    self.cell_offsets.as_mut_ptr() as *const std::sync::atomic::AtomicUsize,
                    nboxes,
                )
            };
            (0..n).into_par_iter().for_each(|i| {
                counts[flats[i] as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
        let total = prefix_sum_exclusive(&mut self.cell_offsets);
        debug_assert_eq!(total, n, "agent_boxes must cover every indexed point");
        self.soa_cursors.clear();
        self.soa_cursors
            .extend_from_slice(&self.cell_offsets[..nboxes]);
        self.sorted_positions.resize(n, Real3::ZERO);
        self.sorted_indices.resize(n, 0);
        // Pass 2: scatter. Each agent claims the next slot of its box; box
        // ranges are disjoint by construction of the prefix sum.
        let flats = &self.agent_boxes[..n];
        let pos_ptr = SendMut::new(self.sorted_positions.as_mut_ptr());
        let idx_ptr = SendMut::new(self.sorted_indices.as_mut_ptr());
        if n < PARALLEL_BUILD_THRESHOLD {
            for (i, &flat) in flats.iter().enumerate() {
                let w = self.soa_cursors[flat as usize];
                self.soa_cursors[flat as usize] = w + 1;
                // SAFETY: slot `w` is claimed exactly once (serial cursor).
                unsafe {
                    pos_ptr.write(w, cloud.position(i));
                    idx_ptr.write(w, i as u32);
                }
            }
        } else {
            // SAFETY: usize and AtomicUsize have identical layout; the
            // cursors are only accessed through the atomic view here. The
            // pointer comes from `as_mut_ptr` because the view mutates.
            let cursors = unsafe {
                std::slice::from_raw_parts(
                    self.soa_cursors.as_mut_ptr() as *const std::sync::atomic::AtomicUsize,
                    nboxes,
                )
            };
            (0..n).into_par_iter().for_each(|i| {
                let w = cursors[flats[i] as usize].fetch_add(1, Ordering::Relaxed);
                // SAFETY: `fetch_add` hands each slot to exactly one task.
                unsafe {
                    pos_ptr.write(w, cloud.position(i));
                    idx_ptr.write(w, i as u32);
                }
            });
        }
        self.soa_active = true;
    }
}

impl Environment for UniformGridEnvironment {
    fn update(&mut self, cloud: &dyn PointCloud, interaction_radius: f64) {
        assert!(
            interaction_radius > 0.0 && interaction_radius.is_finite(),
            "interaction radius must be positive and finite"
        );
        let n = cloud.len();
        self.num_points = n;
        self.soa_active = false;
        self.timestamp = self.timestamp.wrapping_add(1);
        if self.timestamp == 0 {
            // Extremely rare wrap: all stale stamps become ambiguous; reset.
            for b in &self.boxes {
                b.store(pack(0, NIL), Ordering::Relaxed);
            }
            self.timestamp = 1;
        }
        if n == 0 {
            self.bounds = None;
            self.dims = [0; 3];
            return;
        }

        // Bounding box (parallel reduction above the threshold).
        let neutral = || (Real3::splat(f64::INFINITY), Real3::splat(f64::NEG_INFINITY));
        let (min, max) = if n < PARALLEL_BUILD_THRESHOLD {
            (0..n).fold(neutral(), |(lo, hi), i| {
                let p = cloud.position(i);
                (lo.min(&p), hi.max(&p))
            })
        } else {
            (0..n)
                .into_par_iter()
                .fold(neutral, |(lo, hi), i| {
                    let p = cloud.position(i);
                    (lo.min(&p), hi.max(&p))
                })
                .reduce(neutral, |a, b| (a.0.min(&b.0), a.1.max(&b.1)))
        };
        self.bounds = Some((min, max));
        self.box_length = interaction_radius;
        self.inv_box_length = 1.0 / interaction_radius;
        self.grid_min = min;
        let mut nboxes = 1usize;
        for a in 0..3 {
            let extent = (max[a] - min[a]).max(0.0);
            let d = (extent / interaction_radius).floor() as u32 + 1;
            // Cap per-axis dimension to the Morton range.
            self.dims[a] = d.min(1 << 20);
            nboxes = nboxes.saturating_mul(self.dims[a] as usize);
        }

        // Grow (never shrink) the box array; fresh boxes get timestamp 0,
        // which is always stale because `timestamp` starts at 1.
        if self.boxes.len() < nboxes {
            let additional = nboxes - self.boxes.len();
            self.boxes.reserve(additional);
            let start = self.boxes.len();
            if additional < PARALLEL_BUILD_THRESHOLD {
                for _ in 0..additional {
                    self.boxes.push(AtomicU64::new(pack(0, NIL)));
                }
            } else {
                // Parallel-init the new tail (paper Challenge 1: resizing a
                // large vector is single-threaded by default).
                unsafe {
                    let ptr = BoxesPtr(self.boxes.as_mut_ptr().add(start));
                    (0..additional).into_par_iter().for_each(|i| {
                        // SAFETY: each index written exactly once, within capacity.
                        ptr.write(i, AtomicU64::new(pack(0, NIL)));
                    });
                    self.boxes.set_len(nboxes);
                }
            }
        }
        // `successors` entries are fully overwritten during insertion, so
        // only growth needs initialization.
        if self.successors.len() < n {
            self.successors.resize(n, NIL);
        }

        // Dense clouds additionally get the SoA query cache (built below);
        // sparse clouds skip it to preserve the O(#agents) rebuild (module
        // docs). Decide now so the insertion pass can record each agent's
        // flat box index for the cache's counting sort.
        let build_cache = nboxes <= n.saturating_mul(SOA_MAX_BOXES_PER_POINT);
        if build_cache && self.agent_boxes.len() < n {
            self.agent_boxes.resize(n, 0);
        }

        // Insertion: serial below the threshold (plain stores), one CAS per
        // agent on the packed box word above it.
        let ts = self.timestamp;
        if n < PARALLEL_BUILD_THRESHOLD {
            for i in 0..n {
                let bc = self.box_coordinates(cloud.position(i));
                let flat = self.flat_index(bc);
                if build_cache {
                    self.agent_boxes[i] = flat as u64;
                }
                let b = &self.boxes[flat];
                let (bts, bhead) = unpack(b.load(Ordering::Relaxed));
                // Lazy reset: a stale box behaves as empty.
                let prev = if bts == ts { bhead } else { NIL };
                b.store(pack(ts, i as u32), Ordering::Relaxed);
                self.successors[i] = prev;
            }
        } else {
            let boxes = &self.boxes;
            let successors_ptr = SuccessorsPtr(self.successors.as_mut_ptr());
            let agent_boxes_ptr = SendMut::new(self.agent_boxes.as_mut_ptr());
            let grid = &*self;
            (0..n).into_par_iter().for_each(|i| {
                let bc = grid.box_coordinates(cloud.position(i));
                let flat = grid.flat_index(bc);
                if build_cache {
                    // SAFETY: slot `i` is written by exactly one task.
                    unsafe { agent_boxes_ptr.write(i, flat as u64) };
                }
                let b = &boxes[flat];
                let mut cur = b.load(Ordering::Relaxed);
                loop {
                    let (bts, bhead) = unpack(cur);
                    // Lazy reset: a stale box behaves as empty.
                    let prev = if bts == ts { bhead } else { NIL };
                    match b.compare_exchange_weak(
                        cur,
                        pack(ts, i as u32),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: slot `i` is written by exactly one task.
                            unsafe { successors_ptr.write(i, prev) };
                            break;
                        }
                        Err(c) => cur = c,
                    }
                }
            });
        }

        if build_cache {
            self.build_soa(cloud, n, nboxes);
        }
    }

    fn for_each_neighbor(
        &self,
        cloud: &dyn PointCloud,
        pos: Real3,
        exclude: Option<usize>,
        radius: f64,
        _scratch: &mut NeighborQueryScratch,
        visit: &mut dyn FnMut(usize, f64),
    ) {
        if self.num_points == 0 || self.dims[0] == 0 {
            return;
        }
        // A 3×3×3 box walk only covers queries up to the build radius;
        // anything larger would silently miss neighbors, so fail loudly
        // (models must declare their largest query via
        // `Param::interaction_radius`).
        assert!(
            radius <= self.box_length * (1.0 + 1e-12),
            "query radius {radius} exceeds the radius the uniform grid was built with ({}); \
             set Param::interaction_radius to the largest query radius of the model",
            self.box_length
        );
        let r2 = radius * radius;
        let bc = self.box_coordinates(pos);

        if self.soa_active {
            // SoA fast path. Boxes adjacent in x are adjacent both in flat
            // index and in the sorted arrays, so each (y, z) row of the
            // stencil is ONE contiguous run: the 3×3×3 cube collapses into
            // at most nine linear scans over `sorted_positions`. The
            // precomputed strides below are the per-update box-offset
            // table: `flat = x + dim_x * (y + dim_y * z)`.
            let x0 = bc[0].saturating_sub(1) as usize;
            let x1 = (bc[0] + 1).min(self.dims[0] - 1) as usize;
            let stride_y = self.dims[0] as usize;
            let stride_z = stride_y * self.dims[1] as usize;
            for dz in -1i64..=1 {
                let z = bc[2] as i64 + dz;
                if z < 0 || z >= self.dims[2] as i64 {
                    continue;
                }
                let z_base = z as usize * stride_z;
                for dy in -1i64..=1 {
                    let y = bc[1] as i64 + dy;
                    if y < 0 || y >= self.dims[1] as i64 {
                        continue;
                    }
                    let row = z_base + y as usize * stride_y;
                    let start = self.cell_offsets[row + x0];
                    let end = self.cell_offsets[row + x1 + 1];
                    for slot in start..end {
                        let d2 = pos.distance_sq(&self.sorted_positions[slot]);
                        if d2 <= r2 {
                            let idx = self.sorted_indices[slot] as usize;
                            if Some(idx) != exclude {
                                visit(idx, d2);
                            }
                        }
                    }
                }
            }
            return;
        }

        // Fallback (sparse clouds): 3×3×3 cube of boxes around the query
        // box, chasing the per-box linked list.
        for dz in -1i64..=1 {
            let z = bc[2] as i64 + dz;
            if z < 0 || z >= self.dims[2] as i64 {
                continue;
            }
            for dy in -1i64..=1 {
                let y = bc[1] as i64 + dy;
                if y < 0 || y >= self.dims[1] as i64 {
                    continue;
                }
                for dx in -1i64..=1 {
                    let x = bc[0] as i64 + dx;
                    if x < 0 || x >= self.dims[0] as i64 {
                        continue;
                    }
                    let flat = self.flat_index([x as u32, y as u32, z as u32]);
                    let mut cur = self.box_head(flat);
                    while let Some(i) = cur {
                        let idx = i as usize;
                        if Some(idx) != exclude {
                            debug_assert!(idx < self.num_points);
                            let d2 = pos.distance_sq(&cloud.position(idx));
                            if d2 <= r2 {
                                visit(idx, d2);
                            }
                        }
                        cur = self.successor(i);
                    }
                }
            }
        }
    }

    fn clear(&mut self) {
        self.boxes.clear();
        self.successors.clear();
        self.num_points = 0;
        self.dims = [0; 3];
        self.bounds = None;
        self.cell_offsets.clear();
        self.sorted_positions.clear();
        self.sorted_indices.clear();
        self.agent_boxes.clear();
        self.soa_cursors.clear();
        self.soa_active = false;
    }

    fn memory_bytes(&self) -> usize {
        self.boxes.capacity() * std::mem::size_of::<AtomicU64>()
            + self.successors.capacity() * std::mem::size_of::<u32>()
            + self.cell_offsets.capacity() * std::mem::size_of::<usize>()
            + self.sorted_positions.capacity() * std::mem::size_of::<Real3>()
            + self.sorted_indices.capacity() * std::mem::size_of::<u32>()
            + self.agent_boxes.capacity() * std::mem::size_of::<u64>()
            + self.soa_cursors.capacity() * std::mem::size_of::<usize>()
    }

    fn name(&self) -> &'static str {
        "uniform_grid"
    }

    fn bounds(&self) -> Option<(Real3, Real3)> {
        self.bounds
    }

    fn as_uniform_grid(&self) -> Option<&UniformGridEnvironment> {
        Some(self)
    }
}

/// Shared mutable pointer into the successors array; each index is written by
/// exactly one parallel task.
#[derive(Clone, Copy)]
struct SuccessorsPtr(*mut u32);
unsafe impl Send for SuccessorsPtr {}
unsafe impl Sync for SuccessorsPtr {}

impl SuccessorsPtr {
    /// # Safety
    /// `i` must be in bounds and written by exactly one task.
    #[inline]
    unsafe fn write(&self, i: usize, v: u32) {
        self.0.add(i).write(v);
    }
}

/// Shared mutable pointer into the boxes array tail during parallel init;
/// each index is written by exactly one parallel task.
#[derive(Clone, Copy)]
struct BoxesPtr(*mut AtomicU64);
unsafe impl Send for BoxesPtr {}
unsafe impl Sync for BoxesPtr {}

impl BoxesPtr {
    /// # Safety (upheld by caller context)
    /// `i` must be within the reserved capacity and written exactly once.
    #[inline]
    fn write(&self, i: usize, v: AtomicU64) {
        // SAFETY: see above; the only call site iterates disjoint indices.
        unsafe { self.0.add(i).write(v) };
    }
}
