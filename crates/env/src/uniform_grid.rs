//! The optimized uniform grid of paper Section 3.1.
//!
//! Key properties reproduced from the paper:
//!
//! * **O(#agents) rebuild** — every box carries a timestamp; a box is empty
//!   unless its timestamp equals the grid's current one, so boxes are never
//!   zeroed ("we can build the grid in O(#agents) time instead of
//!   O(#agents + #boxes), which is relevant for large simulation spaces that
//!   are not fully populated").
//! * **Array-based linked list** — agents in a box form a singly-linked list
//!   through the `successors` array, indexed by the same agent indices as the
//!   resource manager; the box only stores the list head. After agent sorting
//!   (Section 4.2) agents that share a box are also close in memory, which
//!   speeds up walking this list.
//! * **Parallel build** — agents are inserted concurrently with a CAS on the
//!   packed `(timestamp, head)` word of their box.
//! * **3×3×3 search** — a fixed-radius query visits the query box and its 26
//!   surrounding boxes.

use std::sync::atomic::{AtomicU64, Ordering};

use bdm_util::Real3;
use rayon::prelude::*;

use crate::{Environment, PointCloud};

/// Sentinel for "no agent" in box heads and the successors list.
const NIL: u32 = u32::MAX;

/// Below this point count the build runs serially: the fork-join overhead of
/// the parallel path costs more than the whole serial build (measured with
/// the `env_build` Criterion bench; the paper's Challenge 1 concerns large
/// populations, where the parallel path wins).
const PARALLEL_BUILD_THRESHOLD: usize = 1 << 16;

/// Packs a box's `(timestamp, head)` into one atomic word so that the lazy
/// reset-on-first-touch and the list push are a single CAS.
#[inline]
fn pack(ts: u32, head: u32) -> u64 {
    ((ts as u64) << 32) | head as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// The uniform grid environment (`UniformGridEnvironment` in BioDynaMo).
pub struct UniformGridEnvironment {
    /// Packed `(timestamp, head)` per box.
    boxes: Vec<AtomicU64>,
    /// `successors[i]` = next agent in the same box, or `NIL`.
    successors: Vec<u32>,
    /// Current grid timestamp; a box is valid only if its stamp matches.
    timestamp: u32,
    /// Number of boxes per axis.
    dims: [u32; 3],
    /// Lower corner of the grid.
    grid_min: Real3,
    /// Edge length of a cubic box (= interaction radius).
    box_length: f64,
    /// Cached `1 / box_length`: the per-point box computation multiplies
    /// instead of dividing (three divisions per agent dominate the build
    /// otherwise).
    inv_box_length: f64,
    /// Number of indexed points.
    num_points: usize,
    /// Bounds of the indexed points.
    bounds: Option<(Real3, Real3)>,
}

impl Default for UniformGridEnvironment {
    fn default() -> Self {
        Self::new()
    }
}

impl UniformGridEnvironment {
    /// Creates an empty grid.
    pub fn new() -> UniformGridEnvironment {
        UniformGridEnvironment {
            boxes: Vec::new(),
            successors: Vec::new(),
            timestamp: 0,
            dims: [0; 3],
            grid_min: Real3::ZERO,
            box_length: 1.0,
            inv_box_length: 1.0,
            num_points: 0,
            bounds: None,
        }
    }

    /// Number of boxes per axis.
    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    /// Lower corner of the grid.
    pub fn grid_min(&self) -> Real3 {
        self.grid_min
    }

    /// Box edge length the grid was built with.
    pub fn box_length(&self) -> f64 {
        self.box_length
    }

    /// Total number of boxes.
    pub fn num_boxes(&self) -> usize {
        self.dims.iter().map(|&d| d as usize).product()
    }

    /// Box coordinates containing `pos` (clamped into the grid).
    #[inline]
    pub fn box_coordinates(&self, pos: Real3) -> [u32; 3] {
        let mut out = [0u32; 3];
        for a in 0..3 {
            let rel = (pos[a] - self.grid_min[a]) * self.inv_box_length;
            let idx = if rel <= 0.0 { 0 } else { rel as i64 };
            out[a] = (idx.min(self.dims[a] as i64 - 1)).max(0) as u32;
        }
        out
    }

    /// Flattened (row-major) index of box `(x, y, z)`.
    #[inline]
    pub fn flat_index(&self, bc: [u32; 3]) -> usize {
        (bc[0] as usize)
            + (self.dims[0] as usize)
                * ((bc[1] as usize) + (self.dims[1] as usize) * bc[2] as usize)
    }

    /// Head of the agent list of the box at `flat` (used by the sorting
    /// operation), or `None` if the box is empty this iteration.
    #[inline]
    pub fn box_head(&self, flat: usize) -> Option<u32> {
        let (ts, head) = unpack(self.boxes[flat].load(Ordering::Relaxed));
        (ts == self.timestamp && head != NIL).then_some(head)
    }

    /// Successor of `agent` within its box list (used by the sorting
    /// operation).
    #[inline]
    pub fn successor(&self, agent: u32) -> Option<u32> {
        let next = self.successors[agent as usize];
        (next != NIL).then_some(next)
    }

    /// Iterates the agents of one box.
    pub fn for_each_in_box(&self, flat: usize, visit: &mut dyn FnMut(u32)) {
        let mut cur = self.box_head(flat);
        while let Some(i) = cur {
            visit(i);
            cur = self.successor(i);
        }
    }
}

impl Environment for UniformGridEnvironment {
    fn update(&mut self, cloud: &dyn PointCloud, interaction_radius: f64) {
        assert!(
            interaction_radius > 0.0 && interaction_radius.is_finite(),
            "interaction radius must be positive and finite"
        );
        let n = cloud.len();
        self.num_points = n;
        self.timestamp = self.timestamp.wrapping_add(1);
        if self.timestamp == 0 {
            // Extremely rare wrap: all stale stamps become ambiguous; reset.
            for b in &self.boxes {
                b.store(pack(0, NIL), Ordering::Relaxed);
            }
            self.timestamp = 1;
        }
        if n == 0 {
            self.bounds = None;
            self.dims = [0; 3];
            return;
        }

        // Bounding box (parallel reduction above the threshold).
        let neutral = || (Real3::splat(f64::INFINITY), Real3::splat(f64::NEG_INFINITY));
        let (min, max) = if n < PARALLEL_BUILD_THRESHOLD {
            (0..n).fold(neutral(), |(lo, hi), i| {
                let p = cloud.position(i);
                (lo.min(&p), hi.max(&p))
            })
        } else {
            (0..n)
                .into_par_iter()
                .fold(neutral, |(lo, hi), i| {
                    let p = cloud.position(i);
                    (lo.min(&p), hi.max(&p))
                })
                .reduce(neutral, |a, b| (a.0.min(&b.0), a.1.max(&b.1)))
        };
        self.bounds = Some((min, max));
        self.box_length = interaction_radius;
        self.inv_box_length = 1.0 / interaction_radius;
        self.grid_min = min;
        let mut nboxes = 1usize;
        for a in 0..3 {
            let extent = (max[a] - min[a]).max(0.0);
            let d = (extent / interaction_radius).floor() as u32 + 1;
            // Cap per-axis dimension to the Morton range.
            self.dims[a] = d.min(1 << 20);
            nboxes = nboxes.saturating_mul(self.dims[a] as usize);
        }

        // Grow (never shrink) the box array; fresh boxes get timestamp 0,
        // which is always stale because `timestamp` starts at 1.
        if self.boxes.len() < nboxes {
            let additional = nboxes - self.boxes.len();
            self.boxes.reserve(additional);
            let start = self.boxes.len();
            if additional < PARALLEL_BUILD_THRESHOLD {
                for _ in 0..additional {
                    self.boxes.push(AtomicU64::new(pack(0, NIL)));
                }
            } else {
                // Parallel-init the new tail (paper Challenge 1: resizing a
                // large vector is single-threaded by default).
                unsafe {
                    let ptr = BoxesPtr(self.boxes.as_mut_ptr().add(start));
                    (0..additional).into_par_iter().for_each(|i| {
                        // SAFETY: each index written exactly once, within capacity.
                        ptr.write(i, AtomicU64::new(pack(0, NIL)));
                    });
                    self.boxes.set_len(nboxes);
                }
            }
        }
        // `successors` entries are fully overwritten during insertion, so
        // only growth needs initialization.
        if self.successors.len() < n {
            self.successors.resize(n, NIL);
        }

        // Insertion: serial below the threshold (plain stores), one CAS per
        // agent on the packed box word above it.
        let ts = self.timestamp;
        if n < PARALLEL_BUILD_THRESHOLD {
            for i in 0..n {
                let bc = self.box_coordinates(cloud.position(i));
                let flat = self.flat_index(bc);
                let b = &self.boxes[flat];
                let (bts, bhead) = unpack(b.load(Ordering::Relaxed));
                // Lazy reset: a stale box behaves as empty.
                let prev = if bts == ts { bhead } else { NIL };
                b.store(pack(ts, i as u32), Ordering::Relaxed);
                self.successors[i] = prev;
            }
            return;
        }
        let boxes = &self.boxes;
        let successors_ptr = SuccessorsPtr(self.successors.as_mut_ptr());
        let grid = &*self;
        (0..n).into_par_iter().for_each(|i| {
            let bc = grid.box_coordinates(cloud.position(i));
            let flat = grid.flat_index(bc);
            let b = &boxes[flat];
            let mut cur = b.load(Ordering::Relaxed);
            loop {
                let (bts, bhead) = unpack(cur);
                // Lazy reset: a stale box behaves as empty.
                let prev = if bts == ts { bhead } else { NIL };
                match b.compare_exchange_weak(
                    cur,
                    pack(ts, i as u32),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: slot `i` is written by exactly one task.
                        unsafe { successors_ptr.write(i, prev) };
                        break;
                    }
                    Err(c) => cur = c,
                }
            }
        });
    }

    fn for_each_neighbor(
        &self,
        cloud: &dyn PointCloud,
        pos: Real3,
        exclude: Option<usize>,
        radius: f64,
        visit: &mut dyn FnMut(usize, f64),
    ) {
        if self.num_points == 0 || self.dims[0] == 0 {
            return;
        }
        // A 3×3×3 box walk only covers queries up to the build radius;
        // anything larger would silently miss neighbors, so fail loudly
        // (models must declare their largest query via
        // `Param::interaction_radius`).
        assert!(
            radius <= self.box_length * (1.0 + 1e-12),
            "query radius {radius} exceeds the radius the uniform grid was built with ({}); \
             set Param::interaction_radius to the largest query radius of the model",
            self.box_length
        );
        let r2 = radius * radius;
        let bc = self.box_coordinates(pos);
        // 3×3×3 cube of boxes around the query box.
        for dz in -1i64..=1 {
            let z = bc[2] as i64 + dz;
            if z < 0 || z >= self.dims[2] as i64 {
                continue;
            }
            for dy in -1i64..=1 {
                let y = bc[1] as i64 + dy;
                if y < 0 || y >= self.dims[1] as i64 {
                    continue;
                }
                for dx in -1i64..=1 {
                    let x = bc[0] as i64 + dx;
                    if x < 0 || x >= self.dims[0] as i64 {
                        continue;
                    }
                    let flat = self.flat_index([x as u32, y as u32, z as u32]);
                    let mut cur = self.box_head(flat);
                    while let Some(i) = cur {
                        let idx = i as usize;
                        if Some(idx) != exclude {
                            debug_assert!(idx < self.num_points);
                            let d2 = pos.distance_sq(&cloud.position(idx));
                            if d2 <= r2 {
                                visit(idx, d2);
                            }
                        }
                        cur = self.successor(i);
                    }
                }
            }
        }
    }

    fn clear(&mut self) {
        self.boxes.clear();
        self.successors.clear();
        self.num_points = 0;
        self.dims = [0; 3];
        self.bounds = None;
    }

    fn memory_bytes(&self) -> usize {
        self.boxes.capacity() * std::mem::size_of::<AtomicU64>()
            + self.successors.capacity() * std::mem::size_of::<u32>()
    }

    fn name(&self) -> &'static str {
        "uniform_grid"
    }

    fn bounds(&self) -> Option<(Real3, Real3)> {
        self.bounds
    }

    fn as_uniform_grid(&self) -> Option<&UniformGridEnvironment> {
        Some(self)
    }
}

/// Shared mutable pointer into the successors array; each index is written by
/// exactly one parallel task.
#[derive(Clone, Copy)]
struct SuccessorsPtr(*mut u32);
unsafe impl Send for SuccessorsPtr {}
unsafe impl Sync for SuccessorsPtr {}

impl SuccessorsPtr {
    /// # Safety
    /// `i` must be in bounds and written by exactly one task.
    #[inline]
    unsafe fn write(&self, i: usize, v: u32) {
        self.0.add(i).write(v);
    }
}

/// Shared mutable pointer into the boxes array tail during parallel init;
/// each index is written by exactly one parallel task.
#[derive(Clone, Copy)]
struct BoxesPtr(*mut AtomicU64);
unsafe impl Send for BoxesPtr {}
unsafe impl Sync for BoxesPtr {}

impl BoxesPtr {
    /// # Safety (upheld by caller context)
    /// `i` must be within the reserved capacity and written exactly once.
    #[inline]
    fn write(&self, i: usize, v: AtomicU64) {
        // SAFETY: see above; the only call site iterates disjoint indices.
        unsafe { self.0.add(i).write(v) };
    }
}
