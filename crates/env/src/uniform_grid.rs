//! The optimized uniform grid of paper Section 3.1.
//!
//! Key properties reproduced from the paper:
//!
//! * **O(#agents) rebuild** — every box carries a timestamp; a box is empty
//!   unless its timestamp equals the grid's current one, so boxes are never
//!   zeroed ("we can build the grid in O(#agents) time instead of
//!   O(#agents + #boxes), which is relevant for large simulation spaces that
//!   are not fully populated").
//! * **Single fused build pass** — one sweep over the cloud computes each
//!   agent's flat box index, accumulates the per-box histogram of the SoA
//!   counting sort into chunk-private count rows (no shared atomics), and —
//!   only when requested — pushes the agent onto its box's linked list. The
//!   rows are merged by a prefix sum into the offset table *and* into exact
//!   per-(chunk, box) write cursors, which makes the subsequent scatter both
//!   contention-free and deterministic: agents of a box land in ascending
//!   agent-index order regardless of thread scheduling.
//! * **Lazy array-based linked list** — agents in a box form a singly-linked
//!   list through the `successors` array (the paper's layout; the box stores
//!   only the list head). On dense clouds the SoA cache serves every query
//!   and every box-enumeration consumer, so the CAS insertion is skipped
//!   entirely unless the caller's [`UpdateHint`] requests the lists; sparse
//!   clouds always build them because queries fall back to the list walk.
//! * **3×3×3 search** — a fixed-radius query visits the query box and its 26
//!   surrounding boxes.
//! * **SoA query cache** — when the box table is dense enough, the rebuild
//!   produces a per-box-sorted copy of the cloud as **interleaved 32-byte
//!   `(position, index)` slots** delimited by a prefix-sum offset table.
//!   Queries then stream ONE contiguous array instead of chasing the
//!   `successors` linked list through array-of-structs agents, and because
//!   boxes adjacent in x are adjacent in the sorted slots, the 3×3×3
//!   stencil collapses into nine contiguous runs ([`StencilRuns`] exposes
//!   them for box-batched callers). When the caller's [`UpdateHint`]
//!   declares that this iteration's kernels read neighbor diameters, a
//!   box-sorted diameter array is scattered alongside the slots in the same
//!   pass, so the force kernel's diameter load is a streamed neighbor of
//!   the position instead of a random snapshot gather. The scatter is tiled
//!   over box ranges so each pass writes into a bounded window of the
//!   sorted arrays instead of spraying the whole allocation.

use std::sync::atomic::{AtomicU64, Ordering};

use bdm_util::prefix_sum::inclusive_prefix_sum_parallel_u32;
use bdm_util::send_ptr::SendMut;
use bdm_util::Real3;
use rayon::prelude::*;

use crate::{BoxListPolicy, Environment, NeighborQueryScratch, PointCloud, UpdateHint};

/// Sentinel for "no agent" in box heads and the successors list.
const NIL: u32 = u32::MAX;

/// Below this point count the build runs serially: the fork-join overhead of
/// the parallel path costs more than the whole serial build (measured with
/// the `env_build` Criterion bench; the paper's Challenge 1 concerns large
/// populations, where the parallel path wins).
const PARALLEL_BUILD_THRESHOLD: usize = 1 << 16;

/// The SoA query cache is built only when the box table is at most this many
/// boxes per indexed point. Beyond it the cloud is so sparse that the
/// per-box passes of the cache build (O(#boxes)) would break the grid's
/// O(#agents) rebuild guarantee — those clouds keep the linked-list query
/// path, whose lazy timestamps never touch empty boxes.
const SOA_MAX_BOXES_PER_POINT: usize = 4;

/// Upper bound on the number of chunk-private count rows of the fused
/// counting pass. More rows mean less parallel imbalance but O(rows × boxes)
/// merge work and scratch memory.
const MAX_COUNT_CHUNKS: usize = 8;

/// Cap on the count-row scratch (`rows × boxes × 4` bytes); when a very
/// boxy cloud would blow past it, the build uses fewer chunks instead.
const COUNT_SCRATCH_BYTE_CAP: usize = 64 << 20;

/// Target write-window size of one scatter tile: each tile pass writes into
/// at most roughly this many bytes of the sorted arrays, so the random
/// stores of the counting sort hit far fewer open DRAM pages.
const SCATTER_TILE_BYTES: usize = 4 << 20;

/// Ceiling on scatter tiles — every tile re-streams the (sequential, cheap)
/// per-agent box indices, so the pass count stays bounded.
const MAX_SCATTER_TILES: usize = 8;

/// Bytes one agent occupies in the SoA cache (one interleaved slot).
const SOA_SLOT_BYTES: usize = std::mem::size_of::<SortedSlot>();

/// One slot of the box-sorted SoA query cache: the point's position and its
/// cloud index interleaved into a single record, so the stencil scan streams
/// ONE contiguous array — the index that follows an accepted position sits
/// on the same cache line instead of in a second parallel array.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub struct SortedSlot {
    /// Position of the point at build time.
    pub position: Real3,
    /// Index of the point in the indexed cloud.
    pub index: u32,
}

// Tail padding rounds the slot up to 32 bytes — exactly half a cache line,
// so the scan's stride is a power of two and a slot spans at most two lines.
const _: () = assert!(std::mem::size_of::<SortedSlot>() == 32);

/// The resolved 3×3×3 stencil of one box: the ≤9 non-empty contiguous
/// `[start, end)` runs of the box-sorted slot array (see
/// [`UniformGridEnvironment::slots`]), in deterministic scan order (z outer,
/// y inner, each ascending; boxes adjacent in x fuse into one run).
///
/// Every agent resident in the same box shares the same stencil, so a
/// box-batched caller resolves the runs once per box
/// ([`UniformGridEnvironment::stencil_runs`]) and reuses the nine row
/// offsets for the box's whole population instead of re-deriving them per
/// agent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StencilRuns {
    runs: [(u32, u32); 9],
    len: u8,
}

impl StencilRuns {
    /// The non-empty `[start, end)` slot runs, in scan order.
    #[inline]
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs[..self.len as usize]
    }
}

/// Packs a box's `(timestamp, head)` into one atomic word so that the lazy
/// reset-on-first-touch and the list push are a single CAS.
#[inline]
fn pack(ts: u32, head: u32) -> u64 {
    ((ts as u64) << 32) | head as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// The uniform grid environment (`UniformGridEnvironment` in BioDynaMo).
///
/// # Example
///
/// Index a point cloud and run an allocation-free fixed-radius query:
///
/// ```
/// use bdm_env::{Environment, NeighborQueryScratch, UniformGridEnvironment};
/// use bdm_util::Real3;
///
/// let points = vec![
///     Real3::new(0.0, 0.0, 0.0),
///     Real3::new(1.0, 0.0, 0.0),
///     Real3::new(9.0, 0.0, 0.0),
/// ];
/// let mut grid = UniformGridEnvironment::new();
/// grid.update(&points, 2.0); // interaction radius = box edge length
///
/// let mut scratch = NeighborQueryScratch::new();
/// let mut hits = Vec::new();
/// grid.for_each_neighbor(
///     &points,
///     points[0],
///     Some(0), // exclude the querying point itself
///     2.0,
///     &mut scratch,
///     &mut |idx, pos, d2| hits.push((idx, pos, d2)),
/// );
/// assert_eq!(hits, vec![(1, Real3::new(1.0, 0.0, 0.0), 1.0)]);
/// ```
pub struct UniformGridEnvironment {
    /// Packed `(timestamp, head)` per box. Grown (and written) only on
    /// updates that build the linked lists.
    boxes: Vec<AtomicU64>,
    /// `successors[i]` = next agent in the same box, or `NIL`. Only valid
    /// while `lists_active`.
    successors: Vec<u32>,
    /// Current grid timestamp; a box is valid only if its stamp matches.
    timestamp: u32,
    /// Number of boxes per axis (the *window* dimensions under an external
    /// [`GridFrame`](crate::GridFrame); equal to `global_dims` otherwise).
    dims: [u32; 3],
    /// Global lattice dimensions box coordinates are clamped into *before*
    /// the window shift. Self-derived builds keep `global_dims == dims`, so
    /// the extra clamp is a no-op there.
    global_dims: [u32; 3],
    /// Global box coordinate of this grid's window origin (all zero unless
    /// an external [`GridFrame`](crate::GridFrame) pinned a window). Applied
    /// in exact integer arithmetic after the global clamp, so a windowed
    /// build assigns bitwise-identical box membership to the global build.
    box_offset: [i64; 3],
    /// Lower corner of the grid.
    grid_min: Real3,
    /// Edge length of a cubic box (= interaction radius).
    box_length: f64,
    /// Cached `1 / box_length`: the per-point box computation multiplies
    /// instead of dividing (three divisions per agent dominate the build
    /// otherwise).
    inv_box_length: f64,
    /// Number of indexed points.
    num_points: usize,
    /// Bounds of the indexed points.
    bounds: Option<(Real3, Real3)>,
    /// Exclusive prefix-sum offset table of the SoA cache: box `b`'s agents
    /// occupy `sorted_*[cell_offsets[b]..cell_offsets[b + 1]]`. `u32` — the
    /// cache is only built when every offset fits — so the O(#boxes) merge
    /// passes move half the memory of a `usize` table. Only valid while
    /// `soa_active`.
    cell_offsets: Vec<u32>,
    /// Interleaved `(position, index)` slots grouped by box (SoA copy taken
    /// at `update()` time) — one contiguous array for the stencil scan.
    sorted_slots: Vec<SortedSlot>,
    /// Per-point diameters grouped by box, parallel to `sorted_slots`.
    /// Scattered only when the caller's [`UpdateHint`] requested it and the
    /// cloud carries diameters; only valid while `diameters_active`.
    sorted_diameters: Vec<f64>,
    /// Per-agent flat box index recorded during the fused build pass
    /// (scratch for the counting sort; filled only when the cache is
    /// built — which guarantees the flat index fits in 32 bits).
    agent_boxes: Vec<u32>,
    /// Chunk-private count rows of the fused counting pass, `chunks × boxes`
    /// (scratch, reused). After the merge each entry is the exact scatter
    /// cursor of its `(chunk, box)` pair.
    count_scratch: Vec<u32>,
    /// One bit per box, set iff the box holds at least one agent in the
    /// current SoA build. At ~0.3 agents/box (typical 10⁶-agent models) a
    /// large fraction of the stencil's nine runs is empty; testing three
    /// bits in this 1-bit/box table (~0.4 MB at 3.4M boxes — cache-resident
    /// where the 4-byte/box `cell_offsets` table is not) skips the offset
    /// loads for those runs entirely. Only valid while `soa_active`.
    occupancy: Vec<u64>,
    /// Whether the SoA cache matches the current build (dense clouds only;
    /// see [`SOA_MAX_BOXES_PER_POINT`]).
    soa_active: bool,
    /// Whether `sorted_diameters` matches the current build (see the field).
    diameters_active: bool,
    /// Whether the per-box linked lists match the current build (sparse
    /// clouds, or dense clouds whose caller requested them).
    lists_active: bool,
    /// Monotonic count of completed rebuilds — a cheap identity for "the
    /// build these cached values belong to". Externally cached per-build
    /// state (resolved [`StencilRuns`]) is validated with one compare.
    build_count: u64,
}

impl Default for UniformGridEnvironment {
    fn default() -> Self {
        Self::new()
    }
}

impl UniformGridEnvironment {
    /// Creates an empty grid.
    pub fn new() -> UniformGridEnvironment {
        UniformGridEnvironment {
            boxes: Vec::new(),
            successors: Vec::new(),
            timestamp: 0,
            dims: [0; 3],
            global_dims: [0; 3],
            box_offset: [0; 3],
            grid_min: Real3::ZERO,
            box_length: 1.0,
            inv_box_length: 1.0,
            num_points: 0,
            bounds: None,
            cell_offsets: Vec::new(),
            sorted_slots: Vec::new(),
            sorted_diameters: Vec::new(),
            agent_boxes: Vec::new(),
            count_scratch: Vec::new(),
            occupancy: Vec::new(),
            soa_active: false,
            diameters_active: false,
            lists_active: false,
            build_count: 0,
        }
    }

    /// Number of boxes per axis.
    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    /// Lower corner of the grid.
    pub fn grid_min(&self) -> Real3 {
        self.grid_min
    }

    /// Box edge length the grid was built with.
    pub fn box_length(&self) -> f64 {
        self.box_length
    }

    /// Total number of boxes.
    pub fn num_boxes(&self) -> usize {
        self.dims.iter().map(|&d| d as usize).product()
    }

    /// Box coordinates containing `pos` (clamped into the grid).
    ///
    /// Under an external [`GridFrame`](crate::GridFrame) the computation
    /// runs against the *global* anchor and lattice first and the window
    /// shift happens in exact integer arithmetic afterwards, so a windowed
    /// shard grid agrees bitwise with the global grid on box membership.
    /// Self-derived builds have a zero offset and `global_dims == dims`,
    /// reproducing the historical single-clamp result exactly.
    #[inline]
    pub fn box_coordinates(&self, pos: Real3) -> [u32; 3] {
        let g =
            Self::global_box_coordinates(pos, self.grid_min, self.inv_box_length, self.global_dims);
        let mut out = [0u32; 3];
        for a in 0..3 {
            out[a] = (g[a] as i64 - self.box_offset[a]).clamp(0, self.dims[a] as i64 - 1) as u32;
        }
        out
    }

    /// The global-lattice box coordinate computation every build shares —
    /// exposed so external partitioners (the sharded engine's Morton-range
    /// split) assign agents to boxes with the *identical* floating-point
    /// expression the grid uses, keeping membership bitwise reproducible.
    #[inline]
    pub fn global_box_coordinates(
        pos: Real3,
        anchor: Real3,
        inv_box_length: f64,
        global_dims: [u32; 3],
    ) -> [u32; 3] {
        let mut out = [0u32; 3];
        for a in 0..3 {
            let rel = (pos[a] - anchor[a]) * inv_box_length;
            let idx = if rel <= 0.0 { 0 } else { rel as i64 };
            out[a] = (idx.min(global_dims[a] as i64 - 1)).max(0) as u32;
        }
        out
    }

    /// The global-lattice dimension formula every build shares (per axis:
    /// `⌊extent / box_length⌋ + 1`, capped at the Morton range) — exposed
    /// for the same reason as
    /// [`UniformGridEnvironment::global_box_coordinates`].
    #[inline]
    pub fn global_dims_for(min: Real3, max: Real3, box_length: f64) -> [u32; 3] {
        let mut dims = [0u32; 3];
        for a in 0..3 {
            let extent = (max[a] - min[a]).max(0.0);
            let d = (extent / box_length).floor() as u32 + 1;
            // Cap per-axis dimension to the Morton range.
            dims[a] = d.min(1 << 20);
        }
        dims
    }

    /// The SoA-cache decision a *self-derived* build over `n` points in a
    /// `global_dims` lattice would make — exposed so the sharded engine can
    /// force the global decision onto every shard window
    /// ([`GridFrame::build_cache`](crate::GridFrame::build_cache)): if shards
    /// decided independently, a dense global population could split into
    /// sparse windows whose query paths diverge from the single-engine run.
    #[inline]
    pub fn global_build_cache(global_dims: [u32; 3], n: usize) -> bool {
        let mut nboxes = 1usize;
        for d in global_dims {
            nboxes = nboxes.saturating_mul(d as usize);
        }
        nboxes <= n.saturating_mul(SOA_MAX_BOXES_PER_POINT) && nboxes <= u32::MAX as usize
    }

    /// Flattened (row-major) index of box `(x, y, z)`.
    #[inline]
    pub fn flat_index(&self, bc: [u32; 3]) -> usize {
        (bc[0] as usize)
            + (self.dims[0] as usize)
                * ((bc[1] as usize) + (self.dims[1] as usize) * bc[2] as usize)
    }

    /// Head of the agent list of the box at `flat`, or `None` if the box is
    /// empty this iteration.
    ///
    /// # Panics
    /// If the last update skipped the linked lists (see
    /// [`UniformGridEnvironment::lists_active`]); enumerate boxes with
    /// [`UniformGridEnvironment::for_each_in_box`] or
    /// [`UniformGridEnvironment::box_slots`], which also serve from the SoA
    /// cache.
    #[inline]
    pub fn box_head(&self, flat: usize) -> Option<u32> {
        assert!(
            self.lists_active,
            "the last update skipped the per-box linked lists; request them \
             via UpdateHint::build_box_lists (or use box_slots/for_each_in_box)"
        );
        let (ts, head) = unpack(self.boxes[flat].load(Ordering::Relaxed));
        (ts == self.timestamp && head != NIL).then_some(head)
    }

    /// Successor of `agent` within its box list. Like
    /// [`UniformGridEnvironment::box_head`], only meaningful while the
    /// linked lists are active.
    #[inline]
    pub fn successor(&self, agent: u32) -> Option<u32> {
        debug_assert!(self.lists_active);
        let next = self.successors[agent as usize];
        (next != NIL).then_some(next)
    }

    /// Iterates the agents of one box, from whichever structure the last
    /// update built: the linked list when active (standalone/default
    /// contract), otherwise the SoA cache's box run.
    pub fn for_each_in_box(&self, flat: usize, visit: &mut dyn FnMut(u32)) {
        if self.lists_active {
            let mut cur = self.box_head(flat);
            while let Some(i) = cur {
                visit(i);
                cur = self.successor(i);
            }
        } else if self.soa_active {
            for s in self.soa_box_slots(flat) {
                visit(s.index);
            }
        } else {
            debug_assert_eq!(
                self.num_points, 0,
                "an update builds at least one structure"
            );
        }
    }

    /// Whether the last [`Environment::update_with`] built the SoA query
    /// cache (dense clouds; see the module docs). When `false`, queries fall
    /// back to walking the `successors` linked list.
    pub fn soa_active(&self) -> bool {
        self.soa_active
    }

    /// Whether the last [`Environment::update_with`] built the per-box
    /// linked lists. Dense clouds skip them unless the caller's
    /// [`UpdateHint`] requests box lists; sparse clouds always build them.
    pub fn lists_active(&self) -> bool {
        self.lists_active
    }

    /// Number of completed [`Environment::update_with`] calls on this grid.
    /// Changes on every rebuild (monotonic, survives
    /// [`Environment::clear`]), so externally cached per-build state — the
    /// engine's per-worker [`StencilRuns`] cache — stays valid exactly
    /// while this count is unchanged.
    pub fn build_count(&self) -> u64 {
        self.build_count
    }

    /// The agents of the box at `flat` as a slice of the interleaved SoA
    /// cache (each [`SortedSlot::index`] is an agent index), in ascending
    /// agent-index order, or `None` if the last update did not build the
    /// cache. O(1); the agent-sorting operation reads the box-grouped order
    /// straight from here (the counting sort *is* the grouping the sort
    /// would otherwise recompute from the lists).
    #[inline]
    pub fn box_slots(&self, flat: usize) -> Option<&[SortedSlot]> {
        self.soa_active.then(|| self.soa_box_slots(flat))
    }

    #[inline]
    fn soa_box_slots(&self, flat: usize) -> &[SortedSlot] {
        debug_assert!(self.soa_active);
        &self.sorted_slots[self.cell_offsets[flat] as usize..self.cell_offsets[flat + 1] as usize]
    }

    /// The box-sorted interleaved slot array of the current build, or `None`
    /// while the SoA cache is inactive. [`StencilRuns`] ranges index into
    /// this slice.
    #[inline]
    pub fn slots(&self) -> Option<&[SortedSlot]> {
        self.soa_active.then_some(&self.sorted_slots[..])
    }

    /// Box-sorted per-point diameters parallel to
    /// [`UniformGridEnvironment::slots`], or `None` when the last update did
    /// not scatter them (the hint must request them via
    /// [`UpdateHint::scatter_diameters`] **and** the cloud must carry them
    /// via [`PointCloud::diameters`]).
    #[inline]
    pub fn scattered_diameters(&self) -> Option<&[f64]> {
        (self.soa_active && self.diameters_active).then_some(&self.sorted_diameters[..])
    }

    /// Monomorphized SoA fast-path query: identical semantics to
    /// [`Environment::for_each_neighbor`] but generic over the visitor, so
    /// the per-candidate distance test and the per-neighbor callback inline
    /// into one loop — no virtual dispatch anywhere on the hot path. The
    /// engine's per-agent neighbor queries (the dominant cost at 10⁶+
    /// agents, paper Fig. 5) call this directly after downcasting via
    /// [`Environment::as_uniform_grid`].
    ///
    /// Returns `false` without visiting anything when the last update did
    /// not build the SoA cache (sparse clouds) — the caller then falls back
    /// to the trait-object path, which serves from the linked lists.
    #[inline]
    pub fn for_each_neighbor_soa<F: FnMut(usize, Real3, f64)>(
        &self,
        pos: Real3,
        exclude: Option<usize>,
        radius: f64,
        mut visit: F,
    ) -> bool {
        if self.num_points == 0 || self.dims[0] == 0 {
            // Nothing to visit; the query is served either way.
            return true;
        }
        if !self.soa_active {
            return false;
        }
        self.assert_query_radius(radius);
        let r2 = radius * radius;
        let bc = self.box_coordinates(pos);
        self.for_each_stencil_run(bc, |start, end| {
            for slot in start..end {
                // SAFETY: runs lie within the slot array (prefix-sum build
                // invariant, debug-asserted in `for_each_stencil_run`).
                let s = unsafe { self.sorted_slots.get_unchecked(slot) };
                let d2 = pos.distance_sq(&s.position);
                if d2 <= r2 {
                    let idx = s.index as usize;
                    if Some(idx) != exclude {
                        visit(idx, s.position, d2);
                    }
                }
            }
        });
        true
    }

    /// Like [`UniformGridEnvironment::for_each_neighbor_soa`], but the
    /// visitor additionally receives each accepted neighbor's **box-sorted
    /// diameter** — streamed from the run the position came from, killing
    /// the random `diameters[idx]` gather of the lazy snapshot load.
    ///
    /// Returns `false` without visiting anything when the last update did
    /// not scatter diameters (see
    /// [`UniformGridEnvironment::scattered_diameters`]) — callers fall back
    /// to the plain query plus the lazy per-index load, which yields the
    /// bitwise-identical value (the scatter copies, it never recomputes).
    #[inline]
    pub fn for_each_neighbor_soa_diam<F: FnMut(usize, Real3, f64, f64)>(
        &self,
        pos: Real3,
        exclude: Option<usize>,
        radius: f64,
        mut visit: F,
    ) -> bool {
        if self.num_points == 0 || self.dims[0] == 0 {
            return true;
        }
        if !self.soa_active || !self.diameters_active {
            return false;
        }
        self.assert_query_radius(radius);
        let r2 = radius * radius;
        let bc = self.box_coordinates(pos);
        self.for_each_stencil_run(bc, |start, end| {
            for slot in start..end {
                // SAFETY: runs lie within the slot array and
                // `sorted_diameters` is parallel to it while
                // `diameters_active` (same scatter pass).
                unsafe {
                    let s = self.sorted_slots.get_unchecked(slot);
                    let d2 = pos.distance_sq(&s.position);
                    if d2 <= r2 {
                        let idx = s.index as usize;
                        if Some(idx) != exclude {
                            let diameter = *self.sorted_diameters.get_unchecked(slot);
                            visit(idx, s.position, diameter, d2);
                        }
                    }
                }
            }
        });
        true
    }

    /// Resolves the 3×3×3 stencil of the box with coordinates `bc` (from
    /// [`UniformGridEnvironment::box_coordinates`]) into its non-empty slot
    /// runs, or `None` while the SoA cache is inactive. The stencil is a
    /// pure function of the box, so all agents resident in one box share the
    /// result — resolve once, query many (the box-batched mechanics path).
    #[inline]
    pub fn stencil_runs(&self, bc: [u32; 3]) -> Option<StencilRuns> {
        if !self.soa_active || self.num_points == 0 || self.dims[0] == 0 {
            return None;
        }
        let mut out = StencilRuns::default();
        self.for_each_stencil_run(bc, |start, end| {
            out.runs[out.len as usize] = (start as u32, end as u32);
            out.len += 1;
        });
        Some(out)
    }

    /// A 3×3×3 box walk only covers queries up to the build radius; anything
    /// larger would silently miss neighbors, so fail loudly.
    #[inline]
    fn assert_query_radius(&self, radius: f64) {
        assert!(
            radius <= self.box_length * (1.0 + 1e-12),
            "query radius {radius} exceeds the radius the uniform grid was built with ({}); \
             set Param::interaction_radius to the largest query radius of the model",
            self.box_length
        );
    }

    /// Whether `radius` is servable by the 3×3×3 stencil of this build
    /// (the condition the queries assert).
    #[inline]
    pub fn radius_within_build(&self, radius: f64) -> bool {
        radius <= self.box_length * (1.0 + 1e-12)
    }

    /// The single definition of the stencil traversal: visits the ≤9
    /// non-empty contiguous slot runs of the 3×3×3 stencil around box `bc`
    /// in deterministic scan order (z outer, y inner, ascending). Shared by
    /// the per-agent queries and [`UniformGridEnvironment::stencil_runs`],
    /// so the box-batched path visits candidates in exactly the per-agent
    /// order. Boxes adjacent in x are adjacent in flat index and in the
    /// sorted slots, so each (z, y) row collapses into one run.
    #[inline(always)]
    fn for_each_stencil_run(&self, bc: [u32; 3], mut run: impl FnMut(usize, usize)) {
        let x0 = bc[0].saturating_sub(1) as usize;
        let x1 = (bc[0] + 1).min(self.dims[0] - 1) as usize;
        let stride_y = self.dims[0] as usize;
        let stride_z = stride_y * self.dims[1] as usize;
        debug_assert_eq!(
            self.cell_offsets.len(),
            stride_z * self.dims[2] as usize + 1
        );
        debug_assert_eq!(
            *self.cell_offsets.last().unwrap() as usize,
            self.sorted_slots.len()
        );
        for dz in -1i64..=1 {
            let z = bc[2] as i64 + dz;
            if z < 0 || z >= self.dims[2] as i64 {
                continue;
            }
            let z_base = z as usize * stride_z;
            for dy in -1i64..=1 {
                let y = bc[1] as i64 + dy;
                if y < 0 || y >= self.dims[1] as i64 {
                    continue;
                }
                let row = z_base + y as usize * stride_y;
                // SAFETY: `row + x` indexes a valid box (x ≤ dims[0]-1,
                // y < dims[1], z < dims[2] checked above), `occupancy` has
                // ⌈nboxes/64⌉ words, and `cell_offsets` has nboxes+1
                // entries; every offset is ≤ n = sorted_slots.len() by the
                // prefix-sum build invariant (debug-asserted above).
                unsafe {
                    // Empty-run skip: test the run's ≤3 occupancy bits in
                    // the compact bitmap before touching the 4-byte/box
                    // offset table (the common case at sparse occupancy).
                    let (b0, b1) = (row + x0, row + x1);
                    let (w0, w1) = (b0 >> 6, b1 >> 6);
                    let lo = !0u64 << (b0 & 63);
                    let hi = !0u64 >> (63 - (b1 & 63));
                    let occupied = if w0 == w1 {
                        *self.occupancy.get_unchecked(w0) & lo & hi != 0
                    } else {
                        (*self.occupancy.get_unchecked(w0) & lo)
                            | (*self.occupancy.get_unchecked(w1) & hi)
                            != 0
                    };
                    if !occupied {
                        continue;
                    }
                    let start = *self.cell_offsets.get_unchecked(row + x0) as usize;
                    let end = *self.cell_offsets.get_unchecked(row + x1 + 1) as usize;
                    run(start, end);
                }
            }
        }
    }

    /// Number of chunk-private count rows for the fused counting pass.
    /// `BDM_GRID_COUNT_CHUNKS` overrides the thread-count heuristic (tuning
    /// knob; also lets tests exercise the multi-chunk merge on any machine),
    /// still clamped by [`MAX_COUNT_CHUNKS`] and the scratch byte cap.
    fn count_chunks(n: usize, nboxes: usize) -> usize {
        if n < PARALLEL_BUILD_THRESHOLD {
            return 1;
        }
        let requested = std::env::var("BDM_GRID_COUNT_CHUNKS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(rayon::current_num_threads);
        let by_memory = COUNT_SCRATCH_BYTE_CAP / (nboxes * std::mem::size_of::<u32>()).max(1);
        requested.min(MAX_COUNT_CHUNKS).min(by_memory).max(1)
    }

    /// Merges the chunk-private count rows: builds the exclusive
    /// `cell_offsets` table and rewrites every `(chunk, box)` count into its
    /// exact scatter cursor (exclusive prefix over chunks within each box,
    /// based at the box offset). O(chunks × boxes), parallel over boxes.
    fn merge_counts(&mut self, chunks: usize, nboxes: usize, n: usize) {
        if chunks == 1 {
            // Single count row: ONE fused serial pass prefixes it into the
            // offset table and rewrites it into the scatter cursors on the
            // way (instead of three separate O(#boxes) sweeps).
            let counts = &mut self.count_scratch;
            let offsets = &mut self.cell_offsets;
            let mut acc = 0u32;
            for b in 0..nboxes {
                let count = counts[b];
                counts[b] = acc;
                acc += count;
                offsets[b + 1] = acc;
            }
            debug_assert_eq!(acc as usize, n, "count row must cover every indexed point");
            return;
        }
        // Per-box totals into cell_offsets[1..]; slot 0 stays 0 so the
        // inclusive prefix sum over [1..] yields the exclusive offsets.
        let counts = &self.count_scratch;
        let serial_merge = nboxes < PARALLEL_BUILD_THRESHOLD;
        {
            let offs_ptr = SendMut::new(self.cell_offsets.as_mut_ptr());
            let per_box_total = |b: usize| -> u32 {
                let mut s = 0u32;
                for c in 0..chunks {
                    s += counts[c * nboxes + b];
                }
                s
            };
            if serial_merge {
                for b in 0..nboxes {
                    // SAFETY: single thread, slot b + 1 in bounds.
                    unsafe { offs_ptr.write(b + 1, per_box_total(b)) };
                }
            } else {
                (0..nboxes).into_par_iter().for_each(|b| {
                    // SAFETY: slot b + 1 written by exactly one task.
                    unsafe { offs_ptr.write(b + 1, per_box_total(b)) };
                });
            }
        }
        let total = inclusive_prefix_sum_parallel_u32(&mut self.cell_offsets[1..]);
        debug_assert_eq!(total, n, "count rows must cover every indexed point");
        // Rewrite counts into scatter cursors: chunk c of box b starts where
        // the lower chunks of b end.
        let offsets = &self.cell_offsets;
        let counts_ptr = SendMut::new(self.count_scratch.as_mut_ptr());
        let cursor_box = |b: usize| {
            let mut acc = offsets[b];
            for c in 0..chunks {
                // SAFETY: each (c, b) slot is touched by exactly one task
                // (tasks partition the box range).
                unsafe {
                    let slot = counts_ptr.ptr_at(c * nboxes + b);
                    let count = *slot;
                    *slot = acc;
                    acc += count;
                }
            }
        };
        if serial_merge {
            for b in 0..nboxes {
                cursor_box(b);
            }
        } else {
            (0..nboxes).into_par_iter().for_each(cursor_box);
        }
    }

    /// Derives the per-box occupancy bitmap from the finished
    /// `cell_offsets` table (box `b` is occupied iff its offset range is
    /// non-empty). O(#boxes / 64) words, parallel above the threshold.
    fn build_occupancy(&mut self, nboxes: usize) {
        let words = nboxes.div_ceil(64);
        self.occupancy.clear();
        self.occupancy.resize(words, 0);
        let offsets = &self.cell_offsets;
        let word_of = |w: usize| -> u64 {
            let mut bits = 0u64;
            let base = w * 64;
            let end = 64.min(nboxes - base);
            for b in 0..end {
                bits |= u64::from(offsets[base + b] != offsets[base + b + 1]) << b;
            }
            bits
        };
        if words < PARALLEL_BUILD_THRESHOLD {
            for w in 0..words {
                self.occupancy[w] = word_of(w);
            }
        } else {
            let occ_ptr = SendMut::new(self.occupancy.as_mut_ptr());
            (0..words).into_par_iter().for_each(|w| {
                // SAFETY: each word is written by exactly one task.
                unsafe { occ_ptr.write(w, word_of(w)) };
            });
        }
    }

    /// Scatter pass of the SoA build: every agent's interleaved
    /// `(position, index)` slot — and, when requested, its diameter — goes
    /// to the cursor of its `(chunk, box)` pair. Chunks run in parallel; the
    /// cursors make all writes disjoint and the within-box order ascending
    /// by agent index (deterministic regardless of scheduling). Large
    /// scatters are tiled over contiguous box ranges — each tile pass
    /// re-streams the cheap sequential box indices but confines the random
    /// slot stores to a bounded window of the sorted arrays (see
    /// [`SCATTER_TILE_BYTES`]), so they hit far fewer open DRAM pages.
    fn scatter_soa(
        &mut self,
        positions: Positions<'_>,
        diameters: Option<&[f64]>,
        n: usize,
        nboxes: usize,
        chunks: usize,
    ) {
        self.sorted_slots.resize(
            n,
            SortedSlot {
                position: Real3::ZERO,
                index: 0,
            },
        );
        if diameters.is_some() {
            self.sorted_diameters.resize(n, 0.0);
        }
        let slot_ptr = SendMut::new(self.sorted_slots.as_mut_ptr());
        let diam_ptr = SendMut::new(self.sorted_diameters.as_mut_ptr());
        let counts_ptr = SendMut::new(self.count_scratch.as_mut_ptr());
        let flats = &self.agent_boxes[..n];
        let offsets = &self.cell_offsets;
        // Tile boundaries in box space, balanced by slot count: tile t
        // covers boxes [tile_bounds[t], tile_bounds[t+1]) and therefore a
        // write window of about n/tiles sorted slots.
        let slot_bytes = SOA_SLOT_BYTES + diameters.map_or(0, |_| std::mem::size_of::<f64>());
        let tiles = (n * slot_bytes / SCATTER_TILE_BYTES).clamp(1, MAX_SCATTER_TILES);
        let mut tile_bounds = [0usize; MAX_SCATTER_TILES + 1];
        for t in 1..tiles {
            let target = (t * n / tiles) as u32;
            tile_bounds[t] = offsets
                .partition_point(|&o| o < target)
                .clamp(tile_bounds[t - 1], nboxes);
        }
        tile_bounds[tiles] = nboxes;
        let chunk_len = n.div_ceil(chunks);
        let scatter_tiles = |c: usize, t_first: usize, t_last: usize| {
            let row = c * nboxes;
            let start = c * chunk_len;
            let end = ((c + 1) * chunk_len).min(n);
            for t in t_first..t_last {
                let (b0, b1) = (tile_bounds[t] as u32, tile_bounds[t + 1] as u32);
                for (i, &flat) in flats.iter().enumerate().take(end).skip(start) {
                    if flat < b0 || flat >= b1 {
                        continue;
                    }
                    // SAFETY: the cursor row slice [b0, b1) is owned by this
                    // task (rows are chunk-private; within a row, tile tasks
                    // cover disjoint box ranges), and cursor ranges
                    // partition the sorted arrays, so slot `w` is claimed
                    // exactly once across all tasks.
                    unsafe {
                        let cursor = counts_ptr.ptr_at(row + flat as usize);
                        let w = *cursor as usize;
                        *cursor += 1;
                        slot_ptr.write(
                            w,
                            SortedSlot {
                                position: positions.get(i),
                                index: i as u32,
                            },
                        );
                        if let Some(src) = diameters {
                            diam_ptr.write(w, src[i]);
                        }
                    }
                }
            }
        };
        if chunks > 1 {
            (0..chunks)
                .into_par_iter()
                .for_each(|c| scatter_tiles(c, 0, tiles));
        } else if tiles > 1 && rayon::current_num_threads() > 1 {
            // Single count row but real workers: tiles partition the box
            // space, so tile tasks own disjoint cursor and output regions —
            // parallel and still deterministic (each task scans the agents
            // in ascending index order).
            (0..tiles)
                .into_par_iter()
                .for_each(|t| scatter_tiles(0, t, t + 1));
        } else {
            scatter_tiles(0, 0, tiles);
        }
    }
}

impl Environment for UniformGridEnvironment {
    fn update_with(&mut self, cloud: &dyn PointCloud, interaction_radius: f64, hint: UpdateHint) {
        assert!(
            interaction_radius > 0.0 && interaction_radius.is_finite(),
            "interaction radius must be positive and finite"
        );
        let n = cloud.len();
        self.build_count += 1;
        // Resolve the position accessor once: slice-backed clouds (the
        // engine's snapshot) are read as straight memory in every pass
        // below; everything else pays one virtual call per point.
        let positions = match cloud.positions_slice() {
            Some(s) => Positions::Slice(s),
            None => Positions::Cloud(cloud),
        };
        self.num_points = n;
        self.soa_active = false;
        self.diameters_active = false;
        self.lists_active = false;
        self.timestamp = self.timestamp.wrapping_add(1);
        if self.timestamp == 0 {
            // Extremely rare wrap: all stale stamps become ambiguous; reset.
            for b in &self.boxes {
                b.store(pack(0, NIL), Ordering::Relaxed);
            }
            self.timestamp = 1;
        }
        if n == 0 {
            self.bounds = None;
            self.dims = [0; 3];
            self.global_dims = [0; 3];
            self.box_offset = [0; 3];
            return;
        }

        let build_cache;
        let mut nboxes = 1usize;
        if let Some(frame) = hint.grid_frame {
            // Externally pinned geometry (sharded execution): the anchor,
            // the global lattice, the shard's window, and the SoA-cache
            // decision all come from the frame — never from this cloud —
            // so box membership and the query path agree bitwise with the
            // global build. Bounds are informational under a frame; the
            // caller passes the window's geometric bounds via the hint.
            self.bounds = hint.known_bounds;
            self.box_length = interaction_radius;
            self.inv_box_length = 1.0 / interaction_radius;
            self.grid_min = frame.anchor;
            self.global_dims = frame.global_dims;
            self.dims = frame.dims;
            for a in 0..3 {
                debug_assert!(frame.dims[a] >= 1, "frame window must be non-empty");
                debug_assert!(
                    frame.box_offset[a] + frame.dims[a] <= frame.global_dims[a].max(1),
                    "frame window must lie inside the global lattice"
                );
                self.box_offset[a] = frame.box_offset[a] as i64;
                nboxes = nboxes.saturating_mul(frame.dims[a] as usize);
            }
            build_cache = frame.build_cache && nboxes <= u32::MAX as usize;
        } else {
            // Bounding box: taken from the hint when the caller already
            // swept the cloud (the engine's snapshot gather), otherwise one
            // reduction pass (parallel above the threshold).
            let (min, max) = hint.known_bounds.unwrap_or_else(|| {
                let neutral = || (Real3::splat(f64::INFINITY), Real3::splat(f64::NEG_INFINITY));
                if n < PARALLEL_BUILD_THRESHOLD {
                    (0..n).fold(neutral(), |(lo, hi), i| {
                        let p = positions.get(i);
                        (lo.min(&p), hi.max(&p))
                    })
                } else {
                    (0..n)
                        .into_par_iter()
                        .fold(neutral, |(lo, hi), i| {
                            let p = positions.get(i);
                            (lo.min(&p), hi.max(&p))
                        })
                        .reduce(neutral, |a, b| (a.0.min(&b.0), a.1.max(&b.1)))
                }
            });
            self.bounds = Some((min, max));
            self.box_length = interaction_radius;
            self.inv_box_length = 1.0 / interaction_radius;
            self.grid_min = min;
            self.dims = Self::global_dims_for(min, max, interaction_radius);
            for a in 0..3 {
                nboxes = nboxes.saturating_mul(self.dims[a] as usize);
            }
            self.global_dims = self.dims;
            self.box_offset = [0; 3];
            // Dense clouds get the SoA query cache; sparse clouds skip it to
            // preserve the O(#agents) rebuild (module docs). The linked
            // lists are the inverse: sparse clouds need them for the query
            // fallback, dense clouds build them only on request (lazy list).
            build_cache =
                nboxes <= n.saturating_mul(SOA_MAX_BOXES_PER_POINT) && nboxes <= u32::MAX as usize;
            // flat indices fit the u32 scratch
        }
        let build_lists = hint.build_box_lists == BoxListPolicy::Always || !build_cache;

        if build_lists {
            // Grow (never shrink) the box array; fresh boxes get timestamp
            // 0, which is always stale because `timestamp` starts at 1.
            if self.boxes.len() < nboxes {
                let additional = nboxes - self.boxes.len();
                self.boxes.reserve(additional);
                let start = self.boxes.len();
                if additional < PARALLEL_BUILD_THRESHOLD {
                    for _ in 0..additional {
                        self.boxes.push(AtomicU64::new(pack(0, NIL)));
                    }
                } else {
                    // Parallel-init the new tail (paper Challenge 1:
                    // resizing a large vector is single-threaded by
                    // default).
                    unsafe {
                        let ptr = BoxesPtr(self.boxes.as_mut_ptr().add(start));
                        (0..additional).into_par_iter().for_each(|i| {
                            // SAFETY: each index written exactly once, within capacity.
                            ptr.write(i, AtomicU64::new(pack(0, NIL)));
                        });
                        self.boxes.set_len(nboxes);
                    }
                }
            }
            // `successors` entries are fully overwritten during insertion,
            // so only growth needs initialization.
            if self.successors.len() < n {
                self.successors.resize(n, NIL);
            }
        }

        let chunks = if build_cache {
            if self.agent_boxes.len() < n {
                self.agent_boxes.resize(n, 0);
            }
            let chunks = Self::count_chunks(n, nboxes);
            self.count_scratch.clear();
            self.count_scratch.resize(chunks * nboxes, 0);
            self.cell_offsets.clear();
            self.cell_offsets.resize(nboxes + 1, 0);
            chunks
        } else {
            0
        };

        // The fused build pass: ONE sweep over the cloud computes each
        // agent's box, feeds the counting sort's histogram, and (only when
        // requested) pushes the agent onto its box list.
        let ts = self.timestamp;
        let workers = rayon::current_num_threads();
        if n < PARALLEL_BUILD_THRESHOLD || (chunks == 1 && workers == 1) {
            // Single-threaded: plain stores instead of CAS, one count row.
            for i in 0..n {
                let bc = self.box_coordinates(positions.get(i));
                let flat = self.flat_index(bc);
                if build_cache {
                    self.agent_boxes[i] = flat as u32;
                    self.count_scratch[flat] += 1;
                }
                if build_lists {
                    let b = &self.boxes[flat];
                    let (bts, bhead) = unpack(b.load(Ordering::Relaxed));
                    // Lazy reset: a stale box behaves as empty.
                    let prev = if bts == ts { bhead } else { NIL };
                    b.store(pack(ts, i as u32), Ordering::Relaxed);
                    self.successors[i] = prev;
                }
            }
        } else if build_cache && chunks == 1 {
            // The scratch byte cap limited the histogram to a single count
            // row (very boxy dense cloud) but real workers exist: keep the
            // sweep parallel with one relaxed fetch_add per agent on a
            // shared atomic view of the row — increments commute, so the
            // merged result is identical to the chunk-private histogram.
            let boxes = &self.boxes;
            let successors_ptr = SuccessorsPtr(self.successors.as_mut_ptr());
            let agent_boxes_ptr = SendMut::new(self.agent_boxes.as_mut_ptr());
            // SAFETY: u32 and AtomicU32 have identical layout; the row is
            // only accessed through this view inside the parallel region.
            let counts = unsafe {
                std::slice::from_raw_parts(
                    self.count_scratch.as_mut_ptr() as *const std::sync::atomic::AtomicU32,
                    nboxes,
                )
            };
            let grid = &*self;
            (0..n).into_par_iter().for_each(|i| {
                let bc = grid.box_coordinates(positions.get(i));
                let flat = grid.flat_index(bc);
                // SAFETY: slot `i` is written by exactly one task.
                unsafe { agent_boxes_ptr.write(i, flat as u32) };
                counts[flat].fetch_add(1, Ordering::Relaxed);
                if build_lists {
                    cas_insert(boxes, flat, ts, i, successors_ptr);
                }
            });
        } else if build_cache {
            // Chunked parallel: contiguous agent ranges, one private count
            // row per chunk — merged below by a prefix sum, so the
            // histogram needs no shared atomics.
            let chunk_len = n.div_ceil(chunks);
            let boxes = &self.boxes;
            let successors_ptr = SuccessorsPtr(self.successors.as_mut_ptr());
            let agent_boxes_ptr = SendMut::new(self.agent_boxes.as_mut_ptr());
            let counts_ptr = SendMut::new(self.count_scratch.as_mut_ptr());
            let grid = &*self;
            (0..chunks).into_par_iter().for_each(|c| {
                let row = c * nboxes;
                let start = c * chunk_len;
                let end = ((c + 1) * chunk_len).min(n);
                for i in start..end {
                    let bc = grid.box_coordinates(positions.get(i));
                    let flat = grid.flat_index(bc);
                    // SAFETY: slot `i` and the chunk-private count row are
                    // each written by exactly one task.
                    unsafe {
                        agent_boxes_ptr.write(i, flat as u32);
                        *counts_ptr.ptr_at(row + flat) += 1;
                    }
                    if build_lists {
                        cas_insert(boxes, flat, ts, i, successors_ptr);
                    }
                }
            });
        } else {
            // Sparse cloud: lists only, one CAS per agent.
            let boxes = &self.boxes;
            let successors_ptr = SuccessorsPtr(self.successors.as_mut_ptr());
            let grid = &*self;
            (0..n).into_par_iter().for_each(|i| {
                let bc = grid.box_coordinates(positions.get(i));
                let flat = grid.flat_index(bc);
                cas_insert(boxes, flat, ts, i, successors_ptr);
            });
        }

        if build_cache {
            self.merge_counts(chunks, nboxes, n);
            self.build_occupancy(nboxes);
            // Box-sorted diameters ride along in the same scatter pass, but
            // only when this iteration's due kernels declared they read
            // neighbor diameters (the hint) and the cloud carries them (the
            // engine's snapshot does; raw position clouds do not).
            let diameters = if hint.scatter_diameters {
                cloud.diameters().filter(|d| d.len() == n)
            } else {
                None
            };
            self.scatter_soa(positions, diameters, n, nboxes, chunks);
            self.soa_active = true;
            self.diameters_active = diameters.is_some();
        }
        self.lists_active = build_lists;
    }

    fn for_each_neighbor(
        &self,
        cloud: &dyn PointCloud,
        pos: Real3,
        exclude: Option<usize>,
        radius: f64,
        _scratch: &mut NeighborQueryScratch,
        visit: &mut dyn FnMut(usize, Real3, f64),
    ) {
        // SoA fast path: the nine contiguous runs, via the monomorphized
        // implementation (here instantiated with the trait's dyn visitor;
        // the engine's per-agent queries instantiate it with the concrete
        // kernel closure instead and skip this virtual call entirely).
        if self.for_each_neighbor_soa(pos, exclude, radius, &mut *visit) {
            return;
        }
        // A 3×3×3 box walk only covers queries up to the build radius;
        // anything larger would silently miss neighbors, so fail loudly
        // (models must declare their largest query via
        // `Param::interaction_radius`).
        assert!(
            radius <= self.box_length * (1.0 + 1e-12),
            "query radius {radius} exceeds the radius the uniform grid was built with ({}); \
             set Param::interaction_radius to the largest query radius of the model",
            self.box_length
        );
        let r2 = radius * radius;
        let bc = self.box_coordinates(pos);

        // Fallback (sparse clouds): 3×3×3 cube of boxes around the query
        // box, chasing the per-box linked list (always built when the SoA
        // cache is not).
        debug_assert!(self.lists_active);
        for dz in -1i64..=1 {
            let z = bc[2] as i64 + dz;
            if z < 0 || z >= self.dims[2] as i64 {
                continue;
            }
            for dy in -1i64..=1 {
                let y = bc[1] as i64 + dy;
                if y < 0 || y >= self.dims[1] as i64 {
                    continue;
                }
                for dx in -1i64..=1 {
                    let x = bc[0] as i64 + dx;
                    if x < 0 || x >= self.dims[0] as i64 {
                        continue;
                    }
                    let flat = self.flat_index([x as u32, y as u32, z as u32]);
                    let mut cur = self.box_head(flat);
                    while let Some(i) = cur {
                        let idx = i as usize;
                        if Some(idx) != exclude {
                            debug_assert!(idx < self.num_points);
                            let p = cloud.position(idx);
                            let d2 = pos.distance_sq(&p);
                            if d2 <= r2 {
                                visit(idx, p, d2);
                            }
                        }
                        cur = self.successor(i);
                    }
                }
            }
        }
    }

    fn clear(&mut self) {
        self.boxes.clear();
        self.successors.clear();
        self.num_points = 0;
        self.dims = [0; 3];
        self.global_dims = [0; 3];
        self.box_offset = [0; 3];
        self.bounds = None;
        self.cell_offsets.clear();
        self.sorted_slots.clear();
        self.sorted_diameters.clear();
        self.agent_boxes.clear();
        self.count_scratch.clear();
        self.occupancy.clear();
        self.soa_active = false;
        self.diameters_active = false;
        self.lists_active = false;
    }

    fn memory_bytes(&self) -> usize {
        // Only structures the *current* build materialized count (fig09's
        // memory column): a lazy-skipped linked list costs nothing even if
        // its buffers linger from an earlier iteration, and vice versa.
        let mut bytes = 0;
        if self.lists_active {
            bytes += self.boxes.capacity() * std::mem::size_of::<AtomicU64>()
                + self.successors.capacity() * std::mem::size_of::<u32>();
        }
        if self.soa_active {
            // The interleaved slot array replaced the old split
            // position/index arrays — count it once, at its real (padded)
            // stride, not as the sum of the former parts.
            bytes += self.cell_offsets.capacity() * std::mem::size_of::<u32>()
                + self.sorted_slots.capacity() * std::mem::size_of::<SortedSlot>()
                + self.agent_boxes.capacity() * std::mem::size_of::<u32>()
                + self.count_scratch.capacity() * std::mem::size_of::<u32>()
                + self.occupancy.capacity() * std::mem::size_of::<u64>();
            // The diameter scatter is conditional; a lingering buffer from
            // an earlier build costs nothing when this build skipped it.
            if self.diameters_active {
                bytes += self.sorted_diameters.capacity() * std::mem::size_of::<f64>();
            }
        }
        bytes
    }

    fn name(&self) -> &'static str {
        "uniform_grid"
    }

    fn bounds(&self) -> Option<(Real3, Real3)> {
        self.bounds
    }

    fn as_uniform_grid(&self) -> Option<&UniformGridEnvironment> {
        Some(self)
    }
}

/// Position accessor resolved once per rebuild (see
/// [`PointCloud::positions_slice`]): slice-backed clouds read straight
/// memory in the O(#agents) sweeps, everything else goes through the
/// virtual call.
#[derive(Clone, Copy)]
enum Positions<'a> {
    Slice(&'a [Real3]),
    Cloud(&'a dyn PointCloud),
}

impl Positions<'_> {
    #[inline]
    fn get(&self, i: usize) -> Real3 {
        match self {
            Positions::Slice(s) => s[i],
            Positions::Cloud(c) => c.position(i),
        }
    }
}

/// One linked-list insertion: CAS the packed `(timestamp, head)` word of the
/// box, then publish the previous head as the agent's successor.
#[inline]
fn cas_insert(boxes: &[AtomicU64], flat: usize, ts: u32, i: usize, successors: SuccessorsPtr) {
    let b = &boxes[flat];
    let mut cur = b.load(Ordering::Relaxed);
    loop {
        let (bts, bhead) = unpack(cur);
        // Lazy reset: a stale box behaves as empty.
        let prev = if bts == ts { bhead } else { NIL };
        match b.compare_exchange_weak(
            cur,
            pack(ts, i as u32),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                // SAFETY: slot `i` is written by exactly one task.
                unsafe { successors.write(i, prev) };
                break;
            }
            Err(c) => cur = c,
        }
    }
}

/// Shared mutable pointer into the successors array; each index is written by
/// exactly one parallel task.
#[derive(Clone, Copy)]
struct SuccessorsPtr(*mut u32);
unsafe impl Send for SuccessorsPtr {}
unsafe impl Sync for SuccessorsPtr {}

impl SuccessorsPtr {
    /// # Safety
    /// `i` must be in bounds and written by exactly one task.
    #[inline]
    unsafe fn write(&self, i: usize, v: u32) {
        self.0.add(i).write(v);
    }
}

/// Shared mutable pointer into the boxes array tail during parallel init;
/// each index is written by exactly one parallel task.
#[derive(Clone, Copy)]
struct BoxesPtr(*mut AtomicU64);
unsafe impl Send for BoxesPtr {}
unsafe impl Sync for BoxesPtr {}

impl BoxesPtr {
    /// # Safety (upheld by caller context)
    /// `i` must be within the reserved capacity and written exactly once.
    #[inline]
    fn write(&self, i: usize, v: AtomicU64) {
        // SAFETY: see above; the only call site iterates disjoint indices.
        unsafe { self.0.add(i).write(v) };
    }
}
