//! The box-batched query surface of the uniform grid (ISSUE 6 tentpole):
//! [`StencilRuns`] resolved once per box must reproduce the per-agent
//! query's visit sequence exactly, the conditional diameter scatter must be
//! a bitwise copy that only materializes on request, and both must behave
//! across boundary boxes and sparse/dense regime flips.

use bdm_env::{
    BoxListPolicy, BruteForceEnvironment, Environment, PointCloud, SliceCloud,
    UniformGridEnvironment, UpdateHint,
};
use bdm_util::{Real3, SimRng};

/// A position cloud that carries per-point diameters (as the engine's
/// snapshot does).
struct DiamCloud {
    positions: Vec<Real3>,
    diameters: Vec<f64>,
}

impl PointCloud for DiamCloud {
    fn len(&self) -> usize {
        self.positions.len()
    }
    fn position(&self, idx: usize) -> Real3 {
        self.positions[idx]
    }
    fn positions_slice(&self) -> Option<&[Real3]> {
        Some(&self.positions)
    }
    fn diameters(&self) -> Option<&[f64]> {
        Some(&self.diameters)
    }
}

fn diam_cloud(seed: u64, n: usize, extent: f64) -> DiamCloud {
    let mut rng = SimRng::new(seed);
    DiamCloud {
        positions: (0..n).map(|_| rng.point_in_cube(0.0, extent)).collect(),
        diameters: (0..n).map(|_| rng.uniform_in(1.0, 4.0)).collect(),
    }
}

fn scatter_hint() -> UpdateHint {
    UpdateHint {
        build_box_lists: BoxListPolicy::IfNeeded,
        known_bounds: None,
        scatter_diameters: true,
        ..UpdateHint::default()
    }
}

/// The batched scan every engine worker runs: resolve the stencil once for
/// the query's box, then walk the runs over the interleaved slots in order.
fn batched_neighbors(
    grid: &UniformGridEnvironment,
    pos: Real3,
    exclude: usize,
    radius: f64,
) -> Vec<(usize, Real3, f64, f64)> {
    let slots = grid.slots().expect("SoA cache active");
    let diams = grid.scattered_diameters().expect("diameters scattered");
    let runs = grid
        .stencil_runs(grid.box_coordinates(pos))
        .expect("stencil resolvable while the cache is active");
    let r2 = radius * radius;
    let mut out = Vec::new();
    for &(start, end) in runs.runs() {
        for i in start as usize..end as usize {
            let s = slots[i];
            let d2 = pos.distance_sq(&s.position);
            if d2 <= r2 && s.index as usize != exclude {
                out.push((s.index as usize, s.position, diams[i], d2));
            }
        }
    }
    out
}

#[test]
fn stencil_runs_reproduce_the_per_agent_visit_sequence() {
    // Includes lattice points on exact box boundaries and the eight grid
    // corners — the stencil clamp cases.
    let mut cloud = diam_cloud(11, 600, 24.0);
    for x in [0.0, 24.0] {
        for y in [0.0, 24.0] {
            for z in [0.0, 24.0] {
                cloud.positions.push(Real3::new(x, y, z));
                cloud.diameters.push(2.0);
            }
        }
    }
    let radius = 3.0;
    let mut grid = UniformGridEnvironment::new();
    grid.update_with(&cloud, radius, scatter_hint());
    assert!(grid.soa_active());

    for (i, &p) in cloud.positions.iter().enumerate() {
        // Per-agent reference: the engine's scalar fast path, in order.
        let mut scalar = Vec::new();
        assert!(
            grid.for_each_neighbor_soa(p, Some(i), radius, |idx, pos, d2| {
                scalar.push((idx, pos, d2));
            })
        );
        // Streamed-diameter variant: same sequence plus the diameter.
        let mut streamed = Vec::new();
        assert!(
            grid.for_each_neighbor_soa_diam(p, Some(i), radius, |idx, pos, diam, d2| {
                streamed.push((idx, pos, diam, d2));
            })
        );
        let batched = batched_neighbors(&grid, p, i, radius);
        assert_eq!(batched.len(), scalar.len(), "query {i}");
        assert_eq!(streamed, batched, "query {i}");
        for (k, &(idx, pos, diam, d2)) in batched.iter().enumerate() {
            let (sidx, spos, sd2) = scalar[k];
            assert_eq!((idx, pos), (sidx, spos), "query {i} visit {k}");
            assert_eq!(d2.to_bits(), sd2.to_bits(), "query {i} visit {k}");
            // The scattered diameter is a bitwise copy of the cloud's.
            assert_eq!(
                diam.to_bits(),
                cloud.diameters[idx].to_bits(),
                "query {i} visit {k}"
            );
        }
    }
}

#[test]
fn batched_queries_match_brute_force() {
    let cloud = diam_cloud(23, 500, 20.0);
    let radius = 2.5;
    let mut grid = UniformGridEnvironment::new();
    grid.update_with(&cloud, radius, scatter_hint());
    let mut brute = BruteForceEnvironment::new();
    brute.update(&SliceCloud(&cloud.positions), radius);
    for (i, &p) in cloud.positions.iter().enumerate() {
        let mut batched: Vec<usize> = batched_neighbors(&grid, p, i, radius)
            .into_iter()
            .map(|(idx, ..)| idx)
            .collect();
        batched.sort_unstable();
        let expected =
            bdm_env::neighbors_of(&brute, &SliceCloud(&cloud.positions), p, Some(i), radius);
        assert_eq!(batched, expected, "query {i}");
    }
}

#[test]
fn diameter_scatter_is_conditional() {
    let cloud = diam_cloud(31, 400, 18.0);

    // Hint off → no scatter, even though the cloud carries diameters.
    let mut grid = UniformGridEnvironment::new();
    grid.update_with(
        &cloud,
        3.0,
        UpdateHint {
            build_box_lists: BoxListPolicy::IfNeeded,
            ..UpdateHint::default()
        },
    );
    assert!(grid.soa_active());
    assert!(grid.scattered_diameters().is_none());
    assert!(
        !grid.for_each_neighbor_soa_diam(cloud.positions[0], Some(0), 3.0, |_, _, _, _| {
            panic!("must not visit without the scatter")
        })
    );
    let without = grid.memory_bytes();

    // Hint on → scattered, and the memory report reflects exactly the
    // extra 8 bytes/point (the accounting-bugfix satellite).
    grid.update_with(&cloud, 3.0, scatter_hint());
    assert!(grid.scattered_diameters().is_some());
    assert_eq!(
        grid.memory_bytes(),
        without + cloud.len() * std::mem::size_of::<f64>()
    );

    // Hint on but the cloud has no diameters → graceful skip.
    grid.update_with(&SliceCloud(&cloud.positions), 3.0, scatter_hint());
    assert!(grid.soa_active());
    assert!(grid.scattered_diameters().is_none());

    // A later scatter-free rebuild must deactivate a previous scatter.
    grid.update_with(&cloud, 3.0, scatter_hint());
    assert!(grid.scattered_diameters().is_some());
    grid.update_with(
        &cloud,
        3.0,
        UpdateHint {
            build_box_lists: BoxListPolicy::IfNeeded,
            ..UpdateHint::default()
        },
    );
    assert!(grid.scattered_diameters().is_none());
}

#[test]
fn sparse_regime_declines_the_batched_surface() {
    // Sparse cloud in a huge space: no SoA cache, so the whole batched
    // surface reports unavailable instead of panicking — and a dense
    // rebuild of the same instance restores it (regime flip).
    let mut sparse = diam_cloud(41, 40, 2000.0);
    sparse.diameters.truncate(40);
    let mut grid = UniformGridEnvironment::new();
    grid.update_with(&sparse, 30.0, scatter_hint());
    assert!(!grid.soa_active());
    assert!(grid.slots().is_none());
    assert!(grid.scattered_diameters().is_none());
    assert!(grid
        .stencil_runs(grid.box_coordinates(sparse.positions[0]))
        .is_none());
    assert!(!grid.for_each_neighbor_soa_diam(sparse.positions[0], Some(0), 30.0, |_, _, _, _| {}));

    let dense = diam_cloud(42, 600, 24.0);
    grid.update_with(&dense, 3.0, scatter_hint());
    assert!(grid.soa_active());
    assert!(grid.scattered_diameters().is_some());
    let hits = batched_neighbors(&grid, dense.positions[7], 7, 3.0);
    let mut scalar = Vec::new();
    grid.for_each_neighbor_soa(dense.positions[7], Some(7), 3.0, |idx, _, _| {
        scalar.push(idx)
    });
    assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), scalar);
}

#[test]
fn build_count_advances_every_rebuild() {
    let cloud = diam_cloud(51, 100, 10.0);
    let mut grid = UniformGridEnvironment::new();
    let c0 = grid.build_count();
    grid.update_with(&cloud, 2.0, scatter_hint());
    let c1 = grid.build_count();
    assert!(c1 > c0);
    grid.update_with(&cloud, 2.0, scatter_hint());
    assert!(grid.build_count() > c1, "cached stencils must invalidate");
}
