//! The uniform grid's multi-chunk counting sort and tiled scatter, pinned
//! via the `BDM_GRID_COUNT_CHUNKS` override.
//!
//! Lives in its own test binary (= its own process): the override is
//! process-global and `count_chunks` reads it on every large rebuild, so
//! setting it next to unrelated parallel tests would make *which* build
//! path they exercise nondeterministic.

use bdm_env::{
    neighbors_of, BoxListPolicy, BruteForceEnvironment, Environment, SliceCloud,
    UniformGridEnvironment, UpdateHint,
};
use bdm_util::{Real3, SimRng};

#[test]
fn chunked_count_merge_and_tiled_scatter_match_brute() {
    // Force the multi-chunk counting sort (4 chunk-private count rows) and
    // a multi-tile scatter: 320k points cross the parallel threshold AND
    // the ~4 MB tile window (320k × 32 B ≈ 10 MB → 3 tiles), so the
    // tile-boundary partitioning really runs. The SoA order must stay the
    // deterministic ascending-agent-index grouping, and sampled queries
    // must match brute force. (On machines with more worker threads this
    // path also runs without the override; the env var pins it
    // everywhere.)
    std::env::set_var("BDM_GRID_COUNT_CHUNKS", "4");
    let n = 320_000;
    let mut rng = SimRng::new(73);
    let points: Vec<Real3> = (0..n).map(|_| rng.point_in_cube(0.0, 200.0)).collect();
    let mut grid = UniformGridEnvironment::new();
    grid.update_with(
        &SliceCloud(&points),
        4.0,
        UpdateHint {
            build_box_lists: BoxListPolicy::IfNeeded,
            ..UpdateHint::default()
        },
    );
    assert!(grid.soa_active() && !grid.lists_active());

    // Deterministic grouping: ascending agent index within every box.
    let mut total = 0usize;
    for flat in 0..grid.num_boxes() {
        let slots = grid.box_slots(flat).unwrap();
        assert!(
            slots.windows(2).all(|w| w[0].index < w[1].index),
            "box {flat}"
        );
        total += slots.len();
    }
    assert_eq!(total, n);

    let mut brute = BruteForceEnvironment::new();
    brute.update(&SliceCloud(&points), 4.0);
    for (i, &p) in points.iter().enumerate().step_by(6553) {
        assert_eq!(
            neighbors_of(&grid, &SliceCloud(&points), p, Some(i), 4.0),
            neighbors_of(&brute, &SliceCloud(&points), p, Some(i), 4.0),
            "chunked/tiled build, query {i}"
        );
    }
}
