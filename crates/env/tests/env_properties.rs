//! Cross-implementation properties: every environment must return exactly
//! the neighbors the brute-force reference returns, for arbitrary point sets
//! and radii (the correctness contract behind paper Figure 11's comparison).

use bdm_env::{
    neighbors_of, BoxListPolicy, BruteForceEnvironment, Environment, KdTreeEnvironment,
    OctreeEnvironment, SliceCloud, UniformGridEnvironment, UpdateHint,
};
use bdm_util::{Real3, SimRng};
use proptest::prelude::*;

/// Hint of the engine's steady state: no consumer wants the linked lists,
/// bounds unknown.
fn lazy_hint() -> UpdateHint {
    UpdateHint {
        build_box_lists: BoxListPolicy::IfNeeded,
        ..UpdateHint::default()
    }
}

/// Views a position slice as a `PointCloud`.
fn pc(points: &[Real3]) -> SliceCloud<'_> {
    SliceCloud(points)
}

fn environments() -> Vec<Box<dyn Environment>> {
    vec![
        Box::new(UniformGridEnvironment::new()),
        Box::new(KdTreeEnvironment::new()),
        Box::new(OctreeEnvironment::new()),
    ]
}

fn random_points(seed: u64, n: usize, extent: f64) -> Vec<Real3> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| rng.point_in_cube(0.0, extent)).collect()
}

/// Compares each environment against brute force for every point as a query.
fn check_against_brute(points: &[Real3], radius: f64) {
    let mut brute = BruteForceEnvironment::new();
    brute.update(&pc(points), radius);
    for mut env in environments() {
        env.update(&pc(points), radius);
        for (i, &p) in points.iter().enumerate() {
            let expected = neighbors_of(&brute, &pc(points), p, Some(i), radius);
            let got = neighbors_of(env.as_ref(), &pc(points), p, Some(i), radius);
            assert_eq!(
                got,
                expected,
                "{} disagrees with brute force (query {i}, radius {radius})",
                env.name()
            );
        }
    }
}

#[test]
fn empty_cloud_yields_no_neighbors() {
    let points: Vec<Real3> = Vec::new();
    for mut env in environments() {
        env.update(&pc(&points), 1.0);
        let got = neighbors_of(env.as_ref(), &pc(&points), Real3::ZERO, None, 1.0);
        assert!(got.is_empty(), "{}", env.name());
        assert_eq!(env.bounds(), None);
    }
}

#[test]
fn single_point() {
    let points = vec![Real3::new(1.0, 2.0, 3.0)];
    for mut env in environments() {
        env.update(&pc(&points), 2.0);
        // Query at the point, excluding it.
        let got = neighbors_of(env.as_ref(), &pc(&points), points[0], Some(0), 2.0);
        assert!(got.is_empty(), "{}", env.name());
        // Query nearby without exclusion.
        let got = neighbors_of(
            env.as_ref(),
            &pc(&points),
            Real3::new(1.5, 2.0, 3.0),
            None,
            2.0,
        );
        assert_eq!(got, vec![0], "{}", env.name());
    }
}

#[test]
fn coincident_points() {
    let points = vec![Real3::splat(5.0); 40];
    check_against_brute(&points, 1.0);
}

#[test]
fn points_on_a_line() {
    let points: Vec<Real3> = (0..50)
        .map(|i| Real3::new(i as f64 * 0.5, 0.0, 0.0))
        .collect();
    check_against_brute(&points, 1.0);
}

#[test]
fn clustered_points() {
    let mut rng = SimRng::new(99);
    let mut points = Vec::new();
    for c in 0..5 {
        let center = Real3::splat(c as f64 * 20.0);
        for _ in 0..30 {
            points.push(center + rng.unit_vector() * rng.uniform_in(0.0, 2.0));
        }
    }
    check_against_brute(&points, 3.0);
}

#[test]
fn dense_uniform_cube() {
    let points = random_points(7, 300, 10.0);
    check_against_brute(&points, 2.0);
}

#[test]
fn sparse_points_in_large_space() {
    // Large empty space exercises the grid's timestamp-based lazy clearing:
    // many boxes exist, few are populated.
    let points = random_points(8, 50, 1000.0);
    check_against_brute(&points, 30.0);
}

#[test]
fn grid_reuse_across_updates_does_not_leak_stale_agents() {
    // First build a dense cloud, then a tiny one; stale boxes must not
    // resurface old indices (the timestamp mechanism under test).
    let mut grid = UniformGridEnvironment::new();
    let dense = random_points(21, 500, 50.0);
    grid.update(&pc(&dense), 5.0);
    let sparse = vec![Real3::splat(25.0), Real3::splat(26.0)];
    grid.update(&pc(&sparse), 5.0);
    for (i, &p) in sparse.iter().enumerate() {
        let got = neighbors_of(&grid, &pc(&sparse), p, Some(i), 5.0);
        let expected: Vec<usize> = (0..sparse.len()).filter(|&j| j != i).collect();
        assert_eq!(got, expected);
    }
}

#[test]
fn grid_many_updates_timestamp_progression() {
    let mut grid = UniformGridEnvironment::new();
    let points = random_points(3, 64, 20.0);
    let mut brute = BruteForceEnvironment::new();
    brute.update(&pc(&points), 4.0);
    for _ in 0..100 {
        grid.update(&pc(&points), 4.0);
    }
    for (i, &p) in points.iter().enumerate() {
        assert_eq!(
            neighbors_of(&grid, &pc(&points), p, Some(i), 4.0),
            neighbors_of(&brute, &pc(&points), p, Some(i), 4.0)
        );
    }
}

#[test]
fn grid_box_accessors_enumerate_all_agents() {
    let points = random_points(13, 200, 30.0);
    let mut grid = UniformGridEnvironment::new();
    grid.update(&pc(&points), 3.0);
    let mut seen = vec![false; points.len()];
    for flat in 0..grid.num_boxes() {
        grid.for_each_in_box(flat, &mut |i| {
            assert!(!seen[i as usize], "agent {i} listed twice");
            seen[i as usize] = true;
        });
    }
    assert!(seen.iter().all(|&s| s), "every agent is in exactly one box");
}

#[test]
fn points_exactly_on_box_boundaries() {
    // Points at exact multiples of the interaction radius sit exactly on
    // box edges; binning must stay consistent between the insert and the
    // query side (and between the SoA and linked-list paths).
    let radius = 1.0;
    let mut points = Vec::new();
    for x in 0..5 {
        for y in 0..5 {
            for z in 0..5 {
                points.push(Real3::new(x as f64, y as f64, z as f64));
            }
        }
    }
    check_against_brute(&points, radius);
    // Also with a radius that makes the lattice spacing a non-integer
    // multiple (floating-point boundary rounding).
    check_against_brute(&points, 0.5);
}

#[test]
fn interaction_radius_change_between_updates() {
    // The same grid instance rebuilt with a different radius must fully
    // re-bin: box length, dims, and the SoA cache all change shape.
    let points = random_points(31, 400, 20.0);
    let mut grid = UniformGridEnvironment::new();
    let mut brute = BruteForceEnvironment::new();
    for radius in [2.0, 7.0, 0.5, 3.25] {
        grid.update(&pc(&points), radius);
        brute.update(&pc(&points), radius);
        for (i, &p) in points.iter().enumerate().step_by(13) {
            assert_eq!(
                neighbors_of(&grid, &pc(&points), p, Some(i), radius),
                neighbors_of(&brute, &pc(&points), p, Some(i), radius),
                "radius {radius}, query {i}"
            );
        }
    }
}

#[test]
fn degenerate_all_points_in_one_box() {
    // The whole cloud falls into a single grid box (extent < radius): the
    // 3×3×3 stencil degenerates to that one box and the SoA cache is one
    // run covering every point.
    let mut rng = SimRng::new(77);
    let points: Vec<Real3> = (0..120).map(|_| rng.point_in_cube(10.0, 10.4)).collect();
    let mut grid = UniformGridEnvironment::new();
    grid.update(&pc(&points), 1.0);
    assert_eq!(grid.dims(), [1, 1, 1]);
    assert!(grid.soa_active(), "single-box cloud is maximally dense");
    check_against_brute(&points, 1.0);
}

#[test]
fn soa_cache_active_on_dense_inactive_on_sparse_with_parity() {
    // Dense cloud: #boxes ≲ #points, the SoA fast path is taken. Sparse
    // cloud in a huge space: the cache would cost O(#boxes), so queries
    // fall back to the linked list. Both must agree with brute force, and
    // one grid instance must switch safely between the two regimes.
    let mut grid = UniformGridEnvironment::new();

    let dense = random_points(41, 600, 25.0);
    grid.update(&pc(&dense), 3.0);
    assert!(grid.soa_active(), "dense cloud must build the SoA cache");
    let mut brute = BruteForceEnvironment::new();
    brute.update(&pc(&dense), 3.0);
    for (i, &p) in dense.iter().enumerate() {
        assert_eq!(
            neighbors_of(&grid, &pc(&dense), p, Some(i), 3.0),
            neighbors_of(&brute, &pc(&dense), p, Some(i), 3.0),
            "SoA path, query {i}"
        );
    }

    // ~68³ ≈ 314k boxes for 40 points: far beyond the density cutoff.
    let sparse = random_points(42, 40, 2000.0);
    grid.update(&pc(&sparse), 30.0);
    assert!(!grid.soa_active(), "sparse cloud must skip the SoA cache");
    brute.update(&pc(&sparse), 30.0);
    for (i, &p) in sparse.iter().enumerate() {
        assert_eq!(
            neighbors_of(&grid, &pc(&sparse), p, Some(i), 30.0),
            neighbors_of(&brute, &pc(&sparse), p, Some(i), 30.0),
            "fallback path, query {i}"
        );
    }

    // Back to dense on the same instance: stale sparse state must not leak.
    grid.update(&pc(&dense), 3.0);
    assert!(grid.soa_active());
    brute.update(&pc(&dense), 3.0);
    for (i, &p) in dense.iter().enumerate().step_by(7) {
        assert_eq!(
            neighbors_of(&grid, &pc(&dense), p, Some(i), 3.0),
            neighbors_of(&brute, &pc(&dense), p, Some(i), 3.0),
            "SoA path after sparse rebuild, query {i}"
        );
    }
}

#[test]
fn grid_parallel_build_above_threshold_matches_brute() {
    // 70k points crosses the grid's parallel-build threshold (1 << 16):
    // this exercises the CAS insertion path AND the atomic counting/scatter
    // passes of the SoA cache build, which smaller tests never reach.
    // Queries are sampled (brute force is O(n) per query at this scale).
    let n = 70_000;
    let points = random_points(55, n, 120.0);
    let mut grid = UniformGridEnvironment::new();
    grid.update(&pc(&points), 4.0);
    assert!(
        grid.soa_active(),
        "dense 70k cloud must build the SoA cache"
    );
    let mut brute = BruteForceEnvironment::new();
    brute.update(&pc(&points), 4.0);
    for (i, &p) in points.iter().enumerate().step_by(997) {
        assert_eq!(
            neighbors_of(&grid, &pc(&points), p, Some(i), 4.0),
            neighbors_of(&brute, &pc(&points), p, Some(i), 4.0),
            "parallel-build path, query {i}"
        );
    }
}

#[test]
fn lazy_lists_skipped_on_dense_hint_with_full_parity() {
    // Engine steady state: dense cloud + IfNeeded hint. The CAS linked-list
    // insertion must be skipped, the SoA cache must serve queries AND the
    // box-enumeration accessors, and results must match brute force.
    let points = random_points(61, 500, 25.0);
    let mut grid = UniformGridEnvironment::new();
    grid.update_with(&pc(&points), 3.0, lazy_hint());
    assert!(grid.soa_active() && !grid.lists_active());

    let mut brute = BruteForceEnvironment::new();
    brute.update(&pc(&points), 3.0);
    for (i, &p) in points.iter().enumerate() {
        assert_eq!(
            neighbors_of(&grid, &pc(&points), p, Some(i), 3.0),
            neighbors_of(&brute, &pc(&points), p, Some(i), 3.0),
            "lazy-list query {i}"
        );
    }
    // for_each_in_box serves from the SoA cache when the lists are off.
    let mut seen = vec![false; points.len()];
    for flat in 0..grid.num_boxes() {
        let slots = grid.box_slots(flat).expect("SoA cache active");
        let mut walked = Vec::new();
        grid.for_each_in_box(flat, &mut |i| walked.push(i));
        assert_eq!(walked, slots.iter().map(|s| s.index).collect::<Vec<_>>());
        for s in slots {
            let i = s.index;
            assert!(!seen[i as usize], "agent {i} listed twice");
            seen[i as usize] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "every agent is in exactly one box");
    // The grid's memory report reflects only what this build materialized:
    // SoA yes, linked list no.
    let lazy_bytes = grid.memory_bytes();
    grid.update(&pc(&points), 3.0); // default hint: both structures
    assert!(grid.lists_active());
    assert!(
        grid.memory_bytes() > lazy_bytes,
        "list buffers must count only when the lists were built"
    );
}

#[test]
fn soa_and_linked_list_group_identically_when_both_built() {
    // Default hint on a dense cloud builds BOTH structures; per box they
    // must hold exactly the same agent set (the list is reverse insertion
    // order, the SoA run ascending agent index).
    let points = random_points(67, 400, 20.0);
    let mut grid = UniformGridEnvironment::new();
    grid.update(&pc(&points), 2.5);
    assert!(grid.soa_active() && grid.lists_active());
    for flat in 0..grid.num_boxes() {
        let mut from_soa: Vec<u32> = grid
            .box_slots(flat)
            .unwrap()
            .iter()
            .map(|s| s.index)
            .collect();
        let mut from_list = Vec::new();
        let mut cur = grid.box_head(flat);
        while let Some(i) = cur {
            from_list.push(i);
            cur = grid.successor(i);
        }
        from_soa.sort_unstable();
        from_list.sort_unstable();
        assert_eq!(from_soa, from_list, "box {flat}");
    }
}

#[test]
fn regime_flip_dense_sparse_dense_reuses_buffers_without_stale_reads() {
    // One grid instance under the engine hint, flipped between regimes:
    // dense (SoA only) → sparse (lists forced despite the hint) → dense
    // again. Every phase must agree with brute force and the activity
    // flags must track the regime — stale buffers from the previous
    // regime must never be read.
    let mut grid = UniformGridEnvironment::new();
    let mut brute = BruteForceEnvironment::new();
    let dense = random_points(71, 600, 25.0);
    let sparse = random_points(72, 40, 2000.0);

    for (round, (points, radius)) in [(&dense, 3.0), (&sparse, 30.0), (&dense, 3.0)]
        .into_iter()
        .enumerate()
    {
        grid.update_with(&pc(points), radius, lazy_hint());
        let dense_round = round != 1;
        assert_eq!(grid.soa_active(), dense_round, "round {round}");
        assert_eq!(
            grid.lists_active(),
            !dense_round,
            "sparse rounds must force the lists, dense rounds must skip them"
        );
        brute.update(&pc(points), radius);
        for (i, &p) in points.iter().enumerate() {
            assert_eq!(
                neighbors_of(&grid, &pc(points), p, Some(i), radius),
                neighbors_of(&brute, &pc(points), p, Some(i), radius),
                "round {round}, query {i}"
            );
        }
    }
}

#[test]
fn known_bounds_hint_matches_self_computed_bounds() {
    // Passing precomputed bounds must produce the identical grid shape and
    // query results as letting the grid compute them.
    let points = random_points(79, 300, 15.0);
    let (mut lo, mut hi) = (points[0], points[0]);
    for p in &points[1..] {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    let mut self_computed = UniformGridEnvironment::new();
    self_computed.update(&pc(&points), 2.0);
    let mut hinted = UniformGridEnvironment::new();
    hinted.update_with(
        &pc(&points),
        2.0,
        UpdateHint {
            build_box_lists: BoxListPolicy::Always,
            known_bounds: Some((lo, hi)),
            ..UpdateHint::default()
        },
    );
    assert_eq!(hinted.dims(), self_computed.dims());
    assert_eq!(hinted.bounds(), self_computed.bounds());
    for (i, &p) in points.iter().enumerate() {
        assert_eq!(
            neighbors_of(&hinted, &pc(&points), p, Some(i), 2.0),
            neighbors_of(&self_computed, &pc(&points), p, Some(i), 2.0),
        );
    }
}

#[test]
fn grid_box_coordinates_clamp() {
    let points = vec![Real3::ZERO, Real3::splat(10.0)];
    let mut grid = UniformGridEnvironment::new();
    grid.update(&pc(&points), 1.0);
    // Far outside queries clamp into the grid rather than panicking.
    let bc = grid.box_coordinates(Real3::splat(-100.0));
    assert_eq!(bc, [0, 0, 0]);
    let bc = grid.box_coordinates(Real3::splat(100.0));
    let dims = grid.dims();
    assert_eq!(bc, [dims[0] - 1, dims[1] - 1, dims[2] - 1]);
}

#[test]
fn clear_resets_environments() {
    let points = random_points(5, 100, 10.0);
    for mut env in environments() {
        env.update(&pc(&points), 2.0);
        env.clear();
        let got = neighbors_of(env.as_ref(), &pc(&points), points[0], None, 2.0);
        assert!(got.is_empty(), "{} after clear", env.name());
    }
}

#[test]
fn memory_bytes_reports_nonzero_after_update() {
    let points = random_points(11, 1000, 20.0);
    for mut env in environments() {
        env.update(&pc(&points), 2.0);
        assert!(env.memory_bytes() > 0, "{}", env.name());
    }
}

#[test]
fn octree_bucket_and_kdtree_leaf_parameters() {
    let points = random_points(17, 400, 15.0);
    let mut brute = BruteForceEnvironment::new();
    brute.update(&pc(&points), 2.5);
    for bucket in [1, 4, 64, 1000] {
        let mut oct = OctreeEnvironment::with_bucket_size(bucket);
        oct.update(&pc(&points), 2.5);
        let mut kd = KdTreeEnvironment::with_leaf_size(bucket);
        kd.update(&pc(&points), 2.5);
        for (i, &p) in points.iter().enumerate().step_by(17) {
            let expected = neighbors_of(&brute, &pc(&points), p, Some(i), 2.5);
            assert_eq!(
                neighbors_of(&oct, &pc(&points), p, Some(i), 2.5),
                expected.clone(),
                "octree bucket={bucket}"
            );
            assert_eq!(
                neighbors_of(&kd, &pc(&points), p, Some(i), 2.5),
                expected,
                "kdtree leaf={bucket}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_all_envs_match_brute_force(
        seed in any::<u64>(),
        n in 1usize..150,
        extent in 1.0f64..100.0,
        radius_frac in 0.05f64..1.0,
    ) {
        let points = random_points(seed, n, extent);
        // Radius scaled to the extent so both dense and sparse regimes occur.
        let radius = extent * radius_frac * 0.2 + 1e-3;
        let mut brute = BruteForceEnvironment::new();
        brute.update(&pc(&points), radius);
        for mut env in environments() {
            env.update(&pc(&points), radius);
            for (i, &p) in points.iter().enumerate() {
                let expected = neighbors_of(&brute, &pc(&points), p, Some(i), radius);
                let got = neighbors_of(env.as_ref(), &pc(&points), p, Some(i), radius);
                prop_assert_eq!(got, expected, "{} seed={} i={}", env.name(), seed, i);
            }
        }
    }

    #[test]
    fn prop_query_points_off_cloud(
        seed in any::<u64>(),
        n in 1usize..100,
        qx in -50.0f64..150.0,
        qy in -50.0f64..150.0,
        qz in -50.0f64..150.0,
    ) {
        let points = random_points(seed, n, 100.0);
        let radius = 10.0;
        let q = Real3::new(qx, qy, qz);
        let mut brute = BruteForceEnvironment::new();
        brute.update(&pc(&points), radius);
        let expected = neighbors_of(&brute, &pc(&points), q, None, radius);
        for mut env in environments() {
            env.update(&pc(&points), radius);
            let got = neighbors_of(env.as_ref(), &pc(&points), q, None, radius);
            prop_assert_eq!(got, expected.clone(), "{}", env.name());
        }
    }
}
