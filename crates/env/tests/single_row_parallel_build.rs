//! The uniform grid's scratch-cap fallback: a single shared count row
//! updated with atomic increments plus the tile-parallel deterministic
//! scatter — the regime where the count-row byte cap forces `chunks == 1`
//! on a machine that still has multiple workers.
//!
//! Own test binary (= own process): both `RAYON_NUM_THREADS` (read once,
//! cached) and `BDM_GRID_COUNT_CHUNKS` are process-global, so they must be
//! pinned before anything else touches the thread pool.

use bdm_env::{
    neighbors_of, BoxListPolicy, BruteForceEnvironment, Environment, SliceCloud,
    UniformGridEnvironment, UpdateHint,
};
use bdm_util::{Real3, SimRng};

#[test]
fn atomic_single_row_build_with_parallel_tiles_matches_brute() {
    // Two workers, but the count-chunk override pins a single row: the
    // build must take the shared-atomic histogram branch and the scatter
    // the tile-parallel branch (320k × 32 B ≈ 10 MB → 3 tiles), and the
    // SoA grouping must still be the deterministic ascending-agent-index
    // order.
    std::env::set_var("RAYON_NUM_THREADS", "2");
    std::env::set_var("BDM_GRID_COUNT_CHUNKS", "1");
    let n = 320_000;
    let mut rng = SimRng::new(91);
    let points: Vec<Real3> = (0..n).map(|_| rng.point_in_cube(0.0, 200.0)).collect();
    let mut grid = UniformGridEnvironment::new();
    grid.update_with(
        &SliceCloud(&points),
        4.0,
        UpdateHint {
            build_box_lists: BoxListPolicy::IfNeeded,
            ..UpdateHint::default()
        },
    );
    assert!(grid.soa_active() && !grid.lists_active());

    let mut total = 0usize;
    for flat in 0..grid.num_boxes() {
        let slots = grid.box_slots(flat).unwrap();
        assert!(
            slots.windows(2).all(|w| w[0].index < w[1].index),
            "box {flat}"
        );
        total += slots.len();
    }
    assert_eq!(total, n);

    let mut brute = BruteForceEnvironment::new();
    brute.update(&SliceCloud(&points), 4.0);
    for (i, &p) in points.iter().enumerate().step_by(6553) {
        assert_eq!(
            neighbors_of(&grid, &SliceCloud(&points), p, Some(i), 4.0),
            neighbors_of(&brute, &SliceCloud(&points), p, Some(i), 4.0),
            "atomic single-row build, query {i}"
        );
    }
}
