//! Behaviors shared by the benchmark models.

use bdm_core::{
    clone_behavior_box, Agent, AgentContext, Behavior, BehaviorBox, BehaviorControl, Cell,
    MemoryManager, NeighborAccess, Real3,
};

/// Volume growth followed by division above the threshold diameter — the
/// cell-proliferation behavior (BioDynaMo's `GrowthDivision`).
#[derive(Clone, Debug)]
pub struct GrowthDivision;

impl Behavior for GrowthDivision {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        let cell = agent
            .as_any_mut()
            .downcast_mut::<Cell>()
            .expect("GrowthDivision requires a Cell");
        if cell.diameter() < cell.division_threshold() {
            let rate = cell.growth_rate();
            cell.change_volume(rate * ctx.dt);
        } else {
            let uid = ctx.next_uid();
            let dir = ctx.rng.unit_vector();
            let mm = ctx.memory_manager();
            let domain = ctx.alloc_domain();
            let daughter = cell.divide(uid, dir, mm, domain);
            ctx.new_agent(daughter);
        }
        BehaviorControl::Keep
    }
    fn neighbor_access(&self) -> NeighborAccess {
        // Division reads only the agent itself, never a neighbor.
        NeighborAccess::NONE
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
    fn name(&self) -> &'static str {
        "GrowthDivision"
    }
    fn checkpoint_tag(&self) -> &'static str {
        "models.GrowthDivision"
    }
}

/// Secretes `amount` of substance `grid` at the agent position each step.
#[derive(Clone, Debug)]
pub struct Secretion {
    /// Diffusion grid index.
    pub grid: usize,
    /// Quantity secreted per step.
    pub amount: f64,
}

impl Behavior for Secretion {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        let pos = agent.position();
        ctx.secrete(self.grid, pos, self.amount);
        BehaviorControl::Keep
    }
    fn neighbor_access(&self) -> NeighborAccess {
        // Secretion touches the diffusion grid, not the snapshot.
        NeighborAccess::NONE
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
    fn name(&self) -> &'static str {
        "Secretion"
    }
    fn checkpoint_tag(&self) -> &'static str {
        "models.Secretion"
    }
    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        out.put_u64(self.grid as u64);
        out.put_f64(self.amount);
    }
}

/// Moves the agent up the concentration gradient of substance `grid`
/// (chemotaxis, the core of the cell-clustering model).
#[derive(Clone, Debug)]
pub struct Chemotaxis {
    /// Diffusion grid index to climb.
    pub grid: usize,
    /// Movement speed (µm per time unit).
    pub speed: f64,
}

impl Behavior for Chemotaxis {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        let pos = agent.position();
        let grad = ctx.substance(self.grid).gradient_at(pos).normalized();
        if grad != Real3::ZERO {
            agent.set_position(pos + grad * (self.speed * ctx.dt));
        }
        BehaviorControl::Keep
    }
    fn neighbor_access(&self) -> NeighborAccess {
        // Gradient climbing reads the diffusion grid, not neighbors.
        NeighborAccess::NONE
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
    fn name(&self) -> &'static str {
        "Chemotaxis"
    }
    fn checkpoint_tag(&self) -> &'static str {
        "models.Chemotaxis"
    }
    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        out.put_u64(self.grid as u64);
        out.put_f64(self.speed);
    }
}

/// Random walk with large jumps, confined to a cubic domain
/// (the epidemiology population's movement).
#[derive(Clone, Debug)]
pub struct RandomWalk {
    /// Jump length per step.
    pub step: f64,
    /// Lower corner of the confinement cube.
    pub min: f64,
    /// Upper corner of the confinement cube.
    pub max: f64,
}

impl Behavior for RandomWalk {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        let dir = ctx.rng.unit_vector();
        let p = agent.position() + dir * self.step;
        agent.set_position(p.clamp_scalar(self.min, self.max));
        BehaviorControl::Keep
    }
    fn neighbor_access(&self) -> NeighborAccess {
        // The walk is independent of every neighbor.
        NeighborAccess::NONE
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
    fn name(&self) -> &'static str {
        "RandomWalk"
    }
    fn checkpoint_tag(&self) -> &'static str {
        "models.RandomWalk"
    }
    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        out.put_f64(self.step);
        out.put_f64(self.min);
        out.put_f64(self.max);
    }
}

/// Moves the agent toward the average position of same-type neighbors
/// (type-specific adhesion; together with a repulsive-only collision force
/// this reproduces the differential-adhesion cell-sorting model used for the
/// Biocellion comparison).
#[derive(Clone, Debug)]
pub struct TypeAdhesion {
    /// Neighbor radius considered for adhesion.
    pub radius: f64,
    /// Movement speed toward same-type neighbors.
    pub speed: f64,
}

impl Behavior for TypeAdhesion {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        let pos = agent.position();
        let my_type = agent.payload();
        let mut sum = Real3::ZERO;
        let mut n = 0u32;
        ctx.for_each_neighbor(pos, self.radius, |_idx, nd, _d2| {
            if nd.payload() == my_type {
                sum += nd.position();
                n += 1;
            }
        });
        if n > 0 {
            let center = sum / n as f64;
            let dir = (center - pos).normalized();
            agent.set_position(pos + dir * (self.speed * ctx.dt));
        }
        BehaviorControl::Keep
    }
    fn neighbor_access(&self) -> NeighborAccess {
        // Adhesion averages same-type (payload) neighbor positions.
        NeighborAccess::POSITIONS.union(NeighborAccess::PAYLOADS)
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
    fn name(&self) -> &'static str {
        "TypeAdhesion"
    }
    fn checkpoint_tag(&self) -> &'static str {
        "models.TypeAdhesion"
    }
    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        out.put_f64(self.radius);
        out.put_f64(self.speed);
    }
}
