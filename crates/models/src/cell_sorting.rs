//! Cell sorting — the Biocellion comparison model (paper Section 6.5,
//! Figure 7): two adhesive cell types, initially mixed at random, sort into
//! same-type clusters through differential adhesion (repulsive collision
//! force + type-specific attraction).

use bdm_core::{new_behavior_box, Agent, Cell, InteractionForce, Param, Simulation};

use crate::behaviors::TypeAdhesion;
use crate::characteristics::Characteristics;
use crate::metrics::same_type_neighbor_fraction;
use crate::BenchmarkModel;

/// The Biocellion cell-sorting model.
#[derive(Debug, Clone)]
pub struct CellSorting {
    /// Number of cells (half per type).
    pub num_agents: usize,
    /// Adhesion interaction radius.
    pub adhesion_radius: f64,
    /// Adhesion movement speed.
    pub adhesion_speed: f64,
}

impl CellSorting {
    /// Creates the model at the given agent count (paper: 50 k for the
    /// visualization, 26.8 M / 281.4 M / 1.72 B for the benchmarks).
    pub fn new(num_agents: usize) -> CellSorting {
        CellSorting {
            num_agents,
            adhesion_radius: 15.0,
            adhesion_speed: 2.0,
        }
    }

    fn extent(&self) -> f64 {
        (self.num_agents as f64).cbrt() * 12.0
    }
}

impl BenchmarkModel for CellSorting {
    fn name(&self) -> &'static str {
        "cell_sorting"
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics {
            creates_agents: false,
            deletes_agents: false,
            modifies_neighbors: false,
            load_imbalance: false,
            random_movement: false,
            uses_diffusion: false,
            has_static_regions: false,
            paper_iterations: 500,
            paper_agents: 26_800_000,
            paper_diffusion_volumes: 0,
        }
    }

    fn build(&self, param: Param) -> Simulation {
        // Repulsion keeps cells apart; adhesion is type-specific (below).
        let adhesion = TypeAdhesion {
            radius: self.adhesion_radius,
            speed: self.adhesion_speed,
        };
        let mut sim = Simulation::builder()
            .with_param(param)
            .time_step(1.0)
            .mechanics(true)
            .interaction_radius(self.adhesion_radius)
            .force(InteractionForce::repulsive_only())
            // Kernel declaration: adhesion reads same-type (payload)
            // neighbor positions, so the payload gather stays on.
            .neighbor_access(bdm_core::Behavior::neighbor_access(&adhesion))
            .build();
        let extent = self.extent();
        let mut rng = bdm_core::SimRng::new(sim.param().seed ^ 0x5027);
        for i in 0..self.num_agents {
            let uid = sim.new_uid();
            let mut cell = Cell::new(uid)
                .with_position(rng.point_in_cube(0.0, extent))
                .with_diameter(10.0)
                .with_cell_type((i % 2) as u64);
            cell.base_mut().add_behavior(new_behavior_box(
                adhesion.clone(),
                sim.memory_manager(),
                0,
            ));
            sim.add_agent(cell);
        }
        sim
    }

    fn default_iterations(&self) -> usize {
        80
    }

    fn validate(&self, sim: &Simulation) -> Vec<(String, f64)> {
        vec![
            (
                "same_type_fraction".into(),
                same_type_neighbor_fraction(sim, self.adhesion_radius, 300),
            ),
            ("final_agents".into(), sim.num_agents() as f64),
        ]
    }
}

/// Writes the final state as `x,y,z,type` CSV — the harness uses this for
/// the Figure 7a visual-agreement check.
pub fn dump_positions_csv(sim: &Simulation) -> String {
    let mut out = String::from("x,y,z,type\n");
    sim.for_each_agent(|_, a| {
        let p = a.position();
        out.push_str(&format!("{},{},{},{}\n", p.x(), p.y(), p.z(), a.payload()));
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_sort_by_type() {
        let model = CellSorting::new(250);
        let mut sim = model.build(Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        });
        let before = same_type_neighbor_fraction(&sim, model.adhesion_radius, 300);
        assert!(
            (0.3..0.7).contains(&before),
            "random mixture starts near 0.5: {before}"
        );
        sim.simulate(model.default_iterations());
        let after = same_type_neighbor_fraction(&sim, model.adhesion_radius, 300);
        assert!(
            after > before + 0.1,
            "differential adhesion must sort: {before:.3} -> {after:.3}"
        );
        assert_eq!(sim.num_agents(), 250);
    }

    #[test]
    fn csv_dump_has_all_agents() {
        let model = CellSorting::new(50);
        let sim = model.build(Param {
            threads: Some(1),
            numa_domains: Some(1),
            ..Param::default()
        });
        let csv = dump_positions_csv(&sim);
        assert_eq!(csv.lines().count(), 51, "header + one line per agent");
        assert!(csv.starts_with("x,y,z,type\n"));
    }
}
