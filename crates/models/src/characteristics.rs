//! Performance-relevant simulation characteristics (paper Table 1).

/// The Table 1 rows for one benchmark simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Characteristics {
    /// Create new agents during simulation.
    pub creates_agents: bool,
    /// Delete agents during simulation.
    pub deletes_agents: bool,
    /// Agents modify neighbors.
    pub modifies_neighbors: bool,
    /// Load imbalance.
    pub load_imbalance: bool,
    /// Agents move randomly.
    pub random_movement: bool,
    /// Simulation uses diffusion.
    pub uses_diffusion: bool,
    /// Simulation has static regions.
    pub has_static_regions: bool,
    /// Number of iterations in the paper's benchmark.
    pub paper_iterations: usize,
    /// Number of agents in the paper's benchmark (millions × 10⁶).
    pub paper_agents: usize,
    /// Number of diffusion volumes in the paper's benchmark.
    pub paper_diffusion_volumes: usize,
}

impl Characteristics {
    /// Formats a boolean as the check/cross marks of Table 1.
    pub fn mark(v: bool) -> &'static str {
        if v {
            "yes"
        } else {
            "-"
        }
    }
}
