//! Cell clustering — two cell populations secreting distinct substances and
//! following their own substance's gradient until same-type clusters form
//! (paper Table 1, column 2: diffusion-heavy; 1000 iterations; 2 M agents;
//! 54 M diffusion volumes).

use bdm_core::{new_behavior_box, Agent, Cell, Param, Real3, Simulation};

use crate::behaviors::{Chemotaxis, Secretion};
use crate::characteristics::Characteristics;
use crate::metrics::same_type_neighbor_fraction;
use crate::BenchmarkModel;

/// The cell-clustering benchmark.
#[derive(Debug, Clone)]
pub struct CellClustering {
    /// Number of cells (split between two types).
    pub num_agents: usize,
    /// Diffusion grid resolution per axis (the paper uses 54 M volumes at
    /// 2 M agents; the default keeps the same volumes-per-agent ratio at
    /// small scale).
    pub substance_resolution: usize,
}

impl CellClustering {
    /// Creates the model at the given agent count.
    pub fn new(num_agents: usize) -> CellClustering {
        // Paper ratio: 54M volumes / 2M agents = 27 volumes per agent →
        // resolution = cbrt(27 × agents).
        let res = ((27.0 * num_agents as f64).cbrt().ceil() as usize).clamp(8, 96);
        CellClustering {
            num_agents,
            substance_resolution: res,
        }
    }

    fn extent(&self) -> f64 {
        (self.num_agents as f64).cbrt() * 15.0
    }
}

impl BenchmarkModel for CellClustering {
    fn name(&self) -> &'static str {
        "cell_clustering"
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics {
            creates_agents: false,
            deletes_agents: false,
            modifies_neighbors: false,
            load_imbalance: true,
            random_movement: false,
            uses_diffusion: true,
            has_static_regions: false,
            paper_iterations: 1000,
            paper_agents: 2_000_000,
            paper_diffusion_volumes: 54_000_000,
        }
    }

    fn build(&self, mut param: Param) -> Simulation {
        param.simulation_time_step = 1.0;
        param.enable_mechanics = true;
        // Kernel declaration: neither secretion nor chemotaxis reads any
        // neighbor array, so the engine gathers only what the collision
        // force needs (positions + diameters) and skips payloads.
        param.neighbor_access = bdm_core::Behavior::neighbor_access(&Secretion {
            grid: 0,
            amount: 0.0,
        })
        .union(bdm_core::Behavior::neighbor_access(&Chemotaxis {
            grid: 0,
            speed: 0.0,
        }));
        let mut sim = Simulation::new(param);
        let extent = self.extent();
        for t in 0..2usize {
            sim.add_diffusion_grid(bdm_core::DiffusionGrid::new(
                format!("substance_{t}"),
                0.4,
                0.001,
                self.substance_resolution,
                Real3::ZERO,
                extent,
            ));
        }
        let mut rng = bdm_core::SimRng::new(sim.param().seed ^ 0xc105);
        for i in 0..self.num_agents {
            let ty = (i % 2) as u64;
            let uid = sim.new_uid();
            let mut cell = Cell::new(uid)
                .with_position(rng.point_in_cube(0.0, extent))
                .with_diameter(10.0)
                .with_cell_type(ty);
            let mm = sim.memory_manager();
            cell.base_mut().add_behavior(new_behavior_box(
                Secretion {
                    grid: ty as usize,
                    amount: 1.0,
                },
                mm,
                0,
            ));
            cell.base_mut().add_behavior(new_behavior_box(
                Chemotaxis {
                    grid: ty as usize,
                    speed: 3.0,
                },
                mm,
                0,
            ));
            sim.add_agent(cell);
        }
        sim
    }

    fn default_iterations(&self) -> usize {
        60
    }

    fn validate(&self, sim: &Simulation) -> Vec<(String, f64)> {
        let f = same_type_neighbor_fraction(sim, 20.0, 200);
        vec![
            ("same_type_fraction".into(), f),
            ("final_agents".into(), sim.num_agents() as f64),
            ("substance_total_0".into(), sim.diffusion_grid(0).total()),
            ("substance_total_1".into(), sim.diffusion_grid(1).total()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_emerge() {
        let model = CellClustering::new(300);
        let mut sim = model.build(Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        });
        let before = same_type_neighbor_fraction(&sim, 20.0, 200);
        sim.simulate(model.default_iterations());
        let after = same_type_neighbor_fraction(&sim, 20.0, 200);
        assert!(
            after > before + 0.05,
            "sorting metric must rise: {before:.3} -> {after:.3}"
        );
        // Both substances were secreted and diffused.
        assert!(sim.diffusion_grid(0).total() > 0.0);
        assert!(sim.diffusion_grid(1).total() > 0.0);
    }

    #[test]
    fn volume_ratio_tracks_paper() {
        let m = CellClustering::new(2000);
        let volumes = m.substance_resolution.pow(3);
        let ratio = volumes as f64 / 2000.0;
        assert!(
            (10.0..80.0).contains(&ratio),
            "volumes-per-agent ratio {ratio} out of range"
        );
    }

    #[test]
    fn population_is_constant() {
        let model = CellClustering::new(100);
        let mut sim = model.build(Param {
            threads: Some(1),
            numa_domains: Some(1),
            ..Param::default()
        });
        sim.simulate(10);
        assert_eq!(sim.num_agents(), 100);
        assert_eq!(sim.stats().agents_added, 0);
        assert_eq!(sim.stats().agents_removed, 0);
    }
}
