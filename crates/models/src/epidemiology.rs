//! Epidemiology — an SIR (susceptible / infected / recovered) population of
//! randomly moving persons; infection spreads through spatial proximity
//! (paper Table 1, column 3: random movement; 1000 iterations; 10 M agents).

use std::any::Any;

use bdm_core::{
    clone_agent_box, clone_behavior_box, new_behavior_box, Agent, AgentBase, AgentBox,
    AgentContext, AgentUid, Behavior, BehaviorBox, BehaviorControl, CloneIn, MemoryManager,
    NeighborAccess, Param, Simulation,
};

use crate::behaviors::RandomWalk;
use crate::characteristics::Characteristics;
use crate::BenchmarkModel;

/// Disease state of a person.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SirState {
    /// Susceptible.
    Susceptible,
    /// Infected (and infectious).
    Infected,
    /// Recovered (immune).
    Recovered,
}

impl SirState {
    /// Payload encoding (read by neighbors through the snapshot).
    pub fn payload(self) -> u64 {
        match self {
            SirState::Susceptible => 0,
            SirState::Infected => 1,
            SirState::Recovered => 2,
        }
    }

    /// Inverse of [`SirState::payload`] (checkpoint restore).
    pub fn from_payload(code: u64) -> Option<SirState> {
        match code {
            0 => Some(SirState::Susceptible),
            1 => Some(SirState::Infected),
            2 => Some(SirState::Recovered),
            _ => None,
        }
    }
}

/// A person in the epidemiological model.
pub struct Person {
    base: AgentBase,
    state: SirState,
    infected_since: u64,
}

impl Person {
    /// Creates a susceptible person.
    pub fn new(uid: AgentUid) -> Person {
        Person {
            base: AgentBase::new(uid),
            state: SirState::Susceptible,
            infected_since: 0,
        }
    }

    /// Builder: position.
    pub fn with_position(mut self, p: bdm_core::Real3) -> Person {
        self.base.set_position(p);
        self
    }

    /// Builder: initial state.
    pub fn with_state(mut self, s: SirState) -> Person {
        self.state = s;
        self
    }

    /// Current disease state.
    pub fn state(&self) -> SirState {
        self.state
    }

    /// Sets the disease state (checkpoint restore).
    pub fn set_state(&mut self, s: SirState) {
        self.state = s;
    }

    /// Iteration at which the person became infected (0 if never).
    pub fn infected_since(&self) -> u64 {
        self.infected_since
    }

    /// Sets the infection timestamp (checkpoint restore).
    pub fn set_infected_since(&mut self, iteration: u64) {
        self.infected_since = iteration;
    }
}

impl CloneIn for Person {
    fn clone_in(&self, mm: &MemoryManager, domain: usize) -> Person {
        Person {
            base: self.base.clone_in(mm, domain),
            state: self.state,
            infected_since: self.infected_since,
        }
    }
}

impl Agent for Person {
    fn base(&self) -> &AgentBase {
        &self.base
    }
    fn base_mut(&mut self) -> &mut AgentBase {
        &mut self.base
    }
    fn payload(&self) -> u64 {
        self.state.payload()
    }
    fn participates_in_mechanics(&self) -> bool {
        false // persons pass through each other; movement is behavioral
    }
    fn checkpoint_tag(&self) -> &'static str {
        "models.Person"
    }
    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        out.put_u8(self.state.payload() as u8);
        out.put_u64(self.infected_since);
    }
    fn clone_box(&self, mm: &MemoryManager, domain: usize) -> AgentBox {
        clone_agent_box(self, mm, domain)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The infection behavior: susceptible persons near an infected neighbor
/// become infected with `transmission_probability`; infected persons recover
/// after `recovery_iterations`.
#[derive(Clone, Debug)]
pub struct Infection {
    /// Radius within which transmission can happen.
    pub radius: f64,
    /// Per-step transmission probability given ≥1 infectious neighbor.
    pub transmission_probability: f64,
    /// Iterations until recovery.
    pub recovery_iterations: u64,
}

impl Behavior for Infection {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        let person = agent
            .as_any_mut()
            .downcast_mut::<Person>()
            .expect("Infection requires a Person");
        match person.state {
            SirState::Susceptible => {
                let pos = person.position();
                let infected_near = ctx.count_neighbors(pos, self.radius, |nd| {
                    nd.payload() == SirState::Infected.payload()
                });
                if infected_near > 0 && ctx.rng.chance(self.transmission_probability) {
                    person.state = SirState::Infected;
                    person.infected_since = ctx.iteration;
                }
            }
            SirState::Infected => {
                if ctx.iteration.saturating_sub(person.infected_since) >= self.recovery_iterations {
                    person.state = SirState::Recovered;
                }
            }
            SirState::Recovered => {}
        }
        BehaviorControl::Keep
    }
    fn neighbor_access(&self) -> NeighborAccess {
        // Transmission tests the infection state (payload) of neighbors.
        NeighborAccess::POSITIONS.union(NeighborAccess::PAYLOADS)
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
    fn name(&self) -> &'static str {
        "Infection"
    }
    fn checkpoint_tag(&self) -> &'static str {
        "models.Infection"
    }
    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        out.put_f64(self.radius);
        out.put_f64(self.transmission_probability);
        out.put_u64(self.recovery_iterations);
    }
}

/// The epidemiology benchmark.
#[derive(Debug, Clone)]
pub struct Epidemiology {
    /// Population size.
    pub num_agents: usize,
    /// Initially infected fraction.
    pub initial_infected: f64,
    /// Transmission radius.
    pub infection_radius: f64,
    /// Per-step transmission probability.
    pub transmission_probability: f64,
    /// Iterations until recovery.
    pub recovery_iterations: u64,
    /// Random-walk step length ("agents move randomly with large distances
    /// between iterations", Section 6.11).
    pub walk_step: f64,
}

impl Epidemiology {
    /// Creates the model at the given population size.
    pub fn new(num_agents: usize) -> Epidemiology {
        Epidemiology {
            num_agents,
            initial_infected: 0.05,
            infection_radius: 8.0,
            transmission_probability: 0.3,
            recovery_iterations: 30,
            walk_step: 6.0,
        }
    }

    fn extent(&self) -> f64 {
        (self.num_agents as f64).cbrt() * 12.0
    }
}

impl BenchmarkModel for Epidemiology {
    fn name(&self) -> &'static str {
        "epidemiology"
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics {
            creates_agents: false,
            deletes_agents: false,
            modifies_neighbors: false,
            load_imbalance: false,
            random_movement: true,
            uses_diffusion: false,
            has_static_regions: false,
            paper_iterations: 1000,
            paper_agents: 10_000_000,
            paper_diffusion_volumes: 0,
        }
    }

    fn build(&self, mut param: Param) -> Simulation {
        param.simulation_time_step = 1.0;
        param.enable_mechanics = false;
        param.interaction_radius = Some(self.infection_radius);
        let walk = RandomWalk {
            step: self.walk_step,
            min: 0.0,
            max: 0.0, // confinement bound set per instance below
        };
        let infection = Infection {
            radius: self.infection_radius,
            transmission_probability: self.transmission_probability,
            recovery_iterations: self.recovery_iterations,
        };
        // Kernel declaration: infection reads neighbor payloads (SIR
        // state), so the payload gather stays on even without mechanics.
        param.neighbor_access = walk.neighbor_access().union(infection.neighbor_access());
        let mut sim = Simulation::new(param);
        let extent = self.extent();
        let mut rng = bdm_core::SimRng::new(sim.param().seed ^ 0xe41d);
        for i in 0..self.num_agents {
            let uid = sim.new_uid();
            let state = if (i as f64) < self.initial_infected * self.num_agents as f64 {
                SirState::Infected
            } else {
                SirState::Susceptible
            };
            let mut person = Person::new(uid)
                .with_position(rng.point_in_cube(0.0, extent))
                .with_state(state);
            person.base_mut().set_diameter(2.0);
            let mm = sim.memory_manager();
            person.base_mut().add_behavior(new_behavior_box(
                RandomWalk {
                    max: extent,
                    ..walk.clone()
                },
                mm,
                0,
            ));
            person
                .base_mut()
                .add_behavior(new_behavior_box(infection.clone(), mm, 0));
            sim.add_agent(person);
        }
        sim
    }

    fn default_iterations(&self) -> usize {
        60
    }

    fn validate(&self, sim: &Simulation) -> Vec<(String, f64)> {
        let s = sim.count_agents(|a| a.payload() == 0) as f64;
        let i = sim.count_agents(|a| a.payload() == 1) as f64;
        let r = sim.count_agents(|a| a.payload() == 2) as f64;
        vec![
            ("susceptible".into(), s),
            ("infected".into(), i),
            ("recovered".into(), r),
            (
                "population_conserved".into(),
                f64::from((s + i + r) as usize == sim.num_agents()),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param() -> Param {
        Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        }
    }

    #[test]
    fn epidemic_spreads_and_recovers() {
        let model = Epidemiology::new(400);
        let mut sim = model.build(param());
        let infected_initial = sim.count_agents(|a| a.payload() == 1);
        assert_eq!(infected_initial, 20, "5% initially infected");
        sim.simulate(model.default_iterations());
        let metrics = model.validate(&sim);
        let get = |k: &str| metrics.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("population_conserved"), 1.0);
        assert!(
            get("recovered") > 0.0,
            "after 60 steps some recovered: {metrics:?}"
        );
        let touched = get("infected") + get("recovered");
        assert!(
            touched > infected_initial as f64,
            "epidemic must spread: {metrics:?}"
        );
    }

    #[test]
    fn persons_stay_in_domain() {
        let model = Epidemiology::new(100);
        let mut sim = model.build(param());
        sim.simulate(20);
        let extent = model.extent();
        sim.for_each_agent(|_, a| {
            let p = a.position();
            for axis in 0..3 {
                assert!(p[axis] >= 0.0 && p[axis] <= extent);
            }
        });
    }

    #[test]
    fn no_infection_without_seeds() {
        let mut model = Epidemiology::new(100);
        model.initial_infected = 0.0;
        let mut sim = model.build(param());
        sim.simulate(20);
        assert_eq!(sim.count_agents(|a| a.payload() != 0), 0);
    }
}
