//! # bdm-models
//!
//! The benchmark simulations of the paper's evaluation (Section 6.1,
//! Table 1): cell proliferation, cell clustering, epidemiology,
//! neuroscience, and oncology — plus the Biocellion cell-sorting model used
//! for the comparison of Section 6.5.
//!
//! Every model implements [`BenchmarkModel`]: it documents its Table 1
//! characteristics, builds a ready-to-run [`Simulation`] from an engine
//! [`Param`] set (so the harness can sweep optimization levels, environments,
//! thread counts, …), and checks model-level validity metrics after a run.
//! Agent counts are configurable; the paper-scale counts (2–12.6 million)
//! are recorded in the characteristics, while defaults are sized for a
//! laptop-class machine.

#![warn(missing_docs)]

pub mod behaviors;
pub mod cell_sorting;
pub mod characteristics;
pub mod clustering;
pub mod epidemiology;
pub mod metrics;
pub mod neuroscience;
pub mod oncology;
pub mod proliferation;

use bdm_core::{Param, Simulation};

pub use behaviors::{Chemotaxis, GrowthDivision, RandomWalk, Secretion, TypeAdhesion};
pub use cell_sorting::CellSorting;
pub use characteristics::Characteristics;
pub use clustering::CellClustering;
pub use epidemiology::{Epidemiology, Infection, Person, SirState};
pub use metrics::{positions_of, same_type_neighbor_fraction};
pub use neuroscience::Neuroscience;
pub use oncology::{Oncology, TumorGrowth};
pub use proliferation::CellProliferation;

/// A benchmark simulation of the paper's evaluation.
pub trait BenchmarkModel: Send + Sync {
    /// Model name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Table 1 characteristics.
    fn characteristics(&self) -> Characteristics;

    /// Builds a ready-to-run simulation. The model adjusts `param` fields it
    /// owns (time step, interaction radius, mechanics on/off) and leaves the
    /// optimization switches to the caller.
    fn build(&self, param: Param) -> Simulation;

    /// Scaled-down default iteration count for the harness.
    fn default_iterations(&self) -> usize {
        50
    }

    /// Model-level validity metrics of a finished run, as
    /// `(name, value)` pairs. Used by tests and the functional-evaluation
    /// harness.
    fn validate(&self, sim: &Simulation) -> Vec<(String, f64)>;
}

/// All benchmark models at the given agent scale: the five Table 1 models
/// plus the Biocellion cell-sorting comparison model (Section 6.5).
pub fn all_models(num_agents: usize) -> Vec<Box<dyn BenchmarkModel>> {
    vec![
        Box::new(CellProliferation::new(num_agents)),
        Box::new(CellClustering::new(num_agents)),
        Box::new(Epidemiology::new(num_agents)),
        Box::new(Neuroscience::new(num_agents)),
        Box::new(Oncology::new(num_agents)),
        Box::new(CellSorting::new(num_agents)),
    ]
}

/// Looks up a model by (figure) name.
pub fn model_by_name(name: &str, num_agents: usize) -> Option<Box<dyn BenchmarkModel>> {
    let m: Box<dyn BenchmarkModel> = match name {
        "cell_proliferation" => Box::new(CellProliferation::new(num_agents)),
        "cell_clustering" => Box::new(CellClustering::new(num_agents)),
        "epidemiology" => Box::new(Epidemiology::new(num_agents)),
        "neuroscience" => Box::new(Neuroscience::new(num_agents)),
        "oncology" => Box::new(Oncology::new(num_agents)),
        "cell_sorting" => Box::new(CellSorting::new(num_agents)),
        _ => return None,
    };
    Some(m)
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_contains_the_six_models() {
        let models = all_models(100);
        let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "cell_proliferation",
                "cell_clustering",
                "epidemiology",
                "neuroscience",
                "oncology",
                "cell_sorting"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        for n in [
            "cell_proliferation",
            "cell_clustering",
            "epidemiology",
            "neuroscience",
            "oncology",
            "cell_sorting",
        ] {
            assert!(model_by_name(n, 10).is_some(), "{n}");
        }
        assert!(model_by_name("nope", 10).is_none());
    }

    #[test]
    fn paper_scale_characteristics_match_table1() {
        let models = all_models(100);
        let agents: Vec<usize> = models
            .iter()
            .map(|m| m.characteristics().paper_agents)
            .collect();
        assert_eq!(
            agents,
            vec![12_600_000, 2_000_000, 10_000_000, 9_000_000, 10_000_000, 26_800_000]
        );
        let iters: Vec<usize> = models
            .iter()
            .map(|m| m.characteristics().paper_iterations)
            .collect();
        assert_eq!(iters, vec![500, 1000, 1000, 500, 288, 500]);
        let volumes: Vec<usize> = models
            .iter()
            .map(|m| m.characteristics().paper_diffusion_volumes)
            .collect();
        assert_eq!(volumes, vec![0, 54_000_000, 0, 65_000, 0, 0]);
    }
}
