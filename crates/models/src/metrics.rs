//! Shared model-validation metrics.

use bdm_core::{Real3, Simulation};

/// Collects all agent positions (with payloads).
pub fn positions_of(sim: &Simulation) -> Vec<(Real3, u64)> {
    let mut out = Vec::with_capacity(sim.num_agents());
    sim.for_each_agent(|_, a| out.push((a.position(), a.payload())));
    out
}

/// Average fraction of same-payload agents among the neighbors within
/// `radius`, over up to `max_samples` sampled agents. 0.5 for a random
/// two-type mixture; → 1.0 for perfectly sorted clusters. This is the
/// sorting-quality metric for the cell-sorting and clustering models
/// (paper Figure 7a agreement check).
pub fn same_type_neighbor_fraction(sim: &Simulation, radius: f64, max_samples: usize) -> f64 {
    let all = positions_of(sim);
    if all.is_empty() {
        return 0.0;
    }
    let stride = (all.len() / max_samples.max(1)).max(1);
    let r2 = radius * radius;
    let mut fractions = Vec::new();
    for (pos, ty) in all.iter().step_by(stride) {
        let mut same = 0usize;
        let mut total = 0usize;
        for (q, qt) in &all {
            let d2 = pos.distance_sq(q);
            if d2 > 1e-12 && d2 <= r2 {
                total += 1;
                if qt == ty {
                    same += 1;
                }
            }
        }
        if total > 0 {
            fractions.push(same as f64 / total as f64);
        }
    }
    if fractions.is_empty() {
        0.0
    } else {
        fractions.iter().sum::<f64>() / fractions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_core::{Cell, Param, Real3};

    fn sim_with_layout(cells: &[(Real3, u64)]) -> Simulation {
        let mut sim = Simulation::new(Param {
            threads: Some(1),
            numa_domains: Some(1),
            ..Param::default()
        });
        for (p, t) in cells {
            let uid = sim.new_uid();
            sim.add_agent(
                Cell::new(uid)
                    .with_position(*p)
                    .with_cell_type(*t)
                    .with_diameter(1.0),
            );
        }
        sim
    }

    #[test]
    fn sorted_layout_scores_high() {
        // Two well-separated same-type blobs.
        let mut cells = Vec::new();
        for i in 0..20 {
            cells.push((Real3::new(i as f64, 0.0, 0.0) * 0.1, 0));
            cells.push((Real3::new(100.0 + i as f64 * 0.1, 0.0, 0.0), 1));
        }
        let sim = sim_with_layout(&cells);
        let f = same_type_neighbor_fraction(&sim, 5.0, 100);
        assert!(f > 0.99, "sorted blobs: {f}");
    }

    #[test]
    fn alternating_layout_scores_low() {
        let cells: Vec<(Real3, u64)> = (0..40)
            .map(|i| (Real3::new(i as f64, 0.0, 0.0), (i % 2) as u64))
            .collect();
        let sim = sim_with_layout(&cells);
        // Radius 1.5 sees only the two immediate neighbors, which alternate
        // in type (radius 2 would already reach the same-type next-nearest
        // neighbors and push the fraction back to 0.5).
        let f = same_type_neighbor_fraction(&sim, 1.5, 100);
        assert!(f < 0.2, "alternating line: {f}");
    }

    #[test]
    fn empty_simulation_scores_zero() {
        let sim = sim_with_layout(&[]);
        assert_eq!(same_type_neighbor_fraction(&sim, 5.0, 10), 0.0);
    }
}
