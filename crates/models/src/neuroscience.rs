//! Neuroscience — neurons extending branching neurites toward a guidance
//! cue; only the growth front is active, the rest of the arbor is static
//! (paper Table 1, column 4: creates agents, diffusion, static regions;
//! 500 iterations; 9 M agents; 65 k diffusion volumes).

use bdm_core::{DiffusionGrid, Param, Real3, Simulation};
use bdm_neuro::{GrowthCone, NeuronSoma, PAYLOAD_NEURITE};

use crate::characteristics::Characteristics;
use crate::BenchmarkModel;

/// The neuroscience benchmark (neural development).
#[derive(Debug, Clone)]
pub struct Neuroscience {
    /// Number of neurons (the agent count grows as neurites extend; the
    /// paper's 9 M agents are mostly neurite elements).
    pub num_neurons: usize,
    /// Neurites extended per soma.
    pub neurites_per_soma: usize,
    /// Growth-cone parameters.
    pub cone: GrowthCone,
    /// Guidance-substance grid resolution (65 k volumes in the paper ≈ 40³).
    pub substance_resolution: usize,
}

impl Neuroscience {
    /// Creates the model with the given number of *initial agents*
    /// (somas = n / (1 + neurites); matching how the harness scales models).
    pub fn new(num_agents: usize) -> Neuroscience {
        Neuroscience {
            num_neurons: (num_agents / 3).max(1),
            neurites_per_soma: 2,
            cone: GrowthCone {
                speed: 2.0,
                deviation: 0.15,
                max_segment_length: 5.0,
                branch_probability: 0.03,
                max_branch_order: 4,
                guidance_substance: Some(0),
                guidance_weight: 0.4,
            },
            substance_resolution: 20,
        }
    }

    fn grid_dim(&self) -> usize {
        (self.num_neurons as f64).sqrt().ceil().max(1.0) as usize
    }

    fn extent(&self) -> f64 {
        (self.grid_dim() as f64 * 30.0).max(120.0)
    }
}

impl BenchmarkModel for Neuroscience {
    fn name(&self) -> &'static str {
        "neuroscience"
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics {
            creates_agents: true,
            deletes_agents: false,
            modifies_neighbors: false,
            load_imbalance: true,
            random_movement: false,
            uses_diffusion: true,
            has_static_regions: true,
            paper_iterations: 500,
            paper_agents: 9_000_000,
            paper_diffusion_volumes: 65_000,
        }
    }

    fn build(&self, mut param: Param) -> Simulation {
        param.simulation_time_step = 1.0;
        param.enable_mechanics = true;
        param.interaction_radius = Some(12.0);
        // Kernel declaration: the growth cone reads the guidance substance,
        // never a neighbor array; mechanics adds positions + diameters.
        param.neighbor_access = bdm_core::Behavior::neighbor_access(&self.cone);
        let mut sim = Simulation::new(param);
        let extent = self.extent();

        // Frozen guidance field increasing with z: growth cones climb it.
        let mut guidance = DiffusionGrid::new(
            "guidance",
            0.0, // frozen: pure gradient source, no spreading
            0.0,
            self.substance_resolution,
            Real3::ZERO,
            extent,
        );
        let res = self.substance_resolution;
        let h = extent / res as f64;
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    let pos = Real3::new(
                        (x as f64 + 0.5) * h,
                        (y as f64 + 0.5) * h,
                        (z as f64 + 0.5) * h,
                    );
                    guidance.increase_concentration(pos, z as f64);
                }
            }
        }
        sim.add_diffusion_grid(guidance);

        // Somas on a 2-D grid near the bottom plane, each extending
        // `neurites_per_soma` neurites upward.
        let dim = self.grid_dim();
        let mut placed = 0;
        let mut rng = bdm_core::SimRng::new(sim.param().seed ^ 0x6e00);
        'outer: for gx in 0..dim {
            for gy in 0..dim {
                if placed >= self.num_neurons {
                    break 'outer;
                }
                let pos = Real3::new(gx as f64 * 30.0 + 15.0, gy as f64 * 30.0 + 15.0, 10.0);
                let soma_uid = sim.new_uid();
                let soma = NeuronSoma::new(soma_uid)
                    .with_position(pos)
                    .with_diameter(10.0);
                for _ in 0..self.neurites_per_soma {
                    let dir = (Real3::new(rng.gaussian(0.0, 0.3), rng.gaussian(0.0, 0.3), 1.0))
                        .normalized();
                    let uid = sim.new_uid();
                    let e = soma.extend_neurite(
                        uid,
                        dir,
                        2.0,
                        self.cone.clone(),
                        sim.memory_manager(),
                        0,
                    );
                    sim.add_agent(e);
                }
                sim.add_agent(soma);
                placed += 1;
            }
        }
        sim
    }

    fn default_iterations(&self) -> usize {
        40
    }

    fn validate(&self, sim: &Simulation) -> Vec<(String, f64)> {
        let neurites = sim.count_agents(|a| a.payload() == PAYLOAD_NEURITE) as f64;
        // Average neurite z: growth climbs the guidance gradient.
        let mut z_sum = 0.0;
        let mut n = 0.0;
        sim.for_each_agent(|_, a| {
            if a.payload() == PAYLOAD_NEURITE {
                z_sum += a.position().z();
                n += 1.0;
            }
        });
        vec![
            ("neurite_elements".into(), neurites),
            (
                "mean_neurite_z".into(),
                if n > 0.0 { z_sum / n } else { 0.0 },
            ),
            (
                "somas".into(),
                sim.count_agents(|a| a.payload() == bdm_neuro::PAYLOAD_SOMA) as f64,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param() -> Param {
        Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        }
    }

    #[test]
    fn arbors_grow_and_climb_guidance() {
        let model = Neuroscience::new(12); // 4 neurons
        let mut sim = model.build(param());
        let initial = sim.num_agents();
        sim.simulate(model.default_iterations());
        assert!(sim.num_agents() > initial, "neurites must extend");
        let metrics = model.validate(&sim);
        let get = |k: &str| metrics.iter().find(|(n, _)| n == k).unwrap().1;
        assert!(get("neurite_elements") > get("somas"));
        assert!(
            get("mean_neurite_z") > 10.0,
            "growth follows the z gradient: {metrics:?}"
        );
    }

    #[test]
    fn static_region_detection_pays_off() {
        let model = Neuroscience::new(12);
        let mut p = param();
        p.detect_static_agents = true;
        let mut sim = model.build(p);
        sim.simulate(50);
        let stats = sim.stats();
        assert!(
            stats.static_skipped > 0,
            "interior arbor must be static: {stats:?}"
        );
    }
}
