//! Oncology — an avascular tumor spheroid: cells proliferate while
//! uncrowded, die stochastically (apoptosis), producing the only benchmark
//! that removes agents (paper Table 1, column 5: creates and deletes agents,
//! load imbalance; 288 iterations; 10 M agents).

use bdm_core::{
    clone_behavior_box, new_behavior_box, Agent, AgentContext, Behavior, BehaviorBox,
    BehaviorControl, Cell, MemoryManager, NeighborAccess, Param, Real3, Simulation,
};

use crate::characteristics::Characteristics;
use crate::BenchmarkModel;

/// Tumor-cell behavior: density-gated growth/division plus stochastic death.
#[derive(Clone, Debug)]
pub struct TumorGrowth {
    /// Neighbors within this radius gate proliferation (nutrient proxy).
    pub crowding_radius: f64,
    /// Max neighbors that still allow proliferation.
    pub crowding_limit: usize,
    /// Per-step apoptosis probability.
    pub death_probability: f64,
}

impl Behavior for TumorGrowth {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        if ctx.rng.chance(self.death_probability) {
            ctx.remove_self();
            return BehaviorControl::Keep;
        }
        let cell = agent
            .as_any_mut()
            .downcast_mut::<Cell>()
            .expect("TumorGrowth requires a Cell");
        let pos = cell.position();
        let crowd = ctx.count_neighbors(pos, self.crowding_radius, |_| true);
        if crowd <= self.crowding_limit {
            if cell.diameter() < cell.division_threshold() {
                let rate = cell.growth_rate();
                cell.change_volume(rate * ctx.dt);
            } else {
                let uid = ctx.next_uid();
                let dir = ctx.rng.unit_vector();
                let mm = ctx.memory_manager();
                let domain = ctx.alloc_domain();
                let daughter = cell.divide(uid, dir, mm, domain);
                ctx.new_agent(daughter);
            }
        }
        BehaviorControl::Keep
    }
    fn neighbor_access(&self) -> NeighborAccess {
        // Crowding counts neighbors by distance only — no field reads.
        NeighborAccess::POSITIONS
    }
    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }
    fn name(&self) -> &'static str {
        "TumorGrowth"
    }
    fn checkpoint_tag(&self) -> &'static str {
        "models.TumorGrowth"
    }
    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        out.put_f64(self.crowding_radius);
        out.put_u64(self.crowding_limit as u64);
        out.put_f64(self.death_probability);
    }
}

/// The oncology benchmark (tumor spheroid growth).
#[derive(Debug, Clone)]
pub struct Oncology {
    /// Initial number of tumor cells.
    pub num_agents: usize,
    /// Per-step apoptosis probability.
    pub death_probability: f64,
}

impl Oncology {
    /// Creates the model at the given initial agent count.
    pub fn new(num_agents: usize) -> Oncology {
        Oncology {
            num_agents,
            death_probability: 0.002,
        }
    }

    fn ball_radius(&self) -> f64 {
        (self.num_agents as f64).cbrt() * 6.0
    }
}

impl BenchmarkModel for Oncology {
    fn name(&self) -> &'static str {
        "oncology"
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics {
            creates_agents: true,
            deletes_agents: true,
            modifies_neighbors: false,
            load_imbalance: true,
            random_movement: false,
            uses_diffusion: false,
            has_static_regions: false,
            paper_iterations: 288,
            paper_agents: 10_000_000,
            paper_diffusion_volumes: 0,
        }
    }

    fn build(&self, mut param: Param) -> Simulation {
        param.simulation_time_step = 1.0;
        param.enable_mechanics = true;
        // The crowding query (15 µm) exceeds the largest cell diameter, so
        // the neighbor index must be built for it explicitly.
        param.interaction_radius = Some(15.0);
        let growth = TumorGrowth {
            crowding_radius: 15.0,
            crowding_limit: 12,
            death_probability: self.death_probability,
        };
        // Kernel declaration: crowding counts by distance only; the engine
        // adds the collision force's positions+diameters itself.
        param.neighbor_access = growth.neighbor_access();
        let mut sim = Simulation::new(param);
        let r = self.ball_radius();
        let center = Real3::splat(r * 1.5);
        let mut rng = bdm_core::SimRng::new(sim.param().seed ^ 0x0c0);
        // Random cells inside a centered ball: the spheroid creates load
        // imbalance (dense center, empty borders).
        for _ in 0..self.num_agents {
            let dir = rng.unit_vector();
            let dist = r * rng.uniform().cbrt(); // uniform in the ball
            let uid = sim.new_uid();
            let mut cell = Cell::new(uid)
                .with_position(center + dir * dist)
                .with_diameter(9.0 + rng.uniform_in(0.0, 2.0))
                .with_growth_rate(40.0)
                .with_division_threshold(14.0);
            cell.base_mut()
                .add_behavior(new_behavior_box(growth.clone(), sim.memory_manager(), 0));
            sim.add_agent(cell);
        }
        sim
    }

    fn default_iterations(&self) -> usize {
        40
    }

    fn validate(&self, sim: &Simulation) -> Vec<(String, f64)> {
        vec![
            ("final_agents".into(), sim.num_agents() as f64),
            ("agents_added".into(), sim.stats().agents_added as f64),
            ("agents_removed".into(), sim.stats().agents_removed as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spheroid_grows_with_turnover() {
        let model = Oncology::new(200);
        let mut sim = model.build(Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        });
        sim.simulate(model.default_iterations());
        let stats = sim.stats();
        assert!(stats.agents_added > 0, "divisions happened: {stats:?}");
        assert!(stats.agents_removed > 0, "apoptosis happened: {stats:?}");
        assert!(sim.num_agents() > 0);
        sim.for_each_agent(|_, a| assert!(a.position().is_finite()));
    }

    #[test]
    fn high_death_rate_shrinks_population() {
        let mut model = Oncology::new(150);
        model.death_probability = 0.2;
        let mut sim = model.build(Param {
            threads: Some(1),
            numa_domains: Some(1),
            ..Param::default()
        });
        sim.simulate(30);
        assert!(
            sim.num_agents() < 150,
            "rapid apoptosis must shrink the tumor: {}",
            sim.num_agents()
        );
    }
}
