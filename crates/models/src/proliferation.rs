//! Cell proliferation — cells on a 3-D grid that grow and divide
//! (paper Table 1, column 1: creates agents; 500 iterations; 12.6 M agents).

use bdm_core::{new_behavior_box, Agent, Cell, Param, Real3, Simulation};

use crate::behaviors::GrowthDivision;
use crate::characteristics::Characteristics;
use crate::BenchmarkModel;

/// The cell-proliferation benchmark.
#[derive(Debug, Clone)]
pub struct CellProliferation {
    /// Initial number of cells (rounded down to a cube number).
    pub num_agents: usize,
    /// Grid spacing between initial cells.
    pub spacing: f64,
    /// Whether to place cells randomly instead of on the grid (the paper's
    /// Section 6.11 variant: "Suppose we change the initialization of the
    /// cell proliferation simulation to random …").
    pub random_init: bool,
}

impl CellProliferation {
    /// Creates the model at the given initial agent count.
    pub fn new(num_agents: usize) -> CellProliferation {
        CellProliferation {
            num_agents,
            spacing: 20.0,
            random_init: false,
        }
    }

    /// Switches to random initialization (Figure 12 ablation).
    pub fn with_random_init(mut self) -> CellProliferation {
        self.random_init = true;
        self
    }
}

impl BenchmarkModel for CellProliferation {
    fn name(&self) -> &'static str {
        "cell_proliferation"
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics {
            creates_agents: true,
            deletes_agents: false,
            modifies_neighbors: false,
            load_imbalance: false,
            random_movement: false,
            uses_diffusion: false,
            has_static_regions: false,
            paper_iterations: 500,
            paper_agents: 12_600_000,
            paper_diffusion_volumes: 0,
        }
    }

    fn build(&self, mut param: Param) -> Simulation {
        param.simulation_time_step = 1.0;
        param.enable_mechanics = true;
        // Kernel declaration: GrowthDivision reads no neighbor arrays; the
        // engine adds the collision force's positions+diameters itself.
        param.neighbor_access = bdm_core::Behavior::neighbor_access(&GrowthDivision);
        let mut sim = Simulation::new(param);
        let per_dim = (self.num_agents as f64).cbrt().floor().max(1.0) as usize;
        let mut rng = bdm_core::SimRng::new(sim.param().seed ^ 0xce11);
        let extent = per_dim as f64 * self.spacing;
        let mut placed = 0;
        'outer: for x in 0..per_dim {
            for y in 0..per_dim {
                for z in 0..per_dim {
                    if placed >= self.num_agents {
                        break 'outer;
                    }
                    let pos = if self.random_init {
                        rng.point_in_cube(0.0, extent)
                    } else {
                        Real3::new(
                            x as f64 * self.spacing,
                            y as f64 * self.spacing,
                            z as f64 * self.spacing,
                        )
                    };
                    let uid = sim.new_uid();
                    // Desynchronized initial sizes so divisions spread out.
                    let d0 = 9.0 + rng.uniform_in(0.0, 2.0);
                    let mut cell = Cell::new(uid)
                        .with_position(pos)
                        .with_diameter(d0)
                        .with_growth_rate(30.0)
                        .with_division_threshold(14.0);
                    cell.base_mut().add_behavior(new_behavior_box(
                        GrowthDivision,
                        sim.memory_manager(),
                        0,
                    ));
                    sim.add_agent(cell);
                    placed += 1;
                }
            }
        }
        sim
    }

    fn default_iterations(&self) -> usize {
        // Growth at 30 um^3/step reaches the division threshold (diameter
        // 14 from 10) after ~31 steps; the default horizon must include
        // divisions so the Table 1 "creates agents" characteristic is
        // observable.
        40
    }

    fn validate(&self, sim: &Simulation) -> Vec<(String, f64)> {
        let n = sim.num_agents() as f64;
        let mut finite = 0usize;
        sim.for_each_agent(|_, a| {
            if a.position().is_finite() && a.diameter() > 0.0 {
                finite += 1;
            }
        });
        vec![
            ("final_agents".into(), n),
            ("finite_agents".into(), finite as f64),
            (
                "population_grew".into(),
                f64::from(sim.stats().agents_added > 0),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param() -> Param {
        Param {
            threads: Some(2),
            numa_domains: Some(2),
            ..Param::default()
        }
    }

    #[test]
    fn population_grows() {
        let model = CellProliferation::new(64);
        let mut sim = model.build(param());
        assert_eq!(sim.num_agents(), 64);
        sim.simulate(model.default_iterations());
        assert!(sim.num_agents() > 64, "{}", sim.num_agents());
        let metrics = model.validate(&sim);
        let finite = metrics
            .iter()
            .find(|(k, _)| k == "finite_agents")
            .unwrap()
            .1;
        assert_eq!(finite as usize, sim.num_agents());
    }

    #[test]
    fn random_init_places_within_extent() {
        let model = CellProliferation::new(27).with_random_init();
        let sim = model.build(param());
        let extent = 3.0 * model.spacing;
        sim.for_each_agent(|_, a| {
            let p = a.position();
            assert!(p.x() >= 0.0 && p.x() <= extent);
            assert!(p.y() >= 0.0 && p.y() <= extent);
            assert!(p.z() >= 0.0 && p.z() <= extent);
        });
    }

    #[test]
    fn agent_count_capped_at_request() {
        // 10 is not a cube number; the grid places floor(cbrt)^3 = 8.
        let model = CellProliferation::new(10);
        let sim = model.build(param());
        assert_eq!(sim.num_agents(), 8);
    }
}
