//! # bdm-neuro
//!
//! The neuroscience specialization of the engine (paper Section 1: the
//! engine "features a specialization for neuroscience, capable of simulating
//! the development of neurons", modelled after Cortex3D).
//!
//! * [`NeuronSoma`] — the cell body; extends neurites in a given direction.
//! * [`NeuriteElement`] — a cylindrical neurite segment with a proximal and a
//!   distal end; terminal elements carry the growth cone.
//! * [`GrowthCone`] — the elongation/branching behavior: terminal elements
//!   elongate with random direction deviation (optionally biased along a
//!   guidance-substance gradient), are discretized into fixed-length
//!   segments, and bifurcate stochastically up to a maximum branch order.
//!
//! Neural growth produces exactly the workload property the paper's static
//! region detection (Section 5) exploits: "Neural development simulations
//! might only have an active growth front, while the remaining part of the
//! neuron is unchanged" — only terminal elements move; interior segments
//! settle and are skipped by the mechanics operation.

use std::any::Any;

use bdm_core::{
    clone_agent_box, clone_behavior_box, Agent, AgentBase, AgentBox, AgentContext, AgentUid,
    Behavior, BehaviorBox, BehaviorControl, CloneIn, MemoryManager, NeighborAccess, Real3,
};

/// Payload tag for somas (readable by neighbors via the snapshot).
pub const PAYLOAD_SOMA: u64 = 1;
/// Payload tag for neurite elements.
pub const PAYLOAD_NEURITE: u64 = 2;

/// A neuron cell body.
pub struct NeuronSoma {
    base: AgentBase,
}

impl NeuronSoma {
    /// Creates a soma.
    pub fn new(uid: AgentUid) -> NeuronSoma {
        NeuronSoma {
            base: AgentBase::new(uid),
        }
    }

    /// Builder: position.
    pub fn with_position(mut self, p: Real3) -> NeuronSoma {
        self.base.set_position(p);
        self
    }

    /// Builder: diameter.
    pub fn with_diameter(mut self, d: f64) -> NeuronSoma {
        self.base.set_diameter(d);
        self
    }

    /// Creates the first element of a new neurite extending from the soma
    /// surface in `direction`, carrying `growth` as its growth cone.
    pub fn extend_neurite(
        &self,
        uid: AgentUid,
        direction: Real3,
        diameter: f64,
        growth: GrowthCone,
        mm: &MemoryManager,
        domain: usize,
    ) -> NeuriteElement {
        let dir = direction.normalized();
        let start = self.position() + dir * (self.diameter() / 2.0);
        let mut e = NeuriteElement::new(uid, self.uid(), None, start, start + dir * 1.0, diameter);
        e.base
            .add_behavior(bdm_core::new_behavior_box(growth, mm, domain));
        e
    }
}

impl CloneIn for NeuronSoma {
    fn clone_in(&self, mm: &MemoryManager, domain: usize) -> NeuronSoma {
        NeuronSoma {
            base: self.base.clone_in(mm, domain),
        }
    }
}

impl Agent for NeuronSoma {
    fn base(&self) -> &AgentBase {
        &self.base
    }
    fn base_mut(&mut self) -> &mut AgentBase {
        &mut self.base
    }
    fn payload(&self) -> u64 {
        PAYLOAD_SOMA
    }
    fn checkpoint_tag(&self) -> &'static str {
        "neuro.NeuronSoma"
    }
    fn clone_box(&self, mm: &MemoryManager, domain: usize) -> AgentBox {
        clone_agent_box(self, mm, domain)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A cylindrical neurite segment.
///
/// The agent position (used for neighbor search and mechanics) is the
/// **distal end** — the tip for terminal elements, which is where growth
/// happens; `proximal` is the attachment point toward the soma.
pub struct NeuriteElement {
    base: AgentBase,
    proximal: Real3,
    soma: AgentUid,
    parent: Option<AgentUid>,
    terminal: bool,
    branch_order: u32,
}

impl NeuriteElement {
    /// Creates a terminal element between `proximal` and `distal`.
    pub fn new(
        uid: AgentUid,
        soma: AgentUid,
        parent: Option<AgentUid>,
        proximal: Real3,
        distal: Real3,
        diameter: f64,
    ) -> NeuriteElement {
        let mut base = AgentBase::new(uid);
        base.set_position(distal);
        base.set_diameter(diameter);
        NeuriteElement {
            base,
            proximal,
            soma,
            parent,
            terminal: true,
            branch_order: 0,
        }
    }

    /// The proximal (soma-side) end.
    pub fn proximal(&self) -> Real3 {
        self.proximal
    }

    /// The distal end (= agent position).
    pub fn distal(&self) -> Real3 {
        self.position()
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.proximal.distance(&self.position())
    }

    /// Unit vector from proximal to distal.
    pub fn axis(&self) -> Real3 {
        (self.position() - self.proximal).normalized()
    }

    /// Whether this element carries the growth cone.
    pub fn is_terminal(&self) -> bool {
        self.terminal
    }

    /// Marks the element terminal (growth front) or interior. Growth flips
    /// this itself during discretization; checkpoint restore uses the setter
    /// to rebuild an element mid-tree.
    pub fn set_terminal(&mut self, terminal: bool) {
        self.terminal = terminal;
    }

    /// Number of bifurcations between the soma and this element.
    pub fn branch_order(&self) -> u32 {
        self.branch_order
    }

    /// Sets the bifurcation depth (checkpoint restore; [`NeuriteElement::new`]
    /// always starts at 0).
    pub fn set_branch_order(&mut self, order: u32) {
        self.branch_order = order;
    }

    /// Uid of the soma this neurite belongs to.
    pub fn soma(&self) -> AgentUid {
        self.soma
    }

    /// Uid of the parent element (`None` for the first element of a
    /// neurite).
    pub fn parent(&self) -> Option<AgentUid> {
        self.parent
    }
}

impl CloneIn for NeuriteElement {
    fn clone_in(&self, mm: &MemoryManager, domain: usize) -> NeuriteElement {
        NeuriteElement {
            base: self.base.clone_in(mm, domain),
            proximal: self.proximal,
            soma: self.soma,
            parent: self.parent,
            terminal: self.terminal,
            branch_order: self.branch_order,
        }
    }
}

impl Agent for NeuriteElement {
    fn base(&self) -> &AgentBase {
        &self.base
    }
    fn base_mut(&mut self) -> &mut AgentBase {
        &mut self.base
    }
    fn payload(&self) -> u64 {
        PAYLOAD_NEURITE
    }
    fn checkpoint_tag(&self) -> &'static str {
        "neuro.NeuriteElement"
    }
    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        out.put_real3(self.proximal);
        out.put_u64(self.soma.0);
        match self.parent {
            Some(p) => {
                out.put_u8(1);
                out.put_u64(p.0);
            }
            None => {
                out.put_u8(0);
                out.put_u64(0);
            }
        }
        out.put_u8(u8::from(self.terminal));
        out.put_u32(self.branch_order);
    }
    fn clone_box(&self, mm: &MemoryManager, domain: usize) -> AgentBox {
        clone_agent_box(self, mm, domain)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The growth-cone behavior: elongation, discretization, bifurcation.
#[derive(Clone, Debug)]
pub struct GrowthCone {
    /// Elongation speed (µm per time unit).
    pub speed: f64,
    /// Std-dev of the random direction deviation per step.
    pub deviation: f64,
    /// Segment length at which the element is discretized (a new terminal
    /// element continues the growth, this one becomes interior and static).
    pub max_segment_length: f64,
    /// Bifurcation probability per step (terminal elements only).
    pub branch_probability: f64,
    /// Maximum branch order; deeper growth cones retire.
    pub max_branch_order: u32,
    /// Guidance substance (diffusion grid index) the cone climbs, if any.
    pub guidance_substance: Option<usize>,
    /// Weight of the guidance gradient relative to the current axis.
    pub guidance_weight: f64,
}

impl Default for GrowthCone {
    fn default() -> Self {
        GrowthCone {
            speed: 1.0,
            deviation: 0.2,
            max_segment_length: 5.0,
            branch_probability: 0.01,
            max_branch_order: 6,
            guidance_substance: None,
            guidance_weight: 0.5,
        }
    }
}

impl Behavior for GrowthCone {
    fn run(&mut self, agent: &mut dyn Agent, ctx: &mut AgentContext<'_>) -> BehaviorControl {
        let e = agent
            .as_any_mut()
            .downcast_mut::<NeuriteElement>()
            .expect("GrowthCone only attaches to NeuriteElement");
        if !e.terminal {
            return BehaviorControl::RemoveSelf;
        }

        // Elongate: previous axis + random deviation (+ guidance gradient).
        let mut dir = e.axis();
        dir += Real3::new(
            ctx.rng.gaussian(0.0, self.deviation),
            ctx.rng.gaussian(0.0, self.deviation),
            ctx.rng.gaussian(0.0, self.deviation),
        );
        if let Some(grid) = self.guidance_substance {
            let grad = ctx.substance(grid).gradient_at(e.distal()).normalized();
            dir += grad * self.guidance_weight;
        }
        let dir = dir.normalized();
        let new_distal = e.distal() + dir * (self.speed * ctx.dt);
        e.set_position(new_distal);

        if e.length() < self.max_segment_length {
            return BehaviorControl::Keep;
        }

        let order = e.branch_order;
        let bifurcate = order < self.max_branch_order && ctx.rng.chance(self.branch_probability);
        if !bifurcate && order >= self.max_branch_order {
            // Deepest allowed order reached: the cone retires, the element
            // stays a (now quiescent) terminal tip.
            return BehaviorControl::RemoveSelf;
        }

        // Discretization: this element becomes interior; growth continues in
        // fresh terminal element(s).
        e.terminal = false;
        let parent_uid = e.uid();
        let soma = e.soma;
        let diameter = e.diameter();
        let tip = e.distal();
        let directions: Vec<Real3> = if bifurcate {
            // Two daughters spread around the current axis.
            let normal = dir.cross(&ctx.rng.unit_vector()).normalized();
            vec![
                (dir + normal * 0.8).normalized(),
                (dir - normal * 0.8).normalized(),
            ]
        } else {
            vec![dir]
        };
        for d in &directions {
            let uid = ctx.next_uid();
            let mut daughter =
                NeuriteElement::new(uid, soma, Some(parent_uid), tip, tip + *d * 0.5, diameter);
            daughter.branch_order = order + u32::from(bifurcate);
            daughter.base_mut().add_behavior(bdm_core::new_behavior_box(
                self.clone(),
                ctx.memory_manager(),
                ctx.alloc_domain(),
            ));
            ctx.new_agent(daughter);
        }
        // Interior elements no longer grow.
        BehaviorControl::RemoveSelf
    }

    fn neighbor_access(&self) -> NeighborAccess {
        // Elongation reads the guidance substance and the agent itself;
        // neighbor interaction is the mechanics kernel's job.
        NeighborAccess::NONE
    }

    fn clone_behavior(&self, mm: &MemoryManager, domain: usize) -> BehaviorBox {
        clone_behavior_box(self, mm, domain)
    }

    fn name(&self) -> &'static str {
        "GrowthCone"
    }

    fn checkpoint_tag(&self) -> &'static str {
        "neuro.GrowthCone"
    }

    fn checkpoint_write(&self, out: &mut bdm_util::ByteWriter) {
        out.put_f64(self.speed);
        out.put_f64(self.deviation);
        out.put_f64(self.max_segment_length);
        out.put_f64(self.branch_probability);
        out.put_u32(self.max_branch_order);
        match self.guidance_substance {
            Some(g) => {
                out.put_u8(1);
                out.put_u64(g as u64);
            }
            None => {
                out.put_u8(0);
                out.put_u64(0);
            }
        }
        out.put_f64(self.guidance_weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_core::{new_agent_box, Param, Simulation};

    fn param() -> Param {
        Param {
            threads: Some(2),
            numa_domains: Some(2),
            simulation_time_step: 1.0,
            interaction_radius: Some(12.0),
            ..Param::default()
        }
    }

    fn seed_neuron(sim: &mut Simulation, pos: Real3, cone: GrowthCone) {
        let soma_uid = sim.new_uid();
        let soma = NeuronSoma::new(soma_uid)
            .with_position(pos)
            .with_diameter(10.0);
        let n_uid = sim.new_uid();
        let first = soma.extend_neurite(
            n_uid,
            Real3::new(0.0, 0.0, 1.0),
            2.0,
            cone,
            sim.memory_manager(),
            0,
        );
        sim.add_agent(soma);
        sim.add_agent(first);
    }

    #[test]
    fn soma_extends_neurite_at_surface() {
        let mm = MemoryManager::new(1, 1, bdm_core::PoolConfig::default());
        let soma = NeuronSoma::new(AgentUid(1))
            .with_position(Real3::splat(10.0))
            .with_diameter(8.0);
        let e = soma.extend_neurite(
            AgentUid(2),
            Real3::new(1.0, 0.0, 0.0),
            2.0,
            GrowthCone::default(),
            &mm,
            0,
        );
        assert_eq!(e.proximal(), Real3::new(14.0, 10.0, 10.0));
        assert!(e.is_terminal());
        assert_eq!(e.soma(), AgentUid(1));
        assert_eq!(e.parent(), None);
        assert!((e.length() - 1.0).abs() < 1e-12);
        drop(e);
    }

    #[test]
    fn neurite_grows_into_a_chain() {
        let mut sim = Simulation::new(Param {
            enable_mechanics: false,
            ..param()
        });
        seed_neuron(
            &mut sim,
            Real3::splat(50.0),
            GrowthCone {
                branch_probability: 0.0,
                deviation: 0.0,
                speed: 1.0,
                max_segment_length: 5.0,
                ..GrowthCone::default()
            },
        );
        sim.simulate(40);
        // Straight growth at speed 1 for 40 steps = ~40 µm of neurite in
        // ~5 µm segments → ≥ 8 elements + 1 soma.
        let neurites = sim.count_agents(|a| a.payload() == PAYLOAD_NEURITE);
        assert!(neurites >= 8, "neurites={neurites}");
        // Exactly one terminal element (no branching).
        let mut terminals = 0;
        let mut max_len: f64 = 0.0;
        sim.for_each_agent(|_, a| {
            if let Some(e) = a.as_any().downcast_ref::<NeuriteElement>() {
                if e.is_terminal() {
                    terminals += 1;
                }
                max_len = max_len.max(e.length());
            }
        });
        assert_eq!(terminals, 1);
        assert!(max_len <= 6.1, "discretization caps segment length");
    }

    #[test]
    fn interior_elements_are_connected_chain() {
        let mut sim = Simulation::new(Param {
            enable_mechanics: false,
            ..param()
        });
        seed_neuron(
            &mut sim,
            Real3::splat(30.0),
            GrowthCone {
                branch_probability: 0.0,
                deviation: 0.1,
                ..GrowthCone::default()
            },
        );
        sim.simulate(30);
        // Every element's proximal must coincide with its parent's distal
        // (no mechanics, so positions are exact).
        let mut by_uid = std::collections::HashMap::new();
        sim.for_each_agent(|_, a| {
            if let Some(e) = a.as_any().downcast_ref::<NeuriteElement>() {
                by_uid.insert(e.uid(), (e.proximal(), e.distal(), e.parent()));
            }
        });
        assert!(by_uid.len() > 3);
        for (uid, (prox, _distal, parent)) in &by_uid {
            if let Some(p) = parent {
                let (_, parent_distal, _) = by_uid
                    .get(p)
                    .unwrap_or_else(|| panic!("parent of {uid:?} missing"));
                assert!(
                    prox.distance(parent_distal) < 1e-9,
                    "chain broken at {uid:?}"
                );
            }
        }
    }

    #[test]
    fn branching_creates_tree() {
        let mut sim = Simulation::new(Param {
            enable_mechanics: false,
            ..param()
        });
        seed_neuron(
            &mut sim,
            Real3::splat(80.0),
            GrowthCone {
                branch_probability: 0.5,
                max_branch_order: 3,
                ..GrowthCone::default()
            },
        );
        sim.simulate(80);
        let mut terminals = 0;
        let mut max_order = 0;
        sim.for_each_agent(|_, a| {
            if let Some(e) = a.as_any().downcast_ref::<NeuriteElement>() {
                if e.is_terminal() {
                    terminals += 1;
                }
                max_order = max_order.max(e.branch_order());
            }
        });
        assert!(terminals > 1, "bifurcation must fan out: {terminals}");
        assert!(max_order >= 1);
        assert!(max_order <= 3, "branch order capped: {max_order}");
    }

    #[test]
    fn static_detection_skips_interior_segments() {
        let mut p = param();
        p.detect_static_agents = true;
        let mut sim = Simulation::new(p);
        seed_neuron(
            &mut sim,
            Real3::splat(100.0),
            GrowthCone {
                branch_probability: 0.05,
                ..GrowthCone::default()
            },
        );
        sim.simulate(60);
        let stats = sim.stats();
        assert!(
            stats.static_skipped > stats.force_calculations / 4,
            "interior neurite segments must be skipped: {stats:?}"
        );
    }

    #[test]
    fn growth_is_deterministic_serially() {
        let run = || {
            let mut p = param();
            p.threads = Some(1);
            p.numa_domains = Some(1);
            p.enable_mechanics = false;
            let mut sim = Simulation::new(p);
            seed_neuron(&mut sim, Real3::splat(10.0), GrowthCone::default());
            sim.simulate(50);
            let mut tips: Vec<(u64, [f64; 3])> = Vec::new();
            sim.for_each_agent(|_, a| tips.push((a.uid().0, a.position().into())));
            tips.sort_by_key(|(u, _)| *u);
            tips
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clone_box_preserves_neurite_state() {
        let mm = MemoryManager::new(1, 1, bdm_core::PoolConfig::default());
        let mut e = NeuriteElement::new(
            AgentUid(5),
            AgentUid(1),
            Some(AgentUid(4)),
            Real3::ZERO,
            Real3::new(0.0, 0.0, 3.0),
            2.0,
        );
        e.terminal = false;
        e.branch_order = 2;
        let boxed = new_agent_box(e, &mm, 0);
        let cloned = boxed.clone_box(&mm, 0);
        let c = cloned.as_any().downcast_ref::<NeuriteElement>().unwrap();
        assert_eq!(c.uid(), AgentUid(5));
        assert_eq!(c.parent(), Some(AgentUid(4)));
        assert!(!c.is_terminal());
        assert_eq!(c.branch_order(), 2);
        assert!((c.length() - 3.0).abs() < 1e-12);
    }
}
