//! # bdm-numa
//!
//! Virtual NUMA topology and a NUMA-aware work-stealing thread pool,
//! reproducing the iteration mechanism of paper Section 4.1 / Figure 2.
//!
//! The original engine uses libnuma + OpenMP thread pinning on multi-socket
//! servers. Containerized and laptop environments expose no NUMA hardware, so
//! this crate models the topology *virtually* (see DESIGN.md §3): all
//! scheduling, partitioning, and two-level work-stealing behaviour of the
//! paper is exercised identically; only the physical remote-DRAM latency is
//! absent.

pub mod pool;
pub mod topology;

pub use pool::{NumaThreadPool, StealStats, WorkerCtx};
pub use topology::{Domain, NumaTopology};
