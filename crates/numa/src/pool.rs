//! NUMA-aware persistent thread pool with two-level work stealing.
//!
//! Reproduces the iteration mechanism of paper Section 4.1 / Figure 2:
//!
//! 1. the per-domain agent vectors are partitioned into equally sized blocks,
//! 2. blocks are assigned to the threads of the *matching* domain,
//! 3. an idle thread first steals blocks from threads of its own domain,
//! 4. and only when the whole domain is drained does it steal from another
//!    domain ("two-level work stealing").
//!
//! The pool is persistent (workers are created once, like an OpenMP thread
//! pool) and accepts borrowing closures: [`NumaThreadPool::run`] blocks until
//! every worker finished, so handing workers a lifetime-erased reference to
//! the closure is sound.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::topology::NumaTopology;

/// Identity of the worker executing a piece of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCtx {
    /// Global worker thread id, `0..num_threads`.
    pub thread_id: usize,
    /// Virtual NUMA domain the worker belongs to.
    pub domain: usize,
}

/// Work-stealing counters (paper Figure 2 arrows 4 and 5). Because the
/// virtual topology has no DRAM-latency asymmetry, the *amount* of local vs.
/// remote stealing is the observable we report in the NUMA benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Blocks stolen from a thread of the same NUMA domain.
    pub local_steals: u64,
    /// Blocks stolen from a thread of a different NUMA domain.
    pub remote_steals: u64,
    /// Blocks executed by the thread they were assigned to.
    pub owned_blocks: u64,
}

/// Type-erased job pointer. Sound because `run` blocks until all workers
/// have finished executing the closure the pointer refers to.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync + 'static));
unsafe impl Send for JobPtr {}

struct JobSlot {
    seq: u64,
    job: Option<JobPtr>,
    quit: bool,
}

struct Shared {
    slot: Mutex<JobSlot>,
    job_cv: Condvar,
    done: Mutex<usize>,
    done_cv: Condvar,
    /// First panic payload raised by a worker during the current job; `run`
    /// re-raises it on the caller thread so a panicking agent operation
    /// fails the simulation instead of deadlocking the pool.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    local_steals: AtomicU64,
    remote_steals: AtomicU64,
    owned_blocks: AtomicU64,
}

thread_local! {
    /// True on pool worker threads; used to reject illegal nested `run`s.
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Persistent NUMA-aware thread pool.
pub struct NumaThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    topology: NumaTopology,
    /// Serializes concurrent `run` calls from different handles.
    run_guard: Mutex<()>,
}

impl NumaThreadPool {
    /// Spawns one worker per thread of `topology`.
    pub fn new(topology: NumaTopology) -> NumaThreadPool {
        let shared = Arc::new(Shared {
            slot: Mutex::new(JobSlot {
                seq: 0,
                job: None,
                quit: false,
            }),
            job_cv: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
            local_steals: AtomicU64::new(0),
            remote_steals: AtomicU64::new(0),
            owned_blocks: AtomicU64::new(0),
        });
        let workers = (0..topology.num_threads())
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bdm-worker-{id}"))
                    .spawn(move || worker_loop(id, &shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        NumaThreadPool {
            shared,
            workers,
            topology,
            run_guard: Mutex::new(()),
        }
    }

    /// Pool built from [`NumaTopology::detect`].
    pub fn detected() -> NumaThreadPool {
        NumaThreadPool::new(NumaTopology::detect())
    }

    /// The topology this pool runs on.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(worker_id)` once on every worker and blocks until all
    /// invocations finished.
    ///
    /// Panics when called from inside a pool worker (nested parallelism must
    /// go through rayon or plain code instead — matching the paper's engine,
    /// where only the scheduler launches parallel regions).
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        assert!(
            !IS_WORKER.with(|w| w.get()),
            "NumaThreadPool::run must not be called from a pool worker"
        );
        let _guard = self.run_guard.lock();
        // Erase the lifetime: workers only dereference the pointer while this
        // function is blocked waiting for them.
        let job = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const _)
        });
        {
            let mut done = self.shared.done.lock();
            *done = 0;
        }
        {
            let mut slot = self.shared.slot.lock();
            slot.seq += 1;
            slot.job = Some(job);
            self.shared.job_cv.notify_all();
        }
        let mut done = self.shared.done.lock();
        while *done < self.workers.len() {
            self.shared.done_cv.wait(&mut done);
        }
        drop(done);
        // Do not leave a dangling pointer in the slot.
        self.shared.slot.lock().job = None;
        // Re-raise the first worker panic on the caller (pool stays usable).
        if let Some(payload) = self.shared.panic.lock().take() {
            std::panic::resume_unwind(payload);
        }
    }

    /// NUMA-aware parallel iteration (paper Figure 2).
    ///
    /// `sizes[d]` is the number of items owned by domain `d` (e.g. the length
    /// of the resource manager's agent vector for that domain). Items are cut
    /// into blocks of `block_size`, assigned to the threads of the matching
    /// domain, and executed with two-level stealing. `f` receives the worker
    /// identity, the domain, and the item sub-range to process.
    pub fn numa_for(
        &self,
        sizes: &[usize],
        block_size: usize,
        f: &(dyn Fn(WorkerCtx, usize, Range<usize>) + Sync),
    ) {
        assert_eq!(
            sizes.len(),
            self.topology.num_domains(),
            "sizes must have one entry per NUMA domain"
        );
        let block_size = block_size.max(1);
        // Build one block queue per worker thread.
        let mut queues: Vec<Queue> = Vec::with_capacity(self.num_threads());
        for (domain, &size) in sizes.iter().enumerate() {
            let nblocks = size.div_ceil(block_size);
            let threads = self.topology.threads_of_domain(domain);
            let nthreads = threads.len();
            debug_assert_eq!(queues.len(), threads.start);
            // Partition the domain's blocks among the domain's threads.
            for t in 0..nthreads {
                let begin = nblocks * t / nthreads;
                let end = nblocks * (t + 1) / nthreads;
                queues.push(Queue {
                    next: AtomicUsize::new(begin),
                    end,
                    domain,
                    items: size,
                });
            }
        }
        let topo = &self.topology;
        let shared = &self.shared;
        self.run(&move |worker: usize| {
            let my_domain = topo.domain_of_thread(worker);
            let ctx = WorkerCtx {
                thread_id: worker,
                domain: my_domain,
            };
            // Level 0: own queue.
            let owned = drain(&queues[worker], block_size, ctx, f);
            shared.owned_blocks.fetch_add(owned, Ordering::Relaxed);
            // Level 1: steal within the domain (paper Figure 2, arrow 4).
            let domain_threads = topo.threads_of_domain(my_domain);
            for t in domain_threads.clone() {
                if t == worker {
                    continue;
                }
                let stolen = drain(&queues[t], block_size, ctx, f);
                shared.local_steals.fetch_add(stolen, Ordering::Relaxed);
            }
            // Level 2: steal from other domains (arrow 5).
            for d in 0..topo.num_domains() {
                if d == my_domain {
                    continue;
                }
                for t in topo.threads_of_domain(d) {
                    let stolen = drain(&queues[t], block_size, ctx, f);
                    shared.remote_steals.fetch_add(stolen, Ordering::Relaxed);
                }
            }
        });
    }

    /// Plain parallel iteration over `0..n` with dynamic block scheduling
    /// across all threads (no domain affinity). Used for work without a
    /// per-domain layout, e.g. growing shared vectors in parallel.
    pub fn parallel_for(
        &self,
        n: usize,
        block_size: usize,
        f: &(dyn Fn(WorkerCtx, Range<usize>) + Sync),
    ) {
        let block_size = block_size.max(1);
        let nblocks = n.div_ceil(block_size);
        let nthreads = self.num_threads();
        let queues: Vec<Queue> = (0..nthreads)
            .map(|t| Queue {
                next: AtomicUsize::new(nblocks * t / nthreads),
                end: nblocks * (t + 1) / nthreads,
                domain: 0,
                items: n,
            })
            .collect();
        let topo = &self.topology;
        self.run(&move |worker: usize| {
            let ctx = WorkerCtx {
                thread_id: worker,
                domain: topo.domain_of_thread(worker),
            };
            for offset in 0..nthreads {
                let victim = (worker + offset) % nthreads;
                drain(&queues[victim], block_size, ctx, &|c, _d, r| f(c, r));
            }
        });
    }

    /// Runs `f` once per worker thread (e.g. to set up thread-local state).
    pub fn broadcast(&self, f: &(dyn Fn(WorkerCtx) + Sync)) {
        let topo = &self.topology;
        self.run(&move |worker| {
            f(WorkerCtx {
                thread_id: worker,
                domain: topo.domain_of_thread(worker),
            })
        });
    }

    /// Returns the accumulated steal statistics and resets the counters.
    pub fn take_steal_stats(&self) -> StealStats {
        StealStats {
            local_steals: self.shared.local_steals.swap(0, Ordering::Relaxed),
            remote_steals: self.shared.remote_steals.swap(0, Ordering::Relaxed),
            owned_blocks: self.shared.owned_blocks.swap(0, Ordering::Relaxed),
        }
    }
}

impl Drop for NumaThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock();
            slot.quit = true;
            self.shared.job_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for NumaThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NumaThreadPool")
            .field("threads", &self.num_threads())
            .field("domains", &self.topology.num_domains())
            .finish()
    }
}

/// A contiguous range of block indices owned by one worker, consumed with a
/// shared atomic cursor so both the owner and thieves pop from it safely.
struct Queue {
    next: AtomicUsize,
    end: usize,
    domain: usize,
    /// Total number of items in this queue's domain (to clamp the last block).
    items: usize,
}

/// Pops and executes blocks from `q` until it is empty; returns the number of
/// blocks executed.
fn drain(
    q: &Queue,
    block_size: usize,
    ctx: WorkerCtx,
    f: &(dyn Fn(WorkerCtx, usize, Range<usize>) + Sync),
) -> u64 {
    let mut executed = 0u64;
    loop {
        let b = q.next.fetch_add(1, Ordering::Relaxed);
        if b >= q.end {
            // Undo the overshoot so repeated probing cannot wrap the counter.
            q.next.fetch_sub(1, Ordering::Relaxed);
            return executed;
        }
        let start = b * block_size;
        let end = (start + block_size).min(q.items);
        f(ctx, q.domain, start..end);
        executed += 1;
    }
}

fn worker_loop(id: usize, shared: &Shared) {
    IS_WORKER.with(|w| w.set(true));
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            while !slot.quit && slot.seq == last_seq {
                shared.job_cv.wait(&mut slot);
            }
            if slot.quit {
                return;
            }
            last_seq = slot.seq;
            slot.job.expect("job published with seq bump")
        };
        // SAFETY: `run` keeps the closure alive until all workers report done.
        let f = unsafe { &*job.0 };
        // A panicking job must still count as done, or `run` waits forever;
        // the payload is stashed and re-raised on the caller thread.
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(id))) {
            let mut first = shared.panic.lock();
            if first.is_none() {
                *first = Some(payload);
            }
        }
        let mut done = shared.done.lock();
        *done += 1;
        if *done == usize::MAX {
            unreachable!();
        }
        shared.done_cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn pool(domains: usize, threads: usize) -> NumaThreadPool {
        NumaThreadPool::new(NumaTopology::new(domains, threads))
    }

    #[test]
    fn parallel_for_runs_every_index_once() {
        let p = pool(2, 4);
        for n in [0usize, 1, 7, 100, 1000] {
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            p.parallel_for(n, 16, &|_ctx, range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n={n}: every index exactly once"
            );
        }
    }

    #[test]
    fn numa_for_runs_every_domain_item_once() {
        let p = pool(2, 4);
        let sizes = [103usize, 57];
        let hits: Vec<Vec<AtomicU32>> = sizes
            .iter()
            .map(|&s| (0..s).map(|_| AtomicU32::new(0)).collect())
            .collect();
        p.numa_for(&sizes, 8, &|_ctx, domain, range| {
            for i in range {
                hits[domain][i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (d, dh) in hits.iter().enumerate() {
            for (i, h) in dh.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "domain {d} item {i}");
            }
        }
    }

    #[test]
    fn numa_for_prefers_matching_domain() {
        // With perfectly balanced work and blocks >= items/thread, most items
        // should be processed by threads of the owning domain.
        let p = pool(2, 4);
        let sizes = [1000usize, 1000];
        let cross = AtomicU32::new(0);
        p.numa_for(&sizes, 10, &|ctx, domain, range| {
            if ctx.domain != domain {
                cross.fetch_add(range.len() as u32, Ordering::Relaxed);
            }
            // Make blocks take comparable time so stealing isn't forced.
            std::hint::black_box(range.clone().sum::<usize>());
        });
        let crossed = cross.load(Ordering::Relaxed);
        assert!(
            crossed <= 1000,
            "most work stays domain-local, crossed={crossed}"
        );
    }

    #[test]
    fn remote_steals_happen_on_imbalance() {
        let p = pool(2, 2);
        p.take_steal_stats();
        // All work sits in domain 0; domain 1's thread can only steal remotely.
        // Each block spins long enough (~hundreds of µs) that the idle domain
        // reliably wakes up while the queue is still non-empty.
        let sizes = [2_000usize, 0];
        p.numa_for(&sizes, 16, &|_ctx, _domain, range| {
            let mut acc = 1u64;
            for i in range {
                for k in 0..20_000u64 {
                    acc = std::hint::black_box(
                        acc.wrapping_mul(2654435761).wrapping_add(i as u64 ^ k),
                    );
                }
            }
            std::hint::black_box(acc);
        });
        let stats = p.take_steal_stats();
        assert!(stats.owned_blocks > 0);
        assert!(
            stats.remote_steals > 0,
            "domain 1 must steal remotely: {stats:?}"
        );
    }

    #[test]
    fn borrows_local_data() {
        let p = pool(1, 2);
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        p.parallel_for(data.len(), 64, &|_ctx, range| {
            let s: u64 = data[range].iter().sum();
            sum.fetch_add(s, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn broadcast_reaches_every_worker() {
        let p = pool(2, 4);
        let seen: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        p.broadcast(&|ctx| {
            seen[ctx.thread_id].fetch_add(1, Ordering::Relaxed);
            assert_eq!(ctx.domain, ctx.thread_id / 2);
        });
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn many_consecutive_jobs() {
        let p = pool(2, 4);
        let counter = AtomicU64::new(0);
        for _ in 0..200 {
            p.parallel_for(10, 1, &|_ctx, range| {
                counter.fetch_add(range.len() as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn single_thread_pool_works() {
        let p = pool(1, 1);
        let hits = AtomicU32::new(0);
        p.numa_for(&[17], 4, &|ctx, d, range| {
            assert_eq!(ctx.thread_id, 0);
            assert_eq!(d, 0);
            hits.fetch_add(range.len() as u32, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn nested_run_is_rejected() {
        let p = pool(1, 2);
        let p2 = pool(1, 1);
        let caught = AtomicU32::new(0);
        p.broadcast(&|_ctx| {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p2.parallel_for(1, 1, &|_c, _r| {});
            }));
            if r.is_err() {
                caught.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(caught.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn drop_joins_cleanly() {
        for _ in 0..5 {
            let p = pool(2, 4);
            p.parallel_for(100, 8, &|_c, _r| {});
            drop(p);
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let p = pool(2, 4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.parallel_for(100, 1, &|_ctx, range| {
                if range.contains(&42) {
                    panic!("agent 42 exploded");
                }
            });
        }));
        let payload = caught.expect_err("panic must reach the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "agent 42 exploded");
        // The pool must remain fully usable after a panicking job.
        let counter = AtomicU64::new(0);
        p.parallel_for(100, 8, &|_ctx, range| {
            counter.fetch_add(range.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }
}
