//! Virtual NUMA topology.
//!
//! The paper's engine queries the hardware topology through libnuma/hwloc and
//! pins OpenMP threads to NUMA domains (Section 4.1). Inside a container (and
//! on non-NUMA laptops) there is no hardware topology to query, so this crate
//! models a **virtual topology**: a configurable number of domains, each
//! owning a contiguous span of worker threads. Every control-flow mechanism of
//! the paper (per-domain agent vectors, domain-matched block scheduling,
//! two-level work stealing, domain-balanced sorting) runs unchanged against
//! the virtual topology; only the physical DRAM-latency asymmetry is absent
//! (see DESIGN.md §3).
//!
//! Environment overrides (useful for the benchmark harness):
//! * `BDM_THREADS` — total worker threads (default: available parallelism).
//! * `BDM_NUMA_DOMAINS` — number of virtual domains (default: 1, or the value
//!   detected from `/sys/devices/system/node` when present).

/// Description of one (virtual) NUMA domain: a contiguous range of threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    /// First global thread id owned by this domain.
    pub first_thread: usize,
    /// Number of threads owned by this domain.
    pub num_threads: usize,
}

/// A (virtual) NUMA topology: how worker threads map onto memory domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaTopology {
    domains: Vec<Domain>,
}

impl NumaTopology {
    /// Builds a topology with `num_domains` domains and `total_threads`
    /// worker threads distributed as evenly as possible (earlier domains get
    /// the remainder). Panics if either argument is zero.
    pub fn new(num_domains: usize, total_threads: usize) -> NumaTopology {
        assert!(num_domains > 0, "need at least one NUMA domain");
        assert!(total_threads > 0, "need at least one thread");
        assert!(
            total_threads >= num_domains,
            "need at least one thread per domain ({total_threads} threads, {num_domains} domains)"
        );
        let base = total_threads / num_domains;
        let extra = total_threads % num_domains;
        let mut domains = Vec::with_capacity(num_domains);
        let mut first = 0;
        for d in 0..num_domains {
            let n = base + usize::from(d < extra);
            domains.push(Domain {
                first_thread: first,
                num_threads: n,
            });
            first += n;
        }
        NumaTopology { domains }
    }

    /// Single-domain topology with `threads` workers.
    pub fn single_domain(threads: usize) -> NumaTopology {
        NumaTopology::new(1, threads)
    }

    /// Detects a topology for the current host.
    ///
    /// Honors `BDM_THREADS` / `BDM_NUMA_DOMAINS`, then tries
    /// `/sys/devices/system/node/node*`, then falls back to one domain with
    /// all available CPUs.
    pub fn detect() -> NumaTopology {
        let threads = std::env::var("BDM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let domains = std::env::var("BDM_NUMA_DOMAINS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&d| d > 0)
            .unwrap_or_else(|| detect_host_numa_nodes().unwrap_or(1));
        let domains = domains.min(threads); // at least one thread per domain
        NumaTopology::new(domains, threads)
    }

    /// Number of NUMA domains.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// Total number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.domains
            .last()
            .map(|d| d.first_thread + d.num_threads)
            .unwrap_or(0)
    }

    /// The domain a global thread id belongs to.
    pub fn domain_of_thread(&self, thread: usize) -> usize {
        debug_assert!(thread < self.num_threads());
        // Domains are contiguous; the count is tiny, so a scan beats a search.
        self.domains
            .iter()
            .position(|d| thread < d.first_thread + d.num_threads)
            .expect("thread id out of range")
    }

    /// Global thread ids owned by a domain.
    pub fn threads_of_domain(&self, domain: usize) -> std::ops::Range<usize> {
        let d = &self.domains[domain];
        d.first_thread..d.first_thread + d.num_threads
    }

    /// Number of threads in a domain.
    pub fn threads_in_domain(&self, domain: usize) -> usize {
        self.domains[domain].num_threads
    }

    /// All domains.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }
}

/// Counts `node*` entries under `/sys/devices/system/node`, if present.
fn detect_host_numa_nodes() -> Option<usize> {
    let entries = std::fs::read_dir("/sys/devices/system/node").ok()?;
    let count = entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("node") && name[4..].chars().all(|c| c.is_ascii_digit())
        })
        .count();
    (count > 0).then_some(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_distribution() {
        let t = NumaTopology::new(4, 8);
        assert_eq!(t.num_domains(), 4);
        assert_eq!(t.num_threads(), 8);
        for d in 0..4 {
            assert_eq!(t.threads_in_domain(d), 2);
        }
        assert_eq!(t.threads_of_domain(2), 4..6);
    }

    #[test]
    fn uneven_distribution_front_loads_remainder() {
        let t = NumaTopology::new(3, 7);
        assert_eq!(t.threads_in_domain(0), 3);
        assert_eq!(t.threads_in_domain(1), 2);
        assert_eq!(t.threads_in_domain(2), 2);
        assert_eq!(t.num_threads(), 7);
    }

    #[test]
    fn domain_of_thread_roundtrip() {
        let t = NumaTopology::new(3, 7);
        for thread in 0..7 {
            let d = t.domain_of_thread(thread);
            assert!(t.threads_of_domain(d).contains(&thread));
        }
    }

    #[test]
    fn single_domain() {
        let t = NumaTopology::single_domain(5);
        assert_eq!(t.num_domains(), 1);
        assert_eq!(t.num_threads(), 5);
        assert_eq!(t.domain_of_thread(4), 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread per domain")]
    fn more_domains_than_threads_panics() {
        NumaTopology::new(4, 2);
    }

    #[test]
    #[should_panic(expected = "at least one NUMA domain")]
    fn zero_domains_panics() {
        NumaTopology::new(0, 2);
    }

    #[test]
    fn detect_yields_valid_topology() {
        let t = NumaTopology::detect();
        assert!(t.num_threads() >= 1);
        assert!(t.num_domains() >= 1);
        assert!(t.num_domains() <= t.num_threads());
    }
}
