//! Property-based tests of the NUMA-aware thread pool (paper Section 4.1):
//! under arbitrary topologies, domain loads, and block sizes, every item is
//! executed exactly once, with in-bounds ranges and correct domain labels.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use proptest::prelude::*;

use bdm_numa::{NumaThreadPool, NumaTopology};

proptest! {
    // Pools spawn real OS threads; keep the case count civil.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_numa_for_exactly_once(
        domains in 1usize..4,
        extra_threads in 0usize..4,
        sizes_seed in prop::collection::vec(0usize..2_000, 1..4),
        block in 1usize..700,
    ) {
        let threads = domains + extra_threads;
        let pool = NumaThreadPool::new(NumaTopology::new(domains, threads));
        // One size entry per domain (cycled from the seed).
        let sizes: Vec<usize> = (0..domains).map(|d| sizes_seed[d % sizes_seed.len()]).collect();
        let hits: Vec<Vec<AtomicU32>> = sizes
            .iter()
            .map(|&s| (0..s).map(|_| AtomicU32::new(0)).collect())
            .collect();
        let out_of_bounds = AtomicUsize::new(0);
        {
            let sizes = &sizes;
            let hits = &hits;
            let oob = &out_of_bounds;
            pool.numa_for(sizes, block, &move |ctx, domain, range| {
                if domain >= sizes.len() || ctx.thread_id >= threads || range.end > sizes[domain] {
                    oob.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                for i in range {
                    hits[domain][i].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        prop_assert_eq!(out_of_bounds.load(Ordering::Relaxed), 0, "bad range/label seen");
        for (d, dh) in hits.iter().enumerate() {
            for (i, h) in dh.iter().enumerate() {
                prop_assert_eq!(h.load(Ordering::Relaxed), 1, "domain {} item {}", d, i);
            }
        }
    }

    #[test]
    fn prop_parallel_for_exactly_once(
        threads in 1usize..6,
        n in 0usize..5_000,
        block in 1usize..900,
    ) {
        let pool = NumaThreadPool::new(NumaTopology::new(1, threads));
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        pool.parallel_for(n, block, &|_ctx, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "item {}", i);
        }
    }

    #[test]
    fn prop_steal_stats_account_for_all_blocks(
        domains in 1usize..3,
        per_domain in 1usize..1_500,
        block in 1usize..400,
    ) {
        let threads = domains * 2;
        let pool = NumaThreadPool::new(NumaTopology::new(domains, threads));
        let sizes = vec![per_domain; domains];
        pool.take_steal_stats();
        pool.numa_for(&sizes, block, &|_ctx, _domain, range| {
            std::hint::black_box(range.len());
        });
        let stats = pool.take_steal_stats();
        let expected_blocks: u64 = sizes
            .iter()
            .map(|&s| s.div_ceil(block) as u64)
            .sum();
        prop_assert_eq!(
            stats.owned_blocks + stats.local_steals + stats.remote_steals,
            expected_blocks,
            "every block is either owned or stolen: {:?}",
            stats
        );
    }
}

#[test]
fn numa_for_labels_domains_correctly() {
    let pool = NumaThreadPool::new(NumaTopology::new(3, 6));
    let sizes = [100usize, 200, 300];
    let seen = [AtomicU32::new(0), AtomicU32::new(0), AtomicU32::new(0)];
    pool.numa_for(&sizes, 32, &|_ctx, domain, range| {
        seen[domain].fetch_add(range.len() as u32, Ordering::Relaxed);
    });
    assert_eq!(seen[0].load(Ordering::Relaxed), 100);
    assert_eq!(seen[1].load(Ordering::Relaxed), 200);
    assert_eq!(seen[2].load(Ordering::Relaxed), 300);
}
