//! Linear-time Morton-order enumeration of non-power-of-two grids.
//!
//! The Morton order is only gap-free for cubic grids whose side is a power of
//! two. For an arbitrary `nx × ny × nz` grid, the in-domain boxes enumerated
//! in Morton order have codes with gaps wherever the enclosing power-of-two
//! cube sticks out of the domain (paper Figure 3C: the 3×3 grid inside the
//! 4×4 cube has gaps at codes 5, 7, and 10–11).
//!
//! This module implements the paper's algorithm (Section 4.2, Figure 3 D/E):
//! a depth-first traversal of the *implicit* quad-/octree whose leaves are
//! grid boxes. The traversal never materializes the tree — it only keeps the
//! current path (O(log #boxes) space) — and descends only into nodes that are
//! neither *complete* (entirely inside the domain) nor *empty* (entirely
//! outside). It produces a small `offsets` array of `(box_counter, offset)`
//! pairs such that the Morton code of the `rank`-th in-domain box is
//! `rank + offset` where `offset` comes from the last entry with
//! `box_counter ≤ rank`. Complexity is proportional to the domain surface,
//! not `N³` — "to avoid a costly sorting operation or iteration over all
//! N × N boxes".

use crate::morton::{morton2_decode, morton3_decode};

/// Gap/offset table mapping in-domain Morton *ranks* to Morton *codes*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapOffsets {
    /// `(box_counter, offset)` entries, strictly increasing in both fields.
    entries: Vec<(u64, u64)>,
    /// Number of in-domain boxes (product of the grid dimensions).
    num_boxes: u64,
    /// Dimensionality (2 or 3) — selects the decode used by iterators.
    dim: u32,
}

/// Node classification during the DFS.
#[derive(PartialEq)]
enum NodeKind {
    Empty,
    Complete,
    Partial,
}

fn classify(origin: &[u32; 3], size: u32, dims: &[u32; 3], dim: u32) -> NodeKind {
    let mut complete = true;
    for i in 0..dim as usize {
        if origin[i] >= dims[i] {
            return NodeKind::Empty;
        }
        if origin[i] + size > dims[i] {
            complete = false;
        }
    }
    if complete {
        NodeKind::Complete
    } else {
        NodeKind::Partial
    }
}

struct DfsState {
    entries: Vec<(u64, u64)>,
    box_counter: u64,
    offset: u64,
    found_gap: bool,
}

impl DfsState {
    fn visit(&mut self, origin: [u32; 3], size: u32, dims: &[u32; 3], dim: u32) {
        let leaves = (size as u64).pow(dim);
        match classify(&origin, size, dims, dim) {
            NodeKind::Complete => {
                if self.found_gap {
                    self.entries.push((self.box_counter, self.offset));
                    self.found_gap = false;
                }
                self.box_counter += leaves;
            }
            NodeKind::Empty => {
                self.offset += leaves;
                self.found_gap = true;
            }
            NodeKind::Partial => {
                debug_assert!(size > 1, "a leaf is never partial");
                let half = size / 2;
                let children = 1u32 << dim; // 4 in 2-D, 8 in 3-D
                for c in 0..children {
                    // Child order = Morton order: x is the lowest bit.
                    let child_origin = [
                        origin[0] + (c & 1) * half,
                        origin[1] + ((c >> 1) & 1) * half,
                        origin[2] + ((c >> 2) & 1) * half,
                    ];
                    self.visit(child_origin, half, dims, dim);
                }
            }
        }
    }
}

fn compute(dims: [u32; 3], dim: u32) -> GapOffsets {
    let num_boxes: u64 = (0..dim as usize).map(|i| dims[i] as u64).product();
    if num_boxes == 0 {
        return GapOffsets {
            entries: Vec::new(),
            num_boxes: 0,
            dim,
        };
    }
    let max_side = (0..dim as usize).map(|i| dims[i]).max().unwrap();
    let side = max_side.next_power_of_two();
    let mut state = DfsState {
        entries: Vec::new(),
        box_counter: 0,
        offset: 0,
        found_gap: true, // forces the initial (0, 0) entry, as in the paper
    };
    state.visit([0, 0, 0], side, &dims, dim);
    debug_assert_eq!(state.box_counter, num_boxes);
    GapOffsets {
        entries: state.entries,
        num_boxes,
        dim,
    }
}

impl GapOffsets {
    /// Computes the gap offsets for a 3-D grid.
    pub fn compute_3d(nx: u32, ny: u32, nz: u32) -> GapOffsets {
        compute([nx, ny, nz], 3)
    }

    /// Computes the gap offsets for a 2-D grid (used by tests mirroring the
    /// paper's 2-D exposition).
    pub fn compute_2d(nx: u32, ny: u32) -> GapOffsets {
        compute([nx, ny, 1], 2)
    }

    /// Number of in-domain boxes.
    pub fn num_boxes(&self) -> u64 {
        self.num_boxes
    }

    /// The raw `(box_counter, offset)` entries (paper Figure 3D).
    pub fn entries(&self) -> &[(u64, u64)] {
        &self.entries
    }

    /// Morton code of the box with the given in-domain Morton rank
    /// (paper Figure 3E: "iterate over all indices and add the offset").
    ///
    /// O(log #entries); for bulk conversion prefer [`GapOffsets::iter_codes`].
    pub fn rank_to_code(&self, rank: u64) -> u64 {
        debug_assert!(rank < self.num_boxes);
        let idx = self.entries.partition_point(|&(c, _)| c <= rank) - 1;
        rank + self.entries[idx].1
    }

    /// Iterates the Morton codes of all in-domain boxes in Morton order, in
    /// O(#boxes + #entries) total time.
    pub fn iter_codes(&self) -> impl Iterator<Item = u64> + '_ {
        let mut entry = 0usize;
        (0..self.num_boxes).map(move |rank| {
            while entry + 1 < self.entries.len() && self.entries[entry + 1].0 <= rank {
                entry += 1;
            }
            rank + self.entries[entry].1
        })
    }

    /// Iterates `(x, y, z)` coordinates of all in-domain boxes in Morton
    /// order. For 2-D tables, `z` is always zero.
    pub fn iter_coords(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        let dim = self.dim;
        self.iter_codes().map(move |code| {
            if dim == 2 {
                let (x, y) = morton2_decode(code);
                (x, y, 0)
            } else {
                morton3_decode(code)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::{morton2_encode, morton3_encode};
    use proptest::prelude::*;

    #[test]
    fn paper_figure3_example() {
        // 3×3 grid inside a 4×4 cube: offsets {0,0},{5,1},{6,2},{8,4}.
        let g = GapOffsets::compute_2d(3, 3);
        assert_eq!(g.entries(), &[(0, 0), (5, 1), (6, 2), (8, 4)]);
        assert_eq!(g.num_boxes(), 9);
        // Figure 3E: resulting Morton order 0 1 2 3 4 6 8 9 12.
        let codes: Vec<u64> = g.iter_codes().collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4, 6, 8, 9, 12]);
    }

    #[test]
    fn power_of_two_grid_has_single_entry() {
        let g = GapOffsets::compute_3d(8, 8, 8);
        assert_eq!(g.entries(), &[(0, 0)]);
        assert_eq!(g.num_boxes(), 512);
        let codes: Vec<u64> = g.iter_codes().collect();
        assert_eq!(codes, (0..512).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_grid() {
        let g = GapOffsets::compute_3d(0, 5, 5);
        assert_eq!(g.num_boxes(), 0);
        assert_eq!(g.iter_codes().count(), 0);
    }

    #[test]
    fn single_box() {
        let g = GapOffsets::compute_3d(1, 1, 1);
        assert_eq!(g.num_boxes(), 1);
        assert_eq!(g.rank_to_code(0), 0);
    }

    /// Brute-force reference: sort Morton codes of all in-domain boxes.
    fn reference_3d(nx: u32, ny: u32, nz: u32) -> Vec<u64> {
        let mut codes = Vec::new();
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    codes.push(morton3_encode(x, y, z));
                }
            }
        }
        codes.sort_unstable();
        codes
    }

    fn reference_2d(nx: u32, ny: u32) -> Vec<u64> {
        let mut codes = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                codes.push(morton2_encode(x, y));
            }
        }
        codes.sort_unstable();
        codes
    }

    #[test]
    fn elongated_grids_match_reference() {
        for (nx, ny, nz) in [(1, 1, 17), (5, 2, 9), (16, 3, 1), (7, 7, 7), (10, 1, 1)] {
            let g = GapOffsets::compute_3d(nx, ny, nz);
            let got: Vec<u64> = g.iter_codes().collect();
            assert_eq!(got, reference_3d(nx, ny, nz), "dims ({nx},{ny},{nz})");
        }
    }

    #[test]
    fn rank_to_code_matches_iter() {
        let g = GapOffsets::compute_3d(5, 3, 7);
        for (rank, code) in g.iter_codes().enumerate() {
            assert_eq!(g.rank_to_code(rank as u64), code);
        }
    }

    #[test]
    fn iter_coords_covers_domain_exactly_once() {
        let (nx, ny, nz) = (4, 5, 3);
        let g = GapOffsets::compute_3d(nx, ny, nz);
        let mut seen = vec![false; (nx * ny * nz) as usize];
        for (x, y, z) in g.iter_coords() {
            assert!(x < nx && y < ny && z < nz);
            let flat = (x + nx * (y + ny * z)) as usize;
            assert!(!seen[flat], "duplicate box ({x},{y},{z})");
            seen[flat] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest! {
        #[test]
        fn prop_3d_matches_reference(nx in 1u32..20, ny in 1u32..20, nz in 1u32..20) {
            let g = GapOffsets::compute_3d(nx, ny, nz);
            let got: Vec<u64> = g.iter_codes().collect();
            prop_assert_eq!(got, reference_3d(nx, ny, nz));
        }

        #[test]
        fn prop_2d_matches_reference(nx in 1u32..64, ny in 1u32..64) {
            let g = GapOffsets::compute_2d(nx, ny);
            let got: Vec<u64> = g.iter_codes().collect();
            prop_assert_eq!(got, reference_2d(nx, ny));
        }

        #[test]
        fn prop_entry_count_is_small(nx in 1u32..64, ny in 1u32..64, nz in 1u32..64) {
            // The table must stay far below #boxes — that is the point of the
            // algorithm. The number of entries is bounded by the number of
            // nodes on the domain boundary of the implicit octree.
            let g = GapOffsets::compute_3d(nx, ny, nz);
            let boxes = (nx * ny * nz) as usize;
            prop_assert!(g.entries().len() <= boxes);
            let side = nx.max(ny).max(nz).next_power_of_two() as usize;
            // Generous surface-order bound.
            prop_assert!(g.entries().len() <= 8 * side * side + 8);
        }
    }
}
