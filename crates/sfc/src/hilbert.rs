//! Hilbert curve encoding/decoding in 3-D (Skilling's transform).
//!
//! The paper compared Morton order against the Hilbert curve for agent
//! sorting and measured a negligible 0.54% improvement that did not justify
//! the higher decoding cost (Section 4.2). We provide the Hilbert codec
//! anyway so that the ablation benchmark (`sfc_compare`) can reproduce that
//! design decision.
//!
//! Implementation follows John Skilling, "Programming the Hilbert curve",
//! AIP Conf. Proc. 707 (2004): coordinates are converted to/from the
//! "transpose" form, then bits are gathered/scattered MSB-first.

/// Maximum bits per coordinate supported by the 3-D Hilbert codec
/// (3 × 21 = 63 bits fit a `u64` index).
pub const HILBERT3_BITS: u32 = 21;

/// Converts axes to Skilling transpose form, in place.
fn axes_to_transpose(x: &mut [u32; 3], bits: u32) {
    let m: u32 = 1 << (bits - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..3 {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..3 {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[2] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Converts Skilling transpose form back to axes, in place.
fn transpose_to_axes(x: &mut [u32; 3], bits: u32) {
    let n: u32 = 2 << (bits - 1);
    // Gray decode by H ^ (H/2).
    let mut t = x[2] >> 1;
    for i in (1..3).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u32;
    while q != n {
        let p = q - 1;
        for i in (0..3).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Encodes a 3-D coordinate (each < 2^bits, bits ≤ 21) into its Hilbert index.
pub fn hilbert3_encode(px: u32, py: u32, pz: u32, bits: u32) -> u64 {
    debug_assert!((1..=HILBERT3_BITS).contains(&bits));
    debug_assert!(px < (1 << bits) && py < (1 << bits) && pz < (1 << bits));
    let mut x = [px, py, pz];
    axes_to_transpose(&mut x, bits);
    // Gather: MSB-first interleave of the transpose form.
    let mut h = 0u64;
    for bit in (0..bits).rev() {
        for xi in &x {
            h = (h << 1) | ((*xi >> bit) & 1) as u64;
        }
    }
    h
}

/// Decodes a Hilbert index back to `(x, y, z)` (inverse of [`hilbert3_encode`]).
pub fn hilbert3_decode(h: u64, bits: u32) -> (u32, u32, u32) {
    debug_assert!((1..=HILBERT3_BITS).contains(&bits));
    let mut x = [0u32; 3];
    // Scatter: inverse of the gather above.
    let mut pos = 3 * bits;
    for bit in (0..bits).rev() {
        for xi in x.iter_mut() {
            pos -= 1;
            *xi |= (((h >> pos) & 1) as u32) << bit;
        }
    }
    transpose_to_axes(&mut x, bits);
    (x[0], x[1], x[2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn origin_is_zero() {
        for bits in 1..=8 {
            assert_eq!(hilbert3_encode(0, 0, 0, bits), 0);
        }
    }

    #[test]
    fn bijective_on_small_cube() {
        let bits = 3;
        let n = 1u32 << bits;
        let mut seen = vec![false; (n * n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let h = hilbert3_encode(x, y, z, bits) as usize;
                    assert!(h < seen.len(), "index in range");
                    assert!(!seen[h], "no collisions");
                    seen[h] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "curve covers the whole cube");
    }

    #[test]
    fn consecutive_indices_are_adjacent() {
        // The defining property of the Hilbert curve: successive indices map
        // to coordinates at L1 distance exactly 1.
        let bits = 4;
        let n = 1u64 << (3 * bits);
        let mut prev = hilbert3_decode(0, bits);
        for h in 1..n {
            let cur = hilbert3_decode(h, bits);
            let d = (prev.0 as i64 - cur.0 as i64).abs()
                + (prev.1 as i64 - cur.1 as i64).abs()
                + (prev.2 as i64 - cur.2 as i64).abs();
            assert_eq!(d, 1, "h={h}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(bits in 1u32..=HILBERT3_BITS, raw in any::<(u32, u32, u32)>()) {
            let mask = (1u32 << bits) - 1;
            let (x, y, z) = (raw.0 & mask, raw.1 & mask, raw.2 & mask);
            let h = hilbert3_encode(x, y, z, bits);
            prop_assert!(h < 1u64 << (3 * bits));
            prop_assert_eq!(hilbert3_decode(h, bits), (x, y, z));
        }

        #[test]
        fn prop_index_roundtrip(bits in 1u32..=10, h_raw in any::<u64>()) {
            let h = h_raw & ((1u64 << (3 * bits)) - 1);
            let (x, y, z) = hilbert3_decode(h, bits);
            prop_assert_eq!(hilbert3_encode(x, y, z, bits), h);
        }
    }
}
