//! # bdm-sfc
//!
//! Space-filling curves for memory-layout optimization (paper Section 4.2).
//!
//! * [`morton`] — Morton (Z-order) encode/decode in 2-D and 3-D; the curve the
//!   engine actually sorts agents by.
//! * [`hilbert`] — a 3-D Hilbert codec, kept for the ablation that reproduces
//!   the paper's Morton-vs-Hilbert design decision (0.54% difference).
//! * [`gap`] — the paper's linear-time algorithm for enumerating the boxes of
//!   a *non-power-of-two* grid in Morton order without sorting and without
//!   visiting out-of-domain codes (Figure 3 D/E).
//! * [`ranges`] — deterministic Morton-code range partitioning used by the
//!   sharded engine (TeraAgent direction): split a code population into K
//!   contiguous, roughly balanced intervals.

pub mod gap;
pub mod hilbert;
pub mod morton;
pub mod ranges;

/// Which space-filling curve orders the grid boxes during agent sorting
/// (paper Section 4.2: the authors measured a 0.54% advantage for the
/// Hilbert curve, offset by its decoding cost, and chose Morton; keeping
/// both makes that design decision reproducible as an ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CurveKind {
    /// Morton (Z-order) — the engine default; enumerable in linear time via
    /// [`GapOffsets`].
    #[default]
    Morton,
    /// Hilbert — better locality in theory, costlier to en/decode, and the
    /// box enumeration needs an explicit sort.
    Hilbert,
}

pub use gap::GapOffsets;
pub use hilbert::{hilbert3_decode, hilbert3_encode, HILBERT3_BITS};
pub use morton::{
    morton2_decode, morton2_encode, morton3_decode, morton3_encode, MORTON2_BITS, MORTON3_BITS,
};
pub use ranges::{shard_of, split_ranges, ShardRange};
