//! Morton (Z-order) encoding and decoding in 2-D and 3-D.
//!
//! The engine sorts agents by the Morton code of their grid box (paper
//! Section 4.2). The paper chose Morton order over the Hilbert curve because
//! decoding is cheaper and the measured difference was negligible (0.54%).
//!
//! Encoding interleaves coordinate bits with the x axis in the least
//! significant position: `code = ... z1 y1 x1 z0 y0 x0` (3-D) or
//! `... y1 x1 y0 x0` (2-D). Implemented with parallel-bit magic numbers, no
//! lookups, no loops.

/// Maximum number of bits per coordinate supported by the 3-D codec.
pub const MORTON3_BITS: u32 = 21;
/// Maximum number of bits per coordinate supported by the 2-D codec.
pub const MORTON2_BITS: u32 = 31;

/// Spreads the low 21 bits of `v` so consecutive bits land 3 apart.
#[inline]
fn part1by2(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x001f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`part1by2`]: compacts every third bit into the low 21 bits.
#[inline]
fn compact1by2(v: u64) -> u64 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x ^ (x >> 2)) & 0x10c3_0c30_c30c_30c3;
    x = (x ^ (x >> 4)) & 0x100f_00f0_0f00_f00f;
    x = (x ^ (x >> 8)) & 0x001f_0000_ff00_00ff;
    x = (x ^ (x >> 16)) & 0x001f_0000_0000_ffff;
    x = (x ^ (x >> 32)) & 0x1f_ffff;
    x
}

/// Spreads the low 31 bits of `v` so consecutive bits land 2 apart.
#[inline]
fn part1by1(v: u64) -> u64 {
    let mut x = v & 0x7fff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`part1by1`].
#[inline]
fn compact1by1(v: u64) -> u64 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x ^ (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x ^ (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x ^ (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x ^ (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x ^ (x >> 16)) & 0x7fff_ffff;
    x
}

/// Encodes a 3-D coordinate (each < 2^21) into its Morton code.
#[inline]
pub fn morton3_encode(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << MORTON3_BITS) && y < (1 << MORTON3_BITS) && z < (1 << MORTON3_BITS));
    part1by2(x as u64) | (part1by2(y as u64) << 1) | (part1by2(z as u64) << 2)
}

/// Decodes a 3-D Morton code back into `(x, y, z)`.
#[inline]
pub fn morton3_decode(code: u64) -> (u32, u32, u32) {
    (
        compact1by2(code) as u32,
        compact1by2(code >> 1) as u32,
        compact1by2(code >> 2) as u32,
    )
}

/// Encodes a 2-D coordinate (each < 2^31) into its Morton code.
#[inline]
pub fn morton2_encode(x: u32, y: u32) -> u64 {
    debug_assert!(x < (1 << MORTON2_BITS) && y < (1 << MORTON2_BITS));
    part1by1(x as u64) | (part1by1(y as u64) << 1)
}

/// Decodes a 2-D Morton code back into `(x, y)`.
#[inline]
pub fn morton2_decode(code: u64) -> (u32, u32) {
    (compact1by1(code) as u32, compact1by1(code >> 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Bit-by-bit reference implementation.
    fn morton3_reference(x: u32, y: u32, z: u32) -> u64 {
        let mut code = 0u64;
        for bit in 0..MORTON3_BITS {
            code |= ((x as u64 >> bit) & 1) << (3 * bit);
            code |= ((y as u64 >> bit) & 1) << (3 * bit + 1);
            code |= ((z as u64 >> bit) & 1) << (3 * bit + 2);
        }
        code
    }

    fn morton2_reference(x: u32, y: u32) -> u64 {
        let mut code = 0u64;
        for bit in 0..MORTON2_BITS {
            code |= ((x as u64 >> bit) & 1) << (2 * bit);
            code |= ((y as u64 >> bit) & 1) << (2 * bit + 1);
        }
        code
    }

    #[test]
    fn known_3d_values() {
        assert_eq!(morton3_encode(0, 0, 0), 0);
        assert_eq!(morton3_encode(1, 0, 0), 0b001);
        assert_eq!(morton3_encode(0, 1, 0), 0b010);
        assert_eq!(morton3_encode(0, 0, 1), 0b100);
        assert_eq!(morton3_encode(1, 1, 1), 0b111);
        assert_eq!(morton3_encode(2, 0, 0), 0b001_000);
        assert_eq!(morton3_encode(7, 7, 7), 0b111_111_111);
    }

    #[test]
    fn known_2d_values() {
        // Figure 3C of the paper: 4x4 grid Morton codes.
        assert_eq!(morton2_encode(0, 0), 0);
        assert_eq!(morton2_encode(1, 0), 1);
        assert_eq!(morton2_encode(0, 1), 2);
        assert_eq!(morton2_encode(1, 1), 3);
        assert_eq!(morton2_encode(2, 0), 4);
        assert_eq!(morton2_encode(3, 0), 5);
        assert_eq!(morton2_encode(2, 1), 6);
        assert_eq!(morton2_encode(0, 2), 8);
        assert_eq!(morton2_encode(2, 2), 12);
        assert_eq!(morton2_encode(3, 3), 15);
    }

    #[test]
    fn max_coordinate_roundtrip() {
        let m = (1u32 << MORTON3_BITS) - 1;
        assert_eq!(morton3_decode(morton3_encode(m, m, m)), (m, m, m));
        let m2 = (1u32 << MORTON2_BITS) - 1;
        assert_eq!(morton2_decode(morton2_encode(m2, m2)), (m2, m2));
    }

    #[test]
    fn locality_within_octant() {
        // All codes inside one 2x2x2 octant precede codes of the next octant.
        let max_in_first: u64 = (0..2)
            .flat_map(|x| (0..2).flat_map(move |y| (0..2).map(move |z| morton3_encode(x, y, z))))
            .max()
            .unwrap();
        assert!(max_in_first < morton3_encode(2, 0, 0));
    }

    proptest! {
        #[test]
        fn prop_3d_roundtrip(x in 0u32..1 << MORTON3_BITS, y in 0u32..1 << MORTON3_BITS, z in 0u32..1 << MORTON3_BITS) {
            let code = morton3_encode(x, y, z);
            prop_assert_eq!(morton3_decode(code), (x, y, z));
        }

        #[test]
        fn prop_3d_matches_reference(x in 0u32..1 << MORTON3_BITS, y in 0u32..1 << MORTON3_BITS, z in 0u32..1 << MORTON3_BITS) {
            prop_assert_eq!(morton3_encode(x, y, z), morton3_reference(x, y, z));
        }

        #[test]
        fn prop_2d_roundtrip(x in 0u32..1 << MORTON2_BITS, y in 0u32..1 << MORTON2_BITS) {
            let code = morton2_encode(x, y);
            prop_assert_eq!(morton2_decode(code), (x, y));
        }

        #[test]
        fn prop_2d_matches_reference(x in 0u32..1 << MORTON2_BITS, y in 0u32..1 << MORTON2_BITS) {
            prop_assert_eq!(morton2_encode(x, y), morton2_reference(x, y));
        }
    }
}
