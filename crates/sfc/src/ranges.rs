//! Space-filling-curve range partitioning for sharded execution.
//!
//! The sharded engine (TeraAgent direction: spatial domain decomposition
//! with halo exchange) splits the agent population across K shards by
//! *Morton-code range*: every grid box has a Morton code, every agent
//! inherits its box's code, and a shard owns a half-open code interval.
//! Because Morton order preserves spatial locality, a contiguous code
//! range is a spatially compact region and its halo surface stays small.
//!
//! Splitting is a **pure function of the code multiset and K** — no state
//! is carried between iterations — so the partition can be recomputed from
//! scratch every iteration (implicit deterministic migration) and a
//! checkpoint restored into a *different* shard count replays bitwise
//! identically: the partition never feeds the simulation results, only the
//! execution schedule.

/// Maximum number of sample codes drawn for quantile estimation. The
/// sample is a deterministic stride over the code array (never random),
/// so equal inputs always produce equal partitions.
const MAX_SAMPLES: usize = 4096;

/// A half-open Morton-code interval `[begin, end)` owned by one shard.
/// The last shard's `end` is [`u64::MAX`] and that shard additionally owns
/// the code `u64::MAX` itself, so the K ranges jointly cover every code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First code owned by the shard (inclusive).
    pub begin: u64,
    /// First code *not* owned by the shard (exclusive), except that the
    /// final shard also owns `u64::MAX`.
    pub end: u64,
}

impl ShardRange {
    /// True if `code` falls inside this range (the final range also
    /// accepts `u64::MAX`).
    pub fn contains(&self, code: u64) -> bool {
        code >= self.begin && (code < self.end || (self.end == u64::MAX && code == u64::MAX))
    }
}

/// Splits the code population into `shards` contiguous Morton ranges of
/// approximately equal agent count.
///
/// Deterministic: a stride sample of at most `MAX_SAMPLES` (4096) codes is
/// sorted and quantile boundaries are read off it. Ranges are ascending,
/// contiguous, and cover `[0, u64::MAX]`; heavily duplicated codes can
/// produce empty ranges (`begin == end`), which the sharded engine treats
/// as valid empty shards.
///
/// # Panics
/// Panics if `shards == 0`.
pub fn split_ranges(codes: &[u64], shards: usize) -> Vec<ShardRange> {
    assert!(shards > 0, "shard count must be at least 1");
    if shards == 1 || codes.is_empty() {
        let mut out = vec![ShardRange { begin: 0, end: 0 }; shards];
        out[0] = ShardRange {
            begin: 0,
            end: u64::MAX,
        };
        // All-empty population or K == 1: the first shard owns everything
        // and the rest (if any) are empty ranges stacked at the top.
        for r in out.iter_mut().skip(1) {
            *r = ShardRange {
                begin: u64::MAX,
                end: u64::MAX,
            };
        }
        return out;
    }

    let stride = codes.len().div_ceil(MAX_SAMPLES).max(1);
    let mut samples: Vec<u64> = codes.iter().step_by(stride).copied().collect();
    samples.sort_unstable();

    let mut bounds = Vec::with_capacity(shards + 1);
    bounds.push(0u64);
    for j in 1..shards {
        let q = samples[(j * samples.len() / shards).min(samples.len() - 1)];
        // Boundaries must be non-decreasing even when quantiles collide.
        let prev = *bounds.last().unwrap();
        bounds.push(q.max(prev));
    }
    bounds.push(u64::MAX);

    bounds
        .windows(2)
        .map(|w| ShardRange {
            begin: w[0],
            end: w[1],
        })
        .collect()
}

/// Index of the shard owning `code` under `ranges` (as produced by
/// [`split_ranges`]): binary search over the ascending boundaries.
pub fn shard_of(ranges: &[ShardRange], code: u64) -> usize {
    debug_assert!(!ranges.is_empty());
    // partition_point: first range whose `end` exceeds `code` owns it;
    // code == u64::MAX belongs to the last range by convention.
    let idx = ranges.partition_point(|r| r.end <= code);
    idx.min(ranges.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let ranges = split_ranges(&[1, 5, 9], 1);
        assert_eq!(ranges.len(), 1);
        for code in [0, 1, 5, 9, u64::MAX] {
            assert!(ranges[0].contains(code));
            assert_eq!(shard_of(&ranges, code), 0);
        }
    }

    #[test]
    fn ranges_are_contiguous_and_cover_everything() {
        let codes: Vec<u64> = (0..10_000).map(|i| (i * 37) % 4096).collect();
        for k in [2, 3, 4, 7, 16] {
            let ranges = split_ranges(&codes, k);
            assert_eq!(ranges.len(), k);
            assert_eq!(ranges[0].begin, 0);
            assert_eq!(ranges[k - 1].end, u64::MAX);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].begin, "contiguous");
                assert!(w[0].begin <= w[0].end, "ascending");
            }
            for &code in &codes {
                let s = shard_of(&ranges, code);
                assert!(ranges[s].contains(code));
            }
        }
    }

    #[test]
    fn split_is_roughly_balanced() {
        let codes: Vec<u64> = (0..8192).collect();
        let ranges = split_ranges(&codes, 4);
        let mut counts = [0usize; 4];
        for &c in &codes {
            counts[shard_of(&ranges, c)] += 1;
        }
        for &c in &counts {
            assert!(c > 8192 / 8, "no shard should be starved: {counts:?}");
        }
    }

    #[test]
    fn duplicate_codes_yield_empty_but_valid_ranges() {
        let codes = vec![42u64; 1000];
        let ranges = split_ranges(&codes, 4);
        assert_eq!(ranges.len(), 4);
        // All agents land in one shard; the others are empty but the
        // partition still covers the full code space.
        let s = shard_of(&ranges, 42);
        assert!(ranges[s].contains(42));
        assert_eq!(ranges[0].begin, 0);
        assert_eq!(ranges[3].end, u64::MAX);
    }

    #[test]
    fn empty_population_still_partitions() {
        let ranges = split_ranges(&[], 3);
        assert_eq!(ranges.len(), 3);
        assert_eq!(shard_of(&ranges, 0), 0);
        assert_eq!(shard_of(&ranges, u64::MAX), 2);
    }

    #[test]
    fn split_is_deterministic() {
        let codes: Vec<u64> = (0..50_000).map(|i| (i * 2654435761) % 100_000).collect();
        assert_eq!(split_ranges(&codes, 7), split_ranges(&codes, 7));
    }

    #[test]
    fn max_code_belongs_to_last_shard() {
        let ranges = split_ranges(&[0, u64::MAX], 2);
        assert_eq!(shard_of(&ranges, u64::MAX), 1);
    }
}
